#!/usr/bin/env python3
"""Compare runner JSONL bench output against a checked-in baseline.

The bench-regression CI lane runs bench_micro / bench_saturation at a pinned
small configuration with LHR_BENCH_JSONL set, then calls this script once per
baseline file:

    tools/bench_compare.py --baseline bench/baselines/micro.json \
        --jsonl micro.jsonl --out micro-diff.json

A baseline file pins, per metric: the JSONL row label, the stats key, the
reference value, which direction is better, and the tolerance band:

    {
      "config": {"LHR_MICRO_INFER_ROWS": "4000"},   # documentation only
      "metrics": [
        {"label": "gbdt_infer/flat_row", "stat": "ns_per_row",
         "value": 1850.0, "direction": "lower", "tolerance": 1.5},
        {"label": "saturation/LHR/cdn-a/knee", "stat": "knee_rps",
         "value": 120000.0, "direction": "higher", "tolerance": 0.7}
      ]
    }

direction "lower"  (latency-like): regression when measured > value * (1 + tolerance)
direction "higher" (throughput-like): regression when measured < value * (1 - tolerance)

Tolerances are deliberately wide: shared CI runners are noisy and slower than
the machine the baselines were recorded on, so this lane exists to catch
order-of-magnitude regressions (an accidental O(n) scan on the hot path, a
dropped SIMD dispatch), not single-digit drift. When a sweep emits several
rows with the same label, "agg" picks the one to compare: "last" (default),
"max" or "min".

A metric whose label/stat never appears in the JSONL is a failure too — a
silently dropped bench reads as "no regression" otherwise.

Exit status: 0 = all metrics within tolerance, 1 = any regression or missing
metric, 2 = usage/IO error. The --out diff JSON (uploaded as a CI artifact)
carries every metric's measured value, bound, and verdict.

Refreshing baselines after an intentional perf change:
    LHR_BENCH_JSONL=micro.jsonl <pinned env> ./build/bench/bench_micro ...
    tools/bench_compare.py --baseline bench/baselines/micro.json \
        --jsonl micro.jsonl --update
rewrites every metric's "value" with the measured one (tolerances are kept);
commit the regenerated baseline together with the perf change.
"""

import argparse
import json
import sys


def load_jsonl(path):
    rows = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{line_no}: bad JSONL line: {err}")
    return rows


def measured_value(rows, label, stat, agg):
    values = [
        row["stats"][stat]
        for row in rows
        if row.get("label") == label and stat in row.get("stats", {})
    ]
    if not values:
        return None
    if agg == "max":
        return max(values)
    if agg == "min":
        return min(values)
    return values[-1]


def check_metric(metric, rows):
    label = metric["label"]
    stat = metric["stat"]
    value = float(metric["value"])
    direction = metric.get("direction", "lower")
    tolerance = float(metric.get("tolerance", 0.5))
    agg = metric.get("agg", "last")

    measured = measured_value(rows, label, stat, agg)
    result = {
        "label": label,
        "stat": stat,
        "baseline": value,
        "direction": direction,
        "tolerance": tolerance,
        "measured": measured,
    }
    if measured is None:
        result["verdict"] = "missing"
        return result
    if direction == "lower":
        bound = value * (1.0 + tolerance)
        result["bound"] = bound
        result["verdict"] = "ok" if measured <= bound else "regression"
    elif direction == "higher":
        bound = value * (1.0 - tolerance)
        result["bound"] = bound
        result["verdict"] = "ok" if measured >= bound else "regression"
    else:
        raise SystemExit(f"metric {label}: unknown direction '{direction}'")
    return result


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="baseline JSON file")
    parser.add_argument("--jsonl", required=True, help="runner JSONL to check")
    parser.add_argument("--out", help="write the per-metric diff JSON here")
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline's values with the measured ones and exit",
    )
    args = parser.parse_args()

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        rows = load_jsonl(args.jsonl)
    except OSError as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2

    if args.update:
        missing = []
        for metric in baseline["metrics"]:
            measured = measured_value(
                rows, metric["label"], metric["stat"], metric.get("agg", "last")
            )
            if measured is None:
                missing.append(f'{metric["label"]}:{metric["stat"]}')
            else:
                metric["value"] = round(measured, 6)
        if missing:
            print(f"bench_compare: not measured: {', '.join(missing)}", file=sys.stderr)
            return 1
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
        print(f"bench_compare: refreshed {len(baseline['metrics'])} baseline values")
        return 0

    results = [check_metric(m, rows) for m in baseline["metrics"]]
    failed = [r for r in results if r["verdict"] != "ok"]

    width = max(len(r["label"]) + len(r["stat"]) + 1 for r in results)
    for r in results:
        name = f'{r["label"]}:{r["stat"]}'
        measured = "absent" if r["measured"] is None else f'{r["measured"]:.3f}'
        bound = f'{r["bound"]:.3f}' if "bound" in r else "-"
        marker = "ok" if r["verdict"] == "ok" else r["verdict"].upper()
        print(
            f"{name:<{width}}  baseline {r['baseline']:>12.3f}  "
            f"measured {measured:>12}  bound({r['direction']}) {bound:>12}  {marker}"
        )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump({"baseline_file": args.baseline, "results": results}, fh, indent=2)
            fh.write("\n")

    if failed:
        print(
            f"bench_compare: {len(failed)}/{len(results)} metric(s) regressed "
            f"or missing (see above)",
            file=sys.stderr,
        )
        return 1
    print(f"bench_compare: all {len(results)} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
