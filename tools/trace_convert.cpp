// trace_convert: move traces between the text ("time key size" lines) and
// packed binary (.lhrt, mmap-replayable) formats, generate calibrated
// synthetic traces straight to disk, and print Table-1 style statistics.
//
//   trace_convert to-bin  IN.txt OUT.lhrt [--seed S] [--class CLASS]
//   trace_convert to-csv  IN.lhrt OUT.txt
//   trace_convert gen     CLASS REQUESTS SEED OUT.lhrt [--chunk N]
//   trace_convert stats   FILE          (either format, auto-detected)
//
// Times are printed with %.17g in to-csv, so a text->bin->text round trip
// reproduces every double exactly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "gen/cdn_model.hpp"
#include "gen/streaming.hpp"
#include "trace/lhrt.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"

namespace {

using namespace lhr;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> ...\n"
               "  to-bin IN.txt OUT.lhrt [--seed S] [--class CLASS]\n"
               "      convert a 'time key size' text trace to packed .lhrt\n"
               "  to-csv IN.lhrt OUT.txt\n"
               "      convert a .lhrt trace back to text (exact doubles)\n"
               "  gen CLASS REQUESTS SEED OUT.lhrt [--chunk N]\n"
               "      stream a calibrated synthetic trace to disk in\n"
               "      bounded memory (CLASS: cdn-a|cdn-b|cdn-c|wiki)\n"
               "  stats FILE\n"
               "      print Table-1 style statistics (format auto-detected)\n",
               argv0);
  return 2;
}

gen::TraceClass parse_class(const std::string& name) {
  if (name == "cdn-a") return gen::TraceClass::kCdnA;
  if (name == "cdn-b") return gen::TraceClass::kCdnB;
  if (name == "cdn-c") return gen::TraceClass::kCdnC;
  if (name == "wiki") return gen::TraceClass::kWiki;
  throw std::invalid_argument("unknown trace class: " + name +
                              " (expected cdn-a|cdn-b|cdn-c|wiki)");
}

int cmd_to_bin(int argc, char** argv) {
  if (argc < 4) throw std::invalid_argument("to-bin needs IN.txt and OUT.lhrt");
  std::uint64_t seed = 0;
  std::int32_t cls = trace::kLhrtClassUnknown;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--class") == 0 && i + 1 < argc) {
      cls = static_cast<std::int32_t>(parse_class(argv[++i]));
    } else {
      throw std::invalid_argument(std::string("unknown to-bin option: ") + argv[i]);
    }
  }
  const trace::Trace t = trace::read_trace_file(argv[2]);
  trace::write_lhrt_file(t, argv[3], seed, cls);
  std::printf("%s: wrote %zu records to %s\n", argv[2], t.size(), argv[3]);
  return 0;
}

int cmd_to_csv(int argc, char** argv) {
  if (argc < 4) throw std::invalid_argument("to-csv needs IN.lhrt and OUT.txt");
  const trace::MappedTrace t(argv[2]);
  std::FILE* out = std::fopen(argv[3], "w");
  if (out == nullptr) {
    throw std::runtime_error(std::string("cannot open for writing: ") + argv[3]);
  }
  for (const trace::Request& r : t.requests()) {
    std::fprintf(out, "%.17g %llu %llu\n", r.time,
                 static_cast<unsigned long long>(r.key),
                 static_cast<unsigned long long>(r.size));
  }
  if (std::fclose(out) != 0) {
    throw std::runtime_error(std::string("write failed: ") + argv[3]);
  }
  std::printf("%s: wrote %zu records to %s\n", argv[2], t.size(), argv[3]);
  return 0;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 6) throw std::invalid_argument("gen needs CLASS REQUESTS SEED OUT.lhrt");
  const gen::TraceClass cls = parse_class(argv[2]);
  const long long requests = std::atoll(argv[3]);
  if (requests <= 0) throw std::invalid_argument("REQUESTS must be positive");
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
  std::size_t chunk = trace::kDefaultChunkRequests;
  for (int i = 6; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chunk") == 0 && i + 1 < argc) {
      const long long v = std::atoll(argv[++i]);
      if (v <= 0) throw std::invalid_argument("--chunk must be positive");
      chunk = static_cast<std::size_t>(v);
    } else {
      throw std::invalid_argument(std::string("unknown gen option: ") + argv[i]);
    }
  }
  gen::generate_lhrt_file(
      gen::make_config(cls, static_cast<std::size_t>(requests), seed), argv[5], chunk);
  std::printf("%s: wrote %lld records to %s\n", argv[2], requests, argv[5]);
  return 0;
}

void print_stats(const trace::TraceSource& t, const char* path) {
  const trace::TraceSummary s = trace::summarize(t);
  std::printf("%s\n", path);
  std::printf("  requests            %llu\n",
              static_cast<unsigned long long>(s.total_requests));
  std::printf("  unique contents     %llu\n",
              static_cast<unsigned long long>(s.unique_contents));
  std::printf("  duration (h)        %.3f\n", s.duration_hours);
  std::printf("  bytes requested(TB) %.3f\n", s.total_bytes_requested_tb);
  std::printf("  unique bytes (GB)   %.3f\n", s.unique_bytes_gb);
  std::printf("  peak active (GB)    %.3f\n", s.peak_active_bytes_gb);
  std::printf("  mean size (MB)      %.3f\n", s.mean_content_size_mb);
  std::printf("  max size (MB)       %.3f\n", s.max_content_size_mb);
  std::printf("  one-hit wonders     %.2f%%\n", 100.0 * s.one_hit_wonder_fraction);
  const auto counts = trace::popularity_counts(t);
  std::printf("  zipf alpha (fit)    %.3f\n",
              trace::fit_zipf_alpha(counts, counts.size() / 10 + 2));
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) throw std::invalid_argument("stats needs FILE");
  // Binary first (cheap header probe); fall back to the text parser.
  try {
    const trace::MappedTrace t(argv[2]);
    print_stats(t, argv[2]);
    return 0;
  } catch (const std::exception&) {
  }
  const trace::Trace t = trace::read_trace_file(argv[2]);
  print_stats(t, argv[2]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "to-bin") return cmd_to_bin(argc, argv);
    if (cmd == "to-csv") return cmd_to_csv(argc, argv);
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "stats") return cmd_stats(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return usage(argv[0]);
}
