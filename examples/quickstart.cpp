// Quickstart: generate a small CDN-like workload, run LHR next to LRU, and
// print the headline metrics. This is the 60-second tour of the library.
//
//   $ ./build/examples/quickstart
//
// Pieces used: gen (calibrated synthetic traces), core (the LHR cache),
// policies (LRU baseline), sim (trace-driven engine + metrics).
#include <cstdio>

#include "core/lhr_cache.hpp"
#include "gen/cdn_model.hpp"
#include "policies/lru.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace lhr;

  // 1. A CDN-A-like workload: 100k requests, web + video mix (see DESIGN.md
  //    for how the generator is calibrated to the paper's Table 1).
  const trace::Trace trace = gen::make_trace(gen::TraceClass::kCdnA, 100'000, /*seed=*/7);

  // 2. Cache size scaled to the workload: the paper's 512 GB at 1M requests
  //    becomes ~51 GB at 100k.
  const std::uint64_t capacity = gen::headline_cache_size(gen::TraceClass::kCdnA, 0.1);

  // 3. LHR with default (paper) parameters: 4x sliding windows, 20 IRT
  //    features + statics, auto-tuned threshold, Zipf-change detection.
  core::LhrCache lhr(capacity, core::LhrConfig{});
  const sim::SimMetrics lhr_metrics = sim::simulate(lhr, trace);

  // 4. The production baseline.
  policy::Lru lru(capacity);
  const sim::SimMetrics lru_metrics = sim::simulate(lru, trace);

  std::printf("workload: %zu requests, %.1f GB cache\n", trace.size(),
              double(capacity) / (1024.0 * 1024.0 * 1024.0));
  std::printf("%-6s hit probability %.2f%%   byte hit %.2f%%   WAN %.2f TB\n", "LHR:",
              100.0 * lhr_metrics.object_hit_ratio(),
              100.0 * lhr_metrics.byte_hit_ratio(),
              lhr_metrics.wan_traffic_bytes() / 1e12);
  std::printf("%-6s hit probability %.2f%%   byte hit %.2f%%   WAN %.2f TB\n", "LRU:",
              100.0 * lru_metrics.object_hit_ratio(),
              100.0 * lru_metrics.byte_hit_ratio(),
              lru_metrics.wan_traffic_bytes() / 1e12);
  std::printf("\nLHR internals: %zu windows, %zu trainings, final threshold %.2f,\n"
              "HRO (online upper bound) said %.2f%% was achievable.\n",
              lhr.windows_seen(), lhr.trainings(), lhr.threshold(),
              100.0 * lhr.hro_hit_ratio());
  return 0;
}
