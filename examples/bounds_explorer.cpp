// Bounds explorer: compare every upper bound on OPT this library implements
// — offline (Belady, Belady-Size, PFOO-L, InfiniteCap) and online (HRO) —
// on a workload of your choice, across a sweep of cache sizes.
//
//   $ ./build/examples/bounds_explorer [trace-file]
//
// Without an argument a synthetic Wiki-like trace is used. A trace file is
// whitespace-separated "time key size" lines (webcachesim format).
#include <cstdio>
#include <string>

#include "gen/cdn_model.hpp"
#include "hazard/hro.hpp"
#include "opt/bounds.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace lhr;

  trace::Trace trace;
  if (argc > 1) {
    std::printf("loading %s ...\n", argv[1]);
    trace = trace::read_trace_file(argv[1]);
    if (!trace.is_time_ordered()) trace.sort_by_time();
  } else {
    trace = gen::make_trace(gen::TraceClass::kWiki, 100'000, 3);
  }

  const auto summary = trace::summarize(trace);
  std::printf("trace: %llu requests, %llu contents, %.1f GB unique bytes\n",
              static_cast<unsigned long long>(summary.total_requests),
              static_cast<unsigned long long>(summary.unique_contents),
              summary.unique_bytes_gb);

  const auto inf = opt::infinite_cap(trace.requests());
  std::printf("\nInfiniteCap (compulsory misses only): %.2f%%\n\n",
              100.0 * inf.hit_ratio());

  std::printf("%-12s %-12s %-12s %-12s %-12s\n", "Cache", "Belady", "Belady-Size",
              "PFOO-L", "HRO");
  const double unique_bytes = summary.unique_bytes_gb * 1024.0 * 1024.0 * 1024.0;
  for (const double fraction : {0.01, 0.05, 0.10, 0.25, 0.50}) {
    const auto capacity = static_cast<std::uint64_t>(unique_bytes * fraction);
    const auto belady = opt::belady(trace.requests(), capacity);
    const auto belady_size = opt::belady_size(trace.requests(), capacity);
    const auto pfoo = opt::pfoo_l(trace.requests(), capacity);

    hazard::Hro hro(hazard::HroConfig{.capacity_bytes = capacity});
    for (const auto& r : trace) hro.classify(r);

    std::printf("%-12s %-12.2f %-12.2f %-12.2f %-12.2f\n",
                (std::to_string(int(fraction * 100)) + "% uniq").c_str(),
                100.0 * belady.hit_ratio(), 100.0 * belady_size.hit_ratio(),
                100.0 * pfoo.hit_ratio(), 100.0 * hro.hit_ratio());
  }
  std::printf("\nHRO is computed online (no knowledge of the future); the rest\n"
              "need the full trace in advance. See paper Section 3 / Appendix A.1.\n");
  return 0;
}
