// lhr_sim: the command-line simulator (see core/cli.hpp for options).
#include <cstdio>

#include "core/cli.hpp"
#include "core/proc_replay.hpp"

int main(int argc, char** argv) {
  // Hidden worker mode: --procs re-execs this binary per worker process;
  // the hook runs the slice and exits before any CLI parsing.
  if (const int rc = lhr::core::proc_replay_worker_main(argc, argv); rc >= 0) {
    return rc;
  }
  std::string error;
  const auto options = lhr::core::parse_cli(argc, argv, error);
  if (!options) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                 lhr::core::cli_usage().c_str());
    return 2;
  }
  if (options->policies.empty()) {  // --help
    std::printf("%s", lhr::core::cli_usage().c_str());
    return 0;
  }
  try {
    if (!options->fabric.empty()) {
      const auto report = lhr::core::run_fabric(*options);
      std::printf("%s", lhr::core::format_fabric_report(report).c_str());
    } else {
      const auto results = lhr::core::run_cli(*options);
      std::printf("%s", lhr::core::format_results(results, options->csv).c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
