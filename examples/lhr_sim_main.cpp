// lhr_sim: the command-line simulator (see core/cli.hpp for options).
#include <cstdio>

#include "core/cli.hpp"

int main(int argc, char** argv) {
  std::string error;
  const auto options = lhr::core::parse_cli(argc, argv, error);
  if (!options) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                 lhr::core::cli_usage().c_str());
    return 2;
  }
  if (options->policies.empty()) {  // --help
    std::printf("%s", lhr::core::cli_usage().c_str());
    return 0;
  }
  try {
    if (!options->fabric.empty()) {
      const auto report = lhr::core::run_fabric(*options);
      std::printf("%s", lhr::core::format_fabric_report(report).c_str());
    } else {
      const auto results = lhr::core::run_cli(*options);
      std::printf("%s", lhr::core::format_results(results, options->csv).c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
