// Synthetic workload builder: generate any of the calibrated CDN trace
// classes (or the Markov-modulated Syn One/Syn Two processes) and write them
// as webcachesim-format files usable by the other examples or by external
// simulators.
//
//   $ ./build/examples/synthetic_workloads cdn-a 200000 out.txt
//   $ ./build/examples/synthetic_workloads syn-two 100000 out.txt
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/cdn_model.hpp"
#include "gen/markov_modulated.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"

namespace {

void usage() {
  std::printf(
      "usage: synthetic_workloads <class> [num_requests] [out_file] [seed]\n"
      "  class: cdn-a | cdn-b | cdn-c | wiki | syn-one | syn-two\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhr;
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cls = argv[1];
  const std::size_t n = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 100'000;
  const std::string out = argc > 3 ? argv[3] : "";
  const std::uint64_t seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  trace::Trace trace;
  if (cls == "cdn-a") {
    trace = gen::make_trace(gen::TraceClass::kCdnA, n, seed);
  } else if (cls == "cdn-b") {
    trace = gen::make_trace(gen::TraceClass::kCdnB, n, seed);
  } else if (cls == "cdn-c") {
    trace = gen::make_trace(gen::TraceClass::kCdnC, n, seed);
  } else if (cls == "wiki") {
    trace = gen::make_trace(gen::TraceClass::kWiki, n, seed);
  } else if (cls == "syn-one" || cls == "syn-two") {
    gen::MarkovModulatedConfig config;
    config.num_requests = n;
    config.requests_per_state = n / 5;
    config.seed = seed;
    trace = cls == "syn-one" ? generate_syn_one(config) : generate_syn_two(config);
  } else {
    usage();
    return 1;
  }

  const auto s = trace::summarize(trace);
  std::printf("generated %llu requests / %llu contents\n",
              static_cast<unsigned long long>(s.total_requests),
              static_cast<unsigned long long>(s.unique_contents));
  std::printf("  duration        %.2f h\n", s.duration_hours);
  std::printf("  total bytes     %.2f TB\n", s.total_bytes_requested_tb);
  std::printf("  unique bytes    %.0f GB\n", s.unique_bytes_gb);
  std::printf("  peak active     %.0f GB\n", s.peak_active_bytes_gb);
  std::printf("  mean/max size   %.1f / %.0f MB\n", s.mean_content_size_mb,
              s.max_content_size_mb);
  std::printf("  one-hit wonders %.1f%% of contents\n",
              100.0 * s.one_hit_wonder_fraction);
  std::printf("  zipf alpha      %.2f\n",
              trace::fit_zipf_alpha(trace::popularity_counts(trace), 2000));

  if (!out.empty()) {
    trace::write_trace_file(trace, out);
    std::printf("wrote %s ('time key size' per line)\n", out.c_str());
  }
  return 0;
}
