// MRC explorer: one-pass LRU miss-ratio curves (Mattson) plus the Che
// closed form and the offline-OPT bracket, for a trace file or a synthetic
// workload — how much cache do you actually need?
//
//   $ ./build/examples/mrc_explorer [trace-file]
#include <cstdio>
#include <vector>

#include "gen/cdn_model.hpp"
#include "opt/bounds.hpp"
#include "opt/mrc.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace lhr;

  trace::Trace trace;
  if (argc > 1) {
    trace = trace::read_trace_file(argv[1]);
    if (!trace.is_time_ordered()) trace.sort_by_time();
  } else {
    trace = gen::make_trace(gen::TraceClass::kCdnA, 100'000, 29);
  }

  const auto summary = trace::summarize(trace);
  const double unique_bytes = summary.unique_bytes_gb * 1024.0 * 1024.0 * 1024.0;
  std::printf("%llu requests, %.1f GB unique bytes\n\n",
              static_cast<unsigned long long>(summary.total_requests),
              summary.unique_bytes_gb);

  std::vector<std::uint64_t> capacities;
  for (const double f : {0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.40, 0.80}) {
    capacities.push_back(static_cast<std::uint64_t>(unique_bytes * f));
  }
  const auto lru_curve = opt::lru_miss_ratio_curve(trace.requests(), capacities);

  std::printf("%-12s %-12s %-12s %-12s %-12s\n", "Cache", "LRU(exact)", "LRU(Che)",
              "OPT>=", "OPT<=");
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    const double che = opt::che_lru_hit_ratio(trace.requests(), capacities[i]);
    const auto lo = opt::pfoo_u(trace.requests(), capacities[i]);
    const auto hi = opt::pfoo_l(trace.requests(), capacities[i]);
    std::printf("%-12.1fGB %-12.2f %-12.2f %-12.2f %-12.2f\n",
                double(capacities[i]) / 1e9, 100.0 * lru_curve[i], 100.0 * che,
                100.0 * lo.hit_ratio(), 100.0 * hi.hit_ratio());
  }
  std::printf("\nColumns: exact one-pass LRU hit %%, Che/characteristic-time\n"
              "approximation, and the PFOO bracket pinning the offline optimum.\n");
  return 0;
}
