// Server demo: the emulated ATS-like CDN node (§6.1) serving a workload
// with an LHR index vs a stock LRU index — Table 2 for your own parameters.
//
//   $ ./build/examples/server_demo
#include <cstdio>
#include <memory>

#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "server/cdn_server.hpp"

namespace {

void print_report(const lhr::server::ServerReport& report) {
  std::printf("  %-10s hit %6.2f%%  thrpt %5.2f Gbps  cpu %4.1f%%  "
              "p90 %6.1f ms  p99 %6.1f ms  avg %6.1f ms  wan %5.2f Gbps\n",
              report.policy_name.c_str(), report.content_hit_pct,
              report.throughput_gbps, report.peak_cpu_pct, report.p90_latency_ms,
              report.p99_latency_ms, report.avg_latency_ms, report.traffic_gbps);
}

}  // namespace

int main() {
  using namespace lhr;

  const auto trace = gen::make_trace(gen::TraceClass::kCdnA, 100'000, 23);
  const auto capacity = gen::headline_cache_size(gen::TraceClass::kCdnA, 0.1);

  server::ServerConfig config;  // RAM tier + emulated flash, origin at 60 ms
  config.ram_bytes = capacity / 100;

  for (const auto mode : {server::ReplayMode::kNormal, server::ReplayMode::kMax}) {
    std::printf("%s replay:\n",
                mode == server::ReplayMode::kNormal ? "normal (original timestamps)"
                                                    : "max (back-to-back)");
    for (const std::string policy : {"LHR", "LRU"}) {
      server::CdnServer server(core::make_policy(policy, capacity), config);
      print_report(server.replay(trace, mode));
    }
    std::printf("\n");
  }
  std::printf("The LHR row is the paper's prototype; the LRU row is unmodified ATS.\n");
  return 0;
}
