// SOTA comparison: run any subset of the implemented policies on a trace and
// print hit probability, byte hit ratio, WAN traffic, metadata overhead and
// wall-clock — the §7.3 evaluation in miniature, for your own workloads.
//
//   $ ./build/examples/sota_comparison                        # defaults
//   $ ./build/examples/sota_comparison trace.txt 64           # file + cache GB
//   $ ./build/examples/sota_comparison trace.txt 64 LRU LHR   # specific policies
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace lhr;

  trace::Trace trace;
  std::uint64_t capacity = 0;
  std::vector<std::string> policies;

  if (argc > 1) {
    trace = trace::read_trace_file(argv[1]);
    if (!trace.is_time_ordered()) trace.sort_by_time();
  } else {
    trace = gen::make_trace(gen::TraceClass::kCdnB, 100'000, 11);
  }
  if (argc > 2) {
    capacity = static_cast<std::uint64_t>(std::atof(argv[2]) * 1024.0 * 1024.0 * 1024.0);
  } else {
    const auto summary = trace::summarize(trace);
    capacity = static_cast<std::uint64_t>(summary.unique_bytes_gb * 0.10 * 1024.0 *
                                          1024.0 * 1024.0);
  }
  for (int i = 3; i < argc; ++i) policies.emplace_back(argv[i]);
  if (policies.empty()) {
    policies = core::sota_policy_names();
    policies.push_back("LHR");
  }

  std::printf("%zu requests, cache %.1f GB\n\n", trace.size(),
              double(capacity) / (1024.0 * 1024.0 * 1024.0));
  std::printf("%-12s %-10s %-10s %-12s %-10s %-10s\n", "Policy", "Hit(%)", "ByteHit(%)",
              "WAN(GB)", "Meta(MB)", "Wall(s)");
  for (const auto& name : policies) {
    auto policy = core::make_policy(name, capacity);
    const auto m = sim::simulate(*policy, trace);
    std::printf("%-12s %-10.2f %-10.2f %-12.1f %-10.1f %-10.2f\n", name.c_str(),
                100.0 * m.object_hit_ratio(), 100.0 * m.byte_hit_ratio(),
                m.wan_traffic_bytes() / (1024.0 * 1024.0 * 1024.0),
                double(m.peak_metadata_bytes) / 1e6, m.wall_seconds);
  }
  return 0;
}
