file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sota.dir/bench_fig8_sota.cpp.o"
  "CMakeFiles/bench_fig8_sota.dir/bench_fig8_sota.cpp.o.d"
  "bench_fig8_sota"
  "bench_fig8_sota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
