# Empty dependencies file for bench_fig12_detection.
# This may be replaced when dependencies are built.
