# Empty dependencies file for bench_fig2_bounds.
# This may be replaced when dependencies are built.
