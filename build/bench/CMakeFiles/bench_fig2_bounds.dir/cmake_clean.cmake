file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bounds.dir/bench_fig2_bounds.cpp.o"
  "CMakeFiles/bench_fig2_bounds.dir/bench_fig2_bounds.cpp.o.d"
  "bench_fig2_bounds"
  "bench_fig2_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
