file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_responsiveness.dir/bench_fig11_responsiveness.cpp.o"
  "CMakeFiles/bench_fig11_responsiveness.dir/bench_fig11_responsiveness.cpp.o.d"
  "bench_fig11_responsiveness"
  "bench_fig11_responsiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
