# Empty dependencies file for bench_ext_policies.
# This may be replaced when dependencies are built.
