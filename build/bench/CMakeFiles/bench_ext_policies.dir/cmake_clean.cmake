file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_policies.dir/bench_ext_policies.cpp.o"
  "CMakeFiles/bench_ext_policies.dir/bench_ext_policies.cpp.o.d"
  "bench_ext_policies"
  "bench_ext_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
