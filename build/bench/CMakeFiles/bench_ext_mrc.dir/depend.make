# Empty dependencies file for bench_ext_mrc.
# This may be replaced when dependencies are built.
