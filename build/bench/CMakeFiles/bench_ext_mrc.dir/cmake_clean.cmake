file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mrc.dir/bench_ext_mrc.cpp.o"
  "CMakeFiles/bench_ext_mrc.dir/bench_ext_mrc.cpp.o.d"
  "bench_ext_mrc"
  "bench_ext_mrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
