# Empty dependencies file for bench_table4_caffeine.
# This may be replaced when dependencies are built.
