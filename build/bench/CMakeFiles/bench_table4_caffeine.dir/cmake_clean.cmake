file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_caffeine.dir/bench_table4_caffeine.cpp.o"
  "CMakeFiles/bench_table4_caffeine.dir/bench_table4_caffeine.cpp.o.d"
  "bench_table4_caffeine"
  "bench_table4_caffeine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_caffeine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
