file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_loss_ablation.dir/bench_ext_loss_ablation.cpp.o"
  "CMakeFiles/bench_ext_loss_ablation.dir/bench_ext_loss_ablation.cpp.o.d"
  "bench_ext_loss_ablation"
  "bench_ext_loss_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_loss_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
