# Empty compiler generated dependencies file for bench_ext_loss_ablation.
# This may be replaced when dependencies are built.
