# Empty dependencies file for bench_fig7_prototype_timeline.
# This may be replaced when dependencies are built.
