file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hazard_models.dir/bench_ext_hazard_models.cpp.o"
  "CMakeFiles/bench_ext_hazard_models.dir/bench_ext_hazard_models.cpp.o.d"
  "bench_ext_hazard_models"
  "bench_ext_hazard_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hazard_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
