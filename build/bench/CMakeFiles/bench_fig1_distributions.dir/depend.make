# Empty dependencies file for bench_fig1_distributions.
# This may be replaced when dependencies are built.
