file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_byte_hit.dir/bench_ext_byte_hit.cpp.o"
  "CMakeFiles/bench_ext_byte_hit.dir/bench_ext_byte_hit.cpp.o.d"
  "bench_ext_byte_hit"
  "bench_ext_byte_hit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_byte_hit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
