# Empty dependencies file for bench_ext_byte_hit.
# This may be replaced when dependencies are built.
