file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bounds_bracket.dir/bench_ext_bounds_bracket.cpp.o"
  "CMakeFiles/bench_ext_bounds_bracket.dir/bench_ext_bounds_bracket.cpp.o.d"
  "bench_ext_bounds_bracket"
  "bench_ext_bounds_bracket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bounds_bracket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
