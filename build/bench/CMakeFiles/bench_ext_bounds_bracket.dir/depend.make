# Empty dependencies file for bench_ext_bounds_bracket.
# This may be replaced when dependencies are built.
