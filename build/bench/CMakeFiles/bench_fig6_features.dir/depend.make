# Empty dependencies file for bench_fig6_features.
# This may be replaced when dependencies are built.
