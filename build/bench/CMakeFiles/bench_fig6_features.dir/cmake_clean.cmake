file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_features.dir/bench_fig6_features.cpp.o"
  "CMakeFiles/bench_fig6_features.dir/bench_fig6_features.cpp.o.d"
  "bench_fig6_features"
  "bench_fig6_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
