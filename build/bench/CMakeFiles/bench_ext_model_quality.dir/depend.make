# Empty dependencies file for bench_ext_model_quality.
# This may be replaced when dependencies are built.
