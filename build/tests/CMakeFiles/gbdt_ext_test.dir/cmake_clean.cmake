file(REMOVE_RECURSE
  "CMakeFiles/gbdt_ext_test.dir/gbdt_ext_test.cpp.o"
  "CMakeFiles/gbdt_ext_test.dir/gbdt_ext_test.cpp.o.d"
  "gbdt_ext_test"
  "gbdt_ext_test.pdb"
  "gbdt_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
