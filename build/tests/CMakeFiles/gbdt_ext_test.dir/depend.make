# Empty dependencies file for gbdt_ext_test.
# This may be replaced when dependencies are built.
