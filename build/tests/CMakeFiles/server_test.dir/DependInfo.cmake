
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/server_test.cpp" "tests/CMakeFiles/server_test.dir/server_test.cpp.o" "gcc" "tests/CMakeFiles/server_test.dir/server_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lhr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/lhr_server.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/lhr_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/hazard/CMakeFiles/lhr_hazard.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/lhr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lhr_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lhr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/lhr_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lhr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lhr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
