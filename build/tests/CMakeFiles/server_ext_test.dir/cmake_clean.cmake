file(REMOVE_RECURSE
  "CMakeFiles/server_ext_test.dir/server_ext_test.cpp.o"
  "CMakeFiles/server_ext_test.dir/server_ext_test.cpp.o.d"
  "server_ext_test"
  "server_ext_test.pdb"
  "server_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
