# Empty compiler generated dependencies file for server_ext_test.
# This may be replaced when dependencies are built.
