# Empty compiler generated dependencies file for policies_ext_test.
# This may be replaced when dependencies are built.
