file(REMOVE_RECURSE
  "CMakeFiles/policies_ext_test.dir/policies_ext_test.cpp.o"
  "CMakeFiles/policies_ext_test.dir/policies_ext_test.cpp.o.d"
  "policies_ext_test"
  "policies_ext_test.pdb"
  "policies_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policies_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
