file(REMOVE_RECURSE
  "CMakeFiles/opt_ext_test.dir/opt_ext_test.cpp.o"
  "CMakeFiles/opt_ext_test.dir/opt_ext_test.cpp.o.d"
  "opt_ext_test"
  "opt_ext_test.pdb"
  "opt_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
