# Empty compiler generated dependencies file for opt_ext_test.
# This may be replaced when dependencies are built.
