file(REMOVE_RECURSE
  "CMakeFiles/hazard_ext_test.dir/hazard_ext_test.cpp.o"
  "CMakeFiles/hazard_ext_test.dir/hazard_ext_test.cpp.o.d"
  "hazard_ext_test"
  "hazard_ext_test.pdb"
  "hazard_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazard_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
