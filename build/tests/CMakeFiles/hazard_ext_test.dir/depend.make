# Empty dependencies file for hazard_ext_test.
# This may be replaced when dependencies are built.
