# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/hazard_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/policies_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/policies_ext_test[1]_include.cmake")
include("/root/repo/build/tests/opt_ext_test[1]_include.cmake")
include("/root/repo/build/tests/gbdt_ext_test[1]_include.cmake")
include("/root/repo/build/tests/server_ext_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/hazard_ext_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweeps_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
