file(REMOVE_RECURSE
  "liblhr_gen.a"
)
