file(REMOVE_RECURSE
  "CMakeFiles/lhr_gen.dir/cdn_model.cpp.o"
  "CMakeFiles/lhr_gen.dir/cdn_model.cpp.o.d"
  "CMakeFiles/lhr_gen.dir/markov_modulated.cpp.o"
  "CMakeFiles/lhr_gen.dir/markov_modulated.cpp.o.d"
  "CMakeFiles/lhr_gen.dir/size_model.cpp.o"
  "CMakeFiles/lhr_gen.dir/size_model.cpp.o.d"
  "CMakeFiles/lhr_gen.dir/zipf.cpp.o"
  "CMakeFiles/lhr_gen.dir/zipf.cpp.o.d"
  "liblhr_gen.a"
  "liblhr_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
