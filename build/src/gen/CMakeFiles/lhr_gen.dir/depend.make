# Empty dependencies file for lhr_gen.
# This may be replaced when dependencies are built.
