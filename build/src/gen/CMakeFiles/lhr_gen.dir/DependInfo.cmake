
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/cdn_model.cpp" "src/gen/CMakeFiles/lhr_gen.dir/cdn_model.cpp.o" "gcc" "src/gen/CMakeFiles/lhr_gen.dir/cdn_model.cpp.o.d"
  "/root/repo/src/gen/markov_modulated.cpp" "src/gen/CMakeFiles/lhr_gen.dir/markov_modulated.cpp.o" "gcc" "src/gen/CMakeFiles/lhr_gen.dir/markov_modulated.cpp.o.d"
  "/root/repo/src/gen/size_model.cpp" "src/gen/CMakeFiles/lhr_gen.dir/size_model.cpp.o" "gcc" "src/gen/CMakeFiles/lhr_gen.dir/size_model.cpp.o.d"
  "/root/repo/src/gen/zipf.cpp" "src/gen/CMakeFiles/lhr_gen.dir/zipf.cpp.o" "gcc" "src/gen/CMakeFiles/lhr_gen.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lhr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lhr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
