file(REMOVE_RECURSE
  "CMakeFiles/lhr_core.dir/cli.cpp.o"
  "CMakeFiles/lhr_core.dir/cli.cpp.o.d"
  "CMakeFiles/lhr_core.dir/lhr_cache.cpp.o"
  "CMakeFiles/lhr_core.dir/lhr_cache.cpp.o.d"
  "CMakeFiles/lhr_core.dir/policy_factory.cpp.o"
  "CMakeFiles/lhr_core.dir/policy_factory.cpp.o.d"
  "liblhr_core.a"
  "liblhr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
