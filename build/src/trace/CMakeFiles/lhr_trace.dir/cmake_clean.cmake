file(REMOVE_RECURSE
  "CMakeFiles/lhr_trace.dir/trace.cpp.o"
  "CMakeFiles/lhr_trace.dir/trace.cpp.o.d"
  "CMakeFiles/lhr_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/lhr_trace.dir/trace_stats.cpp.o.d"
  "CMakeFiles/lhr_trace.dir/trace_tools.cpp.o"
  "CMakeFiles/lhr_trace.dir/trace_tools.cpp.o.d"
  "liblhr_trace.a"
  "liblhr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
