file(REMOVE_RECURSE
  "CMakeFiles/lhr_util.dir/bloom_filter.cpp.o"
  "CMakeFiles/lhr_util.dir/bloom_filter.cpp.o.d"
  "CMakeFiles/lhr_util.dir/count_min_sketch.cpp.o"
  "CMakeFiles/lhr_util.dir/count_min_sketch.cpp.o.d"
  "CMakeFiles/lhr_util.dir/density_index.cpp.o"
  "CMakeFiles/lhr_util.dir/density_index.cpp.o.d"
  "CMakeFiles/lhr_util.dir/least_squares.cpp.o"
  "CMakeFiles/lhr_util.dir/least_squares.cpp.o.d"
  "CMakeFiles/lhr_util.dir/stats.cpp.o"
  "CMakeFiles/lhr_util.dir/stats.cpp.o.d"
  "liblhr_util.a"
  "liblhr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
