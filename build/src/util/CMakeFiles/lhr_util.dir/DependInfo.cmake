
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bloom_filter.cpp" "src/util/CMakeFiles/lhr_util.dir/bloom_filter.cpp.o" "gcc" "src/util/CMakeFiles/lhr_util.dir/bloom_filter.cpp.o.d"
  "/root/repo/src/util/count_min_sketch.cpp" "src/util/CMakeFiles/lhr_util.dir/count_min_sketch.cpp.o" "gcc" "src/util/CMakeFiles/lhr_util.dir/count_min_sketch.cpp.o.d"
  "/root/repo/src/util/density_index.cpp" "src/util/CMakeFiles/lhr_util.dir/density_index.cpp.o" "gcc" "src/util/CMakeFiles/lhr_util.dir/density_index.cpp.o.d"
  "/root/repo/src/util/least_squares.cpp" "src/util/CMakeFiles/lhr_util.dir/least_squares.cpp.o" "gcc" "src/util/CMakeFiles/lhr_util.dir/least_squares.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/lhr_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/lhr_util.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
