
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/bounds.cpp" "src/opt/CMakeFiles/lhr_opt.dir/bounds.cpp.o" "gcc" "src/opt/CMakeFiles/lhr_opt.dir/bounds.cpp.o.d"
  "/root/repo/src/opt/exact_opt.cpp" "src/opt/CMakeFiles/lhr_opt.dir/exact_opt.cpp.o" "gcc" "src/opt/CMakeFiles/lhr_opt.dir/exact_opt.cpp.o.d"
  "/root/repo/src/opt/mrc.cpp" "src/opt/CMakeFiles/lhr_opt.dir/mrc.cpp.o" "gcc" "src/opt/CMakeFiles/lhr_opt.dir/mrc.cpp.o.d"
  "/root/repo/src/opt/next_use.cpp" "src/opt/CMakeFiles/lhr_opt.dir/next_use.cpp.o" "gcc" "src/opt/CMakeFiles/lhr_opt.dir/next_use.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lhr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lhr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
