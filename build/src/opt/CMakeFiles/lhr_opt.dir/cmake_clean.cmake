file(REMOVE_RECURSE
  "CMakeFiles/lhr_opt.dir/bounds.cpp.o"
  "CMakeFiles/lhr_opt.dir/bounds.cpp.o.d"
  "CMakeFiles/lhr_opt.dir/exact_opt.cpp.o"
  "CMakeFiles/lhr_opt.dir/exact_opt.cpp.o.d"
  "CMakeFiles/lhr_opt.dir/mrc.cpp.o"
  "CMakeFiles/lhr_opt.dir/mrc.cpp.o.d"
  "CMakeFiles/lhr_opt.dir/next_use.cpp.o"
  "CMakeFiles/lhr_opt.dir/next_use.cpp.o.d"
  "liblhr_opt.a"
  "liblhr_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
