file(REMOVE_RECURSE
  "liblhr_opt.a"
)
