# Empty dependencies file for lhr_opt.
# This may be replaced when dependencies are built.
