# Empty compiler generated dependencies file for lhr_ml.
# This may be replaced when dependencies are built.
