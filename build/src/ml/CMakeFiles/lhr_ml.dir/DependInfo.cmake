
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/eval.cpp" "src/ml/CMakeFiles/lhr_ml.dir/eval.cpp.o" "gcc" "src/ml/CMakeFiles/lhr_ml.dir/eval.cpp.o.d"
  "/root/repo/src/ml/features.cpp" "src/ml/CMakeFiles/lhr_ml.dir/features.cpp.o" "gcc" "src/ml/CMakeFiles/lhr_ml.dir/features.cpp.o.d"
  "/root/repo/src/ml/gbdt.cpp" "src/ml/CMakeFiles/lhr_ml.dir/gbdt.cpp.o" "gcc" "src/ml/CMakeFiles/lhr_ml.dir/gbdt.cpp.o.d"
  "/root/repo/src/ml/zipf_detector.cpp" "src/ml/CMakeFiles/lhr_ml.dir/zipf_detector.cpp.o" "gcc" "src/ml/CMakeFiles/lhr_ml.dir/zipf_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lhr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lhr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
