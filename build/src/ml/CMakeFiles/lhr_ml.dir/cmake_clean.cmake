file(REMOVE_RECURSE
  "CMakeFiles/lhr_ml.dir/eval.cpp.o"
  "CMakeFiles/lhr_ml.dir/eval.cpp.o.d"
  "CMakeFiles/lhr_ml.dir/features.cpp.o"
  "CMakeFiles/lhr_ml.dir/features.cpp.o.d"
  "CMakeFiles/lhr_ml.dir/gbdt.cpp.o"
  "CMakeFiles/lhr_ml.dir/gbdt.cpp.o.d"
  "CMakeFiles/lhr_ml.dir/zipf_detector.cpp.o"
  "CMakeFiles/lhr_ml.dir/zipf_detector.cpp.o.d"
  "liblhr_ml.a"
  "liblhr_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
