file(REMOVE_RECURSE
  "liblhr_ml.a"
)
