file(REMOVE_RECURSE
  "CMakeFiles/lhr_server.dir/admission_queue.cpp.o"
  "CMakeFiles/lhr_server.dir/admission_queue.cpp.o.d"
  "CMakeFiles/lhr_server.dir/cdn_server.cpp.o"
  "CMakeFiles/lhr_server.dir/cdn_server.cpp.o.d"
  "CMakeFiles/lhr_server.dir/sharded_cache.cpp.o"
  "CMakeFiles/lhr_server.dir/sharded_cache.cpp.o.d"
  "liblhr_server.a"
  "liblhr_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
