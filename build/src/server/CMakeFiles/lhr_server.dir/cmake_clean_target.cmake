file(REMOVE_RECURSE
  "liblhr_server.a"
)
