# Empty dependencies file for lhr_server.
# This may be replaced when dependencies are built.
