
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/admission_queue.cpp" "src/server/CMakeFiles/lhr_server.dir/admission_queue.cpp.o" "gcc" "src/server/CMakeFiles/lhr_server.dir/admission_queue.cpp.o.d"
  "/root/repo/src/server/cdn_server.cpp" "src/server/CMakeFiles/lhr_server.dir/cdn_server.cpp.o" "gcc" "src/server/CMakeFiles/lhr_server.dir/cdn_server.cpp.o.d"
  "/root/repo/src/server/sharded_cache.cpp" "src/server/CMakeFiles/lhr_server.dir/sharded_cache.cpp.o" "gcc" "src/server/CMakeFiles/lhr_server.dir/sharded_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/policies/CMakeFiles/lhr_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lhr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lhr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lhr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lhr_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
