# Empty dependencies file for lhr_policies.
# This may be replaced when dependencies are built.
