file(REMOVE_RECURSE
  "liblhr_policies.a"
)
