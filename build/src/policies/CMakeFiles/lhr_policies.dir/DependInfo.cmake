
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/adaptsize.cpp" "src/policies/CMakeFiles/lhr_policies.dir/adaptsize.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/adaptsize.cpp.o.d"
  "/root/repo/src/policies/arc.cpp" "src/policies/CMakeFiles/lhr_policies.dir/arc.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/arc.cpp.o.d"
  "/root/repo/src/policies/b_lru.cpp" "src/policies/CMakeFiles/lhr_policies.dir/b_lru.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/b_lru.cpp.o.d"
  "/root/repo/src/policies/fifo.cpp" "src/policies/CMakeFiles/lhr_policies.dir/fifo.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/fifo.cpp.o.d"
  "/root/repo/src/policies/gds.cpp" "src/policies/CMakeFiles/lhr_policies.dir/gds.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/gds.cpp.o.d"
  "/root/repo/src/policies/gdsf.cpp" "src/policies/CMakeFiles/lhr_policies.dir/gdsf.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/gdsf.cpp.o.d"
  "/root/repo/src/policies/hawkeye.cpp" "src/policies/CMakeFiles/lhr_policies.dir/hawkeye.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/hawkeye.cpp.o.d"
  "/root/repo/src/policies/hyperbolic.cpp" "src/policies/CMakeFiles/lhr_policies.dir/hyperbolic.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/hyperbolic.cpp.o.d"
  "/root/repo/src/policies/lfo.cpp" "src/policies/CMakeFiles/lhr_policies.dir/lfo.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/lfo.cpp.o.d"
  "/root/repo/src/policies/lfu_da.cpp" "src/policies/CMakeFiles/lhr_policies.dir/lfu_da.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/lfu_da.cpp.o.d"
  "/root/repo/src/policies/lhd.cpp" "src/policies/CMakeFiles/lhr_policies.dir/lhd.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/lhd.cpp.o.d"
  "/root/repo/src/policies/lirs.cpp" "src/policies/CMakeFiles/lhr_policies.dir/lirs.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/lirs.cpp.o.d"
  "/root/repo/src/policies/lrb.cpp" "src/policies/CMakeFiles/lhr_policies.dir/lrb.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/lrb.cpp.o.d"
  "/root/repo/src/policies/lru.cpp" "src/policies/CMakeFiles/lhr_policies.dir/lru.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/lru.cpp.o.d"
  "/root/repo/src/policies/lru_k.cpp" "src/policies/CMakeFiles/lhr_policies.dir/lru_k.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/lru_k.cpp.o.d"
  "/root/repo/src/policies/random_policy.cpp" "src/policies/CMakeFiles/lhr_policies.dir/random_policy.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/random_policy.cpp.o.d"
  "/root/repo/src/policies/rl_cache.cpp" "src/policies/CMakeFiles/lhr_policies.dir/rl_cache.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/rl_cache.cpp.o.d"
  "/root/repo/src/policies/s4lru.cpp" "src/policies/CMakeFiles/lhr_policies.dir/s4lru.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/s4lru.cpp.o.d"
  "/root/repo/src/policies/second_hit.cpp" "src/policies/CMakeFiles/lhr_policies.dir/second_hit.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/second_hit.cpp.o.d"
  "/root/repo/src/policies/tinylfu.cpp" "src/policies/CMakeFiles/lhr_policies.dir/tinylfu.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/tinylfu.cpp.o.d"
  "/root/repo/src/policies/two_q.cpp" "src/policies/CMakeFiles/lhr_policies.dir/two_q.cpp.o" "gcc" "src/policies/CMakeFiles/lhr_policies.dir/two_q.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lhr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lhr_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lhr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lhr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
