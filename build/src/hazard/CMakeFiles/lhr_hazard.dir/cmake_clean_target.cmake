file(REMOVE_RECURSE
  "liblhr_hazard.a"
)
