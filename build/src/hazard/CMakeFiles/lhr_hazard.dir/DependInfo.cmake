
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hazard/hro.cpp" "src/hazard/CMakeFiles/lhr_hazard.dir/hro.cpp.o" "gcc" "src/hazard/CMakeFiles/lhr_hazard.dir/hro.cpp.o.d"
  "/root/repo/src/hazard/irt_models.cpp" "src/hazard/CMakeFiles/lhr_hazard.dir/irt_models.cpp.o" "gcc" "src/hazard/CMakeFiles/lhr_hazard.dir/irt_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lhr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lhr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
