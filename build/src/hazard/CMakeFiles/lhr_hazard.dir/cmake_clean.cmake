file(REMOVE_RECURSE
  "CMakeFiles/lhr_hazard.dir/hro.cpp.o"
  "CMakeFiles/lhr_hazard.dir/hro.cpp.o.d"
  "CMakeFiles/lhr_hazard.dir/irt_models.cpp.o"
  "CMakeFiles/lhr_hazard.dir/irt_models.cpp.o.d"
  "liblhr_hazard.a"
  "liblhr_hazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
