# Empty compiler generated dependencies file for lhr_hazard.
# This may be replaced when dependencies are built.
