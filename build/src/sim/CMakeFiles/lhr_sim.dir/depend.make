# Empty dependencies file for lhr_sim.
# This may be replaced when dependencies are built.
