file(REMOVE_RECURSE
  "liblhr_sim.a"
)
