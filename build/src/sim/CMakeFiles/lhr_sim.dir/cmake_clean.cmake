file(REMOVE_RECURSE
  "CMakeFiles/lhr_sim.dir/engine.cpp.o"
  "CMakeFiles/lhr_sim.dir/engine.cpp.o.d"
  "CMakeFiles/lhr_sim.dir/latency_model.cpp.o"
  "CMakeFiles/lhr_sim.dir/latency_model.cpp.o.d"
  "liblhr_sim.a"
  "liblhr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
