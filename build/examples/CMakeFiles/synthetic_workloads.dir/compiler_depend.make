# Empty compiler generated dependencies file for synthetic_workloads.
# This may be replaced when dependencies are built.
