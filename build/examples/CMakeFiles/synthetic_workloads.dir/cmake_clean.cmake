file(REMOVE_RECURSE
  "CMakeFiles/synthetic_workloads.dir/synthetic_workloads.cpp.o"
  "CMakeFiles/synthetic_workloads.dir/synthetic_workloads.cpp.o.d"
  "synthetic_workloads"
  "synthetic_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
