# Empty dependencies file for sota_comparison.
# This may be replaced when dependencies are built.
