file(REMOVE_RECURSE
  "CMakeFiles/sota_comparison.dir/sota_comparison.cpp.o"
  "CMakeFiles/sota_comparison.dir/sota_comparison.cpp.o.d"
  "sota_comparison"
  "sota_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sota_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
