# Empty compiler generated dependencies file for mrc_explorer.
# This may be replaced when dependencies are built.
