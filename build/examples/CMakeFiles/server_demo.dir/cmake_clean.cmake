file(REMOVE_RECURSE
  "CMakeFiles/server_demo.dir/server_demo.cpp.o"
  "CMakeFiles/server_demo.dir/server_demo.cpp.o.d"
  "server_demo"
  "server_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
