# Empty compiler generated dependencies file for server_demo.
# This may be replaced when dependencies are built.
