# Empty dependencies file for lhr_sim_cli.
# This may be replaced when dependencies are built.
