file(REMOVE_RECURSE
  "CMakeFiles/lhr_sim_cli.dir/lhr_sim_main.cpp.o"
  "CMakeFiles/lhr_sim_cli.dir/lhr_sim_main.cpp.o.d"
  "lhr_sim"
  "lhr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
