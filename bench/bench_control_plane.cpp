// Shadow-rollout control plane: promote/rollback timeline on a drift trace,
// plus the determinism audit the subsystem promises.
//
// The scenario is the one the control plane exists for: a cdn-a trace whose
// tail injects prediction drift (gen/drift.hpp) — a one-hit-wonder flood
// that a model trained on the stable prefix badly mispredicts. LHR runs
// with detection disabled (N-LHR-style: every window retrains) and every
// retrained candidate is routed through the shadow rollout:
//
//   * stable prefix: candidates agree with the incumbent -> auto-promotions;
//   * drift window:  candidates trained on flood data disagree with the
//                    stable incumbent -> rollbacks, while the RobustGuard
//                    sees live |p - label| drift and degrades the cache to
//                    plain LRU until predictions recover.
//
// Before the timeline, the harness replays the identical configuration at
// 1/2/4/8 workers and compares ControlPlaneReport::canonical() byte-for-
// byte — per-shard cells with private RNG streams make every promotion
// decision a pure function of the shard substream, so the counters must be
// identical at any worker count. CI greps both verdict lines.
//
// Pinned defaults (deliberately independent of LHR_BENCH_REQUESTS so the
// promote/rollback timeline is reproducible); knobs for exploration:
//   LHR_CP_REQUESTS  trace length            (default 300000)
//   LHR_CP_SHARDS    ShardedCache shards     (default 8)
//   LHR_CP_DRIFT     drift schedule spec     (default onehit flood, see below)
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"
#include "gen/drift.hpp"
#include "server/control_plane.hpp"

namespace {

using namespace lhr;

constexpr std::uint64_t kSeed = 7;
constexpr std::size_t kTimelineSegments = 8;

std::size_t cp_requests() {
  if (const char* env = std::getenv("LHR_CP_REQUESTS")) {
    const std::uint64_t value = util::require_u64("LHR_CP_REQUESTS", env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 300'000;
}

std::size_t cp_shards() {
  if (const char* env = std::getenv("LHR_CP_SHARDS")) {
    const std::uint64_t value = util::require_u64("LHR_CP_SHARDS", env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 8;
}

std::string drift_spec() {
  const char* env = std::getenv("LHR_CP_DRIFT");
  // A flash crowd of never-reused keys over the middle of the trace: the
  // stable-prefix model admits them (cold features looked promising in the
  // stable regime), HRO labels them misses — prediction drift without
  // touching the popularity law.
  return env != nullptr && *env != '\0' ? env : "remap:0.40-0.68@1.0;onehit:0.72-0.88@0.9";
}

/// The pinned control-plane cell configuration (shared by every shard).
/// The divergence/guard thresholds are calibrated to this trace family: the
/// GBDT is near-perfect on the synthetic classes (stable-phase score
/// divergence <= 0.03, |p - label| window means ~0.01), so drift shows up as
/// a 2-5x excursion over a small baseline, not an absolute blowout.
server::ControlPlaneConfig cell_config() {
  server::ControlPlaneConfig cp;
  cp.enabled = true;
  cp.sample_fraction = 0.5;
  cp.window = 192;
  cp.min_agreement = 0.90;
  cp.max_divergence = 0.045;
  cp.min_hit_delta = -0.02;
  cp.robust_guard = true;
  cp.guard_window = 512;
  cp.guard_divergence = 0.04;
  cp.guard_rearm = 0.02;
  cp.autotune = true;
  cp.p99_budget_ms = 50.0;
  cp.autotune_step = 0.02;
  cp.max_threshold_bias = 0.10;
  cp.latency_window = 4096;
  cp.min_window = 48;
  return cp;
}

core::LhrConfig lhr_config() {
  core::LhrConfig config;
  // Retrain every window (N-LHR style): the drift episodes fold popularity
  // structure, not the Zipf slope, so α-detection would never fire — and a
  // control plane with no candidates has nothing to decide.
  config.enable_detection = false;
  config.control_plane = cell_config();
  return config;
}

std::unique_ptr<server::CdnServer> make_server(std::uint64_t capacity,
                                               std::size_t shards) {
  auto backend = std::make_unique<server::ShardedCache>(
      shards, capacity,
      [](std::uint64_t cap) {
        return std::make_unique<core::LhrCache>(cap, lhr_config());
      });
  server::ServerConfig cfg;
  cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1ULL << 20);
  cfg.seed = kSeed;
  // Latency must be a pure function of the trace so the autotuner's epoch
  // decisions (fed by served latency) are deterministic per shard.
  cfg.measured_lookup_cpu = false;
  return std::make_unique<server::CdnServer>(std::move(backend), cfg);
}

trace::Trace segment(const trace::Trace& full, std::size_t seg, std::size_t n_segs) {
  const std::size_t begin = full.size() * seg / n_segs;
  const std::size_t end = full.size() * (seg + 1) / n_segs;
  std::vector<trace::Request> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) out.push_back(full[i]);
  return trace::Trace(std::move(out));
}

}  // namespace

int main() {
  bench::print_header(
      "Control plane: shadow rollout promote/rollback timeline on a drift trace");

  const std::size_t n = cp_requests();
  const std::size_t shards = cp_shards();
  const std::uint64_t capacity = gen::headline_cache_size(
      gen::TraceClass::kCdnA, static_cast<double>(n) / 1e6);
  std::printf("trace: cdn-a x %zu requests, drift '%s', %zu shards, %.1f MB cache\n",
              n, drift_spec().c_str(), shards,
              static_cast<double>(capacity) / 1e6);

  const gen::DriftSchedule schedule = gen::DriftSchedule::parse(drift_spec());
  const trace::Trace drifted =
      gen::apply_drift(gen::make_trace(gen::TraceClass::kCdnA, n, kSeed),
                       schedule, kSeed);

  // ---- determinism audit: identical counters at every worker count ------
  std::string canon1;
  server::ServerReport base_report;
  bool identical = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto server = make_server(capacity, shards);
    const server::ServerReport report =
        server->replay_concurrent(drifted, server::ReplayMode::kNormal, threads);
    if (threads == 1) {
      canon1 = report.control_plane.canonical();
      base_report = report;
    } else {
      identical = identical && report.control_plane.canonical() == canon1;
    }
  }
  std::printf(
      "control-plane determinism: counters identical across 1/2/4/8 threads: %s\n",
      identical ? "yes" : "NO");
  std::printf("canonical: %s\n", canon1.c_str());

  // ---- promote/rollback timeline (single worker, cumulative counters) ---
  auto server = make_server(capacity, shards);
  bench::print_row({"Segment", "Promote", "Rollback", "Staged", "GuardOn",
                    "Guarded", "Epochs", "Raises", "Hit%"},
                   10);
  std::vector<runner::Result> results;
  server::ServerReport last;
  for (std::size_t seg = 0; seg < kTimelineSegments; ++seg) {
    const trace::Trace part = segment(drifted, seg, kTimelineSegments);
    last = server->replay_concurrent(part, server::ReplayMode::kNormal, 1);
    const server::ControlPlaneCounters& c = last.control_plane.counters;
    bench::print_row(
        {std::to_string(seg + 1) + "/" + std::to_string(kTimelineSegments),
         std::to_string(c.promotions), std::to_string(c.rollbacks),
         std::to_string(c.candidates_staged), std::to_string(c.guard_engagements),
         std::to_string(c.guarded_requests), std::to_string(c.autotune_epochs),
         std::to_string(c.threshold_raises), bench::fmt(last.content_hit_pct, 2)},
        10);

    runner::Result r;
    r.label = "control_plane/timeline/seg=" + std::to_string(seg + 1);
    r.policy = "LHR+CP";
    r.trace = "cdn-a+drift";
    r.set("segment", static_cast<double>(seg + 1));
    r.set("promotions", static_cast<double>(c.promotions));
    r.set("rollbacks", static_cast<double>(c.rollbacks));
    r.set("candidates_staged", static_cast<double>(c.candidates_staged));
    r.set("guard_engagements", static_cast<double>(c.guard_engagements));
    r.set("guarded_requests", static_cast<double>(c.guarded_requests));
    r.set("autotune_epochs", static_cast<double>(c.autotune_epochs));
    r.set("threshold_raises", static_cast<double>(c.threshold_raises));
    r.set("hit_pct", last.content_hit_pct);
    results.push_back(std::move(r));
  }

  const server::ControlPlaneCounters& final_counters = last.control_plane.counters;
  runner::Result summary;
  summary.label = "control_plane/summary";
  summary.policy = "LHR+CP";
  summary.trace = "cdn-a+drift";
  summary.set("promotions", static_cast<double>(final_counters.promotions));
  summary.set("rollbacks", static_cast<double>(final_counters.rollbacks));
  summary.set("guard_engagements",
              static_cast<double>(final_counters.guard_engagements));
  summary.set("guard_disengagements",
              static_cast<double>(final_counters.guard_disengagements));
  summary.set("shadow_samples", static_cast<double>(final_counters.shadow_samples));
  summary.set("deterministic", identical ? 1.0 : 0.0);
  results.push_back(std::move(summary));
  runner::append_jsonl_if_configured(results);

  // The acceptance gate: at least one auto-promotion AND one rollback on
  // the drift trace, with counters identical at every worker count.
  const bool ok = identical && final_counters.promotions >= 1 &&
                  final_counters.rollbacks >= 1;
  std::printf(
      "control-plane rollout: promotions=%llu rollbacks=%llu guard_engagements=%llu "
      "guarded=%llu verdict: %s\n",
      static_cast<unsigned long long>(final_counters.promotions),
      static_cast<unsigned long long>(final_counters.rollbacks),
      static_cast<unsigned long long>(final_counters.guard_engagements),
      static_cast<unsigned long long>(final_counters.guarded_requests),
      ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
