// Table 3: estimated average latency (ms) and throughput (Gbps) for LHR,
// Hawkeye, LRB and LRU under the idealized §7.3 model (8 Gbps link,
// distance + size terms, algorithm compute time included).
//
// The per-request algorithm time now comes from the engine's SimObserver
// hook (the engine times each access() when an observer is attached), so
// this bench is a plain simulation sweep feeding a LatencyModel per job.
#include "bench/bench_common.hpp"
#include "sim/latency_model.hpp"

namespace {

/// Feeds every replayed request into the §7.3 latency model.
class LatencyObserver : public lhr::sim::SimObserver {
 public:
  void on_request(std::size_t, const lhr::trace::Request& r, bool hit,
                  double access_seconds) override {
    model.record(r.size, hit, access_seconds);
  }

  lhr::sim::LatencyModel model;
};

}  // namespace

int main() {
  using namespace lhr;
  bench::print_header("Table 3: estimated latency (ms) and throughput (Gbps)");

  const std::vector<std::string> names = {"LHR", "LHR-Async", "Hawkeye", "LRB", "LRU"};
  std::vector<runner::Job> jobs;
  // One observer per job, alive for the whole run (SimOptions::observer is
  // not owned by the engine).
  std::vector<std::unique_ptr<LatencyObserver>> observers;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto& name : names) {
      observers.push_back(std::make_unique<LatencyObserver>());
      auto job = bench::sim_job(name, c, capacity);
      job.options.observer = observers.back().get();
      job.options.deduct_metadata = false;  // the original loop did not adjust capacity
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  std::vector<std::string> header = {"Trace", "Metric"};
  header.insert(header.end(), names.begin(), names.end());
  bench::print_row(header);
  for (const auto c : bench::all_trace_classes()) {
    std::vector<std::string> lat_cells = {gen::to_string(c), "Latency"};
    std::vector<std::string> thr_cells = {gen::to_string(c), "Throughput"};
    // Worst single access() — the request-path stall ceiling. Synchronous
    // LHR pays a whole retrain here at window boundaries; LHR-Async should
    // collapse to O(model swap).
    std::vector<std::string> stall_cells = {gen::to_string(c), "MaxStall(ms)"};
    for (std::size_t p = 0; p < names.size(); ++p) {
      const auto& model = observers[idx]->model;
      lat_cells.push_back(bench::fmt(model.mean_latency_ms(), 1));
      thr_cells.push_back(bench::fmt(model.throughput_gbps(), 2));
      stall_cells.push_back(bench::fmt(results[idx].metrics.max_access_seconds * 1e3, 2));
      ++idx;
    }
    bench::print_row(lat_cells);
    bench::print_row(thr_cells);
    bench::print_row(stall_cells);
  }
  return 0;
}
