// Table 3: estimated average latency (ms) and throughput (Gbps) for LHR,
// Hawkeye, LRB and LRU under the idealized §7.3 model (8 Gbps link,
// distance + size terms, algorithm compute time included).
#include <chrono>

#include "bench/bench_common.hpp"
#include "sim/latency_model.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Table 3: estimated latency (ms) and throughput (Gbps)");

  bench::print_row({"Trace", "Metric", "LHR", "Hawkeye", "LRB", "LRU"});
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    const auto& trace = bench::trace_for(c);

    std::vector<std::string> lat_cells = {gen::to_string(c), "Latency"};
    std::vector<std::string> thr_cells = {gen::to_string(c), "Throughput"};
    for (const std::string name : {"LHR", "Hawkeye", "LRB", "LRU"}) {
      auto policy = core::make_policy(name, capacity);
      sim::LatencyModel model;
      for (const auto& r : trace) {
        const auto t0 = std::chrono::steady_clock::now();
        const bool hit = policy->access(r);
        const double algo_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        model.record(r.size, hit, algo_s);
      }
      lat_cells.push_back(bench::fmt(model.mean_latency_ms(), 1));
      thr_cells.push_back(bench::fmt(model.throughput_gbps(), 2));
    }
    bench::print_row(lat_cells);
    bench::print_row(thr_cells);
  }
  return 0;
}
