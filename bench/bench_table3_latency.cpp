// Table 3: estimated average latency (ms) and throughput (Gbps) for LHR,
// Hawkeye, LRB and LRU under the idealized §7.3 model (8 Gbps link,
// distance + size terms, algorithm compute time included).
//
// The per-request algorithm time now comes from the engine's SimObserver
// hook (the engine times each access() when an observer is attached), so
// this bench is a plain simulation sweep feeding a LatencyModel per job.
#include "bench/bench_common.hpp"
#include "server/cdn_server.hpp"
#include "sim/latency_model.hpp"

namespace {

/// Feeds every replayed request into the §7.3 latency model.
class LatencyObserver : public lhr::sim::SimObserver {
 public:
  void on_request(std::size_t, const lhr::trace::Request& r, bool hit,
                  double access_seconds) override {
    model.record(r.size, hit, access_seconds);
  }

  lhr::sim::LatencyModel model;
};

// Optional LHR_SERVE_THREADS sweep: measured (not modeled) percentile
// latency of the concurrent CdnServer serving path at 1 and N worker
// threads, over a ShardedCache backend. Jobs run serially (each owns its
// thread scaling); aggregates are thread-count-invariant by construction,
// so the extra rows compare wall clock, not hit ratios.
void run_serve_sweep(std::size_t serve_threads) {
  using namespace lhr;
  const std::vector<std::string> policies = {"LRU", "LHR"};
  std::vector<std::size_t> thread_counts = {1};
  if (serve_threads > 1) thread_counts.push_back(serve_threads);

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    for (const auto& policy : policies) {
      for (const std::size_t threads : thread_counts) {
        runner::Job job;
        job.label = "serve/" + policy + "/" + gen::to_string(c) + "/threads=" +
                    std::to_string(threads);
        job.body = [policy, c, threads](runner::Result& r) {
          const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
          server::ServerConfig cfg;
          cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1 << 20);
          bench::apply_resilience_env(cfg);
          server::CdnServer server(
              bench::make_sharded_policy(policy, bench::serve_shards(), capacity), cfg);
          const auto report = server.replay_concurrent(
              bench::trace_for(c), server::ReplayMode::kNormal, threads);
          r.set("serve_threads", static_cast<double>(report.replay_threads));
          r.set("p90_latency_ms", report.p90_latency_ms);
          r.set("p99_latency_ms", report.p99_latency_ms);
          r.set("avg_latency_ms", report.avg_latency_ms);
          r.set("content_hit_pct", report.content_hit_pct);
          r.set("replay_wall_seconds", report.replay_wall_seconds);
          r.set("requests_per_second",
                report.replay_wall_seconds > 0.0
                    ? static_cast<double>(report.requests) / report.replay_wall_seconds
                    : 0.0);
          r.set("lock_contentions", static_cast<double>(report.lock_contentions));
          bench::set_resilience_stats(report, r);
        };
        jobs.push_back(std::move(job));
      }
    }
  }

  runner::RunOptions options;
  options.threads = 1;  // each job scales its own workers; don't stack pools
  const auto results = runner::run_all(jobs, options);
  runner::append_jsonl_if_configured(results);

  std::printf("\n-- Serving path (CdnServer::replay_concurrent, %zu-shard backend) --\n",
              bench::serve_shards());
  const auto row = [](const std::string& label, const std::vector<std::string>& cells) {
    std::printf("%-30s", label.c_str());
    for (const auto& cell : cells) std::printf("%-12s", cell.c_str());
    std::printf("\n");
  };
  // With LHR_ORIGIN_PROFILE / LHR_FAULT_SCHEDULE set, append the resilience
  // columns; without them the classic table is printed unchanged.
  const bool resilience =
      !bench::origin_profile_spec().empty() || !bench::fault_schedule_spec().empty();
  std::vector<std::string> header = {"Hit(%)", "P90(ms)", "P99(ms)", "Req/s", "Wall(s)"};
  if (resilience) {
    header.insert(header.end(),
                  {"Retries", "Stale", "5xx", "FetchP99(ms)"});
  }
  row("Job", header);
  for (const auto& r : results) {
    std::vector<std::string> cells = {bench::fmt(r.stat("content_hit_pct"), 2),
                                      bench::fmt(r.stat("p90_latency_ms"), 1),
                                      bench::fmt(r.stat("p99_latency_ms"), 1),
                                      bench::fmt(r.stat("requests_per_second"), 0),
                                      bench::fmt(r.stat("replay_wall_seconds"), 3)};
    if (resilience) {
      cells.push_back(bench::fmt(r.stat("origin_retries"), 0));
      cells.push_back(bench::fmt(r.stat("stale_serves"), 0));
      cells.push_back(bench::fmt(r.stat("failed_requests"), 0));
      cells.push_back(bench::fmt(r.stat("fetch_p99_ms"), 1));
    }
    row(r.label, cells);
  }
}

}  // namespace

int main() {
  using namespace lhr;
  bench::print_header("Table 3: estimated latency (ms) and throughput (Gbps)");

  const std::vector<std::string> names = {"LHR", "LHR-Async", "Hawkeye", "LRB", "LRU"};
  std::vector<runner::Job> jobs;
  // One observer per job, alive for the whole run (SimOptions::observer is
  // not owned by the engine).
  std::vector<std::unique_ptr<LatencyObserver>> observers;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto& name : names) {
      observers.push_back(std::make_unique<LatencyObserver>());
      auto job = bench::sim_job(name, c, capacity);
      job.options.observer = observers.back().get();
      job.options.deduct_metadata = false;  // the original loop did not adjust capacity
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  std::vector<std::string> header = {"Trace", "Metric"};
  header.insert(header.end(), names.begin(), names.end());
  bench::print_row(header);
  for (const auto c : bench::all_trace_classes()) {
    std::vector<std::string> lat_cells = {gen::to_string(c), "Latency"};
    std::vector<std::string> thr_cells = {gen::to_string(c), "Throughput"};
    // Worst single access() — the request-path stall ceiling. Synchronous
    // LHR pays a whole retrain here at window boundaries; LHR-Async should
    // collapse to O(model swap).
    std::vector<std::string> stall_cells = {gen::to_string(c), "MaxStall(ms)"};
    for (std::size_t p = 0; p < names.size(); ++p) {
      const auto& model = observers[idx]->model;
      lat_cells.push_back(bench::fmt(model.mean_latency_ms(), 1));
      thr_cells.push_back(bench::fmt(model.throughput_gbps(), 2));
      stall_cells.push_back(bench::fmt(results[idx].metrics.max_access_seconds * 1e3, 2));
      ++idx;
    }
    bench::print_row(lat_cells);
    bench::print_row(thr_cells);
    bench::print_row(stall_cells);
  }

  // Additive only: default output stays byte-identical when the env knob is
  // unset (the bench determinism guarantee).
  if (const std::size_t threads = bench::serve_threads(); threads > 0) {
    run_serve_sweep(threads);
  }
  return 0;
}
