// Figure 12 / Appendix A.2: accuracy of the LSM-based Zipf-alpha detection
// mechanism. The paper generates synthetic Zipf workloads whose alpha
// changes every 100k requests and reports ~97% detection accuracy with
// epsilon = 0.002 (3 misses on average); on production traces 99% of
// significant pattern changes are caught.
//
// The experiment is inherently sequential (the detector carries state from
// window to window and the alpha schedule is RNG-driven), so it runs as a
// single free-form job on the runner.
#include <cmath>

#include "bench/bench_common.hpp"
#include "gen/zipf.hpp"
#include "ml/zipf_detector.hpp"
#include "util/rng.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 12 / A.2: detection accuracy of the LSM alpha estimator");

  // The paper's setup scaled down: windows of `window` requests over 10k
  // contents; alpha switches every window with probability 1/2 by a step
  // large enough to be "significant" (>= 0.05).
  const std::size_t window = std::max<std::size_t>(bench::requests_per_trace() / 10, 20'000);
  constexpr std::size_t kWindows = 40;
  constexpr double kSignificant = 0.05;

  runner::Job job;
  job.label = "detection-accuracy";
  job.body = [window](runner::Result& result) {
    util::Xoshiro256 rng(bench::bench_seed());
    ml::ZipfDetector detector(ml::ZipfDetectorConfig{.epsilon = 0.02});

    double alpha = 0.8;
    double prev_alpha = alpha;
    std::size_t true_changes = 0, detected_changes = 0, false_alarms = 0, misses = 0;

    for (std::size_t w = 0; w < kWindows; ++w) {
      gen::ZipfSampler zipf(10'000, alpha);
      for (std::size_t i = 0; i < window; ++i) detector.record(zipf.sample(rng));
      const auto r = detector.close_window();

      if (w > 0) {
        const bool truly_changed = std::abs(alpha - prev_alpha) >= kSignificant;
        true_changes += truly_changed;
        detected_changes += r.change_detected;
        if (truly_changed && !r.change_detected) ++misses;
        if (!truly_changed && r.change_detected) ++false_alarms;
      }

      prev_alpha = alpha;
      if (rng.next_double() < 0.5) {
        // Step alpha by +-0.1..0.3 within [0.5, 1.3].
        const double step = 0.1 + rng.next_double() * 0.2;
        alpha += (rng.next_double() < 0.5 ? -step : step);
        alpha = std::min(std::max(alpha, 0.5), 1.3);
      }
    }

    result.set("windows_evaluated", double(kWindows - 1));
    result.set("true_changes", double(true_changes));
    result.set("detected_changes", double(detected_changes));
    result.set("misses", double(misses));
    result.set("false_alarms", double(false_alarms));
    result.set("accuracy",
               1.0 - double(misses + false_alarms) / double(kWindows - 1));
  };
  const auto results = bench::run_jobs({job});
  const auto& r = results[0];

  bench::print_row({"Metric", "Value"}, 28);
  bench::print_row({"Windows evaluated",
                    std::to_string(std::uint64_t(r.stat("windows_evaluated")))}, 28);
  bench::print_row({"True changes",
                    std::to_string(std::uint64_t(r.stat("true_changes")))}, 28);
  bench::print_row({"Missed detections",
                    std::to_string(std::uint64_t(r.stat("misses")))}, 28);
  bench::print_row({"False alarms",
                    std::to_string(std::uint64_t(r.stat("false_alarms")))}, 28);
  bench::print_row({"Detection accuracy (%)", bench::fmt(100.0 * r.stat("accuracy"), 1)},
                   28);
  std::printf("\nPaper: ~97%% on synthetic alpha-switching, 99%% on production traces.\n");
  return 0;
}
