// Extension: admission-model quality. §7.5 says "the remaining gap between
// LHR and HRO is mainly due to the errors in our model". This bench measures
// those errors directly: LHR's predicted admission probabilities are scored
// against HRO's labels over recent requests, next to the resulting
// LHR vs HRO hit-probability gap.
#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: LHR admission-model quality vs the LHR-HRO gap");

  bench::print_row({"Trace", "AUC", "Acc", "Recall", "Brier", "LHR(%)", "HRO(%)",
                    "gap(pp)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    core::LhrCache lhr(capacity, core::LhrConfig{});
    const auto metrics = sim::simulate(lhr, bench::trace_for(c));
    const auto quality = lhr.model_quality();
    bench::print_row(
        {gen::to_string(c), bench::fmt(quality.auc, 3), bench::fmt(quality.accuracy, 3),
         bench::fmt(quality.recall, 3), bench::fmt(quality.brier, 3),
         bench::pct(metrics.object_hit_ratio()), bench::pct(lhr.hro_hit_ratio()),
         bench::fmt(100.0 * (lhr.hro_hit_ratio() - metrics.object_hit_ratio()), 2)});
  }
  std::printf("\nHigher AUC should coincide with a smaller LHR-HRO gap (§7.5).\n");
  return 0;
}
