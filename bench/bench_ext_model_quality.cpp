// Extension: admission-model quality. §7.5 says "the remaining gap between
// LHR and HRO is mainly due to the errors in our model". This bench measures
// those errors directly: LHR's predicted admission probabilities are scored
// against HRO's labels over recent requests, next to the resulting
// LHR vs HRO hit-probability gap.
#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: LHR admission-model quality vs the LHR-HRO gap");

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    runner::Job job;
    job.trace_class = c;
    job.capacity_bytes = capacity;
    job.make = [capacity]() -> std::unique_ptr<sim::CachePolicy> {
      return std::make_unique<core::LhrCache>(capacity, core::LhrConfig{});
    };
    job.inspect = [](const sim::CachePolicy& policy, runner::Result& r) {
      const auto& lhr_cache = static_cast<const core::LhrCache&>(policy);
      const auto quality = lhr_cache.model_quality();
      r.set("auc", quality.auc);
      r.set("accuracy", quality.accuracy);
      r.set("recall", quality.recall);
      r.set("brier", quality.brier);
      r.set("hro_hit_ratio", lhr_cache.hro_hit_ratio());
    };
    jobs.push_back(std::move(job));
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "AUC", "Acc", "Recall", "Brier", "LHR(%)", "HRO(%)",
                    "gap(pp)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto& r = results[idx++];
    const double hit = r.metrics.object_hit_ratio();
    const double hro = r.stat("hro_hit_ratio");
    bench::print_row({gen::to_string(c), bench::fmt(r.stat("auc"), 3),
                      bench::fmt(r.stat("accuracy"), 3), bench::fmt(r.stat("recall"), 3),
                      bench::fmt(r.stat("brier"), 3), bench::pct(hit), bench::pct(hro),
                      bench::fmt(100.0 * (hro - hit), 2)});
  }
  std::printf("\nHigher AUC should coincide with a smaller LHR-HRO gap (§7.5).\n");
  return 0;
}
