// Multi-tier fabric sweep: edge-node scaling with per-tier LHR-vs-LRU
// columns, on the calibrated cdn-a trace.
//
// Each sweep point builds a fresh CdnFabric (server/fabric.hpp) from the
// base topology spec with the edge tier resized, replays the trace, and
// reports per-tier hit ratios, origin WAN traffic and the end-to-end p99 —
// once with LHR edges and once with LRU edges (the regional tier keeps the
// spec's policy), so the table reads as "what does the learned policy buy
// at each tier as the edge fans out".
//
// Before the sweep the harness replays the base topology at 1/2/4/8
// workers and compares FabricReport::canonical_summary() byte-for-byte —
// the determinism guarantee the fabric makes; CI greps the verdict line.
//
// Knobs (besides the bench_common ones):
//   LHR_FABRIC_SPEC        base topology (parse_fabric_spec grammar;
//                          default "edge=4xLHR@1;regional=2xLRU@8;shards=16")
//   LHR_FABRIC_EDGE_NODES  comma-separated edge counts to sweep (default 1,2,4,8)
//   LHR_FABRIC_THREADS     replay workers for the sweep points (default 4)
//   LHR_ORIGIN_PROFILE /   applied to the origin-facing tier, exactly like
//   LHR_FAULT_SCHEDULE     the single-server benches
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "server/fabric.hpp"

namespace {

using namespace lhr;

std::string base_spec() {
  const char* env = std::getenv("LHR_FABRIC_SPEC");
  return env != nullptr && *env != '\0'
             ? env
             : "edge=4xLHR@1;regional=2xLRU@8;shards=16";
}

std::vector<std::size_t> edge_node_sweep() {
  std::vector<std::size_t> out;
  if (const char* env = std::getenv("LHR_FABRIC_EDGE_NODES")) {
    const std::string str(env);
    std::size_t start = 0;
    while (start <= str.size()) {
      const std::size_t comma = str.find(',', start);
      const std::string tok =
          str.substr(start, comma == std::string::npos ? comma : comma - start);
      if (!tok.empty()) {
        out.push_back(static_cast<std::size_t>(
            util::require_u64("LHR_FABRIC_EDGE_NODES", tok)));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

std::size_t fabric_threads() {
  if (const char* env = std::getenv("LHR_FABRIC_THREADS")) {
    const std::uint64_t value = util::require_u64("LHR_FABRIC_THREADS", env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 4;
}

/// Builds the fabric for one sweep point. Capacities are scaled by
/// bench::cache_scale() so the paper's cache:workload ratio survives
/// LHR_BENCH_REQUESTS changes; resilience env knobs land on the
/// origin-facing tier like they do for the single-server benches.
server::FabricConfig point_config(server::FabricSpec spec, std::size_t edge_nodes,
                                  const std::string& edge_policy) {
  spec.edge.nodes = edge_nodes;
  spec.edge.policy = edge_policy;
  server::FabricConfig cfg = core::make_fabric_config(spec);
  const double scale = bench::cache_scale();
  const auto rescale = [scale](std::uint64_t bytes) {
    const double scaled = static_cast<double>(bytes) * scale;
    return std::max<std::uint64_t>(static_cast<std::uint64_t>(scaled), 1 << 20);
  };
  cfg.edge_capacity_bytes = rescale(cfg.edge_capacity_bytes);
  cfg.regional_capacity_bytes = rescale(cfg.regional_capacity_bytes);
  server::ServerConfig& origin_facing =
      spec.regional.nodes > 0 ? cfg.regional_server : cfg.edge_server;
  bench::apply_resilience_env(origin_facing);
  cfg.seed = bench::bench_seed();
  return cfg;
}

server::FabricReport run_point(const server::FabricSpec& spec,
                               std::size_t edge_nodes,
                               const std::string& edge_policy,
                               std::size_t threads) {
  server::CdnFabric fabric(point_config(spec, edge_nodes, edge_policy));
  return fabric.replay(bench::trace_for(gen::TraceClass::kCdnA), threads);
}

runner::Result to_result(const server::FabricReport& r, std::size_t edge_nodes,
                         const std::string& edge_policy) {
  runner::Result result;
  result.label = "fabric/" + edge_policy + "/edges=" + std::to_string(edge_nodes);
  result.policy = edge_policy;
  result.trace = "cdn-a";
  result.set("edge_nodes", static_cast<double>(edge_nodes));
  result.set("regional_nodes", static_cast<double>(r.regional.nodes));
  result.set("edge_hit_pct", r.edge.hit_pct());
  result.set("regional_hit_pct", r.regional.hit_pct());
  result.set("origin_wan_gb", bench::gb(static_cast<double>(r.origin_wan_bytes)));
  result.set("link_body_fetches", static_cast<double>(r.link_body_fetches));
  result.set("e2e_p50_ms", r.e2e_p50_ms);
  result.set("e2e_p99_ms", r.e2e_p99_ms);
  result.set("failed_requests", static_cast<double>(r.edge.failed_requests));
  result.set("conserved", r.traffic_conserved() ? 1.0 : 0.0);
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Fabric: edge-tier sweep, per-tier LHR vs LRU (edge -> regional -> origin)");

  const server::FabricSpec spec = server::parse_fabric_spec(base_spec());
  const std::size_t threads = fabric_threads();
  std::printf("base topology: %s  (replay workers: %zu)\n", base_spec().c_str(),
              threads);

  // Determinism audit on the base topology: byte-identical canonical
  // aggregates at every worker count (CI greps this line).
  {
    const std::string canon1 =
        run_point(spec, spec.edge.nodes, spec.edge.policy, 1).canonical_summary();
    bool identical = true;
    for (const std::size_t t : {2u, 4u, 8u}) {
      identical = identical &&
                  run_point(spec, spec.edge.nodes, spec.edge.policy, t)
                          .canonical_summary() == canon1;
    }
    std::printf("fabric determinism: aggregates identical across 1/2/4/8 threads: %s\n",
                identical ? "yes" : "NO");
  }

  bench::print_row({"Edges", "edge%(LHR)", "edge%(LRU)", "reg%(LHR)", "reg%(LRU)",
                    "oGB(LHR)", "oGB(LRU)", "p99ms(LHR)", "p99ms(LRU)"},
                   12);

  std::vector<runner::Result> all_results;
  for (const std::size_t edges : edge_node_sweep()) {
    const server::FabricReport lhr_r = run_point(spec, edges, "LHR", threads);
    const server::FabricReport lru_r = run_point(spec, edges, "LRU", threads);
    bench::print_row(
        {std::to_string(edges), bench::fmt(lhr_r.edge.hit_pct(), 2),
         bench::fmt(lru_r.edge.hit_pct(), 2), bench::fmt(lhr_r.regional.hit_pct(), 2),
         bench::fmt(lru_r.regional.hit_pct(), 2),
         bench::fmt(bench::gb(static_cast<double>(lhr_r.origin_wan_bytes)), 2),
         bench::fmt(bench::gb(static_cast<double>(lru_r.origin_wan_bytes)), 2),
         bench::fmt(lhr_r.e2e_p99_ms, 2), bench::fmt(lru_r.e2e_p99_ms, 2)},
        12);
    for (const auto* r : {&lhr_r, &lru_r}) {
      if (!r->traffic_conserved()) {
        std::printf("TRAFFIC CONSERVATION VIOLATED at edges=%zu: %s\n", edges,
                    r->conservation_error.c_str());
      }
    }
    all_results.push_back(to_result(lhr_r, edges, "LHR"));
    all_results.push_back(to_result(lru_r, edges, "LRU"));
  }

  runner::append_jsonl_if_configured(all_results);
  return 0;
}
