// Table 1: key characteristics of the (synthetic stand-ins for the)
// production traces. One free-form runner job per trace: generation and
// summarization of the four traces proceed in parallel.
#include "bench/bench_common.hpp"
#include "trace/trace_stats.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Table 1: trace characteristics");

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    runner::Job job;
    job.label = "summary/" + gen::to_string(c);
    job.body = [c](runner::Result& r) {
      const auto s = trace::summarize(bench::trace_for(c));
      r.set("duration_hours", s.duration_hours);
      r.set("unique_contents", double(s.unique_contents));
      r.set("requests_m", double(s.total_requests) / 1e6);
      r.set("total_bytes_tb", s.total_bytes_requested_tb);
      r.set("unique_bytes_gb", s.unique_bytes_gb);
      r.set("active_bytes_gb", s.peak_active_bytes_gb);
      r.set("mean_size_mb", s.mean_content_size_mb);
      r.set("max_size_mb", s.max_content_size_mb);
      r.set("one_hit_wonder_pct", 100.0 * s.one_hit_wonder_fraction);
    };
    jobs.push_back(std::move(job));
  }
  const auto results = bench::run_jobs(jobs);

  bench::print_row({"Metric", "CDN-A", "CDN-B", "CDN-C", "Wiki"}, 16);
  const auto row = [&](const std::string& label, const char* key, int precision) {
    std::vector<std::string> cells = {label};
    for (const auto& r : results) cells.push_back(bench::fmt(r.stat(key), precision));
    bench::print_row(cells, 16);
  };
  row("Duration(h)", "duration_hours", 2);
  row("UniqueContents", "unique_contents", 0);
  row("Requests(M)", "requests_m", 2);
  row("TotalBytes(TB)", "total_bytes_tb", 2);
  row("UniqueBytes(GB)", "unique_bytes_gb", 0);
  row("ActiveBytes(GB)", "active_bytes_gb", 0);
  row("MeanSize(MB)", "mean_size_mb", 1);
  row("MaxSize(MB)", "max_size_mb", 0);
  row("OneHitWonder(%)", "one_hit_wonder_pct", 1);
  return 0;
}
