// Table 1: key characteristics of the (synthetic stand-ins for the)
// production traces.
#include "bench/bench_common.hpp"
#include "trace/trace_stats.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Table 1: trace characteristics");

  bench::print_row({"Metric", "CDN-A", "CDN-B", "CDN-C", "Wiki"}, 16);
  std::vector<trace::TraceSummary> summaries;
  for (const auto c : bench::all_trace_classes()) {
    summaries.push_back(trace::summarize(bench::trace_for(c)));
  }
  const auto row = [&](const std::string& label, auto getter, int precision) {
    std::vector<std::string> cells = {label};
    for (const auto& s : summaries) cells.push_back(bench::fmt(getter(s), precision));
    bench::print_row(cells, 16);
  };
  row("Duration(h)", [](const auto& s) { return s.duration_hours; }, 2);
  row("UniqueContents", [](const auto& s) { return double(s.unique_contents); }, 0);
  row("Requests(M)", [](const auto& s) { return double(s.total_requests) / 1e6; }, 2);
  row("TotalBytes(TB)", [](const auto& s) { return s.total_bytes_requested_tb; }, 2);
  row("UniqueBytes(GB)", [](const auto& s) { return s.unique_bytes_gb; }, 0);
  row("ActiveBytes(GB)", [](const auto& s) { return s.peak_active_bytes_gb; }, 0);
  row("MeanSize(MB)", [](const auto& s) { return s.mean_content_size_mb; }, 1);
  row("MaxSize(MB)", [](const auto& s) { return s.max_content_size_mb; }, 0);
  row("OneHitWonder(%)", [](const auto& s) { return 100.0 * s.one_hit_wonder_fraction; }, 1);
  return 0;
}
