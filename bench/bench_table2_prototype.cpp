// Table 2: resource usage of the LHR prototype vs unmodified ATS (LRU index)
// in "max" (throughput-bound) and "normal" (production-speed) replays.
// All 16 server replays (4 traces x 2 policies x 2 modes) are independent
// runner jobs.
#include "bench/bench_common.hpp"
#include "server/cdn_server.hpp"

namespace {

void report_to_result(const lhr::server::ServerReport& report, lhr::runner::Result& r) {
  r.set("throughput_gbps", report.throughput_gbps);
  r.set("peak_cpu_pct", report.peak_cpu_pct);
  r.set("peak_mem_gb", report.peak_mem_gb);
  r.set("p90_latency_ms", report.p90_latency_ms);
  r.set("p99_latency_ms", report.p99_latency_ms);
  r.set("avg_latency_ms", report.avg_latency_ms);
  r.set("traffic_gbps", report.traffic_gbps);
  r.set("content_hit_pct", report.content_hit_pct);
  r.set("serve_threads", static_cast<double>(report.replay_threads));
  r.set("replay_wall_seconds", report.replay_wall_seconds);
  r.set("lock_contentions", static_cast<double>(report.lock_contentions));
  lhr::bench::set_resilience_stats(report, r);
}

// LHR_SERVE_THREADS > 0 switches every replay onto the concurrent serving
// path: a ShardedCache backend (LHR_SERVE_SHARDS slices of the named
// policy) driven by CdnServer::replay_concurrent. Hit/byte/WAN aggregates
// are identical for every thread count; only wall clock changes.
lhr::runner::Job server_job(const std::string& policy, lhr::gen::TraceClass c,
                            lhr::server::ReplayMode mode) {
  using namespace lhr;
  runner::Job job;
  job.label = policy + "/" + gen::to_string(c) +
              (mode == server::ReplayMode::kMax ? "/max" : "/normal");
  job.body = [policy, c, mode](runner::Result& r) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    server::ServerConfig cfg;
    cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1 << 20);
    bench::apply_resilience_env(cfg);
    const std::size_t threads = bench::serve_threads();
    if (threads > 0) {
      server::CdnServer server(
          bench::make_sharded_policy(policy, bench::serve_shards(), capacity), cfg);
      report_to_result(
          server.replay_concurrent(bench::trace_for(c), mode, threads), r);
    } else {
      server::CdnServer server(core::make_policy(policy, capacity), cfg);
      report_to_result(server.replay(bench::trace_for(c), mode), r);
    }
  };
  return job;
}

}  // namespace

int main() {
  using namespace lhr;
  bench::print_header("Table 2: LHR prototype vs ATS (LRU) resource usage");

  // Job layout: per trace [LHR/max, ATS/max, LHR/normal, ATS/normal].
  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    jobs.push_back(server_job("LHR", c, server::ReplayMode::kMax));
    jobs.push_back(server_job("LRU", c, server::ReplayMode::kMax));
    jobs.push_back(server_job("LHR", c, server::ReplayMode::kNormal));
    jobs.push_back(server_job("LRU", c, server::ReplayMode::kNormal));
  }
  const auto results = bench::run_jobs(jobs);

  bench::print_row({"Metric", "Exp", "A:LHR", "A:ATS", "B:LHR", "B:ATS", "C:LHR",
                    "C:ATS", "W:LHR", "W:ATS"}, 10);

  // offset: 0 = LHR/max, 1 = ATS/max, 2 = LHR/normal, 3 = ATS/normal.
  const auto row = [&](const std::string& metric, const std::string& exp,
                       std::size_t offset, const char* key, int precision) {
    std::vector<std::string> cells = {metric, exp};
    for (std::size_t t = 0; t < 4; ++t) {
      cells.push_back(bench::fmt(results[4 * t + offset].stat(key), precision));
      cells.push_back(bench::fmt(results[4 * t + offset + 1].stat(key), precision));
    }
    bench::print_row(cells, 10);
  };
  row("Thrpt(Gbps)", "max", 0, "throughput_gbps", 2);
  row("PeakCPU(%)", "max", 0, "peak_cpu_pct", 1);
  row("PeakMem(GB)", "max", 0, "peak_mem_gb", 2);
  row("P90Lat(ms)", "norm", 2, "p90_latency_ms", 0);
  row("P99Lat(ms)", "norm", 2, "p99_latency_ms", 0);
  row("AvgLat(ms)", "avg", 2, "avg_latency_ms", 0);
  row("Traffic(Gbps)", "avg", 2, "traffic_gbps", 2);
  row("ContentHit(%)", "norm", 2, "content_hit_pct", 2);
  return 0;
}
