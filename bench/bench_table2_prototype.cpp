// Table 2: resource usage of the LHR prototype vs unmodified ATS (LRU index)
// in "max" (throughput-bound) and "normal" (production-speed) replays.
#include "bench/bench_common.hpp"
#include "server/cdn_server.hpp"

namespace {

lhr::server::ServerReport run(const std::string& policy, lhr::gen::TraceClass c,
                              lhr::server::ReplayMode mode) {
  using namespace lhr;
  const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
  server::ServerConfig cfg;
  cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1 << 20);
  server::CdnServer server(core::make_policy(policy, capacity), cfg);
  return server.replay(bench::trace_for(c), mode);
}

}  // namespace

int main() {
  using namespace lhr;
  bench::print_header("Table 2: LHR prototype vs ATS (LRU) resource usage");

  bench::print_row({"Metric", "Exp", "A:LHR", "A:ATS", "B:LHR", "B:ATS", "C:LHR",
                    "C:ATS", "W:LHR", "W:ATS"}, 10);

  std::vector<server::ServerReport> lhr_max, ats_max, lhr_norm, ats_norm;
  for (const auto c : bench::all_trace_classes()) {
    lhr_max.push_back(run("LHR", c, server::ReplayMode::kMax));
    ats_max.push_back(run("LRU", c, server::ReplayMode::kMax));
    lhr_norm.push_back(run("LHR", c, server::ReplayMode::kNormal));
    ats_norm.push_back(run("LRU", c, server::ReplayMode::kNormal));
  }

  const auto row = [&](const std::string& metric, const std::string& exp,
                       const std::vector<server::ServerReport>& lhr_reports,
                       const std::vector<server::ServerReport>& ats_reports,
                       auto getter, int precision) {
    std::vector<std::string> cells = {metric, exp};
    for (std::size_t i = 0; i < 4; ++i) {
      cells.push_back(bench::fmt(getter(lhr_reports[i]), precision));
      cells.push_back(bench::fmt(getter(ats_reports[i]), precision));
    }
    bench::print_row(cells, 10);
  };
  row("Thrpt(Gbps)", "max", lhr_max, ats_max,
      [](const auto& r) { return r.throughput_gbps; }, 2);
  row("PeakCPU(%)", "max", lhr_max, ats_max,
      [](const auto& r) { return r.peak_cpu_pct; }, 1);
  row("PeakMem(GB)", "max", lhr_max, ats_max,
      [](const auto& r) { return r.peak_mem_gb; }, 2);
  row("P90Lat(ms)", "norm", lhr_norm, ats_norm,
      [](const auto& r) { return r.p90_latency_ms; }, 0);
  row("P99Lat(ms)", "norm", lhr_norm, ats_norm,
      [](const auto& r) { return r.p99_latency_ms; }, 0);
  row("AvgLat(ms)", "avg", lhr_norm, ats_norm,
      [](const auto& r) { return r.avg_latency_ms; }, 0);
  row("Traffic(Gbps)", "avg", lhr_norm, ats_norm,
      [](const auto& r) { return r.traffic_gbps; }, 2);
  row("ContentHit(%)", "norm", lhr_norm, ats_norm,
      [](const auto& r) { return r.content_hit_pct; }, 2);
  return 0;
}
