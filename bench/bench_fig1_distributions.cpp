// Figure 1: content popularity (rank-frequency) and inter-arrival time CDFs.
// Two free-form runner jobs per trace (popularity fit, IRT CDF).
#include "bench/bench_common.hpp"
#include "trace/trace_stats.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 1: content popularity and inter-arrival time");

  const std::vector<double> points = {0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
  const std::vector<std::size_t> ranks = {1, 10, 100, 1000, 10000};

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    runner::Job pop;
    pop.label = "popularity/" + gen::to_string(c);
    pop.body = [c, &ranks](runner::Result& r) {
      const auto counts = trace::popularity_counts(bench::trace_for(c));
      for (const auto rank : ranks) {
        r.series.push_back(rank <= counts.size() ? double(counts[rank - 1]) : -1.0);
      }
      r.set("alpha", trace::fit_zipf_alpha(counts, 2000));
    };
    jobs.push_back(std::move(pop));

    runner::Job irt;
    irt.label = "irt_cdf/" + gen::to_string(c);
    irt.body = [c, &points](runner::Result& r) {
      auto irts = trace::inter_request_times(bench::trace_for(c));
      r.series = trace::empirical_cdf(std::move(irts), points);
    };
    jobs.push_back(std::move(irt));
  }
  const auto results = bench::run_jobs(jobs);

  std::printf("\n-- Popularity: request count at log-spaced ranks + fitted Zipf alpha --\n");
  bench::print_row({"Trace", "rank1", "rank10", "rank100", "rank1k", "rank10k", "alpha"});
  for (std::size_t t = 0; t < bench::all_trace_classes().size(); ++t) {
    const auto& r = results[2 * t];
    std::vector<std::string> cells = {gen::to_string(bench::all_trace_classes()[t])};
    for (const double count : r.series) {
      cells.push_back(count < 0.0 ? std::string("-") : bench::fmt(count, 0));
    }
    cells.push_back(bench::fmt(r.stat("alpha"), 2));
    bench::print_row(cells);
  }

  std::printf("\n-- Inter-arrival time CDF: P(IRT <= t) --\n");
  bench::print_row({"Trace", "0.1s", "1s", "10s", "100s", "1ks", "10ks"});
  for (std::size_t t = 0; t < bench::all_trace_classes().size(); ++t) {
    const auto& r = results[2 * t + 1];
    std::vector<std::string> cells = {gen::to_string(bench::all_trace_classes()[t])};
    for (const double v : r.series) cells.push_back(bench::fmt(v, 3));
    bench::print_row(cells);
  }
  return 0;
}
