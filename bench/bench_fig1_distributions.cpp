// Figure 1: content popularity (rank-frequency) and inter-arrival time CDFs.
#include <cmath>

#include "bench/bench_common.hpp"
#include "trace/trace_stats.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 1: content popularity and inter-arrival time");

  std::printf("\n-- Popularity: request count at log-spaced ranks + fitted Zipf alpha --\n");
  bench::print_row({"Trace", "rank1", "rank10", "rank100", "rank1k", "rank10k", "alpha"});
  for (const auto c : bench::all_trace_classes()) {
    const auto counts = trace::popularity_counts(bench::trace_for(c));
    const auto at = [&](std::size_t rank) {
      return rank <= counts.size() ? bench::fmt(double(counts[rank - 1]), 0)
                                   : std::string("-");
    };
    bench::print_row({gen::to_string(c), at(1), at(10), at(100), at(1000), at(10000),
                      bench::fmt(trace::fit_zipf_alpha(counts, 2000), 2)});
  }

  std::printf("\n-- Inter-arrival time CDF: P(IRT <= t) --\n");
  const std::vector<double> points = {0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
  bench::print_row({"Trace", "0.1s", "1s", "10s", "100s", "1ks", "10ks"});
  for (const auto c : bench::all_trace_classes()) {
    auto irts = trace::inter_request_times(bench::trace_for(c));
    const auto cdf = trace::empirical_cdf(std::move(irts), points);
    std::vector<std::string> cells = {gen::to_string(c)};
    for (const double v : cdf) cells.push_back(bench::fmt(v, 3));
    bench::print_row(cells);
  }
  return 0;
}
