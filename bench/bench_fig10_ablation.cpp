// Figure 10: ablation of LHR's estimation algorithm and detection mechanism.
//   LHR    = full design (auto-tuned threshold + detection)
//   D-LHR  = fixed threshold delta = 0.5 (no estimation), detection on
//   N-LHR  = D-LHR without detection (retrains every window)
// Paper claims: estimation lifts hit probability (dramatically on CDN-C);
// detection cuts training time 15-40% at no hit-probability cost.
//
// The per-variant counters (training time, trainings, windows) come out of
// the runner's `inspect` hook, which runs while the policy is still alive.
#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 10: LHR vs D-LHR vs N-LHR (ablation)");

  const std::vector<std::string> variants = {"LHR", "D-LHR", "N-LHR"};
  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto& name : variants) {
      runner::Job job;
      job.trace_class = c;
      job.capacity_bytes = capacity;
      job.make = [capacity, name]() -> std::unique_ptr<sim::CachePolicy> {
        core::LhrConfig cfg;
        if (name != "LHR") cfg.enable_threshold_estimation = false;
        if (name == "N-LHR") cfg.enable_detection = false;
        return std::make_unique<core::LhrCache>(capacity, cfg);
      };
      job.inspect = [](const sim::CachePolicy& policy, runner::Result& r) {
        const auto& cache = static_cast<const core::LhrCache&>(policy);
        r.set("training_seconds", cache.training_seconds());
        r.set("trainings", double(cache.trainings()));
        r.set("windows_seen", double(cache.windows_seen()));
      };
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "Variant", "Hit(%)", "Meta(MB)", "TrainTime(s)",
                    "Trainings", "Windows"});
  for (const auto c : bench::all_trace_classes()) {
    for (const auto& name : variants) {
      const auto& r = results[idx++];
      bench::print_row({gen::to_string(c), name,
                        bench::pct(r.metrics.object_hit_ratio()),
                        bench::fmt(double(r.metrics.peak_metadata_bytes) / 1e6, 1),
                        bench::fmt(r.stat("training_seconds"), 3),
                        std::to_string(std::uint64_t(r.stat("trainings"))),
                        std::to_string(std::uint64_t(r.stat("windows_seen")))});
    }
  }
  return 0;
}
