// Figure 10: ablation of LHR's estimation algorithm and detection mechanism.
//   LHR    = full design (auto-tuned threshold + detection)
//   D-LHR  = fixed threshold delta = 0.5 (no estimation), detection on
//   N-LHR  = D-LHR without detection (retrains every window)
// Paper claims: estimation lifts hit probability (dramatically on CDN-C);
// detection cuts training time 15-40% at no hit-probability cost.
#include <chrono>

#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 10: LHR vs D-LHR vs N-LHR (ablation)");

  bench::print_row({"Trace", "Variant", "Hit(%)", "Meta(MB)", "TrainTime(s)",
                    "Trainings", "Windows"});
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const std::string name : {"LHR", "D-LHR", "N-LHR"}) {
      core::LhrConfig cfg;
      if (name != "LHR") cfg.enable_threshold_estimation = false;
      if (name == "N-LHR") cfg.enable_detection = false;
      core::LhrCache cache(capacity, cfg);
      const auto metrics = sim::simulate(cache, bench::trace_for(c));
      bench::print_row({gen::to_string(c), name, bench::pct(metrics.object_hit_ratio()),
                        bench::fmt(double(metrics.peak_metadata_bytes) / 1e6, 1),
                        bench::fmt(cache.training_seconds(), 3),
                        std::to_string(cache.trainings()),
                        std::to_string(cache.windows_seen())});
    }
  }
  return 0;
}
