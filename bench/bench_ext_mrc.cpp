// Extension: analytic LRU miss-ratio curves. The Mattson one-pass curve and
// the Che approximation, validated against simulation — an entire cache-size
// sweep (the x-axis of Figure 8) in a single pass over each trace.
#include "bench/bench_common.hpp"
#include "opt/mrc.hpp"
#include "policies/lru.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: LRU miss-ratio curves (Mattson & Che vs simulation)");

  bench::print_row({"Trace", "Cache(GB)", "Mattson(%)", "Che(%)", "Simulated(%)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto& trace = bench::trace_for(c);
    const auto sizes = gen::paper_cache_sizes(c, bench::cache_scale());
    const auto curve = opt::lru_miss_ratio_curve(
        trace.requests(), std::span<const std::uint64_t>(sizes));
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const double che = opt::che_lru_hit_ratio(trace.requests(), sizes[i]);
      policy::Lru lru(sizes[i]);
      const double simulated = sim::simulate(lru, trace).object_hit_ratio();
      bench::print_row({gen::to_string(c),
                        bench::fmt(bench::gb(double(sizes[i])) / bench::cache_scale(), 0),
                        bench::pct(curve[i]), bench::pct(che), bench::pct(simulated)});
    }
  }
  std::printf("\nMattson is exact for byte-LRU; Che is the IRM closed form\n"
              "(AdaptSize's tuning model), looser on non-stationary traces.\n");
  return 0;
}
