// Extension: analytic LRU miss-ratio curves. The Mattson one-pass curve and
// the Che approximation, validated against simulation — an entire cache-size
// sweep (the x-axis of Figure 8) in a single pass over each trace.
// Per trace: one job for the Mattson curve + Che points, plus one LRU
// simulation job per cache size.
#include "bench/bench_common.hpp"
#include "opt/mrc.hpp"
#include "policies/lru.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: LRU miss-ratio curves (Mattson & Che vs simulation)");

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto sizes = gen::paper_cache_sizes(c, bench::cache_scale());

    runner::Job analytic;
    analytic.label = "mrc/" + gen::to_string(c);
    analytic.body = [c, sizes](runner::Result& r) {
      const auto& trace = bench::trace_for(c);
      // series = [mattson per size..., che per size...]
      r.series = opt::lru_miss_ratio_curve(trace,
                                           std::span<const std::uint64_t>(sizes));
      for (const auto s : sizes) {
        r.series.push_back(opt::che_lru_hit_ratio(trace, s));
      }
    };
    jobs.push_back(std::move(analytic));

    for (const auto s : sizes) jobs.push_back(bench::sim_job("LRU", c, s));
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "Cache(GB)", "Mattson(%)", "Che(%)", "Simulated(%)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto sizes = gen::paper_cache_sizes(c, bench::cache_scale());
    const auto& analytic = results[idx++];
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const double simulated = results[idx++].metrics.object_hit_ratio();
      bench::print_row({gen::to_string(c),
                        bench::fmt(bench::gb(double(sizes[i])) / bench::cache_scale(), 0),
                        bench::pct(analytic.series[i]),
                        bench::pct(analytic.series[sizes.size() + i]),
                        bench::pct(simulated)});
    }
  }
  std::printf("\nMattson is exact for byte-LRU; Che is the IRM closed form\n"
              "(AdaptSize's tuning model), looser on non-stationary traces.\n");
  return 0;
}
