// Figure 7: content hit probability over time (per request window) of the
// LHR prototype vs unmodified ATS. The paper's claim: LHR overtakes ATS
// within ~5 sliding windows and keeps improving.
//
// Server replays are free-form runner jobs (the CdnServer models its own
// latency/CPU accounting); the per-window series lands in Result::series.
#include "bench/bench_common.hpp"
#include "server/cdn_server.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 7: hit probability over time, LHR vs ATS");

  const std::size_t window = std::max<std::size_t>(bench::requests_per_trace() / 20, 1000);
  const std::vector<std::string> names = {"LHR", "LRU"};

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto& name : names) {
      runner::Job job;
      job.label = name + "/" + gen::to_string(c);
      job.body = [c, capacity, name, window](runner::Result& r) {
        server::ServerConfig cfg;
        cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1 << 20);
        server::CdnServer server(core::make_policy(name, capacity), cfg);
        const auto report =
            server.replay(bench::trace_for(c), server::ReplayMode::kNormal, window);
        r.series = report.window_hit_ratio;
        r.set("content_hit_pct", report.content_hit_pct);
      };
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  for (const auto c : bench::all_trace_classes()) {
    const auto& lhr_series = results[idx++].series;
    const auto& ats_series = results[idx++].series;
    std::printf("\n-- %s (window = %zu requests) --\n", gen::to_string(c).c_str(),
                window);
    bench::print_row({"Window", "LHR(%)", "ATS(%)"});
    for (std::size_t w = 0; w < lhr_series.size(); ++w) {
      bench::print_row({std::to_string(w + 1), bench::pct(lhr_series[w]),
                        bench::pct(ats_series[w])});
    }
  }
  return 0;
}
