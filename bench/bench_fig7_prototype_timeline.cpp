// Figure 7: content hit probability over time (per request window) of the
// LHR prototype vs unmodified ATS. The paper's claim: LHR overtakes ATS
// within ~5 sliding windows and keeps improving.
#include "bench/bench_common.hpp"
#include "server/cdn_server.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 7: hit probability over time, LHR vs ATS");

  const std::size_t window = std::max<std::size_t>(bench::requests_per_trace() / 20, 1000);
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    server::ServerConfig cfg;
    cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1 << 20);

    server::CdnServer lhr_server(core::make_policy("LHR", capacity), cfg);
    server::CdnServer ats_server(core::make_policy("LRU", capacity), cfg);
    const auto lhr_report =
        lhr_server.replay(bench::trace_for(c), server::ReplayMode::kNormal, window);
    const auto ats_report =
        ats_server.replay(bench::trace_for(c), server::ReplayMode::kNormal, window);

    std::printf("\n-- %s (window = %zu requests) --\n", gen::to_string(c).c_str(),
                window);
    bench::print_row({"Window", "LHR(%)", "ATS(%)"});
    for (std::size_t w = 0; w < lhr_report.window_hit_ratio.size(); ++w) {
      bench::print_row({std::to_string(w + 1),
                        bench::pct(lhr_report.window_hit_ratio[w]),
                        bench::pct(ats_report.window_hit_ratio[w])});
    }
  }
  return 0;
}
