// Extension: the full policy lineup (the paper's seven SOTAs plus every
// other baseline this library implements) on each trace at the headline
// cache size — hit probability, byte hit ratio and wall-clock per policy.
#include "bench/bench_common.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: full policy lineup at the headline cache size");

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto& name : core::all_policy_names()) {
      jobs.push_back(bench::sim_job(name, c, capacity));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    std::printf("\n-- %s (cache %.0f GB paper-equivalent) --\n",
                gen::to_string(c).c_str(),
                bench::gb(double(capacity)) / bench::cache_scale());
    bench::print_row({"Policy", "Hit(%)", "ByteHit(%)", "Wall(s)"});
    for (const auto& name : core::all_policy_names()) {
      const auto& metrics = results[idx++].metrics;
      bench::print_row({name, bench::pct(metrics.object_hit_ratio()),
                        bench::pct(metrics.byte_hit_ratio()),
                        bench::fmt(metrics.wall_seconds, 2)});
    }
  }
  return 0;
}
