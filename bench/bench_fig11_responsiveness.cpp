// Figure 11: responsiveness to workload changes under the Markov-modulated
// "Syn One" and "Syn Two" processes (paper §7.6: N = 1000 contents,
// r = 200k requests per state, 1M requests total — scaled by
// LHR_BENCH_REQUESTS). Paper claims: LRB is the best SOTA on Syn One,
// AdaptSize on Syn Two, and LHR beats both on hit probability and traffic.
//
// The two synthetic traces are not paper trace classes, so the jobs point
// at them explicitly via Job::trace.
#include <unordered_map>

#include "bench/bench_common.hpp"
#include "gen/markov_modulated.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 11: responsiveness under Markov-modulated workloads");

  gen::MarkovModulatedConfig cfg;
  cfg.num_requests = bench::requests_per_trace();
  cfg.requests_per_state = cfg.num_requests / 5;  // paper ratio: 200k of 1M
  cfg.seed = bench::bench_seed();

  auto policies = core::sota_policy_names();
  policies.push_back("LHR");

  const std::vector<std::string> workloads = {"Syn One", "Syn Two"};
  std::vector<trace::Trace> traces;
  std::vector<std::uint64_t> capacities;
  for (const auto& workload : workloads) {
    traces.push_back(workload == "Syn One" ? generate_syn_one(cfg)
                                           : generate_syn_two(cfg));
    // Cache sized for ~15% of the content population's bytes.
    double unique_bytes = 0.0;
    {
      std::unordered_map<trace::Key, std::uint64_t> sizes;
      for (const auto& r : traces.back()) sizes.try_emplace(r.key, r.size);
      for (const auto& [k, s] : sizes) unique_bytes += double(s);
    }
    capacities.push_back(static_cast<std::uint64_t>(unique_bytes * 0.15));
  }

  std::vector<runner::Job> jobs;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const auto& name : policies) {
      auto job = bench::sim_job(name, gen::TraceClass::kCdnA, capacities[w]);
      job.trace = &traces[w];
      job.label = name + "/" + workloads[w];
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::printf("\n-- %s (cache = %.1f MB) --\n", workloads[w].c_str(),
                double(capacities[w]) / 1e6);
    bench::print_row({"Policy", "Hit(%)", "Traffic(Gbps)"});
    for (const auto& name : policies) {
      const auto& metrics = results[idx++].metrics;
      bench::print_row({name, bench::pct(metrics.object_hit_ratio()),
                        bench::fmt(bench::wan_gbps(metrics, traces[w]), 4)});
    }
  }
  return 0;
}
