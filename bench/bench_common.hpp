// Shared infrastructure for the per-table/per-figure experiment harnesses:
// trace calibration knobs, runner glue, and table formatting.
//
// Every binary in bench/ regenerates one table or figure of the paper on the
// calibrated synthetic traces (see DESIGN.md "Substitutions"). The sweeps
// themselves all execute through runner::run_all on a fixed thread pool;
// results come back in job order, so the printed tables are identical to the
// old serial nested loops no matter how many workers run. Scale knobs:
//   LHR_BENCH_REQUESTS  requests per trace        (default 200'000)
//   LHR_BENCH_SEED      generator seed            (default 42)
//   LHR_BENCH_THREADS   runner worker threads     (default: hardware)
//   LHR_BENCH_JSONL     append machine-readable results to this file
//   LHR_TRACE_FILE      replay this .lhrt file instead of generating
//   LHR_TRACE_SPILL_MB  spill generated traces to disk past this size
//                       and mmap them back (default 1024)
//   LHR_TRACE_CACHE_DIR where spilled .lhrt files live (default: temp dir)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <memory>

#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "runner/runner.hpp"
#include "runner/trace_cache.hpp"
#include "server/cdn_server.hpp"
#include "server/sharded_cache.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"
#include "util/parse.hpp"

namespace lhr::bench {

inline std::size_t requests_per_trace() {
  return runner::TraceCache::global().requests_per_trace();
}

inline std::uint64_t bench_seed() { return runner::TraceCache::global().seed(); }

/// Cache sizes are scaled to keep the paper's cache:workload ratio.
inline double cache_scale() {
  return static_cast<double>(requests_per_trace()) / 1e6;
}

inline const std::vector<gen::TraceClass>& all_trace_classes() {
  static const std::vector<gen::TraceClass> classes = {
      gen::TraceClass::kCdnA, gen::TraceClass::kCdnB, gen::TraceClass::kCdnC,
      gen::TraceClass::kWiki};
  return classes;
}

/// The memoized paper-calibrated trace for `c` (thread-safe). In-memory,
/// mmapped-from-spill, or an LHR_TRACE_FILE override — see runner::TraceCache.
inline const trace::TraceSource& trace_for(gen::TraceClass c) {
  return runner::TraceCache::global().get(c);
}

// ------------------------------------------------------------ serving path

/// LHR_SERVE_THREADS: worker threads for the concurrent CdnServer replay in
/// bench_table2/bench_table3. 0 (the default) keeps the classic
/// single-threaded replay, so default bench output is unchanged.
inline std::size_t serve_threads() {
  if (const char* env = std::getenv("LHR_SERVE_THREADS")) {
    const std::uint64_t value = util::require_u64("LHR_SERVE_THREADS", env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 0;
}

/// LHR_SERVE_PROCS: worker *processes* for the serving replay (each re-execs
/// the current binary in hidden --replay-worker mode and owns shards
/// s % P == p). 0 (the default) keeps the in-process replay. Canonical
/// aggregates are byte-identical at every process count, so this is a pure
/// throughput knob — see DESIGN.md "Process fan-out".
inline std::size_t serve_procs() {
  if (const char* env = std::getenv("LHR_SERVE_PROCS")) {
    const std::uint64_t value = util::require_u64("LHR_SERVE_PROCS", env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 0;
}

/// Parses a comma-separated count list from `name`, falling back to
/// `fallback` when unset/empty. Non-positive entries are dropped; an
/// all-invalid value falls back too (benches sweep *something* rather than
/// silently doing nothing).
inline std::vector<std::size_t> env_count_list(const char* name,
                                               const char* fallback) {
  const auto parse = [](const char* text) {
    std::vector<std::size_t> counts;
    std::string item;
    for (const char* p = text;; ++p) {
      if (*p == ',' || *p == '\0') {
        const long value = std::atol(item.c_str());
        if (value >= 1) counts.push_back(static_cast<std::size_t>(value));
        item.clear();
        if (*p == '\0') break;
      } else {
        item.push_back(*p);
      }
    }
    return counts;
  };
  const char* env = std::getenv(name);
  std::vector<std::size_t> counts =
      parse(env != nullptr && *env != '\0' ? env : fallback);
  if (counts.empty()) counts = parse(fallback);
  return counts;
}

/// LHR_SERVE_SHARDS: ShardedCache shard count for the serving path (default
/// 64). Fixed independently of the thread count so aggregate hit ratios are
/// identical for every LHR_SERVE_THREADS value.
inline std::size_t serve_shards() {
  if (const char* env = std::getenv("LHR_SERVE_SHARDS")) {
    const std::uint64_t value = util::require_u64("LHR_SERVE_SHARDS", env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 64;
}

/// LHR_ORIGIN_PROFILE: origin latency model + fetch policy for the serving
/// path, parsed by server::parse_origin_profile (e.g.
/// "lognormal:sigma=0.5,timeout=0.25,retries=3"). Empty = classic
/// infallible fixed-latency origin, default output unchanged.
inline std::string origin_profile_spec() {
  const char* env = std::getenv("LHR_ORIGIN_PROFILE");
  return env != nullptr ? env : "";
}

/// LHR_FAULT_SCHEDULE: deterministic origin fault episodes for the serving
/// path, parsed by server::FaultSchedule::parse (e.g.
/// "outage:100-160;error:200-400@0.5;slow:500-800@x4"). Empty = no faults.
inline std::string fault_schedule_spec() {
  const char* env = std::getenv("LHR_FAULT_SCHEDULE");
  return env != nullptr ? env : "";
}

/// Applies LHR_ORIGIN_PROFILE / LHR_FAULT_SCHEDULE to a server config.
/// Throws std::invalid_argument on a malformed spec (benches fail loudly
/// rather than silently sweep the wrong scenario).
inline void apply_resilience_env(server::ServerConfig& cfg) {
  if (const std::string spec = origin_profile_spec(); !spec.empty()) {
    const auto settings = server::parse_origin_profile(spec);
    cfg.origin_profile = settings.profile;
    cfg.fetch = settings.fetch;
  }
  if (const std::string spec = fault_schedule_spec(); !spec.empty()) {
    cfg.fault_schedule = server::FaultSchedule::parse(spec);
  }
}

/// Copies a report's origin-resilience counters into a runner result (the
/// JSONL schema rows every serving bench emits).
inline void set_resilience_stats(const server::ServerReport& report,
                                 runner::Result& r) {
  r.set("origin_fetches", static_cast<double>(report.origin_fetches));
  r.set("origin_retries", static_cast<double>(report.origin_retries));
  r.set("origin_timeouts", static_cast<double>(report.origin_timeouts));
  r.set("origin_errors", static_cast<double>(report.origin_errors));
  r.set("origin_hedges", static_cast<double>(report.origin_hedges));
  r.set("hedge_cancels", static_cast<double>(report.hedge_cancels));
  r.set("stale_serves", static_cast<double>(report.stale_serves));
  r.set("failed_requests", static_cast<double>(report.failed_requests));
  r.set("fetch_p50_ms", report.fetch_p50_ms);
  r.set("fetch_p90_ms", report.fetch_p90_ms);
  r.set("fetch_p99_ms", report.fetch_p99_ms);
  r.set("fetch_avg_ms", report.fetch_avg_ms);
}

/// A ShardedCache whose shards are factory-built `policy_name` slices.
inline std::unique_ptr<server::ShardedCache> make_sharded_policy(
    const std::string& policy_name, std::size_t shards, std::uint64_t capacity_bytes) {
  return std::make_unique<server::ShardedCache>(
      shards, capacity_bytes, [policy_name](std::uint64_t cap) {
        return core::make_policy(policy_name, cap);
      });
}

// ---------------------------------------------------------------- runner

/// A named-policy simulation job at the given capacity.
inline runner::Job sim_job(const std::string& policy_name, gen::TraceClass c,
                           std::uint64_t capacity_bytes,
                           const sim::SimOptions& options = {}) {
  runner::Job job;
  job.policy_name = policy_name;
  job.trace_class = c;
  job.capacity_bytes = capacity_bytes;
  job.options = options;
  return job;
}

/// Runs the jobs on the shared thread pool and appends JSONL output when
/// LHR_BENCH_JSONL is set. Results are in job order.
inline std::vector<runner::Result> run_jobs(const std::vector<runner::Job>& jobs) {
  auto results = runner::run_all(jobs);
  const char* jsonl = std::getenv("LHR_BENCH_JSONL");
  if (jsonl != nullptr && *jsonl != '\0' &&
      !runner::append_jsonl_if_configured(results)) {
    std::fprintf(stderr, "warning: cannot append to LHR_BENCH_JSONL=%s\n", jsonl);
  }
  return results;
}

// ---------------------------------------------------------------- output

/// WAN traffic rate in Gbps over the trace duration (Figure 8 bottom row).
inline double wan_gbps(const sim::SimMetrics& m, const trace::TraceSource& t) {
  const double duration = t.duration() > 0.0 ? t.duration() : 1.0;
  return m.wan_traffic_bytes() * 8.0 / duration / 1e9;
}

inline double gb(double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); }

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  // Deliberately omits the worker-thread count so output is comparable
  // across LHR_BENCH_THREADS settings (the determinism guarantee).
  std::printf("(synthetic traces: %zu requests/trace, seed %llu; see DESIGN.md)\n",
              requests_per_trace(),
              static_cast<unsigned long long>(bench_seed()));
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt(double value, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

inline std::string pct(double ratio) { return fmt(100.0 * ratio, 2); }

}  // namespace lhr::bench
