// Shared infrastructure for the per-table/per-figure experiment harnesses.
//
// Every binary in bench/ regenerates one table or figure of the paper on the
// calibrated synthetic traces (see DESIGN.md "Substitutions"). Scale knobs:
//   LHR_BENCH_REQUESTS  requests per trace      (default 200'000)
//   LHR_BENCH_SEED      generator seed          (default 42)
// The paper's cache sizes are scaled by (requests / 1e6) so the cache-to-
// workload ratio matches the original setup.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace lhr::bench {

inline std::size_t requests_per_trace() {
  if (const char* env = std::getenv("LHR_BENCH_REQUESTS")) {
    const long value = std::atol(env);
    if (value > 1000) return static_cast<std::size_t>(value);
  }
  return 200'000;
}

inline std::uint64_t bench_seed() {
  if (const char* env = std::getenv("LHR_BENCH_SEED")) {
    return static_cast<std::uint64_t>(std::atoll(env));
  }
  return 42;
}

/// Cache sizes are scaled to keep the paper's cache:workload ratio.
inline double cache_scale() {
  return static_cast<double>(requests_per_trace()) / 1e6;
}

inline const std::vector<gen::TraceClass>& all_trace_classes() {
  static const std::vector<gen::TraceClass> classes = {
      gen::TraceClass::kCdnA, gen::TraceClass::kCdnB, gen::TraceClass::kCdnC,
      gen::TraceClass::kWiki};
  return classes;
}

/// Generates (and memoizes per-process) the four paper-calibrated traces.
inline const trace::Trace& trace_for(gen::TraceClass c) {
  static std::vector<std::unique_ptr<trace::Trace>> cache(4);
  const auto idx = static_cast<std::size_t>(c);
  if (!cache[idx]) {
    cache[idx] = std::make_unique<trace::Trace>(
        gen::make_trace(c, requests_per_trace(), bench_seed()));
  }
  return *cache[idx];
}

/// Runs one policy over a trace with the §7.1 fairness accounting.
inline sim::SimMetrics run_policy(const std::string& name, gen::TraceClass c,
                                  std::uint64_t capacity_bytes) {
  auto policy = core::make_policy(name, capacity_bytes);
  return sim::simulate(*policy, trace_for(c));
}

/// WAN traffic rate in Gbps over the trace duration (Figure 8 bottom row).
inline double wan_gbps(const sim::SimMetrics& m, const trace::Trace& t) {
  const double duration = t.duration() > 0.0 ? t.duration() : 1.0;
  return m.wan_traffic_bytes() * 8.0 / duration / 1e9;
}

inline double gb(double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); }

// ---------------------------------------------------------------- output

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(synthetic traces: %zu requests/trace, seed %llu; see DESIGN.md)\n",
              requests_per_trace(),
              static_cast<unsigned long long>(bench_seed()));
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt(double value, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

inline std::string pct(double ratio) { return fmt(100.0 * ratio, 2); }

}  // namespace lhr::bench
