// Open-loop load generation for the saturation bench.
//
// A closed-loop replay (issue a request, wait for it to finish, issue the
// next) can never observe a saturated server: when the server slows down the
// generator slows down with it, and the latency numbers silently omit every
// request that *would* have queued — the classic coordinated-omission trap.
// An open-loop generator instead fixes the arrival schedule up front: a
// deterministic Poisson process at a target rate, independent of how fast
// the server drains it. Requests that arrive while the server is busy are
// charged their full queueing delay.
//
// This module produces the schedule. It rewrites a trace's timestamps onto
// exponential inter-arrival gaps (keys and sizes untouched, order
// preserved), so the cache dynamics — reuse distances, working set — stay
// those of the calibrated workload while the *rate* becomes the experiment
// variable. The schedule is a pure function of (seed, rate, request count):
// the same sweep replays bit-identically on any machine.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace lhr::bench {

struct LoadGenConfig {
  double target_rps = 100'000.0;  ///< mean offered load (Poisson rate λ)
  std::uint64_t seed = 1;         ///< drives the inter-arrival draws only
};

/// Rewrites `source` onto a deterministic Poisson arrival schedule at
/// `cfg.target_rps`. The i-th output request keeps the i-th input key/size;
/// its time is the cumulative sum of i.i.d. Exp(λ) gaps drawn from
/// Xoshiro256**(seed). The first arrival is at t = first gap (not 0), so
/// duration() ≈ n/λ for large n. Throws std::invalid_argument for a
/// non-positive rate.
[[nodiscard]] trace::Trace poisson_schedule(const trace::TraceSource& source,
                                            const LoadGenConfig& cfg);

}  // namespace lhr::bench
