// Extension: beyond-Poisson HRO. Compares the paper's Poisson hazard (§3.2)
// against the age-decay variant (per-content survival decay + fitted
// hyperexponential IRT mixture) on all four traces, and reports the fitted
// mixture parameters that characterize each trace's IRT process.
#include "bench/bench_common.hpp"
#include "hazard/hro.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: HRO hazard models (Poisson vs age-decay)");

  bench::print_row({"Trace", "Poisson(%)", "AgeDecay(%)", "fit p", "fit l1(1/s)",
                    "fit l2(1/s)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto& trace = bench::trace_for(c);
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());

    hazard::HroConfig poisson{.capacity_bytes = capacity};
    hazard::HroConfig decayed{.capacity_bytes = capacity};
    decayed.age_decay_hazard = true;

    hazard::Hro a(poisson), b(decayed);
    for (const auto& r : trace) {
      a.classify(r);
      b.classify(r);
    }
    const auto& model = b.irt_model();
    bench::print_row({gen::to_string(c), bench::pct(a.hit_ratio()),
                      bench::pct(b.hit_ratio()),
                      b.irt_model_ready() ? bench::fmt(model.p, 2) : "-",
                      b.irt_model_ready() ? bench::fmt(model.lambda1, 4) : "-",
                      b.irt_model_ready() ? bench::fmt(model.lambda2, 6) : "-"});
  }
  std::printf("\nlambda1 >> lambda2 confirms heavy-tailed (decreasing-hazard) IRTs;\n"
              "the age-decay bound reacts to it, the Poisson bound cannot.\n");
  return 0;
}
