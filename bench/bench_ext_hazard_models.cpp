// Extension: beyond-Poisson HRO. Compares the paper's Poisson hazard (§3.2)
// against the age-decay variant (per-content survival decay + fitted
// hyperexponential IRT mixture) on all four traces, and reports the fitted
// mixture parameters that characterize each trace's IRT process.
// One runner job per (trace, hazard model).
#include "bench/bench_common.hpp"
#include "hazard/hro.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: HRO hazard models (Poisson vs age-decay)");

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const bool age_decay : {false, true}) {
      runner::Job job;
      job.label = std::string(age_decay ? "age-decay/" : "poisson/") + gen::to_string(c);
      job.body = [c, capacity, age_decay](runner::Result& r) {
        hazard::HroConfig cfg{.capacity_bytes = capacity};
        cfg.age_decay_hazard = age_decay;
        hazard::Hro hro(cfg);
        for (const auto& req : bench::trace_for(c)) hro.classify(req);
        r.set("hit_ratio", hro.hit_ratio());
        if (age_decay && hro.irt_model_ready()) {
          const auto& model = hro.irt_model();
          r.set("fit_p", model.p);
          r.set("fit_lambda1", model.lambda1);
          r.set("fit_lambda2", model.lambda2);
          r.set("model_ready", 1.0);
        }
      };
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "Poisson(%)", "AgeDecay(%)", "fit p", "fit l1(1/s)",
                    "fit l2(1/s)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto& poisson = results[idx++];
    const auto& decayed = results[idx++];
    const bool ready = decayed.stat("model_ready") > 0.0;
    bench::print_row({gen::to_string(c), bench::pct(poisson.stat("hit_ratio")),
                      bench::pct(decayed.stat("hit_ratio")),
                      ready ? bench::fmt(decayed.stat("fit_p"), 2) : "-",
                      ready ? bench::fmt(decayed.stat("fit_lambda1"), 4) : "-",
                      ready ? bench::fmt(decayed.stat("fit_lambda2"), 6) : "-"});
  }
  std::printf("\nlambda1 >> lambda2 confirms heavy-tailed (decreasing-hazard) IRTs;\n"
              "the age-decay bound reacts to it, the Poisson bound cannot.\n");
  return 0;
}
