// Figure 9: peak memory and running time of the learning-augmented
// algorithms (LRB, Hawkeye, LHR). Paper claims: LHR needs less memory than
// LRB (whose per-request feature store dominates) but more than Hawkeye,
// and runs dramatically faster than LRB (no per-eviction model sweep over
// all cached objects).
//
// Extended with the training-overhead split: LHR is run both with the
// default synchronous retraining (the request path stalls at window
// boundaries) and with the background trainer ("LHR-Async"), reporting
// foreground stall seconds vs background wall-clock, model swaps, and the
// number of requests served on a stale model while a retrain was in flight.
#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

namespace {

/// Pulls the training-pipeline counters out of an LHR policy into the
/// result stats (no-op for the other learning policies).
void inspect_training(const lhr::sim::CachePolicy& policy, lhr::runner::Result& r) {
  const auto* lhr_cache = dynamic_cast<const lhr::core::LhrCache*>(&policy);
  if (lhr_cache == nullptr) return;
  // The engine is done with the policy here, and the inspect hook runs on
  // the job's own worker thread; joining the background trainer (so the
  // final window's train lands in the numbers) is safe despite the cast.
  const_cast<lhr::core::LhrCache*>(lhr_cache)->drain_training();
  // One consistent snapshot (single trainer-lock acquisition) instead of
  // per-accessor reads that a finishing fit could interleave.
  const auto stats = lhr_cache->training_stats();
  r.set("trainings", static_cast<double>(stats.trainings));
  r.set("train_foreground_seconds", stats.foreground_seconds);
  r.set("train_background_seconds", stats.background_seconds);
  r.set("model_swaps", static_cast<double>(stats.model_swaps));
  r.set("stale_requests", static_cast<double>(stats.stale_requests));
  r.set("deferred_trainings", static_cast<double>(stats.deferred_trainings));
}

}  // namespace

int main() {
  using namespace lhr;
  bench::print_header("Figure 9: peak memory and running time of learning policies");

  const std::vector<std::string> names = {"LRB", "Hawkeye", "LHR", "LHR-Async"};
  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto& name : names) {
      auto job = bench::sim_job(name, c, capacity);
      job.inspect = inspect_training;
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "Policy", "PeakMem(MB)", "RunTime(s)", "TrainFG(s)",
                    "TrainBG(s)", "Swaps", "Stale"});
  for (const auto c : bench::all_trace_classes()) {
    for (const auto& name : names) {
      const auto& result = results[idx++];
      const auto& metrics = result.metrics;
      const bool is_lhr = result.stat("trainings", -1.0) >= 0.0;
      bench::print_row({gen::to_string(c), name,
                        bench::fmt(double(metrics.peak_metadata_bytes) / 1e6, 1),
                        bench::fmt(metrics.wall_seconds, 2),
                        is_lhr ? bench::fmt(result.stat("train_foreground_seconds"), 3)
                               : "-",
                        is_lhr ? bench::fmt(result.stat("train_background_seconds"), 3)
                               : "-",
                        is_lhr ? bench::fmt(result.stat("model_swaps"), 0) : "-",
                        is_lhr ? bench::fmt(result.stat("stale_requests"), 0) : "-"});
    }
  }
  return 0;
}
