// Figure 9: peak memory and running time of the learning-augmented
// algorithms (LRB, Hawkeye, LHR). Paper claims: LHR needs less memory than
// LRB (whose per-request feature store dominates) but more than Hawkeye,
// and runs dramatically faster than LRB (no per-eviction model sweep over
// all cached objects).
#include "bench/bench_common.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 9: peak memory and running time of learning policies");

  const std::vector<std::string> names = {"LRB", "Hawkeye", "LHR"};
  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto& name : names) jobs.push_back(bench::sim_job(name, c, capacity));
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "Policy", "PeakMem(MB)", "RunTime(s)"});
  for (const auto c : bench::all_trace_classes()) {
    for (const auto& name : names) {
      const auto& metrics = results[idx++].metrics;
      bench::print_row({gen::to_string(c), name,
                        bench::fmt(double(metrics.peak_metadata_bytes) / 1e6, 1),
                        bench::fmt(metrics.wall_seconds, 2)});
    }
  }
  return 0;
}
