// Figure 9: peak memory and running time of the learning-augmented
// algorithms (LRB, Hawkeye, LHR). Paper claims: LHR needs less memory than
// LRB (whose per-request feature store dominates) but more than Hawkeye,
// and runs dramatically faster than LRB (no per-eviction model sweep over
// all cached objects).
#include <chrono>

#include "bench/bench_common.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 9: peak memory and running time of learning policies");

  bench::print_row({"Trace", "Policy", "PeakMem(MB)", "RunTime(s)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const std::string name : {"LRB", "Hawkeye", "LHR"}) {
      auto policy = core::make_policy(name, capacity);
      const auto t0 = std::chrono::steady_clock::now();
      const auto metrics = sim::simulate(*policy, bench::trace_for(c));
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      bench::print_row({gen::to_string(c), name,
                        bench::fmt(double(metrics.peak_metadata_bytes) / 1e6, 1),
                        bench::fmt(secs, 2)});
    }
  }
  return 0;
}
