// Figure 2: offline bounds (Belady-Size, PFOO-L), the online bound HRO, the
// best-performing SOTA, and LHR — per trace at two cache sizes.
//
// The paper's claims to reproduce: a 15-25% gap between the best SOTA and
// the tighter offline bound; HRO tighter than (below) the offline bounds
// while still above every online policy; LHR between the best SOTA and HRO.
//
// Per (trace, size) the grid is one free-form bounds job (Belady-Size,
// PFOO-L, HRO share a trace pass each) plus eight policy simulations; all of
// it runs on the shared pool in a single run_all.
#include "bench/bench_common.hpp"
#include "hazard/hro.hpp"
#include "opt/bounds.hpp"

int main() {
  using namespace lhr;
  bench::print_header(
      "Figure 2: hit probability of offline bounds, HRO, best SOTA, and LHR");

  auto policies = core::sota_policy_names();
  policies.push_back("LHR");

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto sizes = gen::paper_cache_sizes(c, bench::cache_scale());
    for (const auto capacity : {sizes[1], sizes[3]}) {  // two sizes, as in the paper
      runner::Job bounds;
      bounds.label = "bounds/" + gen::to_string(c);
      bounds.body = [c, capacity](runner::Result& r) {
        const auto& trace = bench::trace_for(c);
        r.set("belady_size", opt::belady_size(trace, capacity).hit_ratio());
        r.set("pfoo_l", opt::pfoo_l(trace, capacity).hit_ratio());
        hazard::Hro hro(hazard::HroConfig{.capacity_bytes = capacity});
        for (const auto& req : trace) hro.classify(req);
        r.set("hro", hro.hit_ratio());
      };
      jobs.push_back(std::move(bounds));
      for (const auto& name : policies) jobs.push_back(bench::sim_job(name, c, capacity));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "Cache(GB)", "Belady-Sz", "PFOO-L", "HRO", "BestSOTA",
                    "(which)", "LHR"});
  for (const auto c : bench::all_trace_classes()) {
    const auto sizes = gen::paper_cache_sizes(c, bench::cache_scale());
    for (const auto capacity : {sizes[1], sizes[3]}) {
      const auto& bounds = results[idx++];

      double best_sota = 0.0;
      std::string best_name;
      double lhr = 0.0;
      for (const auto& name : policies) {
        const double ratio = results[idx++].metrics.object_hit_ratio();
        if (name == "LHR") {
          lhr = ratio;
        } else if (ratio > best_sota) {
          best_sota = ratio;
          best_name = name;
        }
      }

      bench::print_row({gen::to_string(c),
                        bench::fmt(bench::gb(double(capacity)) / bench::cache_scale(), 0),
                        bench::pct(bounds.stat("belady_size")),
                        bench::pct(bounds.stat("pfoo_l")), bench::pct(bounds.stat("hro")),
                        bench::pct(best_sota), best_name, bench::pct(lhr)});
    }
  }
  std::printf("\nCache(GB) column shows the unscaled paper-equivalent size.\n");
  return 0;
}
