// Figure 2: offline bounds (Belady-Size, PFOO-L), the online bound HRO, the
// best-performing SOTA, and LHR — per trace at two cache sizes.
//
// The paper's claims to reproduce: a 15-25% gap between the best SOTA and
// the tighter offline bound; HRO tighter than (below) the offline bounds
// while still above every online policy; LHR between the best SOTA and HRO.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "hazard/hro.hpp"
#include "opt/bounds.hpp"

int main() {
  using namespace lhr;
  bench::print_header(
      "Figure 2: hit probability of offline bounds, HRO, best SOTA, and LHR");

  bench::print_row({"Trace", "Cache(GB)", "Belady-Sz", "PFOO-L", "HRO", "BestSOTA",
                    "(which)", "LHR"});

  for (const auto c : bench::all_trace_classes()) {
    const auto& trace = bench::trace_for(c);
    const auto sizes = gen::paper_cache_sizes(c, bench::cache_scale());
    // The paper shows two cache sizes per trace.
    for (const auto capacity : {sizes[1], sizes[3]}) {
      const auto bs = opt::belady_size(trace.requests(), capacity);
      const auto pfoo = opt::pfoo_l(trace.requests(), capacity);

      hazard::Hro hro(hazard::HroConfig{.capacity_bytes = capacity});
      for (const auto& r : trace) hro.classify(r);

      double best_sota = 0.0;
      std::string best_name;
      for (const auto& name : core::sota_policy_names()) {
        const double ratio = bench::run_policy(name, c, capacity).object_hit_ratio();
        if (ratio > best_sota) {
          best_sota = ratio;
          best_name = name;
        }
      }
      const double lhr = bench::run_policy("LHR", c, capacity).object_hit_ratio();

      bench::print_row({gen::to_string(c),
                        bench::fmt(bench::gb(double(capacity)) / bench::cache_scale(), 0),
                        bench::pct(bs.hit_ratio()), bench::pct(pfoo.hit_ratio()),
                        bench::pct(hro.hit_ratio()), bench::pct(best_sota), best_name,
                        bench::pct(lhr)});
    }
  }
  std::printf("\nCache(GB) column shows the unscaled paper-equivalent size.\n");
  return 0;
}
