// Extension ablation: LHR's training objective. §5.2.4 states squared error
// "achieves the best performance in our experiments compared to other loss
// functions that we explored" — this bench reproduces that comparison with
// the logistic alternative.
#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: LHR training-loss ablation (squared vs logistic)");

  bench::print_row({"Trace", "Loss", "Hit(%)", "TrainTime(s)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto loss : {ml::GbdtLoss::kSquared, ml::GbdtLoss::kLogistic}) {
      core::LhrConfig cfg;
      cfg.gbdt.loss = loss;
      core::LhrCache cache(capacity, cfg);
      const auto metrics = sim::simulate(cache, bench::trace_for(c));
      bench::print_row({gen::to_string(c),
                        loss == ml::GbdtLoss::kSquared ? "squared" : "logistic",
                        bench::pct(metrics.object_hit_ratio()),
                        bench::fmt(cache.training_seconds(), 3)});
    }
  }
  return 0;
}
