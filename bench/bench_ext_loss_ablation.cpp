// Extension ablation: LHR's training objective. §5.2.4 states squared error
// "achieves the best performance in our experiments compared to other loss
// functions that we explored" — this bench reproduces that comparison with
// the logistic alternative.
#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: LHR training-loss ablation (squared vs logistic)");

  const std::vector<ml::GbdtLoss> losses = {ml::GbdtLoss::kSquared,
                                            ml::GbdtLoss::kLogistic};
  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto loss : losses) {
      runner::Job job;
      job.trace_class = c;
      job.capacity_bytes = capacity;
      job.make = [capacity, loss]() -> std::unique_ptr<sim::CachePolicy> {
        core::LhrConfig cfg;
        cfg.gbdt.loss = loss;
        return std::make_unique<core::LhrCache>(capacity, cfg);
      };
      job.inspect = [](const sim::CachePolicy& policy, runner::Result& r) {
        r.set("training_seconds",
              static_cast<const core::LhrCache&>(policy).training_seconds());
      };
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "Loss", "Hit(%)", "TrainTime(s)"});
  for (const auto c : bench::all_trace_classes()) {
    for (const auto loss : losses) {
      const auto& r = results[idx++];
      bench::print_row({gen::to_string(c),
                        loss == ml::GbdtLoss::kSquared ? "squared" : "logistic",
                        bench::pct(r.metrics.object_hit_ratio()),
                        bench::fmt(r.stat("training_seconds"), 3)});
    }
  }
  return 0;
}
