// Extension: object-hit vs byte-hit objective. LHR's eviction rule
// (q = p/s · 1/IRT1) and object-weighted threshold tuning favor object hit
// probability, which can raise WAN bytes on large-object traces (see
// EXPERIMENTS.md, Table 2 note). This bench quantifies the trade by tuning
// δ for byte hits instead.
#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: LHR tuned for object hits vs byte hits (WAN traffic)");

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const bool byte_hit : {false, true}) {
      runner::Job job;
      job.trace_class = c;
      job.capacity_bytes = capacity;
      job.make = [capacity, byte_hit]() -> std::unique_ptr<sim::CachePolicy> {
        core::LhrConfig cfg;
        cfg.optimize_byte_hit = byte_hit;
        return std::make_unique<core::LhrCache>(capacity, cfg);
      };
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "Objective", "Hit(%)", "ByteHit(%)", "WAN(Gbps)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto& trace = bench::trace_for(c);
    for (const bool byte_hit : {false, true}) {
      const auto& m = results[idx++].metrics;
      bench::print_row({gen::to_string(c), byte_hit ? "byte-hit" : "object-hit",
                        bench::pct(m.object_hit_ratio()), bench::pct(m.byte_hit_ratio()),
                        bench::fmt(bench::wan_gbps(m, trace), 3)});
    }
  }
  return 0;
}
