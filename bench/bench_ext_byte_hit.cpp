// Extension: object-hit vs byte-hit objective. LHR's eviction rule
// (q = p/s · 1/IRT1) and object-weighted threshold tuning favor object hit
// probability, which can raise WAN bytes on large-object traces (see
// EXPERIMENTS.md, Table 2 note). This bench quantifies the trade by tuning
// δ for byte hits instead.
#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: LHR tuned for object hits vs byte hits (WAN traffic)");

  bench::print_row({"Trace", "Objective", "Hit(%)", "ByteHit(%)", "WAN(Gbps)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto& trace = bench::trace_for(c);
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const bool byte_hit : {false, true}) {
      core::LhrConfig cfg;
      cfg.optimize_byte_hit = byte_hit;
      core::LhrCache cache(capacity, cfg);
      const auto m = sim::simulate(cache, trace);
      bench::print_row({gen::to_string(c), byte_hit ? "byte-hit" : "object-hit",
                        bench::pct(m.object_hit_ratio()), bench::pct(m.byte_hit_ratio()),
                        bench::fmt(bench::wan_gbps(m, trace), 3)});
    }
  }
  return 0;
}
