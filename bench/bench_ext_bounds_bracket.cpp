// Extension: bracketing OPT. PFOO-U (achievable schedule, <= OPT) and
// PFOO-L (resource relaxation, >= OPT) pin the offline optimum from both
// sides; HRO and the remaining bounds are placed within that frame.
#include "bench/bench_common.hpp"
#include "hazard/hro.hpp"
#include "opt/bounds.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: bracketing OPT (PFOO-U <= OPT <= PFOO-L)");

  bench::print_row({"Trace", "Cache(GB)", "PFOO-U", "PFOO-L", "gap(pp)", "Belady",
                    "Belady-Sz", "HRO", "InfCap"});
  for (const auto c : bench::all_trace_classes()) {
    const auto& trace = bench::trace_for(c);
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());

    const auto u = opt::pfoo_u(trace.requests(), capacity);
    const auto l = opt::pfoo_l(trace.requests(), capacity);
    const auto b = opt::belady(trace.requests(), capacity);
    const auto bs = opt::belady_size(trace.requests(), capacity);
    const auto inf = opt::infinite_cap(trace.requests());
    hazard::Hro hro(hazard::HroConfig{.capacity_bytes = capacity});
    for (const auto& r : trace) hro.classify(r);

    bench::print_row(
        {gen::to_string(c),
         bench::fmt(bench::gb(double(capacity)) / bench::cache_scale(), 0),
         bench::pct(u.hit_ratio()), bench::pct(l.hit_ratio()),
         bench::fmt(100.0 * (l.hit_ratio() - u.hit_ratio()), 2),
         bench::pct(b.hit_ratio()), bench::pct(bs.hit_ratio()),
         bench::pct(hro.hit_ratio()), bench::pct(inf.hit_ratio())});
  }
  std::printf("\nOPT lies inside [PFOO-U, PFOO-L]; a small gap certifies both.\n");
  return 0;
}
