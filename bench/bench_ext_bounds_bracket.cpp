// Extension: bracketing OPT. PFOO-U (achievable schedule, <= OPT) and
// PFOO-L (resource relaxation, >= OPT) pin the offline optimum from both
// sides; HRO and the remaining bounds are placed within that frame.
// Each bound on each trace is its own runner job (24 jobs), so the offline
// computations — by far the slowest part — spread across all cores.
#include "bench/bench_common.hpp"
#include "hazard/hro.hpp"
#include "opt/bounds.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Extension: bracketing OPT (PFOO-U <= OPT <= PFOO-L)");

  using BoundFn = double (*)(const trace::TraceSource&, std::uint64_t);
  struct Bound {
    const char* name;
    BoundFn fn;
  };
  const std::vector<Bound> bounds = {
      {"pfoo_u", [](const trace::TraceSource& t, std::uint64_t cap) {
         return opt::pfoo_u(t, cap).hit_ratio(); }},
      {"pfoo_l", [](const trace::TraceSource& t, std::uint64_t cap) {
         return opt::pfoo_l(t, cap).hit_ratio(); }},
      {"belady", [](const trace::TraceSource& t, std::uint64_t cap) {
         return opt::belady(t, cap).hit_ratio(); }},
      {"belady_size", [](const trace::TraceSource& t, std::uint64_t cap) {
         return opt::belady_size(t, cap).hit_ratio(); }},
      {"hro", [](const trace::TraceSource& t, std::uint64_t cap) {
         hazard::Hro hro(hazard::HroConfig{.capacity_bytes = cap});
         for (const auto& r : t) hro.classify(r);
         return hro.hit_ratio(); }},
      {"inf_cap", [](const trace::TraceSource& t, std::uint64_t) {
         return opt::infinite_cap(t).hit_ratio(); }},
  };

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto& bound : bounds) {
      runner::Job job;
      job.label = std::string(bound.name) + "/" + gen::to_string(c);
      const BoundFn fn = bound.fn;
      job.body = [c, capacity, fn](runner::Result& r) {
        r.set("hit_ratio", fn(bench::trace_for(c), capacity));
      };
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "Cache(GB)", "PFOO-U", "PFOO-L", "gap(pp)", "Belady",
                    "Belady-Sz", "HRO", "InfCap"});
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    const double u = results[idx + 0].stat("hit_ratio");
    const double l = results[idx + 1].stat("hit_ratio");
    const double b = results[idx + 2].stat("hit_ratio");
    const double bs = results[idx + 3].stat("hit_ratio");
    const double hro = results[idx + 4].stat("hit_ratio");
    const double inf = results[idx + 5].stat("hit_ratio");
    idx += bounds.size();

    bench::print_row(
        {gen::to_string(c),
         bench::fmt(bench::gb(double(capacity)) / bench::cache_scale(), 0),
         bench::pct(u), bench::pct(l), bench::fmt(100.0 * (l - u), 2),
         bench::pct(b), bench::pct(bs), bench::pct(hro), bench::pct(inf)});
  }
  std::printf("\nOPT lies inside [PFOO-U, PFOO-L]; a small gap certifies both.\n");
  return 0;
}
