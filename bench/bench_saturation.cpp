// Saturation sweep: open-loop offered load vs achieved throughput and
// sojourn-time percentiles for the CdnServer request path.
//
// Each sweep point rewrites the calibrated trace onto a deterministic
// Poisson arrival schedule at a target rate (bench/load_gen.hpp) and replays
// it through CdnServer::replay_open_loop, which wall-clock-times every
// request and pushes it through per-worker virtual queues. Because the
// schedule never slows down with the server, the p99/p999 sojourn columns
// include queueing delay — the knee (achieved < 0.95 × offered) is where
// the hot path stops keeping up, and the tail explodes just before it.
//
// Knobs (besides the bench_common ones):
//   LHR_SAT_TARGET_RPS  comma-separated offered loads in req/s
//                       (default: auto-calibrate peak rate, sweep
//                        0.5/0.7/0.85/0.95/1.05/1.2/1.5 × peak)
//   LHR_SAT_POLICIES    comma-separated policy names (default "LRU,LHR")
//   LHR_SERVE_THREADS   replay workers (default 1)
//   LHR_SAT_PROCS       comma-separated process counts for the closed-loop
//                       fan-out sweep (default "1,2"; aggregate req/s per
//                       count — each worker process re-execs this binary)
//   LHR_PERF_COUNTERS   "1" → add cycles/req + LLC-miss/req columns via
//                       perf_event_open (Linux; silently "-" when the PMU
//                       is unavailable, e.g. perf_event_paranoid >= 2)
#include <cstring>

#include "bench/bench_common.hpp"
#include "bench/load_gen.hpp"
#include "core/proc_replay.hpp"
#include "util/perf_counters.hpp"

namespace {

using namespace lhr;

bool perf_requested() {
  const char* env = std::getenv("LHR_PERF_COUNTERS");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  if (s == nullptr) return out;
  const std::string str(s);
  std::size_t start = 0;
  while (start <= str.size()) {
    const std::size_t comma = str.find(',', start);
    const std::string tok =
        str.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<double> target_rps_env() {
  std::vector<double> out;
  for (const auto& tok : split_csv(std::getenv("LHR_SAT_TARGET_RPS"))) {
    const double v = std::atof(tok.c_str());
    if (v > 0.0) out.push_back(v);
  }
  return out;
}

std::vector<std::string> policies_env() {
  auto out = split_csv(std::getenv("LHR_SAT_POLICIES"));
  if (out.empty()) out = {"LRU", "LHR"};
  return out;
}

struct PointResult {
  double offered = 0.0;
  double achieved = 0.0;
  runner::Result result;
};

/// One sweep point: fresh server, Poisson-rescheduled trace, open-loop
/// replay. Runs on the calling thread — saturation points measure wall
/// clock, so they must never share the machine with each other.
PointResult run_point(const std::string& policy, gen::TraceClass c,
                      double offered_rps, std::size_t workers, bool with_perf) {
  const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
  const trace::Trace scheduled = bench::poisson_schedule(
      bench::trace_for(c), {.target_rps = offered_rps, .seed = bench::bench_seed()});

  server::ServerConfig cfg;
  cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1 << 20);
  bench::apply_resilience_env(cfg);
  server::CdnServer server(
      bench::make_sharded_policy(policy, bench::serve_shards(), capacity), cfg);

  util::PerfCounters perf;
  if (with_perf) perf.start();
  const server::ServerReport report = server.replay_open_loop(scheduled, workers);
  if (with_perf) perf.stop();

  PointResult point;
  point.offered = report.offered_rps;
  point.achieved = report.achieved_rps;
  runner::Result& r = point.result;
  r.label = "saturation/" + policy + "/" + gen::to_string(c);
  r.policy = policy;
  r.trace = gen::to_string(c);
  r.capacity_bytes = capacity;
  r.set("offered_rps", report.offered_rps);
  r.set("achieved_rps", report.achieved_rps);
  r.set("sojourn_p50_ms", report.sojourn_p50_ms);
  r.set("sojourn_p99_ms", report.sojourn_p99_ms);
  r.set("sojourn_p999_ms", report.sojourn_p999_ms);
  r.set("sojourn_avg_ms", report.sojourn_avg_ms);
  r.set("queue_wait_p99_ms", report.queue_wait_p99_ms);
  r.set("service_avg_us", report.service_avg_us);
  r.set("queued_requests", static_cast<double>(report.queued_requests));
  r.set("content_hit_pct", report.content_hit_pct);
  r.set("serve_threads", static_cast<double>(report.replay_threads));
  r.set("saturated",
        report.achieved_rps < 0.95 * report.offered_rps ? 1.0 : 0.0);
  if (with_perf) {
    const util::PerfReading reading = perf.read();
    const double n = std::max<double>(1.0, static_cast<double>(report.requests));
    r.set("perf_valid", reading.valid ? 1.0 : 0.0);
    r.set("cycles_per_req",
          reading.valid ? static_cast<double>(reading.cycles) / n : 0.0);
    r.set("llc_miss_per_req",
          reading.valid ? static_cast<double>(reading.llc_misses) / n : 0.0);
  }
  return point;
}

/// Peak service rate: offer an absurd load so arrivals are effectively
/// back-to-back; the achieved rate then measures pure service capacity.
double calibrate_peak_rps(const std::string& policy, gen::TraceClass c,
                          std::size_t workers) {
  const PointResult p = run_point(policy, c, 1e9, workers, /*with_perf=*/false);
  return std::max(p.achieved, 1.0);
}

/// Closed-loop process fan-out sweep: aggregate req/s of the kMax replay at
/// each LHR_SAT_PROCS process count. Workers re-exec this binary in hidden
/// --replay-worker mode (the hook at the top of main) and mmap the spilled
/// trace read-only, so the sweep measures real multi-core service capacity
/// rather than one address space's lock behaviour.
void run_proc_sweep(const std::vector<std::string>& policies,
                    gen::TraceClass c, std::size_t threads,
                    std::vector<lhr::runner::Result>& all_results) {
  const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
  const std::string trace_path =
      runner::TraceCache::global().lhrt_path_for(c);
  const std::vector<std::size_t> procs_list =
      bench::env_count_list("LHR_SAT_PROCS", "1,2");

  std::printf("\nClosed-loop process fan-out (kMax replay, %zu thread%s/process):\n",
              threads, threads == 1 ? "" : "s");
  bench::print_row({"Policy", "Procs", "Aggregate/s", "Wall(s)"}, 14);
  for (const auto& policy : policies) {
    double base_rps = 0.0;
    for (const std::size_t procs : procs_list) {
      core::ProcReplayJob spec;
      spec.trace_path = trace_path;
      spec.policy = policy;
      spec.capacity_bytes = capacity;
      spec.shards = bench::serve_shards();
      spec.procs = procs;
      spec.threads = threads;
      spec.mode = server::ReplayMode::kMax;
      spec.origin_profile = bench::origin_profile_spec();
      spec.fault_schedule = bench::fault_schedule_spec();
      const server::ServerReport report = core::run_proc_replay(spec);
      const double rps =
          report.replay_wall_seconds > 0.0
              ? static_cast<double>(report.requests) / report.replay_wall_seconds
              : 0.0;
      if (base_rps == 0.0) base_rps = rps;
      bench::print_row({policy, std::to_string(procs), bench::fmt(rps, 0),
                        bench::fmt(report.replay_wall_seconds, 3)},
                       14);
      runner::Result r;
      r.label = "saturation/proc_sweep/" + policy + "/procs=" +
                std::to_string(procs);
      r.policy = policy;
      r.trace = gen::to_string(c);
      r.capacity_bytes = capacity;
      r.set("procs", static_cast<double>(procs));
      r.set("serve_threads", static_cast<double>(threads));
      r.set("aggregate_rps", rps);
      r.set("requests", static_cast<double>(report.requests));
      r.set("replay_wall_seconds", report.replay_wall_seconds);
      r.set("content_hit_pct", report.content_hit_pct);
      all_results.push_back(std::move(r));
    }
    if (procs_list.size() > 1 && base_rps > 0.0) {
      std::printf("%s fan-out speedup procs=%zu -> procs=%zu: %.2fx\n",
                  policy.c_str(), procs_list.front(), procs_list.back(),
                  all_results.back().stat("aggregate_rps") / base_rps);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden worker mode: the proc sweep re-execs this binary per worker
  // process; the hook replays the slice and exits before the sweep setup.
  if (const int rc = lhr::core::proc_replay_worker_main(argc, argv); rc >= 0) {
    return rc;
  }
  bench::print_header(
      "Saturation: open-loop offered load vs achieved throughput (CdnServer)");

  const std::size_t workers = std::max<std::size_t>(1, bench::serve_threads());
  const bool with_perf = perf_requested();
  const std::vector<double> fixed_rates = target_rps_env();
  const auto c = gen::TraceClass::kCdnA;

  if (with_perf && !util::PerfCounters().available()) {
    std::printf("(LHR_PERF_COUNTERS=1 but perf_event_open is unavailable; "
                "cycle/LLC columns will print \"-\")\n");
  }

  std::vector<runner::Result> all_results;
  for (const auto& policy : policies_env()) {
    std::vector<double> rates = fixed_rates;
    if (rates.empty()) {
      const double peak = calibrate_peak_rps(policy, c, workers);
      std::printf("\n%s: calibrated peak ≈ %.0f req/s (%zu worker%s)\n",
                  policy.c_str(), peak, workers, workers == 1 ? "" : "s");
      for (const double f : {0.5, 0.7, 0.85, 0.95, 1.05, 1.2, 1.5}) {
        rates.push_back(peak * f);
      }
    } else {
      std::printf("\n%s: LHR_SAT_TARGET_RPS sweep (%zu worker%s)\n",
                  policy.c_str(), workers, workers == 1 ? "" : "s");
    }

    std::vector<std::string> header = {"Offered/s", "Achieved/s", "p50(ms)",
                                       "p99(ms)",   "p999(ms)",   "QueueP99",
                                       "Svc(us)",   "Queued"};
    if (with_perf) {
      header.push_back("Cyc/req");
      header.push_back("LLCm/req");
    }
    bench::print_row(header, 12);

    double knee_rps = 0.0;
    for (const double rate : rates) {
      PointResult p = run_point(policy, c, rate, workers, with_perf);
      std::vector<std::string> cells = {
          bench::fmt(p.offered, 0),
          bench::fmt(p.achieved, 0),
          bench::fmt(p.result.stat("sojourn_p50_ms"), 3),
          bench::fmt(p.result.stat("sojourn_p99_ms"), 3),
          bench::fmt(p.result.stat("sojourn_p999_ms"), 3),
          bench::fmt(p.result.stat("queue_wait_p99_ms"), 3),
          bench::fmt(p.result.stat("service_avg_us"), 2),
          bench::fmt(p.result.stat("queued_requests"), 0)};
      if (with_perf) {
        if (p.result.stat("perf_valid") == 1.0) {
          cells.push_back(bench::fmt(p.result.stat("cycles_per_req"), 0));
          cells.push_back(bench::fmt(p.result.stat("llc_miss_per_req"), 1));
        } else {
          cells.push_back("-");
          cells.push_back("-");
        }
      }
      bench::print_row(cells, 12);
      if (knee_rps == 0.0 && p.achieved < 0.95 * p.offered) knee_rps = p.offered;
      all_results.push_back(std::move(p.result));
    }
    if (knee_rps > 0.0) {
      std::printf("%s knee: offered %.0f req/s (achieved < 0.95 x offered)\n",
                  policy.c_str(), knee_rps);
    } else {
      std::printf("%s knee: not reached in this sweep\n", policy.c_str());
    }
    // One summary row per policy so tools/bench_compare can track the knee
    // (0 = not reached) without re-deriving it from the per-rate rows.
    runner::Result knee;
    knee.label = "saturation/" + policy + "/" + gen::to_string(c) + "/knee";
    knee.policy = policy;
    knee.trace = gen::to_string(c);
    knee.set("knee_rps", knee_rps);
    knee.set("serve_threads", static_cast<double>(workers));
    all_results.push_back(std::move(knee));
  }

  run_proc_sweep(policies_env(), c, workers, all_results);

  runner::append_jsonl_if_configured(all_results);
  return 0;
}
