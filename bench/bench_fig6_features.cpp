// Figure 6: impact of the feature set — static features and the number of
// IRT features (10/20/30) — on LHR's hit probability and overhead.
// The paper reports hit improvements relative to the 10-IRT configuration.
#include <chrono>

#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 6: impact of content features on LHR");

  struct Variant {
    std::string label;
    std::size_t irts;
    bool statics;
  };
  const std::vector<Variant> variants = {
      {"10d(base)", 10, false}, {"10d+s", 10, true}, {"20d+s", 20, true},
      {"30d+s", 30, true}};

  bench::print_row({"Trace", "Features", "Hit(%)", "dHit(pp)", "Meta(MB)", "Time(s)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    double base_hit = 0.0;
    for (const auto& v : variants) {
      core::LhrConfig cfg;
      cfg.features.num_irts = v.irts;
      cfg.features.include_static = v.statics;
      core::LhrCache lhr(capacity, cfg);
      const auto t0 = std::chrono::steady_clock::now();
      const auto metrics = sim::simulate(lhr, bench::trace_for(c));
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      const double hit = metrics.object_hit_ratio();
      if (v.label == "10d(base)") base_hit = hit;
      bench::print_row({gen::to_string(c), v.label, bench::pct(hit),
                        bench::fmt(100.0 * (hit - base_hit), 2),
                        bench::fmt(double(metrics.peak_metadata_bytes) / 1e6, 1),
                        bench::fmt(secs, 2)});
    }
  }
  std::printf("\nPaper default: 20 IRTs + static features.\n");
  return 0;
}
