// Figure 6: impact of the feature set — static features and the number of
// IRT features (10/20/30) — on LHR's hit probability and overhead.
// The paper reports hit improvements relative to the 10-IRT configuration.
#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 6: impact of content features on LHR");

  struct Variant {
    std::string label;
    std::size_t irts;
    bool statics;
  };
  const std::vector<Variant> variants = {
      {"10d(base)", 10, false}, {"10d+s", 10, true}, {"20d+s", 20, true},
      {"30d+s", 30, true}};

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const auto& v : variants) {
      runner::Job job;
      job.trace_class = c;
      job.capacity_bytes = capacity;
      job.make = [capacity, v]() -> std::unique_ptr<sim::CachePolicy> {
        core::LhrConfig cfg;
        cfg.features.num_irts = v.irts;
        cfg.features.include_static = v.statics;
        return std::make_unique<core::LhrCache>(capacity, cfg);
      };
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "Features", "Hit(%)", "dHit(pp)", "Meta(MB)", "Time(s)"});
  for (const auto c : bench::all_trace_classes()) {
    double base_hit = 0.0;
    for (const auto& v : variants) {
      const auto& metrics = results[idx++].metrics;
      const double hit = metrics.object_hit_ratio();
      if (v.label == "10d(base)") base_hit = hit;
      bench::print_row({gen::to_string(c), v.label, bench::pct(hit),
                        bench::fmt(100.0 * (hit - base_hit), 2),
                        bench::fmt(double(metrics.peak_metadata_bytes) / 1e6, 1),
                        bench::fmt(metrics.wall_seconds, 2)});
    }
  }
  std::printf("\nPaper default: 20 IRTs + static features.\n");
  return 0;
}
