// Figure 5: impact of the sliding-window size (unique bytes as a multiple of
// the cache size) on LHR's hit probability, memory, and running time.
#include <chrono>

#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 5: impact of sliding window size on LHR");

  bench::print_row({"Trace", "WindowMult", "Hit(%)", "PeakMeta(MB)", "Time(s)"});
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const double mult : {1.0, 2.0, 4.0, 8.0}) {
      core::LhrConfig cfg;
      cfg.window_unique_bytes_mult = mult;
      core::LhrCache lhr(capacity, cfg);
      const auto t0 = std::chrono::steady_clock::now();
      const auto metrics = sim::simulate(lhr, bench::trace_for(c));
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      bench::print_row({gen::to_string(c), bench::fmt(mult, 0) + "x",
                        bench::pct(metrics.object_hit_ratio()),
                        bench::fmt(double(metrics.peak_metadata_bytes) / 1e6, 1),
                        bench::fmt(secs, 2)});
    }
  }
  std::printf("\nPaper default: 4x (the knee of the hit-vs-overhead tradeoff).\n");
  return 0;
}
