// Figure 5: impact of the sliding-window size (unique bytes as a multiple of
// the cache size) on LHR's hit probability, memory, and running time.
#include "bench/bench_common.hpp"
#include "core/lhr_cache.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 5: impact of sliding window size on LHR");

  const std::vector<double> mults = {1.0, 2.0, 4.0, 8.0};
  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto capacity = gen::headline_cache_size(c, bench::cache_scale());
    for (const double mult : mults) {
      runner::Job job;
      job.trace_class = c;
      job.capacity_bytes = capacity;
      job.make = [capacity, mult]() -> std::unique_ptr<sim::CachePolicy> {
        core::LhrConfig cfg;
        cfg.window_unique_bytes_mult = mult;
        return std::make_unique<core::LhrCache>(capacity, cfg);
      };
      jobs.push_back(std::move(job));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  bench::print_row({"Trace", "WindowMult", "Hit(%)", "PeakMeta(MB)", "Time(s)"});
  for (const auto c : bench::all_trace_classes()) {
    for (const double mult : mults) {
      const auto& metrics = results[idx++].metrics;
      bench::print_row({gen::to_string(c), bench::fmt(mult, 0) + "x",
                        bench::pct(metrics.object_hit_ratio()),
                        bench::fmt(double(metrics.peak_metadata_bytes) / 1e6, 1),
                        bench::fmt(metrics.wall_seconds, 2)});
    }
  }
  std::printf("\nPaper default: 4x (the knee of the hit-vs-overhead tradeoff).\n");
  return 0;
}
