// Microbenchmarks (google-benchmark): per-request cost of the data
// structures and policies, backing the running-time claims of Figure 9 and
// the latency-model inputs of Table 3.
//
// main() first runs the GBDT training-throughput suite (fit rows/s at
// 1/2/4/8 threads, predict vs predict_many), the GBDT inference suite
// (ns/row of node-walk vs FlatForest vs score_block, with the exact-
// equivalence verdict CI greps) and the serving-throughput suite
// (CdnServer::replay_concurrent req/s at 1/2/4/8 threads over a
// ShardedCache(LRU) backend) through the experiment runner so the numbers
// land in LHR_BENCH_JSONL like every other bench, then hands the remaining
// argv to google-benchmark. LHR_MICRO_GBDT_ROWS overrides the 50'000-row
// training batch; LHR_MICRO_INFER_ROWS the 20'000 scored rows;
// LHR_MICRO_SERVE_REQUESTS / LHR_MICRO_SERVE_THREADS scale the serving
// suite (CI smoke runs use small values).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/policy_factory.hpp"
#include "core/proc_replay.hpp"
#include "gen/cdn_model.hpp"
#include "gen/zipf.hpp"
#include "policies/lru.hpp"
#include "runner/runner.hpp"
#include "runner/trace_cache.hpp"
#include "hazard/hro.hpp"
#include "ml/features.hpp"
#include "ml/flat_forest.hpp"
#include "ml/gbdt.hpp"
#include "ml/simd_dispatch.hpp"
#include "server/cdn_server.hpp"
#include "server/sharded_cache.hpp"
#include "util/count_min_sketch.hpp"
#include "util/density_index.hpp"
#include "util/rng.hpp"

namespace {

using namespace lhr;

std::vector<trace::Request> zipf_requests(std::size_t n) {
  gen::ZipfSampler zipf(50'000, 0.9);
  util::Xoshiro256 rng(7);
  std::vector<trace::Request> reqs;
  reqs.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += 0.01;
    const auto k = zipf.sample(rng);
    reqs.push_back({t, k, 1'000 + (k % 100) * 1'000});
  }
  return reqs;
}

void BM_PolicyAccess(benchmark::State& state, const std::string& name) {
  const auto reqs = zipf_requests(200'000);
  auto policy = core::make_policy(name, 20ULL << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->access(reqs[i]));
    i = (i + 1) % reqs.size();
  }
}

void BM_HroClassify(benchmark::State& state) {
  const auto reqs = zipf_requests(200'000);
  hazard::Hro hro(hazard::HroConfig{.capacity_bytes = 20ULL << 20});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hro.classify(reqs[i]));
    i = (i + 1) % reqs.size();
  }
}

void BM_DensityIndexUpsert(benchmark::State& state) {
  util::DensityIndex index;
  util::Xoshiro256 rng(3);
  std::uint64_t id = 0;
  for (auto _ : state) {
    index.upsert(id % 100'000, 1e-6 + rng.next_double(), 1 + rng.next_below(1'000'000));
    ++id;
  }
}

void BM_CountMinIncrement(benchmark::State& state) {
  util::CountMinSketch sketch(1 << 18, 10ULL << 18);
  util::Xoshiro256 rng(5);
  for (auto _ : state) {
    sketch.increment(rng.next_below(1 << 20));
  }
}

void BM_FeatureExtract(benchmark::State& state) {
  ml::FeatureExtractor fx;
  const auto reqs = zipf_requests(100'000);
  for (const auto& r : reqs) fx.record(r);
  std::vector<float> out(fx.dim());
  std::size_t i = 0;
  for (auto _ : state) {
    fx.extract(reqs[i], out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % reqs.size();
  }
}

void BM_GbdtPredict(benchmark::State& state) {
  // Train once on synthetic data shaped like LHR's feature matrix.
  const std::size_t dim = 24;
  util::Xoshiro256 rng(11);
  ml::Dataset d;
  d.n_features = dim;
  std::vector<float> y;
  for (int i = 0; i < 20'000; ++i) {
    for (std::size_t f = 0; f < dim; ++f) {
      d.values.push_back(static_cast<float>(rng.next_double()));
    }
    y.push_back(static_cast<float>(rng.next_double()));
  }
  ml::Gbdt model;
  ml::GbdtConfig cfg;
  model.fit(d, y, cfg);

  std::vector<float> x(dim, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
}

void BM_GbdtTrain(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 24;
  util::Xoshiro256 rng(13);
  ml::Dataset d;
  d.n_features = dim;
  std::vector<float> y;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t f = 0; f < dim; ++f) {
      d.values.push_back(static_cast<float>(rng.next_double()));
    }
    y.push_back(static_cast<float>(rng.next_double()));
  }
  ml::GbdtConfig cfg;
  for (auto _ : state) {
    ml::Gbdt model;
    model.fit(d, y, cfg);
    benchmark::DoNotOptimize(model.tree_count());
  }
}

// ----------------------------------------------------------------- GBDT
// Training-batch generator shaped like an LHR retraining window: `dim`
// features, ~15% missing cells (IRT_k features are NaN until a content has
// been seen k+1 times), HRO-style {0,1}-leaning targets.
ml::Dataset gbdt_batch(std::size_t rows, std::size_t dim, std::vector<float>& y) {
  util::Xoshiro256 rng(17);
  ml::Dataset d;
  d.n_features = dim;
  d.values.reserve(rows * dim);
  y.clear();
  y.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t f = 0; f < dim; ++f) {
      if (rng.next_double() < 0.15) {
        d.values.push_back(std::numeric_limits<float>::quiet_NaN());
      } else {
        const float v = static_cast<float>(rng.next_double());
        d.values.push_back(v);
        acc += v;
      }
    }
    y.push_back(acc / static_cast<double>(dim) > 0.42 ? 1.0f : 0.0f);
  }
  return d;
}

std::size_t micro_gbdt_rows() {
  if (const char* env = std::getenv("LHR_MICRO_GBDT_ROWS")) {
    const long value = std::atol(env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 50'000;
}

std::uint64_t model_fingerprint(const ml::Gbdt& model) {
  std::ostringstream os;
  model.save(os);
  return std::hash<std::string>{}(os.str());
}

void BM_GbdtFitThreads(benchmark::State& state) {
  static std::vector<float> y;
  static const ml::Dataset d = gbdt_batch(micro_gbdt_rows(), 12, y);
  ml::GbdtConfig cfg;
  cfg.n_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::Gbdt model;
    model.fit(d, y, cfg);
    benchmark::DoNotOptimize(model.tree_count());
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(d.n_rows()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_GbdtPredictMany(benchmark::State& state) {
  static std::vector<float> y;
  static const ml::Dataset d = gbdt_batch(20'000, 12, y);
  static const ml::Gbdt model = [] {
    ml::Gbdt m;
    m.fit(d, y, ml::GbdtConfig{});
    return m;
  }();
  std::vector<double> out(d.n_rows());
  for (auto _ : state) {
    model.predict_many(d, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(d.n_rows()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_FlatForestScoreRow(benchmark::State& state) {
  static std::vector<float> y;
  static const ml::Dataset d = gbdt_batch(20'000, 12, y);
  static const ml::Gbdt model = [] {
    ml::Gbdt m;
    m.fit(d, y, ml::GbdtConfig{});
    return m;
  }();
  static const ml::FlatForest forest(model);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.score_row(d.row(i)));
    i = (i + 1) % d.n_rows();
  }
}

void BM_FlatForestScoreBlock(benchmark::State& state) {
  static std::vector<float> y;
  static const ml::Dataset d = gbdt_batch(20'000, 12, y);
  static const ml::Gbdt model = [] {
    ml::Gbdt m;
    m.fit(d, y, ml::GbdtConfig{});
    return m;
  }();
  static const ml::FlatForest forest(model);
  std::vector<double> out(d.n_rows());
  for (auto _ : state) {
    forest.score_block(d, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(d.n_rows()), benchmark::Counter::kIsIterationInvariantRate);
}

// The headline GBDT suite, run through the experiment runner (serially: the
// jobs themselves own the thread scaling under test) so the numbers are
// appended to LHR_BENCH_JSONL like every other bench table.
void run_gbdt_suite() {
  const std::size_t rows = micro_gbdt_rows();
  const std::size_t dim = 12;
  std::vector<float> y;
  const ml::Dataset d = gbdt_batch(rows, dim, y);
  const ml::GbdtConfig base_config;

  std::vector<runner::Job> jobs;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    runner::Job job;
    job.label = "gbdt_fit/threads=" + std::to_string(threads);
    job.body = [&, threads](runner::Result& r) {
      ml::GbdtConfig cfg = base_config;
      cfg.n_threads = threads;
      ml::Gbdt model;
      const auto t0 = std::chrono::steady_clock::now();
      model.fit(d, y, cfg);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      r.set("threads", static_cast<double>(threads));
      r.set("rows", static_cast<double>(rows));
      r.set("fit_seconds", seconds);
      r.set("rows_per_second", seconds > 0.0 ? static_cast<double>(rows) / seconds : 0.0);
      // Low 32 bits of the serialized-model hash: every thread count must
      // produce the same value (the fit determinism guarantee).
      r.set("model_fingerprint",
            static_cast<double>(model_fingerprint(model) & 0xffffffffULL));
    };
    jobs.push_back(std::move(job));
  }

  {
    runner::Job job;
    job.label = "gbdt_predict/one_vs_many";
    job.body = [&](runner::Result& r) {
      ml::Gbdt model;
      model.fit(d, y, base_config);
      const std::size_t n = d.n_rows();
      std::vector<double> out(n);

      auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < n; ++i) out[i] = model.predict(d.row(i));
      const double loop_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      benchmark::DoNotOptimize(out.data());

      t0 = std::chrono::steady_clock::now();
      model.predict_many(d, out);
      const double many_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      benchmark::DoNotOptimize(out.data());

      r.set("rows", static_cast<double>(n));
      r.set("predict_ns_per_row", 1e9 * loop_seconds / static_cast<double>(n));
      r.set("predict_many_ns_per_row", 1e9 * many_seconds / static_cast<double>(n));
    };
    jobs.push_back(std::move(job));
  }

  runner::RunOptions options;
  options.threads = 1;  // each job scales its own workers; don't stack pools
  const auto results = runner::run_all(jobs, options);
  runner::append_jsonl_if_configured(results);

  std::printf("GBDT fit throughput (%zu rows x %zu features, %zu trees):\n", rows, dim,
              base_config.num_trees);
  double fingerprint = -1.0;
  bool identical = true;
  for (const auto& r : results) {
    if (r.label.rfind("gbdt_fit/", 0) == 0) {
      std::printf("  %-24s %10.0f rows/s  (%.3f s)\n", r.label.c_str(),
                  r.stat("rows_per_second"), r.stat("fit_seconds"));
      const double fp = r.stat("model_fingerprint");
      if (fingerprint < 0.0) fingerprint = fp;
      identical = identical && fp == fingerprint;
    } else {
      std::printf("  %-24s predict %.0f ns/row, predict_many %.0f ns/row\n",
                  r.label.c_str(), r.stat("predict_ns_per_row"),
                  r.stat("predict_many_ns_per_row"));
    }
  }
  std::printf("  models byte-identical across thread counts: %s\n",
              identical ? "yes" : "NO -- DETERMINISM BUG");
}

// -------------------------------------------------------------- inference
// The GBDT inference suite: ns/row of the three scoring paths over the same
// trained model — Gbdt::predict (pointer-chasing node walk), FlatForest::
// score_row (SoA walk), and FlatForest::score_block at caller-side block
// sizes 1/4/16 (16 = kBlockRows, the shipped configuration). Every path
// must produce bit-identical doubles; the suite prints the max |dscore|
// across all paths and rows, and CI greps the "= 0 (exact)" verdict.
//   LHR_MICRO_INFER_ROWS  rows scored per path (default 20'000)
std::size_t micro_infer_rows() {
  if (const char* env = std::getenv("LHR_MICRO_INFER_ROWS")) {
    const long value = std::atol(env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 20'000;
}

void run_inference_suite() {
  const std::size_t rows = micro_infer_rows();
  const std::size_t dim = 24;
  std::vector<float> y;
  const ml::Dataset d = gbdt_batch(rows, dim, y);
  ml::Gbdt model;
  model.fit(d, y, ml::GbdtConfig{});
  const ml::FlatForest forest(model);

  // Node-walk reference scores: every flat path is compared against these.
  std::vector<double> reference(rows);
  for (std::size_t i = 0; i < rows; ++i) reference[i] = model.predict(d.row(i));

  // Scoring loops are repeated until the timed region is long enough to
  // trust (tiny CI row counts would otherwise measure clock noise).
  const auto time_ns_per_row = [&](const std::function<void()>& pass) {
    constexpr double kMinSeconds = 0.02;
    double seconds = 0.0;
    std::size_t passes = 0;
    while (seconds < kMinSeconds) {
      const auto t0 = std::chrono::steady_clock::now();
      pass();
      seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      ++passes;
    }
    return 1e9 * seconds / (static_cast<double>(passes) * static_cast<double>(rows));
  };

  std::vector<double> out(rows);
  const auto max_abs_delta = [&] {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      max_delta = std::max(max_delta, std::abs(out[i] - reference[i]));
    }
    return max_delta;
  };

  std::vector<runner::Job> jobs;
  {
    runner::Job job;
    job.label = "gbdt_infer/node_walk";
    job.body = [&](runner::Result& r) {
      r.set("rows", static_cast<double>(rows));
      r.set("ns_per_row", time_ns_per_row([&] {
              for (std::size_t i = 0; i < rows; ++i) out[i] = model.predict(d.row(i));
              benchmark::DoNotOptimize(out.data());
            }));
      r.set("max_abs_delta", max_abs_delta());
    };
    jobs.push_back(std::move(job));
  }
  {
    runner::Job job;
    job.label = "gbdt_infer/flat_row";
    job.body = [&](runner::Result& r) {
      r.set("rows", static_cast<double>(rows));
      r.set("ns_per_row", time_ns_per_row([&] {
              for (std::size_t i = 0; i < rows; ++i) out[i] = forest.score_row(d.row(i));
              benchmark::DoNotOptimize(out.data());
            }));
      r.set("max_abs_delta", max_abs_delta());
    };
    jobs.push_back(std::move(job));
  }
  const auto block_pass = [&] {
    constexpr std::size_t block = ml::FlatForest::kBlockRows;
    for (std::size_t i = 0; i < rows; i += block) {
      const std::size_t n = std::min(block, rows - i);
      forest.score_block({d.values.data() + i * dim, n * dim}, n, {out.data() + i, n});
    }
    benchmark::DoNotOptimize(out.data());
  };
  for (const std::size_t block : {std::size_t{1}, std::size_t{4}, ml::FlatForest::kBlockRows}) {
    runner::Job job;
    job.label = "gbdt_infer/flat_block=" + std::to_string(block);
    job.body = [&, block](runner::Result& r) {
      r.set("rows", static_cast<double>(rows));
      r.set("ns_per_row", time_ns_per_row([&] {
              for (std::size_t i = 0; i < rows; i += block) {
                const std::size_t n = std::min(block, rows - i);
                forest.score_block({d.values.data() + i * dim, n * dim}, n,
                                   {out.data() + i, n});
              }
              benchmark::DoNotOptimize(out.data());
            }));
      r.set("max_abs_delta", max_abs_delta());
    };
    jobs.push_back(std::move(job));
  }
  // Forced-level rows: the same kBlockRows pass pinned to each SIMD level,
  // so the scalar/AVX2 delta is measured head-to-head regardless of what
  // the auto dispatch picked for the flat_block rows above.
  {
    runner::Job job;
    job.label = "gbdt_infer/flat_scalar";
    job.body = [&](runner::Result& r) {
      const ml::simd::ScopedForceLevel force(ml::simd::Level::kScalar);
      r.set("rows", static_cast<double>(rows));
      r.set("walk_bytes_per_row", static_cast<double>(forest.walk_bytes_per_row()));
      r.set("ns_per_row", time_ns_per_row(block_pass));
      r.set("max_abs_delta", max_abs_delta());
    };
    jobs.push_back(std::move(job));
  }
  const bool simd_available = ml::simd::avx2_compiled() && ml::simd::avx2_runtime();
  if (simd_available) {
    runner::Job job;
    job.label = "gbdt_infer/flat_simd";
    job.body = [&](runner::Result& r) {
      const ml::simd::ScopedForceLevel force(ml::simd::Level::kAvx2);
      r.set("rows", static_cast<double>(rows));
      r.set("walk_bytes_per_row", static_cast<double>(forest.walk_bytes_per_row()));
      r.set("ns_per_row", time_ns_per_row(block_pass));
      r.set("max_abs_delta", max_abs_delta());
    };
    jobs.push_back(std::move(job));
  }

  runner::RunOptions options;
  options.threads = 1;  // sequential: the jobs time single-thread scoring
  const auto results = runner::run_all(jobs, options);
  runner::append_jsonl_if_configured(results);

  std::printf("GBDT inference (%zu rows x %zu features, %zu trees, %zu walk bytes/row):\n",
              rows, dim, forest.tree_count(), forest.walk_bytes_per_row());
  double node_walk_ns = 0.0, block_ns = 0.0, worst_delta = 0.0;
  double scalar_ns = 0.0, simd_ns = 0.0;
  for (const auto& r : results) {
    std::printf("  %-24s %8.0f ns/row\n", r.label.c_str(), r.stat("ns_per_row"));
    if (r.label == "gbdt_infer/node_walk") node_walk_ns = r.stat("ns_per_row");
    if (r.label == "gbdt_infer/flat_block=" + std::to_string(ml::FlatForest::kBlockRows)) {
      block_ns = r.stat("ns_per_row");
    }
    if (r.label == "gbdt_infer/flat_scalar") scalar_ns = r.stat("ns_per_row");
    if (r.label == "gbdt_infer/flat_simd") simd_ns = r.stat("ns_per_row");
    worst_delta = std::max(worst_delta, r.stat("max_abs_delta"));
  }
  std::printf("  score_block speedup vs node-walk: %.2fx\n",
              block_ns > 0.0 ? node_walk_ns / block_ns : 0.0);
  if (simd_available && simd_ns > 0.0) {
    std::printf("  SIMD (%s) speedup vs scalar block: %.2fx\n",
                ml::simd::level_name(ml::simd::Level::kAvx2), scalar_ns / simd_ns);
  } else {
    std::printf("  SIMD speedup vs scalar block: skipped (AVX2 unavailable)\n");
  }
  if (worst_delta == 0.0) {
    std::printf("  FlatForest equivalence: max |dscore| = 0 (exact)\n");
  } else {
    std::printf("  FlatForest equivalence: max |dscore| = %.17g -- EQUIVALENCE BUG\n",
                worst_delta);
  }
}

// ---------------------------------------------------------------- serving
// The serving-throughput suite: requests/s of CdnServer::replay_concurrent
// over a ShardedCache(LRU) backend at 1/2/4/8 threads (the Table 2 request
// path under concurrency). Run through the experiment runner (serially —
// each job owns its thread scaling) so results land in LHR_BENCH_JSONL.
//   LHR_MICRO_SERVE_REQUESTS  trace length (default 200'000; CI uses less)
//   LHR_MICRO_SERVE_THREADS   comma list of thread counts (default 1,2,4,8)
std::size_t micro_serve_requests() {
  if (const char* env = std::getenv("LHR_MICRO_SERVE_REQUESTS")) {
    const long value = std::atol(env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 200'000;
}

std::vector<std::size_t> micro_serve_threads() {
  std::vector<std::size_t> threads;
  const char* env = std::getenv("LHR_MICRO_SERVE_THREADS");
  std::stringstream ss(env != nullptr && *env != '\0' ? env : "1,2,4,8");
  std::string item;
  while (std::getline(ss, item, ',')) {
    const long value = std::atol(item.c_str());
    if (value >= 1) threads.push_back(static_cast<std::size_t>(value));
  }
  if (threads.empty()) threads = {1, 2, 4, 8};
  return threads;
}

void run_serve_suite() {
  constexpr std::size_t kShards = 64;
  const std::size_t n = micro_serve_requests();
  const trace::Trace trace = gen::make_trace(gen::TraceClass::kCdnA, n, 42);
  const auto capacity =
      gen::headline_cache_size(gen::TraceClass::kCdnA, static_cast<double>(n) / 1e6);

  std::vector<runner::Job> jobs;
  for (const std::size_t threads : micro_serve_threads()) {
    runner::Job job;
    job.label = "serve/threads=" + std::to_string(threads);
    job.body = [&, threads](runner::Result& r) {
      server::ServerConfig cfg;
      cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1 << 20);
      auto backend = std::make_unique<server::ShardedCache>(
          kShards, capacity, [](std::uint64_t cap) {
            return std::make_unique<policy::Lru>(cap);
          });
      server::CdnServer server(std::move(backend), cfg);
      const auto report =
          server.replay_concurrent(trace, server::ReplayMode::kMax, threads);
      r.set("threads", static_cast<double>(report.replay_threads));
      r.set("requests", static_cast<double>(report.requests));
      r.set("replay_wall_seconds", report.replay_wall_seconds);
      r.set("requests_per_second",
            report.replay_wall_seconds > 0.0
                ? static_cast<double>(report.requests) / report.replay_wall_seconds
                : 0.0);
      // Integer aggregates: must be identical at every thread count (the
      // shard-ownership determinism guarantee).
      r.set("hits", static_cast<double>(report.hits));
      r.set("wan_bytes", static_cast<double>(report.wan_bytes));
      r.set("object_hit_pct", report.content_hit_pct);
      r.set("byte_hit_pct", 100.0 * report.byte_hit_ratio());
      r.set("lock_contentions", static_cast<double>(report.lock_contentions));
    };
    jobs.push_back(std::move(job));
  }

  runner::RunOptions options;
  options.threads = 1;  // each job scales its own workers; don't stack pools
  const auto results = runner::run_all(jobs, options);
  runner::append_jsonl_if_configured(results);

  std::printf("Serving throughput (CdnServer::replay_concurrent, %zu requests, "
              "Sharded(LRU)x%zu):\n", n, kShards);
  bool identical = true;
  double hits0 = -1.0, wan0 = -1.0;
  for (const auto& r : results) {
    std::printf("  %-24s %10.0f req/s  (%.3f s, hit %.2f%%, byte-hit %.2f%%)\n",
                r.label.c_str(), r.stat("requests_per_second"),
                r.stat("replay_wall_seconds"), r.stat("object_hit_pct"),
                r.stat("byte_hit_pct"));
    if (hits0 < 0.0) {
      hits0 = r.stat("hits");
      wan0 = r.stat("wan_bytes");
    }
    identical = identical && r.stat("hits") == hits0 && r.stat("wan_bytes") == wan0;
  }
  std::printf("  serving aggregates identical across thread counts: %s\n",
              identical ? "yes" : "NO -- DETERMINISM BUG");
}

// ------------------------------------------------------- fault injection
// The fault-injected serving suite: the same replay_concurrent sweep, but
// against a lognormal origin with a built-in outage/error/slow schedule, a
// short TTL (so revalidations flow through the faults) and a fetch policy
// with timeout/retries/hedging. Every stochastic draw comes from per-shard
// streams, so ALL aggregates — including retries, stale serves and 5xx
// counts — must be identical at every thread count. CI greps the verdict
// line.
void run_fault_serve_suite() {
  constexpr std::size_t kShards = 64;
  const std::size_t n = micro_serve_requests();
  const trace::Trace trace = gen::make_trace(gen::TraceClass::kCdnA, n, 42);
  const auto capacity =
      gen::headline_cache_size(gen::TraceClass::kCdnA, static_cast<double>(n) / 1e6);
  const double duration = std::max(trace.duration(), 1.0);

  std::vector<runner::Job> jobs;
  for (const std::size_t threads : micro_serve_threads()) {
    runner::Job job;
    job.label = "serve-faults/threads=" + std::to_string(threads);
    job.body = [&, threads](runner::Result& r) {
      server::ServerConfig cfg;
      cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1 << 20);
      // Short TTL + grace spanning the trace: revalidations and
      // serve-stale-on-error both exercise the fault windows.
      cfg.freshness_ttl_s = duration / 10.0;
      cfg.origin_profile.kind = server::OriginLatencyKind::kLognormal;
      cfg.origin_profile.sigma = 0.5;
      cfg.fetch.timeout_s = 0.25;
      cfg.fetch.retry_budget = 3;
      cfg.fetch.hedge_delay_s = 0.08;
      cfg.fetch.stale_grace_s = duration;
      cfg.fault_schedule = server::FaultSchedule(
          {{server::FaultEpisode::Kind::kOutage, 0.10 * duration, 0.20 * duration, 1.0, 1.0},
           {server::FaultEpisode::Kind::kError, 0.30 * duration, 0.50 * duration, 0.5, 1.0},
           {server::FaultEpisode::Kind::kSlow, 0.60 * duration, 0.80 * duration, 1.0, 8.0}});
      auto backend = std::make_unique<server::ShardedCache>(
          kShards, capacity, [](std::uint64_t cap) {
            return std::make_unique<policy::Lru>(cap);
          });
      server::CdnServer server(std::move(backend), cfg);
      const auto report =
          server.replay_concurrent(trace, server::ReplayMode::kMax, threads);
      r.set("threads", static_cast<double>(report.replay_threads));
      r.set("hits", static_cast<double>(report.hits));
      r.set("bytes_served", static_cast<double>(report.bytes_served));
      r.set("wan_bytes", static_cast<double>(report.wan_bytes));
      r.set("origin_fetches", static_cast<double>(report.origin_fetches));
      r.set("origin_retries", static_cast<double>(report.origin_retries));
      r.set("origin_timeouts", static_cast<double>(report.origin_timeouts));
      r.set("origin_errors", static_cast<double>(report.origin_errors));
      r.set("origin_hedges", static_cast<double>(report.origin_hedges));
      r.set("hedge_cancels", static_cast<double>(report.hedge_cancels));
      r.set("stale_serves", static_cast<double>(report.stale_serves));
      r.set("failed_requests", static_cast<double>(report.failed_requests));
      r.set("p99_latency_ms", report.p99_latency_ms);
      r.set("fetch_p99_ms", report.fetch_p99_ms);
      r.set("replay_wall_seconds", report.replay_wall_seconds);
    };
    jobs.push_back(std::move(job));
  }

  runner::RunOptions options;
  options.threads = 1;  // each job scales its own workers; don't stack pools
  const auto results = runner::run_all(jobs, options);
  runner::append_jsonl_if_configured(results);

  std::printf("Fault-injected serving (lognormal origin, outage/error/slow schedule, "
              "%zu requests, Sharded(LRU)x%zu):\n", n, kShards);
  static const char* const kKeys[] = {
      "hits",          "bytes_served",  "wan_bytes",      "origin_fetches",
      "origin_retries", "origin_timeouts", "origin_errors", "origin_hedges",
      "hedge_cancels", "stale_serves",  "failed_requests", "p99_latency_ms",
      "fetch_p99_ms"};
  bool identical = true;
  for (const auto& r : results) {
    std::printf("  %-24s hit %.0f, retries %.0f, timeouts %.0f, stale %.0f, "
                "5xx %.0f, fetch-p99 %.1f ms (%.3f s)\n",
                r.label.c_str(), r.stat("hits"), r.stat("origin_retries"),
                r.stat("origin_timeouts"), r.stat("stale_serves"),
                r.stat("failed_requests"), r.stat("fetch_p99_ms"),
                r.stat("replay_wall_seconds"));
    for (const char* key : kKeys) {
      identical = identical && r.stat(key) == results.front().stat(key);
    }
  }
  std::printf("  fault-injected aggregates identical across thread counts: %s\n",
              identical ? "yes" : "NO -- DETERMINISM BUG");
}

// ----------------------------------------------------- process fan-out
// The process-parallel serving suite: the same Sharded(LRU)x64 kMax replay,
// fanned out across worker processes via core::run_proc_replay. Each worker
// re-execs THIS binary in hidden --replay-worker mode (the hook at the top
// of main()), mmaps the shared spilled .lhrt read-only and replays the
// shards it owns (s % P == p). The canonical report — counters, latency
// quantiles, window hit ratios — must be byte-identical at every process
// count; CI greps the verdict line.
//   LHR_MICRO_SERVE_PROCS  comma list of process counts (default "1,2")
void run_proc_serve_suite() {
  constexpr std::size_t kShards = 64;
  const std::size_t n = micro_serve_requests();
  const auto capacity =
      gen::headline_cache_size(gen::TraceClass::kCdnA, static_cast<double>(n) / 1e6);

  // Workers need an on-disk trace to mmap, so force the cache's spill path
  // (spill_mb = 0). The keyed file doubles as the cross-process trace
  // cache; generation is flock-guarded, so concurrent bench runs race
  // safely for it.
  runner::TraceCache::Options cache_options;
  cache_options.requests_per_trace = n;
  cache_options.seed = 42;
  cache_options.spill_mb = 0;
  const runner::TraceCache traces(cache_options);
  const std::string trace_path = traces.lhrt_path_for(gen::TraceClass::kCdnA);

  const std::vector<std::size_t> procs_list =
      bench::env_count_list("LHR_MICRO_SERVE_PROCS", "1,2");

  std::vector<std::string> canonical(procs_list.size());
  std::vector<runner::Job> jobs;
  for (std::size_t i = 0; i < procs_list.size(); ++i) {
    const std::size_t procs = procs_list[i];
    runner::Job job;
    job.label = "serve_procs/procs=" + std::to_string(procs);
    job.body = [&, i, procs](runner::Result& r) {
      core::ProcReplayJob spec;
      spec.trace_path = trace_path;
      spec.policy = "LRU";
      spec.capacity_bytes = capacity;
      spec.shards = kShards;
      spec.procs = procs;
      spec.threads = 1;
      spec.mode = server::ReplayMode::kMax;
      const server::ServerReport report = core::run_proc_replay(spec);
      canonical[i] = report.canonical_summary();
      r.set("procs", static_cast<double>(procs));
      r.set("requests", static_cast<double>(report.requests));
      r.set("replay_wall_seconds", report.replay_wall_seconds);
      r.set("requests_per_second",
            report.replay_wall_seconds > 0.0
                ? static_cast<double>(report.requests) / report.replay_wall_seconds
                : 0.0);
      r.set("hits", static_cast<double>(report.hits));
      r.set("wan_bytes", static_cast<double>(report.wan_bytes));
      r.set("object_hit_pct", report.content_hit_pct);
      r.set("p99_latency_ms", report.p99_latency_ms);
    };
    jobs.push_back(std::move(job));
  }

  runner::RunOptions options;
  options.threads = 1;  // each job spawns its own worker processes
  const auto results = runner::run_all(jobs, options);
  runner::append_jsonl_if_configured(results);

  std::printf("Process-parallel serving (core::run_proc_replay, %zu requests, "
              "Sharded(LRU)x%zu, 1 thread/process):\n", n, kShards);
  for (const auto& r : results) {
    std::printf("  %-24s %10.0f req/s  (%.3f s, hit %.2f%%, p99 %.3f ms)\n",
                r.label.c_str(), r.stat("requests_per_second"),
                r.stat("replay_wall_seconds"), r.stat("object_hit_pct"),
                r.stat("p99_latency_ms"));
  }
  bool identical = true;
  for (const auto& c : canonical) identical = identical && c == canonical.front();
  std::printf("  proc-parallel canonical reports identical across process "
              "counts: %s\n", identical ? "yes" : "NO -- DETERMINISM BUG");
  if (results.size() > 1) {
    const double base = results.front().stat("requests_per_second");
    const double top = results.back().stat("requests_per_second");
    std::printf("  aggregate speedup procs=%zu -> procs=%zu: %.2fx\n",
                procs_list.front(), procs_list.back(),
                base > 0.0 ? top / base : 0.0);
  }
}

// End-to-end cost of a policy sweep on the parallel runner: 8 LRU jobs over
// a small cached trace, at 1 / 2 / 4 worker threads. The 1-thread run is the
// serial baseline; the ratio is the sweep speedup bench/ binaries get.
void BM_RunnerSweep(benchmark::State& state) {
  static runner::TraceCache traces(20'000, 42);
  traces.get(gen::TraceClass::kCdnA);  // generate outside the timed region

  std::vector<runner::Job> jobs;
  for (int i = 0; i < 8; ++i) {
    runner::Job job;
    job.policy_name = "LRU";
    job.trace_class = gen::TraceClass::kCdnA;
    job.capacity_bytes = (1ULL + i) << 24;
    jobs.push_back(std::move(job));
  }

  runner::RunOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.traces = &traces;
  for (auto _ : state) {
    auto results = runner::run_all(jobs, options);
    benchmark::DoNotOptimize(results.data());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_PolicyAccess, LRU, std::string("LRU"));
BENCHMARK_CAPTURE(BM_PolicyAccess, LFU_DA, std::string("LFU-DA"));
BENCHMARK_CAPTURE(BM_PolicyAccess, AdaptSize, std::string("AdaptSize"));
BENCHMARK_CAPTURE(BM_PolicyAccess, B_LRU, std::string("B-LRU"));
BENCHMARK_CAPTURE(BM_PolicyAccess, Hawkeye, std::string("Hawkeye"));
BENCHMARK_CAPTURE(BM_PolicyAccess, WTinyLFU, std::string("W-TinyLFU"));
BENCHMARK_CAPTURE(BM_PolicyAccess, LHR, std::string("LHR"));
BENCHMARK(BM_HroClassify);
BENCHMARK(BM_DensityIndexUpsert);
BENCHMARK(BM_CountMinIncrement);
BENCHMARK(BM_FeatureExtract);
BENCHMARK(BM_GbdtPredict);
BENCHMARK(BM_GbdtPredictMany)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FlatForestScoreRow);
BENCHMARK(BM_FlatForestScoreBlock)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GbdtTrain)->Arg(10'000)->Arg(40'000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GbdtFitThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RunnerSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // Hidden worker mode: the proc-serve suite re-execs this binary per
  // worker process; the hook replays the slice and exits before any suite
  // or google-benchmark setup runs.
  if (const int rc = lhr::core::proc_replay_worker_main(argc, argv); rc >= 0) {
    return rc;
  }
  run_gbdt_suite();
  run_inference_suite();
  run_serve_suite();
  run_fault_serve_suite();
  run_proc_serve_suite();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
