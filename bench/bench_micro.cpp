// Microbenchmarks (google-benchmark): per-request cost of the data
// structures and policies, backing the running-time claims of Figure 9 and
// the latency-model inputs of Table 3.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/policy_factory.hpp"
#include "gen/zipf.hpp"
#include "runner/runner.hpp"
#include "runner/trace_cache.hpp"
#include "hazard/hro.hpp"
#include "ml/features.hpp"
#include "ml/gbdt.hpp"
#include "util/count_min_sketch.hpp"
#include "util/density_index.hpp"
#include "util/rng.hpp"

namespace {

using namespace lhr;

std::vector<trace::Request> zipf_requests(std::size_t n) {
  gen::ZipfSampler zipf(50'000, 0.9);
  util::Xoshiro256 rng(7);
  std::vector<trace::Request> reqs;
  reqs.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += 0.01;
    const auto k = zipf.sample(rng);
    reqs.push_back({t, k, 1'000 + (k % 100) * 1'000});
  }
  return reqs;
}

void BM_PolicyAccess(benchmark::State& state, const std::string& name) {
  const auto reqs = zipf_requests(200'000);
  auto policy = core::make_policy(name, 20ULL << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->access(reqs[i]));
    i = (i + 1) % reqs.size();
  }
}

void BM_HroClassify(benchmark::State& state) {
  const auto reqs = zipf_requests(200'000);
  hazard::Hro hro(hazard::HroConfig{.capacity_bytes = 20ULL << 20});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hro.classify(reqs[i]));
    i = (i + 1) % reqs.size();
  }
}

void BM_DensityIndexUpsert(benchmark::State& state) {
  util::DensityIndex index;
  util::Xoshiro256 rng(3);
  std::uint64_t id = 0;
  for (auto _ : state) {
    index.upsert(id % 100'000, 1e-6 + rng.next_double(), 1 + rng.next_below(1'000'000));
    ++id;
  }
}

void BM_CountMinIncrement(benchmark::State& state) {
  util::CountMinSketch sketch(1 << 18, 10ULL << 18);
  util::Xoshiro256 rng(5);
  for (auto _ : state) {
    sketch.increment(rng.next_below(1 << 20));
  }
}

void BM_FeatureExtract(benchmark::State& state) {
  ml::FeatureExtractor fx;
  const auto reqs = zipf_requests(100'000);
  for (const auto& r : reqs) fx.record(r);
  std::vector<float> out(fx.dim());
  std::size_t i = 0;
  for (auto _ : state) {
    fx.extract(reqs[i], out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % reqs.size();
  }
}

void BM_GbdtPredict(benchmark::State& state) {
  // Train once on synthetic data shaped like LHR's feature matrix.
  const std::size_t dim = 24;
  util::Xoshiro256 rng(11);
  ml::Dataset d;
  d.n_features = dim;
  std::vector<float> y;
  for (int i = 0; i < 20'000; ++i) {
    for (std::size_t f = 0; f < dim; ++f) {
      d.values.push_back(static_cast<float>(rng.next_double()));
    }
    y.push_back(static_cast<float>(rng.next_double()));
  }
  ml::Gbdt model;
  ml::GbdtConfig cfg;
  model.fit(d, y, cfg);

  std::vector<float> x(dim, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
}

void BM_GbdtTrain(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 24;
  util::Xoshiro256 rng(13);
  ml::Dataset d;
  d.n_features = dim;
  std::vector<float> y;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t f = 0; f < dim; ++f) {
      d.values.push_back(static_cast<float>(rng.next_double()));
    }
    y.push_back(static_cast<float>(rng.next_double()));
  }
  ml::GbdtConfig cfg;
  for (auto _ : state) {
    ml::Gbdt model;
    model.fit(d, y, cfg);
    benchmark::DoNotOptimize(model.tree_count());
  }
}

// End-to-end cost of a policy sweep on the parallel runner: 8 LRU jobs over
// a small cached trace, at 1 / 2 / 4 worker threads. The 1-thread run is the
// serial baseline; the ratio is the sweep speedup bench/ binaries get.
void BM_RunnerSweep(benchmark::State& state) {
  static runner::TraceCache traces(20'000, 42);
  traces.get(gen::TraceClass::kCdnA);  // generate outside the timed region

  std::vector<runner::Job> jobs;
  for (int i = 0; i < 8; ++i) {
    runner::Job job;
    job.policy_name = "LRU";
    job.trace_class = gen::TraceClass::kCdnA;
    job.capacity_bytes = (1ULL + i) << 24;
    jobs.push_back(std::move(job));
  }

  runner::RunOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.traces = &traces;
  for (auto _ : state) {
    auto results = runner::run_all(jobs, options);
    benchmark::DoNotOptimize(results.data());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_PolicyAccess, LRU, std::string("LRU"));
BENCHMARK_CAPTURE(BM_PolicyAccess, LFU_DA, std::string("LFU-DA"));
BENCHMARK_CAPTURE(BM_PolicyAccess, AdaptSize, std::string("AdaptSize"));
BENCHMARK_CAPTURE(BM_PolicyAccess, B_LRU, std::string("B-LRU"));
BENCHMARK_CAPTURE(BM_PolicyAccess, Hawkeye, std::string("Hawkeye"));
BENCHMARK_CAPTURE(BM_PolicyAccess, WTinyLFU, std::string("W-TinyLFU"));
BENCHMARK_CAPTURE(BM_PolicyAccess, LHR, std::string("LHR"));
BENCHMARK(BM_HroClassify);
BENCHMARK(BM_DensityIndexUpsert);
BENCHMARK(BM_CountMinIncrement);
BENCHMARK(BM_FeatureExtract);
BENCHMARK(BM_GbdtPredict);
BENCHMARK(BM_GbdtTrain)->Arg(10'000)->Arg(40'000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RunnerSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
