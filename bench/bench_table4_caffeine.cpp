// Table 4 + Figure 13 (Appendix A.3): LHR vs Caffeine (W-TinyLFU) as an
// in-memory cache. Caches are an order of magnitude smaller than the disk
// experiments (paper: 64/128/16/128 GB). All 16 replays run as independent
// runner jobs; the Figure 13 window series travels in Result::series.
#include "bench/bench_common.hpp"
#include "server/cdn_server.hpp"

namespace {

std::uint64_t caffeine_cache_size(lhr::gen::TraceClass c, double scale) {
  using lhr::gen::TraceClass;
  const auto gb = [scale](double v) {
    return static_cast<std::uint64_t>(v * scale * 1024.0 * 1024.0 * 1024.0);
  };
  switch (c) {
    case TraceClass::kCdnA: return gb(64);
    case TraceClass::kCdnB: return gb(128);
    case TraceClass::kCdnC: return gb(16);
    case TraceClass::kWiki: return gb(128);
  }
  return gb(64);
}

lhr::runner::Job server_job(const std::string& policy, lhr::gen::TraceClass c,
                            lhr::server::ReplayMode mode, std::size_t window) {
  using namespace lhr;
  runner::Job job;
  job.label = policy + "/" + gen::to_string(c) +
              (mode == server::ReplayMode::kMax ? "/max" : "/normal");
  job.body = [policy, c, mode, window](runner::Result& r) {
    server::ServerConfig cfg;
    cfg.has_disk_tier = false;  // Caffeine-style in-memory cache
    const auto capacity = caffeine_cache_size(c, bench::cache_scale());
    server::CdnServer server(core::make_policy(policy, capacity), cfg);
    const auto report = server.replay(bench::trace_for(c), mode, window);
    r.set("throughput_gbps", report.throughput_gbps);
    r.set("peak_cpu_pct", report.peak_cpu_pct);
    r.set("peak_mem_gb", report.peak_mem_gb);
    r.set("p90_latency_ms", report.p90_latency_ms);
    r.set("p99_latency_ms", report.p99_latency_ms);
    r.set("avg_latency_ms", report.avg_latency_ms);
    r.set("traffic_gbps", report.traffic_gbps);
    r.set("content_hit_pct", report.content_hit_pct);
    r.series = report.window_hit_ratio;
  };
  return job;
}

}  // namespace

int main() {
  using namespace lhr;
  bench::print_header("Table 4 + Figure 13: LHR vs Caffeine (W-TinyLFU), in-memory");

  const std::size_t window = std::max<std::size_t>(bench::requests_per_trace() / 10, 1000);

  // Job layout: per trace [LHR/max, Caf/max, LHR/normal, Caf/normal].
  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    jobs.push_back(server_job("LHR", c, server::ReplayMode::kMax, window));
    jobs.push_back(server_job("W-TinyLFU", c, server::ReplayMode::kMax, window));
    jobs.push_back(server_job("LHR", c, server::ReplayMode::kNormal, window));
    jobs.push_back(server_job("W-TinyLFU", c, server::ReplayMode::kNormal, window));
  }
  const auto results = bench::run_jobs(jobs);

  bench::print_row({"Metric", "Exp", "A:LHR", "A:Caf", "B:LHR", "B:Caf", "C:LHR",
                    "C:Caf", "W:LHR", "W:Caf"}, 10);

  const auto row = [&](const std::string& metric, const std::string& exp,
                       std::size_t offset, const char* key, int precision) {
    std::vector<std::string> cells = {metric, exp};
    for (std::size_t t = 0; t < 4; ++t) {
      cells.push_back(bench::fmt(results[4 * t + offset].stat(key), precision));
      cells.push_back(bench::fmt(results[4 * t + offset + 1].stat(key), precision));
    }
    bench::print_row(cells, 10);
  };
  row("Thrpt(Gbps)", "max", 0, "throughput_gbps", 2);
  row("PeakCPU(%)", "max", 0, "peak_cpu_pct", 1);
  row("PeakMem(GB)", "max", 0, "peak_mem_gb", 2);
  row("P90Lat(ms)", "norm", 2, "p90_latency_ms", 1);
  row("P99Lat(ms)", "norm", 2, "p99_latency_ms", 1);
  row("AvgLat(ms)", "avg", 2, "avg_latency_ms", 1);
  row("Traffic(Gbps)", "avg", 2, "traffic_gbps", 2);
  row("ContentHit(%)", "norm", 2, "content_hit_pct", 2);

  std::printf("\n-- Figure 13: hit probability per window (normal replay) --\n");
  for (std::size_t t = 0; t < 4; ++t) {
    std::printf("\n%s:\n", gen::to_string(bench::all_trace_classes()[t]).c_str());
    bench::print_row({"Window", "LHR(%)", "Caffeine(%)"});
    const auto& lhr_series = results[4 * t + 2].series;
    const auto& caf_series = results[4 * t + 3].series;
    for (std::size_t w = 0; w < lhr_series.size(); ++w) {
      bench::print_row({std::to_string(w + 1), bench::pct(lhr_series[w]),
                        bench::pct(caf_series[w])});
    }
  }
  return 0;
}
