// Table 4 + Figure 13 (Appendix A.3): LHR vs Caffeine (W-TinyLFU) as an
// in-memory cache. Caches are an order of magnitude smaller than the disk
// experiments (paper: 64/128/16/128 GB).
#include "bench/bench_common.hpp"
#include "server/cdn_server.hpp"

namespace {

std::uint64_t caffeine_cache_size(lhr::gen::TraceClass c, double scale) {
  using lhr::gen::TraceClass;
  const auto gb = [scale](double v) {
    return static_cast<std::uint64_t>(v * scale * 1024.0 * 1024.0 * 1024.0);
  };
  switch (c) {
    case TraceClass::kCdnA: return gb(64);
    case TraceClass::kCdnB: return gb(128);
    case TraceClass::kCdnC: return gb(16);
    case TraceClass::kWiki: return gb(128);
  }
  return gb(64);
}

lhr::server::ServerReport run(const std::string& policy, lhr::gen::TraceClass c,
                              lhr::server::ReplayMode mode, std::size_t window) {
  using namespace lhr;
  server::ServerConfig cfg;
  cfg.has_disk_tier = false;  // Caffeine-style in-memory cache
  const auto capacity = caffeine_cache_size(c, bench::cache_scale());
  server::CdnServer server(core::make_policy(policy, capacity), cfg);
  return server.replay(bench::trace_for(c), mode, window);
}

}  // namespace

int main() {
  using namespace lhr;
  bench::print_header("Table 4 + Figure 13: LHR vs Caffeine (W-TinyLFU), in-memory");

  bench::print_row({"Metric", "Exp", "A:LHR", "A:Caf", "B:LHR", "B:Caf", "C:LHR",
                    "C:Caf", "W:LHR", "W:Caf"}, 10);

  const std::size_t window = std::max<std::size_t>(bench::requests_per_trace() / 10, 1000);
  std::vector<server::ServerReport> lhr_max, caf_max, lhr_norm, caf_norm;
  for (const auto c : bench::all_trace_classes()) {
    lhr_max.push_back(run("LHR", c, server::ReplayMode::kMax, window));
    caf_max.push_back(run("W-TinyLFU", c, server::ReplayMode::kMax, window));
    lhr_norm.push_back(run("LHR", c, server::ReplayMode::kNormal, window));
    caf_norm.push_back(run("W-TinyLFU", c, server::ReplayMode::kNormal, window));
  }

  const auto row = [&](const std::string& metric, const std::string& exp,
                       const std::vector<server::ServerReport>& a,
                       const std::vector<server::ServerReport>& b, auto getter,
                       int precision) {
    std::vector<std::string> cells = {metric, exp};
    for (std::size_t i = 0; i < 4; ++i) {
      cells.push_back(bench::fmt(getter(a[i]), precision));
      cells.push_back(bench::fmt(getter(b[i]), precision));
    }
    bench::print_row(cells, 10);
  };
  row("Thrpt(Gbps)", "max", lhr_max, caf_max,
      [](const auto& r) { return r.throughput_gbps; }, 2);
  row("PeakCPU(%)", "max", lhr_max, caf_max,
      [](const auto& r) { return r.peak_cpu_pct; }, 1);
  row("PeakMem(GB)", "max", lhr_max, caf_max,
      [](const auto& r) { return r.peak_mem_gb; }, 2);
  row("P90Lat(ms)", "norm", lhr_norm, caf_norm,
      [](const auto& r) { return r.p90_latency_ms; }, 1);
  row("P99Lat(ms)", "norm", lhr_norm, caf_norm,
      [](const auto& r) { return r.p99_latency_ms; }, 1);
  row("AvgLat(ms)", "avg", lhr_norm, caf_norm,
      [](const auto& r) { return r.avg_latency_ms; }, 1);
  row("Traffic(Gbps)", "avg", lhr_norm, caf_norm,
      [](const auto& r) { return r.traffic_gbps; }, 2);
  row("ContentHit(%)", "norm", lhr_norm, caf_norm,
      [](const auto& r) { return r.content_hit_pct; }, 2);

  std::printf("\n-- Figure 13: hit probability per window (normal replay) --\n");
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("\n%s:\n", gen::to_string(bench::all_trace_classes()[i]).c_str());
    bench::print_row({"Window", "LHR(%)", "Caffeine(%)"});
    for (std::size_t w = 0; w < lhr_norm[i].window_hit_ratio.size(); ++w) {
      bench::print_row({std::to_string(w + 1),
                        bench::pct(lhr_norm[i].window_hit_ratio[w]),
                        bench::pct(caf_norm[i].window_hit_ratio[w])});
    }
  }
  return 0;
}
