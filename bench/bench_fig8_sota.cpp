// Figure 8: average content hit probability and WAN traffic of LHR vs the
// seven SOTAs across cache sizes, on all four traces.
//
// The full grid (4 traces x 8 policies x 5 sizes = 160 simulations) is one
// runner::run_all call; rows print in job order, independent of scheduling.
#include "bench/bench_common.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 8: LHR vs SOTAs (hit probability %, WAN traffic Gbps)");

  auto policies = core::sota_policy_names();
  policies.push_back("LHR");

  std::vector<runner::Job> jobs;
  for (const auto c : bench::all_trace_classes()) {
    const auto sizes = gen::paper_cache_sizes(c, bench::cache_scale());
    for (const auto& name : policies) {
      for (const auto s : sizes) jobs.push_back(bench::sim_job(name, c, s));
    }
  }
  const auto results = bench::run_jobs(jobs);

  std::size_t idx = 0;
  for (const auto c : bench::all_trace_classes()) {
    const auto& trace = bench::trace_for(c);
    const auto sizes = gen::paper_cache_sizes(c, bench::cache_scale());

    std::printf("\n-- %s: hit probability (%%) --\n", gen::to_string(c).c_str());
    {
      std::vector<std::string> header = {"Policy"};
      for (const auto s : sizes) {
        header.push_back(bench::fmt(bench::gb(double(s)) / bench::cache_scale(), 0) + "GB");
      }
      header.push_back("| traffic@" +
                       bench::fmt(bench::gb(double(sizes[2])) / bench::cache_scale(), 0) +
                       "GB");
      bench::print_row(header);
    }
    for (const auto& name : policies) {
      std::vector<std::string> cells = {name};
      sim::SimMetrics at_headline;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        const auto& metrics = results[idx++].metrics;
        cells.push_back(bench::pct(metrics.object_hit_ratio()));
        if (i == 2) at_headline = metrics;
      }
      cells.push_back("| " + bench::fmt(bench::wan_gbps(at_headline, trace), 3));
      bench::print_row(cells);
    }
  }
  return 0;
}
