// Figure 8: average content hit probability and WAN traffic of LHR vs the
// seven SOTAs across cache sizes, on all four traces.
#include "bench/bench_common.hpp"

int main() {
  using namespace lhr;
  bench::print_header("Figure 8: LHR vs SOTAs (hit probability %, WAN traffic Gbps)");

  auto policies = core::sota_policy_names();
  policies.push_back("LHR");

  for (const auto c : bench::all_trace_classes()) {
    const auto& trace = bench::trace_for(c);
    const auto sizes = gen::paper_cache_sizes(c, bench::cache_scale());

    std::printf("\n-- %s: hit probability (%%) --\n", gen::to_string(c).c_str());
    {
      std::vector<std::string> header = {"Policy"};
      for (const auto s : sizes) {
        header.push_back(bench::fmt(bench::gb(double(s)) / bench::cache_scale(), 0) + "GB");
      }
      header.push_back("| traffic@" +
                       bench::fmt(bench::gb(double(sizes[2])) / bench::cache_scale(), 0) +
                       "GB");
      bench::print_row(header);
    }
    for (const auto& name : policies) {
      std::vector<std::string> cells = {name};
      sim::SimMetrics at_headline;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        const auto metrics = bench::run_policy(name, c, sizes[i]);
        cells.push_back(bench::pct(metrics.object_hit_ratio()));
        if (i == 2) at_headline = metrics;
      }
      cells.push_back("| " + bench::fmt(bench::wan_gbps(at_headline, trace), 3));
      bench::print_row(cells);
    }
  }
  return 0;
}
