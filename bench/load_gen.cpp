#include "bench/load_gen.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace lhr::bench {

trace::Trace poisson_schedule(const trace::TraceSource& source,
                              const LoadGenConfig& cfg) {
  if (!(cfg.target_rps > 0.0)) {
    throw std::invalid_argument("poisson_schedule: target_rps must be > 0");
  }
  trace::Trace out;
  out.reserve(source.size());
  util::Xoshiro256 rng(cfg.seed);
  const double inv_rate = 1.0 / cfg.target_rps;
  double t = 0.0;
  for (const trace::Request& r : source) {
    // Exp(λ) via inverse transform; 1 - U keeps the argument in (0, 1] so
    // log() never sees 0. Summing gaps (instead of spacing a uniform grid)
    // is what makes bursts appear: a Poisson process at rate λ has
    // coefficient-of-variation 1, so transient arrival clusters exercise
    // the queue even below the knee.
    t += -std::log(1.0 - rng.next_double()) * inv_rate;
    out.push_back({t, r.key, r.size});
  }
  return out;
}

}  // namespace lhr::bench
