#include "server/cdn_server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "server/sharded_cache.hpp"
#include "util/thread_pool.hpp"

namespace lhr::server {

namespace {
constexpr double kGB = 1024.0 * 1024.0 * 1024.0;

// Resolution of the revalidation coin flip. 1e9 buckets keep change
// probabilities as small as ~1e-9 representable (the old %10'000 scheme
// silently floored anything below 1e-4 to "never changes").
constexpr std::uint64_t kRevalidateScale = 1'000'000'000ULL;

// How often concurrent workers sample metadata peaks: sampling the sharded
// main index locks every shard, so doing it per request would serialize the
// replay it is meant to observe.
constexpr std::size_t kConcurrentMetaSampleEvery = 1024;

double transfer_seconds(std::uint64_t bytes, double gbps) {
  return static_cast<double>(bytes) * 8.0 / (gbps * 1e9);
}
}  // namespace

std::string ServerReport::canonical_summary() const {
  // Same discipline as FabricReport::canonical_summary: integer counters and
  // quantiles are pure functions of the merged integer bucket counts, so
  // they are safe in the canonical string; wall-clock, busy-time sums and
  // double-sum means are not (ulp-level merge-order drift) and peak-metadata
  // samples depend on worker cadence — all deliberately excluded.
  std::string s;
  s.reserve(1024);
  char buf[320];
  const auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
  std::snprintf(buf, sizeof buf,
                "policy=%s requests=%llu hits=%llu bytes_served=%llu wan_bytes=%llu\n",
                policy_name.c_str(), u(requests), u(hits), u(bytes_served),
                u(wan_bytes));
  s += buf;
  std::snprintf(buf, sizeof buf,
                "origin: fetches=%llu retries=%llu timeouts=%llu errors=%llu "
                "hedges=%llu hedge_cancels=%llu stale_serves=%llu failed=%llu\n",
                u(origin_fetches), u(origin_retries), u(origin_timeouts),
                u(origin_errors), u(origin_hedges), u(hedge_cancels),
                u(stale_serves), u(failed_requests));
  s += buf;
  std::snprintf(buf, sizeof buf, "latency: p90_ms=%.9g p99_ms=%.9g\n",
                p90_latency_ms, p99_latency_ms);
  s += buf;
  std::snprintf(buf, sizeof buf, "fetch: p50_ms=%.9g p90_ms=%.9g p99_ms=%.9g\n",
                fetch_p50_ms, fetch_p90_ms, fetch_p99_ms);
  s += buf;
  s += "windows:";
  for (const double w : window_hit_ratio) {
    std::snprintf(buf, sizeof buf, " %.9g", w);
    s += buf;
  }
  s += '\n';
  if (control_plane.active) s += control_plane.canonical();
  return s;
}

CdnServer::CdnServer(std::unique_ptr<sim::CachePolicy> main_policy,
                     const ServerConfig& config)
    : config_(config),
      main_(std::move(main_policy)),
      sharded_(dynamic_cast<ShardedCache*>(main_.get())),
      fetch_policy_(config.fetch) {
  const double rounded =
      std::round(config.revalidate_change_prob * static_cast<double>(kRevalidateScale));
  revalidate_threshold_ = static_cast<std::uint64_t>(
      std::clamp(rounded, 0.0, static_cast<double>(kRevalidateScale)));

  const std::size_t shards = sharded_ != nullptr ? sharded_->shard_count() : 1;
  const std::uint64_t ram_per_shard = config.ram_bytes / shards;
  const std::uint64_t ram_remainder = config.ram_bytes % shards;
  fresh_.reserve(shards);
  std::uint64_t seed_state = config.seed;
  for (std::size_t i = 0; i < shards; ++i) {
    fresh_.push_back(std::make_unique<FreshnessShard>(
        ram_per_shard + (i < ram_remainder ? 1 : 0), util::splitmix64(seed_state)));
  }
  // One origin draw stream per freshness shard: the shard-ownership
  // discipline that makes the revalidation RNG lock-free covers the origin's
  // latency/error/jitter draws too, so fault-injected replays stay
  // byte-identical at any thread count.
  origin_ = std::make_unique<Origin>(config.origin_profile, config.origin_rtt_s,
                                     config.origin_gbps, config.fault_schedule, shards);

  // Discover control-plane cells: one probe per shard policy (or the single
  // unsharded policy). Policies without a cell leave null entries.
  cells_.resize(shards, nullptr);
  for (std::size_t i = 0; i < shards; ++i) {
    sim::CachePolicy& policy =
        sharded_ != nullptr ? sharded_->shard_policy(i) : *main_;
    if (auto* host = dynamic_cast<ControlPlaneHost*>(&policy)) {
      cells_[i] = host->control_plane();
    }
  }
}

std::size_t CdnServer::freshness_shard_of(trace::Key key) const {
  return sharded_ != nullptr ? sharded_->shard_of(key) : 0;
}

CdnServer::RequestOutcome CdnServer::process(const trace::Request& r,
                                             std::size_t shard_idx,
                                             ReplayAccumulator& acc,
                                             void* upstream_ctx) {
  FreshnessShard& fs = *fresh_[shard_idx];
  RequestOutcome out;

  // Step 1: index lookup. The policy's real compute time is the CPU cost of
  // the lookup/admission path (this is what makes LHR's CPU column rise).
  // With measured_lookup_cpu off, the CPU cost is the fixed model only, so
  // latency is a pure function of the trace (the fabric determinism mode).
  const auto cpu0 = std::chrono::steady_clock::now();
  const bool ram_hit = config_.has_disk_tier && fs.ram.access(r);
  const bool main_hit = main_->access(r);
  out.cpu_s = config_.per_request_cpu_s +
              config_.cpu_per_byte_s * static_cast<double>(r.size);
  if (config_.measured_lookup_cpu) {
    out.cpu_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - cpu0).count();
  }

  const double client_time = transfer_seconds(r.size, config_.client_gbps);

  const bool effective_hit = ram_hit || main_hit;
  out.cache_hit = effective_hit;
  bool refetch = false;

  // One logical origin fetch (miss, revalidation, or refetch) through the
  // retry/backoff/hedge policy — or through the upstream hook when this
  // server is a tier of a fabric — accounted into this worker's accumulator.
  const auto do_fetch = [&](std::uint64_t bytes) {
    const FetchOutcome f =
        upstream_ ? upstream_(upstream_ctx, r, bytes, r.time, shard_idx)
                  : fetch_policy_.fetch(*origin_, shard_idx, r.time, bytes);
    ++acc.origin_fetches;
    if (bytes > 0) ++acc.body_fetches;
    acc.origin_retries += f.retries;
    acc.origin_timeouts += f.timeouts;
    acc.origin_errors += f.errors;
    acc.origin_hedges += f.hedges;
    acc.hedge_cancels += f.hedge_cancels;
    acc.fetch_latency.add(f.latency_s);
    out.origin_s += f.origin_busy_s;
    out.user_latency_s += f.latency_s;
    return f.ok;
  };

  const auto adm = fs.admitted_at.find(r.key);
  const bool have_clock = adm != fs.admitted_at.end();

  // A stale cached copy may be served when the origin fails, as long as its
  // age is still inside the TTL + grace window (serve-stale-on-error).
  const auto stale_serveable = [&] {
    return effective_hit && have_clock &&
           (r.time - adm->second) <=
               config_.freshness_ttl_s + fetch_policy_.config().stale_grace_s;
  };

  const auto serve_from_cache = [&] {
    if (ram_hit || !config_.has_disk_tier) {
      out.user_latency_s += transfer_seconds(r.size, config_.ram_gbps) + client_time;
    } else {
      // Flash abstraction layer: random-offset read.
      const double disk_time =
          config_.disk_seek_s + transfer_seconds(r.size, config_.disk_read_gbps);
      out.disk_s += disk_time;
      out.user_latency_s += disk_time + client_time;
    }
    out.client_s = client_time;
    out.hit = true;
  };

  if (effective_hit) {
    // Step 2: freshness check.
    const bool stale =
        !have_clock || (r.time - adm->second) > config_.freshness_ttl_s;
    if (stale) {
      // Revalidation round trip (conditional GET, no body).
      if (!do_fetch(0)) {
        if (stale_serveable()) {
          serve_from_cache();
          out.stale_serve = true;  // degraded: freshness clock not restarted
        } else {
          out.failed = true;
        }
        out.user_latency_s += out.cpu_s;
        if (cells_[shard_idx] != nullptr) {
          cells_[shard_idx]->observe_latency(out.user_latency_s);
        }
        return out;
      }
      if (fs.rng.next_below(kRevalidateScale) < revalidate_threshold_) {
        refetch = true;  // content changed at the origin
        ++acc.refetches;
      } else if (have_clock) {
        adm->second = r.time;  // revalidated: freshness clock restarts
      } else {
        fs.admitted_at[r.key] = r.time;
      }
    }
  }

  if (effective_hit && !refetch) {
    serve_from_cache();
  } else if (do_fetch(r.size)) {
    // Step 3 (or stale-changed refetch): origin fetch, serve, admit.
    out.wan_bytes = r.size;
    out.user_latency_s += client_time;
    out.client_s = client_time;
    out.hit = effective_hit;  // a stale-but-unchanged hit still counts above
    // Sequential write into the flash layer — asynchronous, so it adds
    // disk busy time but not user latency.
    if (config_.has_disk_tier) {
      out.disk_s += transfer_seconds(r.size, config_.disk_write_gbps);
    }
    fs.admitted_at[r.key] = r.time;
  } else if (refetch && stale_serveable()) {
    // Changed at the origin but unfetchable: the old copy is still within
    // the grace window, so degrade to serving it.
    serve_from_cache();
    out.stale_serve = true;
  } else {
    out.failed = true;  // 5xx: retry budget exhausted, nothing serveable
  }
  out.user_latency_s += out.cpu_s;
  // Autotune feed: the shard's control-plane cell (if any) sees every served
  // latency. With measured_lookup_cpu off this is a pure function of the
  // trace, so the autotuner's decisions are deterministic per shard.
  if (cells_[shard_idx] != nullptr) {
    cells_[shard_idx]->observe_latency(out.user_latency_s);
  }
  return out;
}

void CdnServer::ReplayAccumulator::merge(const ReplayAccumulator& other) {
  latency.merge(other.latency);
  fetch_latency.merge(other.fetch_latency);
  origin_fetches += other.origin_fetches;
  origin_retries += other.origin_retries;
  origin_timeouts += other.origin_timeouts;
  origin_errors += other.origin_errors;
  origin_hedges += other.origin_hedges;
  hedge_cancels += other.hedge_cancels;
  stale_serves += other.stale_serves;
  failures += other.failures;
  cache_hits += other.cache_hits;
  refetches += other.refetches;
  body_fetches += other.body_fetches;
  cpu_busy += other.cpu_busy;
  disk_busy += other.disk_busy;
  origin_busy += other.origin_busy;
  client_busy += other.client_busy;
  bytes_served += other.bytes_served;
  wan_bytes += other.wan_bytes;
  hits += other.hits;
  requests += other.requests;
  // RAM-tier slices are disjoint across workers, so their peaks add; the
  // main-index peak is sampled by worker 0 only (see replay_partition).
  peak_meta += other.peak_meta;
  if (window_hits.size() < other.window_hits.size()) {
    window_hits.resize(other.window_hits.size(), 0);
    window_counts.resize(other.window_counts.size(), 0);
  }
  for (std::size_t w = 0; w < other.window_hits.size(); ++w) {
    window_hits[w] += other.window_hits[w];
    window_counts[w] += other.window_counts[w];
  }
}

void CdnServer::accumulate(const RequestOutcome& out, const trace::Request& r,
                           ReplayAccumulator& acc) {
  acc.latency.add(out.user_latency_s);
  acc.cpu_busy += out.cpu_s;
  acc.disk_busy += out.disk_s;
  acc.origin_busy += out.origin_s;
  acc.client_busy += out.client_s;
  if (!out.failed) acc.bytes_served += r.size;  // a 5xx serves no content
  acc.wan_bytes += out.wan_bytes;
  acc.stale_serves += static_cast<std::uint64_t>(out.stale_serve);
  acc.failures += static_cast<std::uint64_t>(out.failed);
  acc.cache_hits += static_cast<std::uint64_t>(out.cache_hit);
  acc.hits += static_cast<std::uint64_t>(out.hit);
  ++acc.requests;
}

CdnServer::RequestOutcome CdnServer::serve(const trace::Request& r,
                                           ReplayAccumulator& acc,
                                           void* upstream_ctx) {
  const RequestOutcome out = process(r, freshness_shard_of(r.key), acc, upstream_ctx);
  accumulate(out, r, acc);
  return out;
}

void CdnServer::OpenLoopAccumulator::merge(const OpenLoopAccumulator& other) {
  if (!other.any) return;
  sojourn.merge(other.sojourn);
  queue_wait.merge(other.queue_wait);
  service_s += other.service_s;
  queued += other.queued;
  if (!any) {
    first_arrival = other.first_arrival;
    last_completion = other.last_completion;
    any = true;
  } else {
    first_arrival = std::min(first_arrival, other.first_arrival);
    last_completion = std::max(last_completion, other.last_completion);
  }
}

void CdnServer::replay_partition(const trace::TraceSource& trace, std::size_t worker,
                                 std::size_t n_workers, std::size_t window_requests,
                                 std::size_t meta_sample_every,
                                 ReplayAccumulator& acc,
                                 OpenLoopAccumulator* open_loop,
                                 bool sample_main_index) {
  const std::size_t n_windows =
      window_requests > 0 ? (trace.size() + window_requests - 1) / window_requests : 0;
  acc.window_hits.assign(n_windows, 0);
  acc.window_counts.assign(n_windows, 0);

  const auto sample_metadata = [&] {
    // The sharded main index is safe to read from any thread; the RAM-tier
    // slices are lock-free, so each worker sums only the shards it owns.
    std::uint64_t meta = sample_main_index ? main_->metadata_bytes() : 0;
    if (config_.has_disk_tier) {
      for (std::size_t s = worker; s < fresh_.size(); s += n_workers) {
        meta += fresh_[s]->ram.metadata_bytes();
      }
    }
    acc.peak_meta = std::max(acc.peak_meta, meta);
  };

  // Each worker walks its own cursor over the shared source: zero-copy
  // subspans for in-memory/mmap traces, a private bounded re-generation for
  // streaming ones. The shard filter below keeps ownership identical to the
  // classic indexed loop.
  std::size_t processed = 0;
  auto cursor = trace.cursor();
  std::span<const trace::Request> chunk;
  for (std::size_t base = cursor->position();
       !(chunk = cursor->next_chunk(trace::kDefaultChunkRequests)).empty();
       base = cursor->position()) {
    for (std::size_t j = 0; j < chunk.size(); ++j) {
      const std::size_t i = base + j;
      const trace::Request& r = chunk[j];
      const std::size_t shard = freshness_shard_of(r.key);
      if (shard % n_workers != worker) continue;

      RequestOutcome out;
      if (open_loop != nullptr) {
        // Open-loop accounting: the trace timestamp is the *scheduled*
        // arrival (the generator keeps emitting regardless of server speed).
        // Wall-clock the real service work, then push it through this
        // worker's virtual queue; sojourn = queueing + service, measured
        // against the schedule, so stalls are charged to every request they
        // delay — no coordinated omission.
        const auto svc0 = std::chrono::steady_clock::now();
        out = process(r, shard, acc);
        const double service = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - svc0)
                                   .count();
        const double arrival = r.time;
        const double start = std::max(arrival, open_loop->clock);
        const double completion = start + service;
        open_loop->clock = completion;
        open_loop->sojourn.add(completion - arrival);
        open_loop->queue_wait.add(start - arrival);
        open_loop->queued += static_cast<std::uint64_t>(start > arrival);
        open_loop->service_s += service;
        if (!open_loop->any) {
          open_loop->first_arrival = arrival;
          open_loop->any = true;
        }
        open_loop->last_completion = completion;
      } else {
        out = process(r, shard, acc);
      }
      accumulate(out, r, acc);
      if (n_windows > 0) {
        ++acc.window_counts[i / window_requests];
        acc.window_hits[i / window_requests] += static_cast<std::uint64_t>(out.hit);
      }
      if (++processed % meta_sample_every == 0) sample_metadata();
    }
  }
  sample_metadata();
}

ControlPlaneReport CdnServer::collect_control_plane() const {
  // Integer counters summed in shard-index order, so the aggregate is
  // byte-identical at every worker partition.
  ControlPlaneReport cp;
  for (const ControlPlane* cell : cells_) {
    if (cell == nullptr) continue;
    cp.active = true;
    ++cp.cells;
    cp.counters.merge(cell->counters());
  }
  return cp;
}

std::uint64_t CdnServer::backend_lock_contentions() const {
  return sharded_ != nullptr ? sharded_->lock_contentions() : 0;
}

ServerReport CdnServer::finalize(const trace::TraceSource& trace, ReplayMode mode,
                                 const ReplayAccumulator& total, std::size_t threads,
                                 double wall_seconds,
                                 std::uint64_t contentions_before) const {
  const std::uint64_t contentions =
      sharded_ != nullptr ? sharded_->lock_contentions() - contentions_before : 0;
  return assemble_report(trace, mode, total, collect_control_plane(), threads,
                         wall_seconds, contentions);
}

ServerReport CdnServer::assemble_report(const trace::TraceSource& trace,
                                        ReplayMode mode,
                                        const ReplayAccumulator& total,
                                        const ControlPlaneReport& control_plane,
                                        std::size_t threads, double wall_seconds,
                                        std::uint64_t lock_contentions) const {
  ServerReport report;
  report.policy_name = main_->name();
  report.requests = total.requests;
  report.hits = total.hits;
  report.bytes_served = total.bytes_served;
  report.wan_bytes = total.wan_bytes;
  report.peak_metadata_bytes = total.peak_meta;
  report.replay_wall_seconds = wall_seconds;
  report.replay_threads = threads;
  report.lock_contentions = lock_contentions;
  report.control_plane = control_plane;
  report.origin_fetches = total.origin_fetches;
  report.origin_retries = total.origin_retries;
  report.origin_timeouts = total.origin_timeouts;
  report.origin_errors = total.origin_errors;
  report.origin_hedges = total.origin_hedges;
  report.hedge_cancels = total.hedge_cancels;
  report.stale_serves = total.stale_serves;
  report.failed_requests = total.failures;
  if (total.fetch_latency.count() > 0) {
    report.fetch_p50_ms = total.fetch_latency.quantile(0.50) * 1e3;
    report.fetch_p90_ms = total.fetch_latency.quantile(0.90) * 1e3;
    report.fetch_p99_ms = total.fetch_latency.quantile(0.99) * 1e3;
    report.fetch_avg_ms = total.fetch_latency.mean() * 1e3;
  }

  for (std::size_t w = 0; w < total.window_counts.size(); ++w) {
    if (total.window_counts[w] == 0) continue;
    report.window_hit_ratio.push_back(static_cast<double>(total.window_hits[w]) /
                                      static_cast<double>(total.window_counts[w]));
  }

  // Duration: wall-clock of the trace in normal mode; the busiest resource's
  // busy time in max (throughput-bound) mode.
  const double cores = static_cast<double>(config_.cpu_cores);
  double duration;
  if (mode == ReplayMode::kNormal) {
    duration = std::max(trace.duration(), 1e-6);
  } else {
    duration = std::max({total.cpu_busy / cores, total.disk_busy, total.origin_busy,
                         total.client_busy, 1e-6});
  }

  report.throughput_gbps =
      static_cast<double>(total.bytes_served) * 8.0 / duration / 1e9;
  report.peak_cpu_pct = 100.0 * total.cpu_busy / (cores * duration);
  report.peak_mem_gb =
      (static_cast<double>(total.peak_meta) + static_cast<double>(config_.ram_bytes)) /
      kGB;
  report.p90_latency_ms = total.latency.quantile(0.90) * 1e3;
  report.p99_latency_ms = total.latency.quantile(0.99) * 1e3;
  report.avg_latency_ms = total.latency.mean() * 1e3;
  report.traffic_gbps = static_cast<double>(total.wan_bytes) * 8.0 / duration / 1e9;
  report.content_hit_pct =
      trace.empty()
          ? 0.0
          : 100.0 * static_cast<double>(total.hits) / static_cast<double>(trace.size());
  return report;
}

ServerReport CdnServer::replay(const trace::TraceSource& trace, ReplayMode mode,
                               std::size_t window_requests) {
  const std::uint64_t contentions_before =
      sharded_ != nullptr ? sharded_->lock_contentions() : 0;
  ReplayAccumulator acc;
  const auto t0 = std::chrono::steady_clock::now();
  // Unsharded backends keep the classic per-request metadata sampling; a
  // sharded backend's metadata_bytes() locks every shard, so sample it at
  // the same cadence as the concurrent path.
  replay_partition(trace, /*worker=*/0, /*n_workers=*/1, window_requests,
                   fresh_.size() == 1 ? 1 : kConcurrentMetaSampleEvery, acc);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return finalize(trace, mode, acc, /*threads=*/1, wall, contentions_before);
}

CdnServer::ReplayAccumulator CdnServer::replay_slice(
    const trace::TraceSource& trace, std::size_t proc_index, std::size_t procs,
    std::size_t threads, std::size_t window_requests,
    OpenLoopAccumulator* open_loop) {
  if (procs == 0 || threads == 0) {
    throw std::invalid_argument(
        "CdnServer::replay_slice: procs and threads must be >= 1");
  }
  if (proc_index >= procs) {
    throw std::invalid_argument("CdnServer::replay_slice: proc_index out of range");
  }
  if (sharded_ == nullptr && procs * threads > 1) {
    throw std::invalid_argument(
        "CdnServer::replay_slice: main policy must be a server::ShardedCache "
        "for multi-worker replay");
  }
  const std::size_t n_global = procs * threads;
  std::vector<ReplayAccumulator> acc(threads);
  std::vector<OpenLoopAccumulator> ol(open_loop != nullptr ? threads : 0);
  if (threads == 1) {
    replay_partition(trace, proc_index, n_global, window_requests,
                     kConcurrentMetaSampleEvery, acc[0],
                     open_loop != nullptr ? &ol[0] : nullptr,
                     /*sample_main_index=*/true);
  } else {
    util::ThreadPool pool(threads);
    util::TaskGroup group(&pool);
    for (std::size_t t = 0; t < threads; ++t) {
      group.run([this, &trace, proc_index, procs, t, n_global, window_requests,
                 &acc, &ol, open_loop] {
        replay_partition(trace, proc_index + t * procs, n_global, window_requests,
                         kConcurrentMetaSampleEvery, acc[t],
                         open_loop != nullptr ? &ol[t] : nullptr,
                         /*sample_main_index=*/t == 0);
      });
    }
    group.wait();
  }
  // Deterministic reduction in thread order; the caller merges per-process
  // results in process order, completing the global worker-index reduction.
  for (std::size_t t = 1; t < threads; ++t) {
    acc[0].merge(acc[t]);
    if (open_loop != nullptr) ol[0].merge(ol[t]);
  }
  if (open_loop != nullptr) *open_loop = std::move(ol[0]);
  return std::move(acc[0]);
}

ServerReport CdnServer::replay_concurrent(const trace::TraceSource& trace, ReplayMode mode,
                                          std::size_t n_threads,
                                          std::size_t window_requests) {
  if (sharded_ == nullptr) {
    throw std::invalid_argument(
        "CdnServer::replay_concurrent: main policy must be a server::ShardedCache");
  }
  const std::size_t workers = std::clamp<std::size_t>(n_threads, 1, fresh_.size());
  const std::uint64_t contentions_before = sharded_->lock_contentions();

  const auto t0 = std::chrono::steady_clock::now();
  const ReplayAccumulator total =
      replay_slice(trace, /*proc_index=*/0, /*procs=*/1, workers, window_requests);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return finalize(trace, mode, total, workers, wall, contentions_before);
}

void CdnServer::apply_open_loop_stats(ServerReport& report,
                                      const OpenLoopAccumulator& open_loop,
                                      const trace::TraceSource& trace) {
  report.open_loop = true;
  const std::uint64_t n = report.requests;
  if (n == 0 || !open_loop.any) return;
  // Offered load is what the schedule asked for; achieved load is what the
  // measured service times actually sustained. At saturation the two
  // diverge (the knee) and the sojourn tail explodes.
  report.offered_rps = static_cast<double>(n) / std::max(trace.duration(), 1e-9);
  report.achieved_rps =
      static_cast<double>(n) /
      std::max(open_loop.last_completion - open_loop.first_arrival, 1e-9);
  report.sojourn_p50_ms = open_loop.sojourn.quantile(0.50) * 1e3;
  report.sojourn_p99_ms = open_loop.sojourn.quantile(0.99) * 1e3;
  report.sojourn_p999_ms = open_loop.sojourn.quantile(0.999) * 1e3;
  report.sojourn_avg_ms = open_loop.sojourn.mean() * 1e3;
  report.queue_wait_p99_ms = open_loop.queue_wait.quantile(0.99) * 1e3;
  report.service_avg_us =
      open_loop.service_s / static_cast<double>(n) * 1e6;
  report.queued_requests = open_loop.queued;
}

ServerReport CdnServer::replay_open_loop(const trace::TraceSource& trace,
                                         std::size_t n_threads,
                                         std::size_t window_requests) {
  if (sharded_ == nullptr && n_threads > 1) {
    throw std::invalid_argument(
        "CdnServer::replay_open_loop: main policy must be a server::ShardedCache "
        "for multi-threaded replay");
  }
  const std::size_t workers = std::clamp<std::size_t>(n_threads, 1, fresh_.size());
  const std::uint64_t contentions_before =
      sharded_ != nullptr ? sharded_->lock_contentions() : 0;

  OpenLoopAccumulator ol;
  const auto t0 = std::chrono::steady_clock::now();
  const ReplayAccumulator total = replay_slice(trace, /*proc_index=*/0, /*procs=*/1,
                                               workers, window_requests, &ol);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  ServerReport report =
      finalize(trace, ReplayMode::kNormal, total, workers, wall, contentions_before);
  apply_open_loop_stats(report, ol, trace);
  return report;
}

}  // namespace lhr::server
