#include "server/cdn_server.hpp"

#include <algorithm>
#include <chrono>

#include "util/rng.hpp"

namespace lhr::server {

namespace {
constexpr double kGB = 1024.0 * 1024.0 * 1024.0;

double transfer_seconds(std::uint64_t bytes, double gbps) {
  return static_cast<double>(bytes) * 8.0 / (gbps * 1e9);
}
}  // namespace

CdnServer::CdnServer(std::unique_ptr<sim::CachePolicy> main_policy,
                     const ServerConfig& config)
    : config_(config),
      main_(std::move(main_policy)),
      ram_(config.ram_bytes),
      rng_state_(config.seed) {}

CdnServer::RequestOutcome CdnServer::process(const trace::Request& r) {
  RequestOutcome out;
  now_ = r.time;

  // Step 1: index lookup. The policy's real compute time is the CPU cost of
  // the lookup/admission path (this is what makes LHR's CPU column rise).
  const auto cpu0 = std::chrono::steady_clock::now();
  const bool ram_hit = config_.has_disk_tier && ram_.access(r);
  const bool main_hit = main_->access(r);
  out.cpu_s = config_.per_request_cpu_s +
              config_.cpu_per_byte_s * static_cast<double>(r.size) +
              std::chrono::duration<double>(std::chrono::steady_clock::now() - cpu0).count();

  const double client_time = transfer_seconds(r.size, config_.client_gbps);
  out.client_s = client_time;

  bool effective_hit = ram_hit || main_hit;
  bool refetch = false;

  if (effective_hit) {
    // Step 2: freshness check.
    const auto adm = admitted_at_.find(r.key);
    const bool stale =
        adm == admitted_at_.end() || (r.time - adm->second) > config_.freshness_ttl_s;
    if (stale) {
      out.user_latency_s += config_.origin_rtt_s;  // revalidation round trip
      if (util::splitmix64(rng_state_) % 10'000 <
          static_cast<std::uint64_t>(config_.revalidate_change_prob * 10'000)) {
        refetch = true;  // content changed at the origin
      } else if (adm != admitted_at_.end()) {
        adm->second = r.time;  // revalidated: freshness clock restarts
      } else {
        admitted_at_[r.key] = r.time;
      }
    }
  }

  if (effective_hit && !refetch) {
    if (ram_hit || !config_.has_disk_tier) {
      out.user_latency_s += transfer_seconds(r.size, config_.ram_gbps) + client_time;
    } else {
      // Flash abstraction layer: random-offset read.
      const double disk_time =
          config_.disk_seek_s + transfer_seconds(r.size, config_.disk_read_gbps);
      out.disk_s += disk_time;
      out.user_latency_s += disk_time + client_time;
    }
    out.hit = true;
  } else {
    // Step 3 (or stale-changed refetch): origin fetch, serve, admit.
    const double origin_time =
        config_.origin_rtt_s + transfer_seconds(r.size, config_.origin_gbps);
    out.origin_s += origin_time;
    out.wan_bytes = static_cast<double>(r.size);
    out.user_latency_s += origin_time + client_time;
    out.hit = effective_hit;  // a stale-but-unchanged hit still counts above

    // Sequential write into the flash layer — asynchronous, so it adds
    // disk busy time but not user latency.
    if (config_.has_disk_tier) {
      out.disk_s += transfer_seconds(r.size, config_.disk_write_gbps);
    }
    admitted_at_[r.key] = r.time;
  }
  out.user_latency_s += out.cpu_s;
  return out;
}

ServerReport CdnServer::replay(const trace::Trace& trace, ReplayMode mode,
                               std::size_t window_requests) {
  ServerReport report;
  report.policy_name = main_->name();

  util::QuantileHistogram latency(1e-6, 1e4, 128);
  double cpu_busy = 0.0, disk_busy = 0.0, origin_busy = 0.0, client_busy = 0.0;
  double bytes_served = 0.0, wan_bytes = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t peak_meta = 0;

  std::uint64_t window_hits = 0, window_count = 0;

  for (const trace::Request& r : trace) {
    const RequestOutcome out = process(r);
    latency.add(out.user_latency_s);
    cpu_busy += out.cpu_s;
    disk_busy += out.disk_s;
    origin_busy += out.origin_s;
    client_busy += out.client_s;
    bytes_served += static_cast<double>(r.size);
    wan_bytes += out.wan_bytes;
    if (out.hit) {
      ++hits;
      ++window_hits;
    }
    if (++window_count == window_requests) {
      report.window_hit_ratio.push_back(static_cast<double>(window_hits) /
                                        static_cast<double>(window_count));
      window_hits = window_count = 0;
    }
    peak_meta = std::max(peak_meta, main_->metadata_bytes());
  }
  if (window_count > 0) {
    report.window_hit_ratio.push_back(static_cast<double>(window_hits) /
                                      static_cast<double>(window_count));
  }

  // Duration: wall-clock of the trace in normal mode; the busiest resource's
  // busy time in max (throughput-bound) mode.
  const double cores = static_cast<double>(config_.cpu_cores);
  double duration;
  if (mode == ReplayMode::kNormal) {
    duration = std::max(trace.duration(), 1e-6);
  } else {
    duration = std::max({cpu_busy / cores, disk_busy, origin_busy, client_busy, 1e-6});
  }

  report.throughput_gbps = bytes_served * 8.0 / duration / 1e9;
  report.peak_cpu_pct = 100.0 * cpu_busy / (cores * duration);
  report.peak_mem_gb =
      (static_cast<double>(peak_meta) + static_cast<double>(config_.ram_bytes)) / kGB;
  report.p90_latency_ms = latency.quantile(0.90) * 1e3;
  report.p99_latency_ms = latency.quantile(0.99) * 1e3;
  report.avg_latency_ms = latency.mean() * 1e3;
  report.traffic_gbps = wan_bytes * 8.0 / duration / 1e9;
  report.content_hit_pct =
      trace.empty() ? 0.0
                    : 100.0 * static_cast<double>(hits) / static_cast<double>(trace.size());
  return report;
}

}  // namespace lhr::server
