// Multi-tier CDN fabric: N edge CdnServers -> M regional CdnServers -> the
// fault-injected Origin. This is the "millions of users" topology from
// ROADMAP.md: the single-node replay of the earlier layers becomes one leaf
// of a hierarchy, following the placement-over-a-network framing of
// Ioannidis & Yeh (Adaptive Caching Networks with Optimality Guarantees)
// and the per-tier learned policies of Torabi & Khazaei (PAPERS.md).
//
// Topology & routing
//   * Clients hash to edge nodes by rendezvous (HRW) hashing over the key:
//     each node carries a stable salt and a key goes to the node with the
//     highest mix64(key ^ salt). Adding or removing an edge node therefore
//     moves only the keys whose maximum changes (~1/N of the space) — the
//     property fabric_test asserts under node add/remove.
//   * An edge miss becomes a cooperative lookup at the key's home regional
//     node (HRW over the regional tier with an independent salt stream), so
//     every edge shares the same regional copy of a given object. A
//     regional hit absorbs the miss before the faulty origin is touched.
//   * With zero regional nodes the fabric degenerates to a two-tier
//     edge -> origin topology (the pre-fabric behaviour, N-way sharded).
//
// Inter-tier links reuse the origin machinery end to end: the edge ->
// regional link is an Origin (latency profile per edge node) driven by a
// FetchPolicy (timeout/retry/backoff/hedge) under a FaultSchedule, so link
// outages, retries, hedging and serve-stale apply mid-hierarchy exactly as
// they do against the true origin; the regional -> origin link is each
// regional server's own built-in Origin/FetchPolicy/FaultSchedule. Edge
// revalidations (conditional GETs) are answered authoritatively at the
// regional boundary — one conditional round trip across the link. Latency
// composes store-and-forward: link RTT + body transfer at link bandwidth,
// plus the serving tier's own disk/CPU/egress costs.
//
// Determinism contract (the shard-ownership discipline, fabric-wide)
//   Every node — edge and regional — runs a ShardedCache with the same
//   shard count S and the same pure key -> shard function g
//   (ShardedCache::shard_index). A replay worker w owns every shard index
//   s with s % n_workers == w, across ALL nodes at once: since a key's
//   entire path (edge node, edge shard, regional node, regional shard,
//   link/origin draw streams) is a pure function of the key, all mutable
//   state a key touches lives in shards owned by exactly one worker, and
//   each shard sees exactly the subsequence of its keys in trace order no
//   matter how many workers run. Per-node server configs disable
//   measured_lookup_cpu, so per-request latency is a pure function of the
//   trace: every aggregate in FabricReport::canonical_summary() — counters,
//   per-node request counts, latency quantiles (integer bucket merges) —
//   is byte-identical at any worker count.
//
// Cross-tier accounting
//   Both sides of every link keep independent ledgers (the edge servers
//   count body fetches they issue, the fabric counts what enters and
//   survives the link, the regional servers count lookups they serve), and
//   finalize() checks they balance exactly: edge misses == link entries ==
//   link failures + regional lookups; per tier, body fetches ==
//   (requests - cache hits) + refetches; regional body fetches are the
//   origin fetches attempted. A non-empty conservation_error means a
//   plumbing bug, not a workload property.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "server/cdn_server.hpp"
#include "server/origin.hpp"
#include "sim/cache_policy.hpp"
#include "trace/trace_source.hpp"
#include "util/stats.hpp"

namespace lhr::server {

/// One tier of a parsed --fabric / LHR_FABRIC topology spec. Policies are
/// carried by name; core::make_fabric_config binds them to real factories
/// (the server layer cannot depend on the policy factory).
struct FabricTierSpec {
  std::size_t nodes = 0;
  std::string policy = "LRU";
  double capacity_gb = 1.0;  ///< per node
};

/// A parsed --fabric topology spec. Grammar (clauses separated by ';'):
///   edge=COUNTxPOLICY[@GB] ; regional=COUNTxPOLICY[@GB]
///   shards=N ; link-rtt-ms=X ; link-gbps=X
/// Example: "edge=4xLHR@1;regional=2xLRU@8;shards=16;link-rtt-ms=4".
/// `regional=0` selects the two-tier edge -> origin topology.
struct FabricSpec {
  FabricTierSpec edge{4, "LHR", 1.0};
  FabricTierSpec regional{2, "LRU", 8.0};
  std::size_t shards = 16;       ///< per node, every tier (ownership partition)
  double link_rtt_ms = 4.0;      ///< edge -> regional link round trip
  double link_gbps = 40.0;       ///< edge -> regional link bandwidth
};

/// Parses the --fabric grammar above. Throws std::invalid_argument naming
/// the clause and offending token on malformed input.
[[nodiscard]] FabricSpec parse_fabric_spec(const std::string& spec);

/// Construction-time fabric configuration (core::make_fabric_config builds
/// one from a FabricSpec; tests assemble it directly).
struct FabricConfig {
  using PolicyFactory =
      std::function<std::unique_ptr<sim::CachePolicy>(std::uint64_t capacity)>;

  std::size_t edge_nodes = 4;
  std::size_t regional_nodes = 2;   ///< 0 = two-tier fabric (edge -> origin)
  /// ShardedCache shard count for every node of every tier. The worker
  /// ownership partition runs over shard indices, so replay parallelism is
  /// capped at this value.
  std::size_t shards_per_node = 16;
  std::uint64_t edge_capacity_bytes = 1ULL << 30;      ///< per edge node
  std::uint64_t regional_capacity_bytes = 8ULL << 30;  ///< per regional node
  PolicyFactory edge_policy;      ///< required
  PolicyFactory regional_policy;  ///< required when regional_nodes > 0

  /// Per-node server templates. The fabric overrides the backend (a
  /// ShardedCache of shards_per_node x the tier policy), derives per-node
  /// seeds, and forces measured_lookup_cpu = false (see header comment).
  /// regional_server's origin_profile/fetch/fault_schedule ARE the
  /// regional -> origin link; edge_server's are only used in the two-tier
  /// topology, where they are the edge -> origin link.
  ServerConfig edge_server;
  ServerConfig regional_server;

  // Edge -> regional link (three-tier topology only), expressed through the
  // same machinery as the origin: a latency profile (one Origin per edge
  // node, one draw stream per shard), a FetchPolicy and a FaultSchedule.
  OriginProfile link_profile;   ///< rtt/gbps < 0 inherit link_rtt_s/link_gbps
  double link_rtt_s = 0.004;
  double link_gbps = 40.0;
  FetchPolicyConfig link_fetch;
  FaultSchedule link_faults;

  std::uint64_t seed = 2027;  ///< HRW salt streams + per-node server seeds
};

/// Aggregate counters for one tier (summed over its nodes, reduced in
/// worker-index then node-index order — exact integers).
struct FabricTierReport {
  std::string name;
  std::size_t nodes = 0;
  std::uint64_t requests = 0;      ///< lookups served by this tier
  std::uint64_t hits = 0;          ///< served-as-hit (incl. revalidated)
  std::uint64_t cache_hits = 0;    ///< lookup hits before the refetch decision
  std::uint64_t refetches = 0;     ///< stale-and-changed re-fetches attempted
  std::uint64_t body_fetches = 0;  ///< body fetches sent toward the next tier
  std::uint64_t bytes_served = 0;      ///< bytes served downstream (5xx excluded)
  std::uint64_t upstream_bytes = 0;    ///< bytes pulled from the next tier
  std::uint64_t stale_serves = 0;
  std::uint64_t failed_requests = 0;
  std::uint64_t fetches = 0;   ///< logical upstream fetches incl. revalidations
  std::uint64_t retries = 0, timeouts = 0, errors = 0, hedges = 0;
  /// Requests routed to each node of this tier (HRW balance; exact).
  std::vector<std::uint64_t> node_requests;

  [[nodiscard]] double hit_pct() const {
    return requests > 0
               ? 100.0 * static_cast<double>(hits) / static_cast<double>(requests)
               : 0.0;
  }
};

/// What one CdnFabric::replay produced. All integer counters and the
/// latency quantiles are identical at every worker count; only
/// replay_wall_seconds and the *_avg_ms double sums are machine-dependent.
struct FabricReport {
  std::uint64_t requests = 0;
  FabricTierReport edge;
  FabricTierReport regional;  ///< nodes == 0 in the two-tier topology

  // Edge -> regional link ledger (fabric-side, three-tier only).
  std::uint64_t link_body_fetches = 0;  ///< body fetches entering the link
  std::uint64_t link_failures = 0;      ///< died on the link (never reached regional)
  std::uint64_t regional_lookups = 0;   ///< serve calls the fabric issued regionally

  // Origin-side totals (the regional tier's upstream; the edge tier's in
  // the two-tier topology).
  std::uint64_t origin_fetches = 0;       ///< logical fetches incl. revalidations
  std::uint64_t origin_body_fetches = 0;  ///< body fetches attempted at the origin
  std::uint64_t origin_wan_bytes = 0;     ///< true WAN bytes

  // End-to-end (client-observed) latency, merged across workers with exact
  // integer bucket counts; the histogram itself is exposed so tests can
  // compare its quantiles against util::exact_percentile.
  double e2e_p50_ms = 0.0, e2e_p90_ms = 0.0, e2e_p99_ms = 0.0, e2e_avg_ms = 0.0;
  util::QuantileHistogram e2e_latency{1e-6, 1e4, 128};

  double replay_wall_seconds = 0.0;
  std::size_t replay_threads = 1;

  /// Empty when every cross-tier ledger balanced exactly; otherwise a
  /// description of the first imbalance (a fabric plumbing bug).
  std::string conservation_error;
  [[nodiscard]] bool traffic_conserved() const { return conservation_error.empty(); }

  /// The deterministic fields, one per line — byte-identical at every
  /// worker count for the same fabric config and trace (the string the
  /// determinism tests and bench_fabric compare).
  [[nodiscard]] std::string canonical_summary() const;
};

/// The composed hierarchy. Cache state persists across replay calls, like
/// CdnServer.
class CdnFabric {
 public:
  /// Validates and takes the config. Throws std::invalid_argument on a
  /// null tier factory, zero edge nodes or zero shards.
  explicit CdnFabric(FabricConfig config);

  /// Called once per request with its end-to-end latency, from the worker
  /// that processed it (wrap in a mutex or replay with n_threads == 1 to
  /// collect exact samples — the quantile-agreement tests do the latter).
  using LatencyProbe = std::function<void(const trace::Request&, double latency_s)>;

  /// Replays the trace over `n_threads` workers (clamped to
  /// [1, shards_per_node]) under the fabric-wide shard-ownership partition.
  FabricReport replay(const trace::TraceSource& trace, std::size_t n_threads,
                      const LatencyProbe& probe = {});

  /// Rendezvous (HRW) pick: index of the highest mix64(key ^ salt) among
  /// `salts` (lowest index wins ties). Exposed for routing tests.
  [[nodiscard]] static std::size_t rendezvous_pick(trace::Key key,
                                                   std::span<const std::uint64_t> salts);

  [[nodiscard]] std::size_t edge_of(trace::Key key) const;
  [[nodiscard]] std::size_t regional_of(trace::Key key) const;  ///< 3-tier only
  /// The fabric-wide ownership shard of a key (== every node's internal
  /// shard index for that key).
  [[nodiscard]] std::size_t shard_of(trace::Key key) const;

  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] std::size_t regional_count() const { return regionals_.size(); }
  [[nodiscard]] std::size_t shard_count() const { return config_.shards_per_node; }
  [[nodiscard]] const CdnServer& edge_node(std::size_t i) const { return *edges_[i]; }
  [[nodiscard]] const CdnServer& regional_node(std::size_t i) const {
    return *regionals_[i];
  }

 private:
  /// Everything one replay worker mutates: per-node accumulators plus the
  /// fabric-side link ledger and the end-to-end latency histogram. Threaded
  /// through CdnServer::serve as the opaque upstream context.
  struct WorkerState {
    std::vector<CdnServer::ReplayAccumulator> edge_acc;  ///< one per edge node
    std::vector<CdnServer::ReplayAccumulator> reg_acc;   ///< one per regional node
    std::vector<std::uint64_t> edge_node_requests;
    std::vector<std::uint64_t> reg_node_requests;
    std::uint64_t link_body_fetches = 0;
    std::uint64_t link_failures = 0;
    std::uint64_t regional_lookups = 0;
    util::QuantileHistogram e2e{1e-6, 1e4, 128};
  };

  /// The edge -> regional hop: traverses edge node `edge`'s link (faults,
  /// retries, hedging), then resolves body fetches at the key's home
  /// regional node. Revalidations (bytes == 0) end at the regional boundary.
  FetchOutcome upstream_fetch(WorkerState& ws, std::size_t edge,
                              const trace::Request& r, std::uint64_t bytes,
                              double now, std::size_t stream);

  void replay_worker(const trace::TraceSource& trace, std::size_t worker,
                     std::size_t n_workers, WorkerState& ws,
                     const LatencyProbe& probe);

  FabricConfig config_;
  std::vector<std::unique_ptr<CdnServer>> edges_;
  std::vector<std::unique_ptr<CdnServer>> regionals_;
  std::vector<std::unique_ptr<Origin>> links_;  ///< one per edge node (3-tier)
  FetchPolicy link_policy_;
  std::vector<std::uint64_t> edge_salts_;
  std::vector<std::uint64_t> regional_salts_;
};

}  // namespace lhr::server
