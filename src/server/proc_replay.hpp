// Process-parallel replay engine, server half (see DESIGN.md "Process
// fan-out"). The parent spawns P copies of its own binary in a hidden
// worker mode; each worker mmaps the same .lhrt read-only, builds an
// identical CdnServer, runs CdnServer::replay_slice on the shard subset
// s % P == p (composed with per-process threads into the global partition
// s % (P*T)), and streams one binary PartialReport back over a pipe
// installed at kWorkerPipeFd. The parent drains every pipe, reaps every
// child, merges the partials in process-index order, and assembles the
// final ServerReport — canonically byte-identical to the single-process
// replay at any procs x threads combination.
//
// This header owns the generic engine: partial-report encode/decode, the
// worker-side slice runner, and the parent-side spawn/drain/merge. How a
// worker process rebuilds the server (policy name -> policy instance) lives
// one layer up in core/proc_replay.hpp, because policy construction needs
// the factory, which lhr_server cannot link.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "server/cdn_server.hpp"

namespace lhr::server {

/// Descriptor where a worker writes its encoded partial report. Fixed at 3
/// (first fd after stdio) by the spawn plumbing, so worker stdout/stderr
/// stay free for diagnostics and sanitizer reports.
inline constexpr int kWorkerPipeFd = 3;

/// One worker process's share of a replay: its thread-merged accumulator,
/// its server's control-plane slice (cells of unowned shards stay zero),
/// and its open-loop partial when the replay ran open-loop.
struct PartialReport {
  std::uint32_t proc_index = 0;
  std::uint32_t procs = 1;
  std::uint32_t threads = 1;
  CdnServer::ReplayAccumulator acc;
  ControlPlaneReport control_plane;
  std::uint64_t lock_contentions = 0;
  double wall_seconds = 0.0;  ///< the worker's own replay wall-clock
  bool has_open_loop = false;
  CdnServer::OpenLoopAccumulator open_loop;

  /// Merges `other` into this partial — call in ascending proc_index order
  /// so the reduction matches the in-process worker-index discipline.
  /// Control-plane cell *count* is not summed: every worker's server hosts
  /// all cells, so the count comes from partial 0 and only counters add.
  void merge(const PartialReport& other);
};

/// Fixed-layout host-endian binary encoding of a PartialReport (magic +
/// version framed, length-checked). Same-machine pipe IPC only — this is
/// not a portable file format.
[[nodiscard]] std::string encode_partial_report(const PartialReport& partial);

/// Inverse of encode_partial_report. Throws std::runtime_error on a
/// truncated, over-long, or mis-framed buffer — a crashed worker's
/// half-written stream decodes as a hard error, never as zero counters.
[[nodiscard]] PartialReport decode_partial_report(std::string_view bytes);

/// The replay shape every worker (and the parent's report assembly) agrees
/// on. `threads` is per process; the global worker count is procs*threads.
struct ProcReplayOptions {
  std::size_t procs = 1;
  std::size_t threads = 1;
  ReplayMode mode = ReplayMode::kNormal;
  std::size_t window_requests = 50'000;
  bool open_loop = false;  ///< open-loop (virtual-queue) accounting
};

/// Worker side: runs this process's slice and returns the partial.
[[nodiscard]] PartialReport replay_worker_slice(CdnServer& server,
                                                const trace::TraceSource& trace,
                                                std::size_t proc_index,
                                                const ProcReplayOptions& opts);

/// Worker side, top level: replay_worker_slice + encode + write to `out_fd`.
/// Returns a process exit code (0 ok, non-zero on write failure).
[[nodiscard]] int run_replay_worker(CdnServer& server,
                                    const trace::TraceSource& trace,
                                    std::size_t proc_index,
                                    const ProcReplayOptions& opts, int out_fd);

/// Builds the argv (excluding argv[0]) that re-enters `exe` as worker
/// `proc_index`. Provided by the caller because only the core layer knows
/// how to serialize its job description.
using WorkerArgvFn = std::function<std::vector<std::string>(std::size_t proc_index)>;

/// Parent side: spawns `opts.procs` workers of `exe`, drains every pipe to
/// EOF (a dead worker closes its pipe, so this never hangs), reaps every
/// child by pid (no SIGCHLD handler — safe inside gtest/benchmark hosts),
/// then either throws std::runtime_error carrying a per-worker diagnostic
/// (exit code / terminating signal / partial-decode failure, all workers
/// listed) or merges the partials in process-index order and assembles the
/// final report through `parent` — which must be configured identically to
/// the workers' servers but is never replayed into.
[[nodiscard]] ServerReport replay_multiprocess(const CdnServer& parent,
                                               const trace::TraceSource& trace,
                                               const ProcReplayOptions& opts,
                                               const std::string& exe,
                                               const WorkerArgvFn& worker_argv);

}  // namespace lhr::server
