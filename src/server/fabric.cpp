#include "server/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "server/sharded_cache.hpp"
#include "util/hash.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lhr::server {

namespace {

/// One tier clause value: COUNT 'x' POLICY ['@' GB]; a bare "0" disables
/// the tier (regional only).
FabricTierSpec parse_tier(const std::string& tier_name, const std::string& value) {
  const std::string what = "--fabric " + tier_name;
  FabricTierSpec tier;
  const std::size_t x = value.find('x');
  tier.nodes = static_cast<std::size_t>(
      util::require_u64(what + " node count", value.substr(0, x)));
  if (x == std::string::npos) {
    if (tier.nodes != 0) {
      throw std::invalid_argument(what + ": expected COUNTxPOLICY[@GB], got '" +
                                  value + "'");
    }
    return tier;  // "regional=0" selects the two-tier topology
  }
  const std::string rest = value.substr(x + 1);
  const std::size_t at = rest.find('@');
  tier.policy = rest.substr(0, at);
  if (tier.policy.empty()) {
    throw std::invalid_argument(what + ": missing policy name in '" + value + "'");
  }
  if (at != std::string::npos) {
    tier.capacity_gb = util::require_double(what + " capacity GB", rest.substr(at + 1));
    if (!(tier.capacity_gb > 0.0)) {
      throw std::invalid_argument(what + ": capacity must be positive, got '" +
                                  rest.substr(at + 1) + "'");
    }
  }
  return tier;
}

void append_tier_summary(std::string& s, const FabricTierReport& t) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "%s: nodes=%zu requests=%llu hits=%llu cache_hits=%llu refetches=%llu "
      "body_fetches=%llu bytes_served=%llu upstream_bytes=%llu "
      "stale_serves=%llu failed=%llu fetches=%llu retries=%llu timeouts=%llu "
      "errors=%llu hedges=%llu\n",
      t.name.c_str(), t.nodes, static_cast<unsigned long long>(t.requests),
      static_cast<unsigned long long>(t.hits),
      static_cast<unsigned long long>(t.cache_hits),
      static_cast<unsigned long long>(t.refetches),
      static_cast<unsigned long long>(t.body_fetches),
      static_cast<unsigned long long>(t.bytes_served),
      static_cast<unsigned long long>(t.upstream_bytes),
      static_cast<unsigned long long>(t.stale_serves),
      static_cast<unsigned long long>(t.failed_requests),
      static_cast<unsigned long long>(t.fetches),
      static_cast<unsigned long long>(t.retries),
      static_cast<unsigned long long>(t.timeouts),
      static_cast<unsigned long long>(t.errors),
      static_cast<unsigned long long>(t.hedges));
  s += buf;
  s += t.name + "-nodes:";
  for (const std::uint64_t n : t.node_requests) {
    s += ' ';
    s += std::to_string(n);
  }
  s += '\n';
}

void fill_tier(FabricTierReport& t, const CdnServer::ReplayAccumulator& a) {
  t.requests = a.requests;
  t.hits = a.hits;
  t.cache_hits = a.cache_hits;
  t.refetches = a.refetches;
  t.body_fetches = a.body_fetches;
  t.bytes_served = a.bytes_served;
  t.upstream_bytes = a.wan_bytes;
  t.stale_serves = a.stale_serves;
  t.failed_requests = a.failures;
  t.fetches = a.origin_fetches;
  t.retries = a.origin_retries;
  t.timeouts = a.origin_timeouts;
  t.errors = a.origin_errors;
  t.hedges = a.origin_hedges;
}

}  // namespace

FabricSpec parse_fabric_spec(const std::string& spec) {
  FabricSpec out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string clause =
        spec.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("--fabric: clause '" + clause +
                                  "' is not key=value");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "edge") {
      out.edge = parse_tier("edge", value);
    } else if (key == "regional") {
      out.regional = parse_tier("regional", value);
    } else if (key == "shards") {
      out.shards = static_cast<std::size_t>(util::require_u64("--fabric shards", value));
    } else if (key == "link-rtt-ms") {
      out.link_rtt_ms = util::require_double("--fabric link-rtt-ms", value);
      if (out.link_rtt_ms < 0.0) {
        throw std::invalid_argument("--fabric link-rtt-ms: must be >= 0, got '" +
                                    value + "'");
      }
    } else if (key == "link-gbps") {
      out.link_gbps = util::require_double("--fabric link-gbps", value);
      if (!(out.link_gbps > 0.0)) {
        throw std::invalid_argument("--fabric link-gbps: must be > 0, got '" +
                                    value + "'");
      }
    } else {
      throw std::invalid_argument("--fabric: unknown clause key '" + key + "'");
    }
  }
  if (out.edge.nodes == 0) {
    throw std::invalid_argument("--fabric: need >= 1 edge node");
  }
  if (out.shards == 0) {
    throw std::invalid_argument("--fabric: need >= 1 shard per node");
  }
  return out;
}

CdnFabric::CdnFabric(FabricConfig config)
    : config_(std::move(config)), link_policy_(config_.link_fetch) {
  if (config_.edge_nodes == 0) {
    throw std::invalid_argument("CdnFabric: need >= 1 edge node");
  }
  if (config_.shards_per_node == 0) {
    throw std::invalid_argument("CdnFabric: need >= 1 shard per node");
  }
  if (!config_.edge_policy) {
    throw std::invalid_argument("CdnFabric: null edge policy factory");
  }
  if (config_.regional_nodes > 0 && !config_.regional_policy) {
    throw std::invalid_argument("CdnFabric: null regional policy factory");
  }

  const std::size_t shards = config_.shards_per_node;

  // HRW salts come from two independent splitmix streams, consumed in node
  // order: growing a tier appends salts without disturbing existing ones,
  // which is what makes add/remove-node routing stability testable.
  std::uint64_t edge_salt_state = config_.seed;
  std::uint64_t regional_salt_state = config_.seed ^ 0x9e3779b97f4a7c15ULL;
  edge_salts_.reserve(config_.edge_nodes);
  for (std::size_t i = 0; i < config_.edge_nodes; ++i) {
    edge_salts_.push_back(util::splitmix64(edge_salt_state));
  }
  regional_salts_.reserve(config_.regional_nodes);
  for (std::size_t i = 0; i < config_.regional_nodes; ++i) {
    regional_salts_.push_back(util::splitmix64(regional_salt_state));
  }

  regionals_.reserve(config_.regional_nodes);
  for (std::size_t i = 0; i < config_.regional_nodes; ++i) {
    ServerConfig sc = config_.regional_server;
    sc.measured_lookup_cpu = false;  // determinism contract (header comment)
    sc.seed = util::mix64(config_.seed ^ (0x5e610a11ULL + i));
    auto backend = std::make_unique<ShardedCache>(
        shards, config_.regional_capacity_bytes, config_.regional_policy);
    regionals_.push_back(std::make_unique<CdnServer>(std::move(backend), sc));
  }

  edges_.reserve(config_.edge_nodes);
  const bool three_tier = !regionals_.empty();
  if (three_tier) links_.reserve(config_.edge_nodes);
  for (std::size_t e = 0; e < config_.edge_nodes; ++e) {
    ServerConfig sc = config_.edge_server;
    sc.measured_lookup_cpu = false;
    sc.seed = util::mix64(config_.seed ^ (0xed6eULL + e));
    auto backend = std::make_unique<ShardedCache>(shards, config_.edge_capacity_bytes,
                                                  config_.edge_policy);
    auto server = std::make_unique<CdnServer>(std::move(backend), sc);
    if (three_tier) {
      OriginProfile lp = config_.link_profile;
      const double rtt = lp.rtt_s >= 0.0 ? lp.rtt_s : config_.link_rtt_s;
      const double gbps = lp.gbps >= 0.0 ? lp.gbps : config_.link_gbps;
      // Distinct draw streams per edge link, still derived from the profile
      // seed so one knob moves every link's randomness together.
      lp.seed = util::mix64(lp.seed ^ (e + 1));
      links_.push_back(
          std::make_unique<Origin>(lp, rtt, gbps, config_.link_faults, shards));
      server->set_upstream([this, e](void* ctx, const trace::Request& r,
                                     std::uint64_t bytes, double now,
                                     std::size_t stream) {
        return upstream_fetch(*static_cast<WorkerState*>(ctx), e, r, bytes, now,
                              stream);
      });
    }
    edges_.push_back(std::move(server));
  }
}

std::size_t CdnFabric::rendezvous_pick(trace::Key key,
                                       std::span<const std::uint64_t> salts) {
  std::size_t best = 0;
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < salts.size(); ++i) {
    const std::uint64_t score = util::mix64(key ^ salts[i]);
    if (i == 0 || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

std::size_t CdnFabric::edge_of(trace::Key key) const {
  return rendezvous_pick(key, edge_salts_);
}

std::size_t CdnFabric::regional_of(trace::Key key) const {
  return rendezvous_pick(key, regional_salts_);
}

std::size_t CdnFabric::shard_of(trace::Key key) const {
  return ShardedCache::shard_index(key, config_.shards_per_node);
}

FetchOutcome CdnFabric::upstream_fetch(WorkerState& ws, std::size_t edge,
                                       const trace::Request& r, std::uint64_t bytes,
                                       double now, std::size_t stream) {
  // Cross the edge -> regional link first: faults, timeouts, retries and
  // hedging all apply here. Revalidations (bytes == 0) are answered
  // authoritatively at the regional boundary, so the link round trip is the
  // whole story for them.
  FetchOutcome link = link_policy_.fetch(*links_[edge], stream, now, bytes);
  if (bytes == 0) return link;
  ++ws.link_body_fetches;
  if (!link.ok) {
    ++ws.link_failures;
    return link;
  }
  // Cooperative lookup at the key's home regional node. The regional server
  // runs its own full request path (hit/revalidate/miss against the true
  // origin) into this worker's per-node accumulator.
  const std::size_t rr = regional_of(r.key);
  ++ws.regional_lookups;
  ++ws.reg_node_requests[rr];
  const CdnServer::RequestOutcome out = regionals_[rr]->serve(r, ws.reg_acc[rr]);
  // The edge sees one combined fetch: link transit plus the regional serve
  // (store-and-forward). Attempt/retry counters stay link-side — the
  // regional's own upstream activity is already in its accumulator.
  FetchOutcome combined = std::move(link);
  combined.ok = !out.failed;
  combined.latency_s += out.user_latency_s;
  return combined;
}

void CdnFabric::replay_worker(const trace::TraceSource& trace, std::size_t worker,
                              std::size_t n_workers, WorkerState& ws,
                              const LatencyProbe& probe) {
  const std::size_t shards = config_.shards_per_node;
  const auto cursor = trace.cursor();
  for (;;) {
    const auto chunk = cursor->next_chunk();
    if (chunk.empty()) break;
    for (const trace::Request& r : chunk) {
      if (ShardedCache::shard_index(r.key, shards) % n_workers != worker) continue;
      const std::size_t e = edge_of(r.key);
      ++ws.edge_node_requests[e];
      const CdnServer::RequestOutcome out = edges_[e]->serve(r, ws.edge_acc[e], &ws);
      ws.e2e.add(out.user_latency_s);
      if (probe) probe(r, out.user_latency_s);
    }
  }
}

FabricReport CdnFabric::replay(const trace::TraceSource& trace, std::size_t n_threads,
                               const LatencyProbe& probe) {
  const std::size_t workers =
      std::clamp<std::size_t>(n_threads, 1, config_.shards_per_node);
  std::vector<WorkerState> states(workers);
  for (WorkerState& ws : states) {
    ws.edge_acc.resize(edges_.size());
    ws.reg_acc.resize(regionals_.size());
    ws.edge_node_requests.assign(edges_.size(), 0);
    ws.reg_node_requests.assign(regionals_.size(), 0);
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (workers == 1) {
    replay_worker(trace, 0, 1, states[0], probe);
  } else {
    util::ThreadPool pool(workers);
    util::TaskGroup group(&pool);
    for (std::size_t w = 0; w < workers; ++w) {
      group.run([this, &trace, w, workers, &states, &probe] {
        replay_worker(trace, w, workers, states[w], probe);
      });
    }
    group.wait();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Reduce in worker-index then node-index order — the fixed reduction
  // order that makes every integer aggregate (and the latency bucket
  // counts) independent of the worker count.
  FabricReport report;
  report.replay_wall_seconds = wall;
  report.replay_threads = workers;
  report.edge.name = "edge";
  report.edge.nodes = edges_.size();
  report.edge.node_requests.assign(edges_.size(), 0);
  report.regional.name = "regional";
  report.regional.nodes = regionals_.size();
  report.regional.node_requests.assign(regionals_.size(), 0);

  CdnServer::ReplayAccumulator edge_total;
  CdnServer::ReplayAccumulator reg_total;
  for (std::size_t node = 0; node < edges_.size(); ++node) {
    CdnServer::ReplayAccumulator node_total;
    for (const WorkerState& ws : states) {
      node_total.merge(ws.edge_acc[node]);
      report.edge.node_requests[node] += ws.edge_node_requests[node];
    }
    edge_total.merge(node_total);
  }
  for (std::size_t node = 0; node < regionals_.size(); ++node) {
    CdnServer::ReplayAccumulator node_total;
    for (const WorkerState& ws : states) {
      node_total.merge(ws.reg_acc[node]);
      report.regional.node_requests[node] += ws.reg_node_requests[node];
    }
    reg_total.merge(node_total);
  }
  for (const WorkerState& ws : states) {
    report.link_body_fetches += ws.link_body_fetches;
    report.link_failures += ws.link_failures;
    report.regional_lookups += ws.regional_lookups;
    report.e2e_latency.merge(ws.e2e);
  }

  fill_tier(report.edge, edge_total);
  fill_tier(report.regional, reg_total);
  report.requests = report.edge.requests;

  const bool three_tier = !regionals_.empty();
  const CdnServer::ReplayAccumulator& origin_side = three_tier ? reg_total : edge_total;
  report.origin_fetches = origin_side.origin_fetches;
  report.origin_body_fetches = origin_side.body_fetches;
  report.origin_wan_bytes = origin_side.wan_bytes;

  report.e2e_p50_ms = report.e2e_latency.quantile(0.50) * 1e3;
  report.e2e_p90_ms = report.e2e_latency.quantile(0.90) * 1e3;
  report.e2e_p99_ms = report.e2e_latency.quantile(0.99) * 1e3;
  report.e2e_avg_ms = report.e2e_latency.mean() * 1e3;

  // Traffic-conservation audit: every ledger is kept by both sides of its
  // link; any imbalance is a fabric bug worth failing loudly over.
  const auto check = [&report](const char* what, std::uint64_t lhs,
                               std::uint64_t rhs) {
    if (lhs == rhs || !report.conservation_error.empty()) return;
    report.conservation_error = std::string(what) + ": " + std::to_string(lhs) +
                                " != " + std::to_string(rhs);
  };
  check("edge ledger (body_fetches vs misses+refetches)", report.edge.body_fetches,
        report.edge.requests - report.edge.cache_hits + report.edge.refetches);
  if (three_tier) {
    check("link entry (edge body_fetches vs link)", report.edge.body_fetches,
          report.link_body_fetches);
    check("link exit (link vs failures+regional lookups)", report.link_body_fetches,
          report.link_failures + report.regional_lookups);
    check("regional lookups (fabric vs regional tier)", report.regional_lookups,
          report.regional.requests);
    check("regional ledger (body_fetches vs misses+refetches)",
          report.regional.body_fetches,
          report.regional.requests - report.regional.cache_hits +
              report.regional.refetches);
    check("link bytes (edge upstream vs regional served)",
          report.edge.upstream_bytes, report.regional.bytes_served);
  } else {
    check("two-tier link counters", report.link_body_fetches + report.link_failures +
                                        report.regional_lookups,
          0);
  }

  return report;
}

std::string FabricReport::canonical_summary() const {
  std::string s;
  s.reserve(1024);
  s += "requests=" + std::to_string(requests) + "\n";
  append_tier_summary(s, edge);
  if (regional.nodes > 0) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "link: body_fetches=%llu failures=%llu regional_lookups=%llu\n",
                  static_cast<unsigned long long>(link_body_fetches),
                  static_cast<unsigned long long>(link_failures),
                  static_cast<unsigned long long>(regional_lookups));
    s += buf;
    append_tier_summary(s, regional);
  }
  {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "origin: fetches=%llu body_fetches=%llu wan_bytes=%llu\n",
                  static_cast<unsigned long long>(origin_fetches),
                  static_cast<unsigned long long>(origin_body_fetches),
                  static_cast<unsigned long long>(origin_wan_bytes));
    s += buf;
  }
  {
    // Quantiles are pure functions of the merged integer bucket counts, so
    // they are safe in the canonical string; the double-sum mean is not.
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "e2e: p50_ms=%.9g p90_ms=%.9g p99_ms=%.9g count=%llu\n",
                  e2e_p50_ms, e2e_p90_ms, e2e_p99_ms,
                  static_cast<unsigned long long>(e2e_latency.count()));
    s += buf;
  }
  s += "conservation: ";
  s += conservation_error.empty() ? "ok" : conservation_error;
  s += '\n';
  return s;
}

}  // namespace lhr::server
