#include "server/admission_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace lhr::server {

AdmissionQueue::AdmissionQueue(AdmitFn admit, std::size_t max_depth)
    : admit_(std::move(admit)), max_depth_(max_depth) {
  if (!admit_) throw std::invalid_argument("AdmissionQueue: null admit function");
  if (max_depth_ == 0) throw std::invalid_argument("AdmissionQueue: zero depth");
  worker_ = std::thread([this] { worker_loop(); });
}

AdmissionQueue::~AdmissionQueue() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool AdmissionQueue::enqueue(const trace::Request& r) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.size() >= max_depth_) {
      // Shed load instead of stalling the request path. Count each shed
      // admission once: a retry re-enqueueing a key we already dropped is
      // the same admission, not a new one.
      if (dropped_keys_.insert(r.key).second) ++dropped_;
      return false;
    }
    queue_.push_back(r);
    dropped_keys_.erase(r.key);  // the admission made it in after all
    max_depth_seen_ = std::max(max_depth_seen_, queue_.size());
  }
  work_available_.notify_one();
  return true;
}

void AdmissionQueue::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t AdmissionQueue::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::size_t AdmissionQueue::processed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return processed_;
}

std::size_t AdmissionQueue::max_depth_seen() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_depth_seen_;
}

void AdmissionQueue::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    const trace::Request r = queue_.front();
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    admit_(r);  // cache mutation happens outside the queue lock
    lock.lock();
    --in_flight_;
    ++processed_;
    if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
  }
}

}  // namespace lhr::server
