#include "server/control_plane.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace lhr::server {

namespace {

/// LHR_CP_DEBUG=1 dumps per-window drift means and per-candidate verdict
/// stats to stderr — the calibration aid for picking div/guard thresholds
/// on a new trace family (see DESIGN.md "Control plane").
bool debug_trace() {
  static const bool enabled = std::getenv("LHR_CP_DEBUG") != nullptr;
  return enabled;
}

void apply_token(ControlPlaneConfig& cfg, const std::string& token,
                 const std::string& spec) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("--control-plane: token '" + token +
                                "' is not key=value (spec '" + spec + "')");
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  const std::string what = "--control-plane " + key;
  if (key == "sample") {
    cfg.sample_fraction = util::require_double(what, value);
  } else if (key == "window") {
    cfg.window = util::require_u64(what, value);
  } else if (key == "agree") {
    cfg.min_agreement = util::require_double(what, value);
  } else if (key == "div") {
    cfg.max_divergence = util::require_double(what, value);
  } else if (key == "hitdelta") {
    cfg.min_hit_delta = util::require_double(what, value);
  } else if (key == "robust") {
    cfg.robust_guard = util::require_u64(what, value) != 0;
  } else if (key == "guard") {
    cfg.guard_divergence = util::require_double(what, value);
  } else if (key == "rearm") {
    cfg.guard_rearm = util::require_double(what, value);
  } else if (key == "guardwin") {
    cfg.guard_window = util::require_u64(what, value);
  } else if (key == "p99") {
    cfg.p99_budget_ms = util::require_double(what, value);
    cfg.autotune = cfg.p99_budget_ms > 0.0;
  } else if (key == "step") {
    cfg.autotune_step = util::require_double(what, value);
  } else if (key == "maxbias") {
    cfg.max_threshold_bias = util::require_double(what, value);
  } else if (key == "latwin") {
    cfg.latency_window = util::require_u64(what, value);
  } else if (key == "minwin") {
    cfg.min_window = util::require_u64(what, value);
  } else if (key == "seed") {
    cfg.seed = util::require_u64(what, value);
  } else {
    throw std::invalid_argument("--control-plane: unknown key '" + key +
                                "' (spec '" + spec + "')");
  }
}

void validate(const ControlPlaneConfig& cfg) {
  const auto fail = [](const std::string& why) {
    throw std::invalid_argument("--control-plane: " + why);
  };
  if (!(cfg.sample_fraction > 0.0) || cfg.sample_fraction > 1.0) {
    fail("sample must be in (0, 1]");
  }
  if (cfg.window == 0) fail("window must be >= 1");
  if (cfg.min_agreement < 0.0 || cfg.min_agreement > 1.0) {
    fail("agree must be in [0, 1]");
  }
  if (cfg.max_divergence < 0.0) fail("div must be >= 0");
  if (cfg.guard_window == 0) fail("guardwin must be >= 1");
  if (cfg.guard_divergence < 0.0) fail("guard must be >= 0");
  if (cfg.guard_rearm < 0.0) fail("rearm must be >= 0");
  if (cfg.guard_rearm > cfg.guard_divergence) {
    fail("rearm must be <= guard (hysteresis band)");
  }
  if (cfg.autotune) {
    if (!(cfg.autotune_step > 0.0)) fail("step must be > 0");
    if (cfg.max_threshold_bias < 0.0) fail("maxbias must be >= 0");
    if (cfg.latency_window == 0) fail("latwin must be >= 1");
    if (cfg.min_window == 0 || cfg.min_window > cfg.window) {
      fail("minwin must be in [1, window]");
    }
  }
}

}  // namespace

ControlPlaneConfig parse_control_plane(const std::string& spec) {
  ControlPlaneConfig cfg;
  if (spec.empty() || spec == "off") return cfg;
  cfg.enabled = true;
  if (spec != "on") {
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::string token = spec.substr(
          start, comma == std::string::npos ? std::string::npos : comma - start);
      if (!token.empty()) apply_token(cfg, token, spec);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  validate(cfg);
  return cfg;
}

void ControlPlaneCounters::merge(const ControlPlaneCounters& other) {
  candidates_staged += other.candidates_staged;
  candidates_displaced += other.candidates_displaced;
  shadow_samples += other.shadow_samples;
  shadow_agreements += other.shadow_agreements;
  would_hit_pairs += other.would_hit_pairs;
  would_hits_live += other.would_hits_live;
  would_hits_shadow += other.would_hits_shadow;
  promotions += other.promotions;
  rollbacks += other.rollbacks;
  guard_engagements += other.guard_engagements;
  guard_disengagements += other.guard_disengagements;
  guarded_requests += other.guarded_requests;
  autotune_epochs += other.autotune_epochs;
  threshold_raises += other.threshold_raises;
  threshold_decays += other.threshold_decays;
  window_shrinks += other.window_shrinks;
  window_grows += other.window_grows;
}

std::string ControlPlaneReport::canonical() const {
  std::ostringstream out;
  out << "cells=" << cells << " staged=" << counters.candidates_staged
      << " displaced=" << counters.candidates_displaced
      << " samples=" << counters.shadow_samples
      << " agreements=" << counters.shadow_agreements
      << " pairs=" << counters.would_hit_pairs
      << " live_hits=" << counters.would_hits_live
      << " shadow_hits=" << counters.would_hits_shadow
      << " promotions=" << counters.promotions
      << " rollbacks=" << counters.rollbacks
      << " guard_on=" << counters.guard_engagements
      << " guard_off=" << counters.guard_disengagements
      << " guarded=" << counters.guarded_requests
      << " epochs=" << counters.autotune_epochs
      << " raises=" << counters.threshold_raises
      << " decays=" << counters.threshold_decays
      << " shrinks=" << counters.window_shrinks
      << " grows=" << counters.window_grows;
  return out.str();
}

ControlPlane::ControlPlane(const ControlPlaneConfig& config)
    : config_(config), rng_(config.seed), window_(config.window) {}

void ControlPlane::stage(std::shared_ptr<const ml::CompiledModel> candidate) {
  if (candidate_) ++counters_.candidates_displaced;
  candidate_ = std::move(candidate);
  ++counters_.candidates_staged;
  reset_evaluation();
}

std::shared_ptr<const ml::CompiledModel> ControlPlane::take_candidate() {
  return std::move(candidate_);
}

bool ControlPlane::sample_shadow() {
  // Drawn from the private stream so the host cache's RNG sequence is
  // untouched; mirrored comparisons are counted in record_shadow.
  return rng_.next_double() < config_.sample_fraction;
}

ControlPlane::Verdict ControlPlane::record_shadow(double live_p, double shadow_p,
                                                  bool live_admit,
                                                  bool shadow_admit,
                                                  bool have_prior,
                                                  bool prior_live_hit,
                                                  bool prior_shadow_hit) {
  ++counters_.shadow_samples;
  ++eval_samples_;
  if (live_admit == shadow_admit) {
    ++counters_.shadow_agreements;
    ++eval_agreements_;
  }
  eval_divergence_sum_ += std::abs(shadow_p - live_p);
  if (have_prior) {
    ++counters_.would_hit_pairs;
    ++eval_pairs_;
    if (prior_live_hit) {
      ++counters_.would_hits_live;
      ++eval_live_hits_;
    }
    if (prior_shadow_hit) {
      ++counters_.would_hits_shadow;
      ++eval_shadow_hits_;
    }
  }
  if (eval_samples_ < window_) return Verdict::kNone;

  const double n = static_cast<double>(eval_samples_);
  const double agreement = static_cast<double>(eval_agreements_) / n;
  const double divergence = eval_divergence_sum_ / n;
  // No reuse pairs in the window means the footprint estimator has no
  // evidence either way; treat the delta as neutral rather than failing.
  const double hit_delta =
      eval_pairs_ ? (static_cast<double>(eval_shadow_hits_) -
                     static_cast<double>(eval_live_hits_)) /
                        static_cast<double>(eval_pairs_)
                  : 0.0;
  reset_evaluation();

  if (debug_trace()) {
    std::fprintf(stderr, "verdict agree=%.4f div=%.4f hitdelta=%.4f\n", agreement,
                 divergence, hit_delta);
  }
  const bool promote = agreement >= config_.min_agreement &&
                       divergence <= config_.max_divergence &&
                       hit_delta >= config_.min_hit_delta;
  if (promote) {
    ++counters_.promotions;
    return Verdict::kPromote;
  }
  ++counters_.rollbacks;
  candidate_.reset();
  return Verdict::kRollback;
}

void ControlPlane::record_drift(double abs_error) {
  if (!config_.robust_guard) return;
  drift_sum_ += abs_error;
  if (++drift_samples_ < config_.guard_window) return;
  const double mean = drift_sum_ / static_cast<double>(drift_samples_);
  if (debug_trace()) std::fprintf(stderr, "drift-mean %.3f\n", mean);
  if (!guard_engaged_ && mean > config_.guard_divergence) {
    guard_engaged_ = true;
    ++counters_.guard_engagements;
  } else if (guard_engaged_ && mean < config_.guard_rearm) {
    guard_engaged_ = false;
    ++counters_.guard_disengagements;
  }
  drift_sum_ = 0.0;
  drift_samples_ = 0;
}

void ControlPlane::observe_latency(double seconds) {
  if (!config_.autotune || config_.p99_budget_ms <= 0.0) return;
  latency_.add(seconds);
  if (++latency_samples_ < config_.latency_window) return;
  ++counters_.autotune_epochs;
  const double p99_ms = latency_.quantile(0.99) * 1e3;
  if (p99_ms > config_.p99_budget_ms) {
    // Over budget: admit less (shed admission work downstream) and decide
    // on staged candidates faster so a bad model exits sooner.
    if (threshold_bias_ < config_.max_threshold_bias) {
      threshold_bias_ =
          std::min(config_.max_threshold_bias, threshold_bias_ + config_.autotune_step);
      ++counters_.threshold_raises;
    }
    const std::size_t half = std::max(config_.min_window, window_ / 2);
    if (half < window_) {
      window_ = half;
      ++counters_.window_shrinks;
    }
  } else {
    if (threshold_bias_ > 0.0) {
      threshold_bias_ = std::max(0.0, threshold_bias_ - config_.autotune_step);
      ++counters_.threshold_decays;
    }
    const std::size_t grown = std::min(config_.window, window_ * 2);
    if (grown > window_) {
      window_ = grown;
      ++counters_.window_grows;
    }
  }
  latency_.reset();
  latency_samples_ = 0;
}

std::size_t ControlPlane::memory_bytes() const noexcept {
  // The candidate model is shared with (and accounted by) the training
  // path; the cell's own footprint is its fixed state plus the latency
  // histogram buckets.
  return sizeof(ControlPlane);
}

void ControlPlane::reset_evaluation() {
  eval_samples_ = 0;
  eval_agreements_ = 0;
  eval_divergence_sum_ = 0.0;
  eval_pairs_ = 0;
  eval_live_hits_ = 0;
  eval_shadow_hits_ = 0;
}

}  // namespace lhr::server
