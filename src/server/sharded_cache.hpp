// Thread-safe sharded cache wrapper.
//
// ATS is "a multi-threaded and event-based CDN caching server" (paper §6.1);
// production deployments serve many connections concurrently against one
// index. This wrapper makes any CachePolicy usable from multiple threads by
// hash-sharding the key space: shard i owns 1/N of the capacity behind its
// own mutex, so unrelated keys proceed in parallel while per-key operations
// stay linearizable.
//
// Sharding is also semantically faithful to how CDN software scales a cache
// across threads (per-shard LRU is what ATS, Varnish and NGINX do), at the
// usual cost: per-shard capacity fragmentation, measured by the tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/cache_policy.hpp"

namespace lhr::server {

class ShardedCache {
 public:
  using PolicyFactory =
      std::function<std::unique_ptr<sim::CachePolicy>(std::uint64_t capacity)>;

  /// Builds `shards` policies, each with capacity/shards bytes.
  ShardedCache(std::size_t shards, std::uint64_t capacity_bytes,
               const PolicyFactory& factory);

  /// Thread-safe request processing. Returns true on hit.
  bool access(const trace::Request& r);

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::uint64_t used_bytes() const;
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t metadata_bytes() const;
  [[nodiscard]] std::string name() const;

  /// Index of the shard a key maps to (exposed for tests).
  [[nodiscard]] std::size_t shard_of(trace::Key key) const noexcept;

 private:
  struct Shard {
    std::unique_ptr<sim::CachePolicy> policy;
    mutable std::mutex mutex;
  };

  std::uint64_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lhr::server
