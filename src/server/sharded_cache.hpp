// Thread-safe sharded cache wrapper.
//
// ATS is "a multi-threaded and event-based CDN caching server" (paper §6.1);
// production deployments serve many connections concurrently against one
// index. This wrapper makes any CachePolicy usable from multiple threads by
// hash-sharding the key space: shard i owns 1/N of the capacity behind its
// own mutex, so unrelated keys proceed in parallel while per-key operations
// stay linearizable.
//
// Sharding is also semantically faithful to how CDN software scales a cache
// across threads (per-shard LRU is what ATS, Varnish and NGINX do), at the
// usual cost: per-shard capacity fragmentation, measured by the tests.
//
// ShardedCache is itself a sim::CachePolicy, so the concurrent server path
// is drivable by the same engine, runner and metrics as every
// single-threaded policy: sim::simulate replays a trace through it,
// runner::Job::make can build one, and the engine's §7.1 metadata
// deduction works via set_capacity (which re-splits capacity across
// shards, remainder bytes going to the lowest-index shards).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/cache_policy.hpp"

namespace lhr::server {

class ShardedCache : public sim::CachePolicy {
 public:
  using PolicyFactory =
      std::function<std::unique_ptr<sim::CachePolicy>(std::uint64_t capacity)>;

  /// Per-shard serving counters (observability for the concurrent request
  /// path): how many requests the shard served, how many hit, and how often
  /// a caller found the shard mutex already held (lock contention).
  struct ShardStats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t lock_contentions = 0;
  };

  /// Builds `shards` policies, each with capacity/shards bytes (remainder
  /// bytes go to the lowest-index shards).
  ShardedCache(std::size_t shards, std::uint64_t capacity_bytes,
               const PolicyFactory& factory);

  /// Thread-safe request processing. Returns true on hit.
  bool access(const trace::Request& r) override;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::uint64_t used_bytes() const override;
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept override {
    return capacity_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t metadata_bytes() const override;
  [[nodiscard]] std::string name() const override;

  /// Re-splits the new total capacity across shards: shard i receives
  /// bytes/N, plus one extra byte for i < bytes%N. Holds every shard lock
  /// (acquired in index order; the only multi-lock path in this class, so
  /// no deadlock is possible) for the duration of the re-split, so access()
  /// never runs against a shard whose budget is mid-update, and `capacity_`
  /// is stored atomically so capacity_bytes() never reads a torn value.
  ///
  /// Quiescence caveat: aggregate readers (used_bytes, metadata_bytes) lock
  /// shards one at a time, so a total observed *concurrently* with a
  /// re-split may mix old- and new-budget shards. The invariants — sum of
  /// shard capacities == capacity_bytes(), used <= capacity — are guaranteed
  /// only once set_capacity has returned; callers that need a consistent
  /// total must not overlap it with set_capacity. Concurrent set_capacity
  /// calls serialize on the shard locks but may interleave their capacity_
  /// stores; run capacity changes from one thread at a time.
  void set_capacity(std::uint64_t bytes) override;

  /// The shard-index function, exposed statically so other layers (the
  /// fabric's worker-ownership partition) can derive the same pure
  /// key → shard mapping without holding a ShardedCache.
  [[nodiscard]] static std::size_t shard_index(trace::Key key,
                                               std::size_t shard_count) noexcept;

  /// Index of the shard a key maps to (exposed for tests).
  [[nodiscard]] std::size_t shard_of(trace::Key key) const noexcept;

  /// Capacity currently assigned to one shard (exposed for tests).
  [[nodiscard]] std::uint64_t shard_capacity_bytes(std::size_t shard) const;

  /// The policy instance owned by one shard. NOT thread-safe: callers may
  /// only touch the returned policy while the shard is quiescent (before
  /// replay, after replay, or from the shard-owning worker — the
  /// replay_concurrent ownership discipline). The serving layer uses this
  /// to discover per-shard control-plane cells (ControlPlaneHost).
  [[nodiscard]] sim::CachePolicy& shard_policy(std::size_t shard);

  /// Serving counters for one shard (thread-safe snapshot).
  [[nodiscard]] ShardStats shard_stats(std::size_t shard) const;

  /// Sum of shard_stats over all shards.
  [[nodiscard]] ShardStats total_stats() const;

  /// Total lock-contention events across shards (cheap relaxed read).
  [[nodiscard]] std::uint64_t lock_contentions() const noexcept;

 private:
  struct Shard {
    std::unique_ptr<sim::CachePolicy> policy;
    mutable std::mutex mutex;
    // accesses/hits are guarded by `mutex`; `contended` is bumped while the
    // lock is still held by someone else, so it must be atomic.
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::atomic<std::uint64_t> contended{0};
  };

  std::atomic<std::uint64_t> capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lhr::server
