// Emulated CDN caching server (the substitute for the paper's Apache
// Traffic Server and Caffeine prototypes — §6, §7.2, Appendix A.3).
//
// Models the request path of §6.1:
//   Step 1  index lookup (CPU cost = measured policy time + fixed overhead);
//   Step 2  hit: serve from RAM or disk tier; stale contents are revalidated
//           against the origin (extra RTT) and possibly re-fetched;
//   Step 3  miss: fetch from origin, serve the user, admit into the cache.
//
// The disk tier emulates the flash abstraction layer the paper describes
// ("reading offsets randomly and writing sequentially"): reads pay a seek,
// writes are sequential-bandwidth-bound and asynchronous (they consume disk
// time but not user latency). Setting `has_disk_tier = false` turns the
// server into an in-memory cache à la Caffeine (Appendix A.3).
//
// Resource accounting mirrors Tables 2 and 4:
//   * "max" replay: requests back-to-back; throughput is bound by the
//     busiest resource (CPU, disk, origin or client link);
//   * "normal" replay: original trace timestamps; latency percentiles and
//     average traffic are measured against wall-clock duration.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "policies/lru.hpp"
#include "sim/cache_policy.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace lhr::server {

struct ServerConfig {
  std::uint64_t ram_bytes = 1ULL << 30;  ///< memory tier ("kept unchanged", §6.1)
  bool has_disk_tier = true;             ///< false = Caffeine-style in-memory cache

  double disk_seek_s = 120e-6;     ///< random-offset read penalty
  double disk_read_gbps = 20.0;
  double disk_write_gbps = 8.0;
  double origin_rtt_s = 0.060;
  double origin_gbps = 2.0;
  double client_gbps = 8.0;        ///< §7.3: 8 Gbps transmission rate
  double ram_gbps = 100.0;

  double freshness_ttl_s = 24 * 3600.0;   ///< contents older than this are stale
  double revalidate_change_prob = 0.05;   ///< P(stale content actually changed)

  double per_request_cpu_s = 4e-6;        ///< fixed server CPU per request
  double cpu_per_byte_s = 0.4e-9;         ///< per-byte copy/checksum cost (~1 cycle/B)
  int cpu_cores = 6;                       ///< matches the paper's i5-10400HQ class
  std::uint64_t seed = 11;
};

enum class ReplayMode {
  kNormal,  ///< original timestamps (latency-oriented, Table 2 "normal")
  kMax,     ///< back-to-back (throughput-bound, Table 2 "max")
};

/// One row of Table 2 / Table 4.
struct ServerReport {
  std::string policy_name;
  double throughput_gbps = 0.0;
  double peak_cpu_pct = 0.0;
  double peak_mem_gb = 0.0;
  double p90_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double avg_latency_ms = 0.0;
  double traffic_gbps = 0.0;     ///< WAN (origin-side) traffic rate
  double content_hit_pct = 0.0;
  /// Hit probability per window of `window_requests` (Figures 7/13).
  std::vector<double> window_hit_ratio;
};

class CdnServer {
 public:
  /// Takes ownership of the main-tier policy (LRU for stock ATS; LhrCache
  /// for the prototype; WTinyLfu for Caffeine).
  CdnServer(std::unique_ptr<sim::CachePolicy> main_policy, const ServerConfig& config);

  /// Replays a trace; the server's cache state persists across calls.
  ServerReport replay(const trace::Trace& trace, ReplayMode mode,
                      std::size_t window_requests = 50'000);

  [[nodiscard]] const sim::CachePolicy& main_policy() const { return *main_; }

 private:
  struct RequestOutcome {
    bool hit = false;
    double user_latency_s = 0.0;
    double cpu_s = 0.0;
    double disk_s = 0.0;
    double origin_s = 0.0;
    double client_s = 0.0;
    double wan_bytes = 0.0;
  };

  RequestOutcome process(const trace::Request& r);

  ServerConfig config_;
  std::unique_ptr<sim::CachePolicy> main_;
  policy::Lru ram_;
  std::unordered_map<trace::Key, trace::Time> admitted_at_;  // freshness clock
  std::uint64_t rng_state_;
  trace::Time now_ = 0.0;
};

}  // namespace lhr::server
