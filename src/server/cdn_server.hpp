// Emulated CDN caching server (the substitute for the paper's Apache
// Traffic Server and Caffeine prototypes — §6, §7.2, Appendix A.3).
//
// Models the request path of §6.1:
//   Step 1  index lookup (CPU cost = measured policy time + fixed overhead);
//   Step 2  hit: serve from RAM or disk tier; stale contents are revalidated
//           against the origin (extra RTT) and possibly re-fetched;
//   Step 3  miss: fetch from origin, serve the user, admit into the cache.
//
// Every miss and revalidation goes through the origin resilience layer
// (origin.hpp): a simulated Origin with configurable latency models and a
// deterministic FaultSchedule, fronted by a FetchPolicy with timeout,
// capped exponential backoff, a bounded retry budget and optional hedging.
// When the origin fails, a stale cached copy within the TTL grace window is
// served (stale_serves); otherwise the request returns a 5xx
// (failed_requests). The defaults reproduce the classic infallible origin
// byte-for-byte.
//
// The disk tier emulates the flash abstraction layer the paper describes
// ("reading offsets randomly and writing sequentially"): reads pay a seek,
// writes are sequential-bandwidth-bound and asynchronous (they consume disk
// time but not user latency). Setting `has_disk_tier = false` turns the
// server into an in-memory cache à la Caffeine (Appendix A.3).
//
// Resource accounting mirrors Tables 2 and 4:
//   * "max" replay: requests back-to-back; throughput is bound by the
//     busiest resource (CPU, disk, origin or client link);
//   * "normal" replay: original trace timestamps; latency percentiles and
//     average traffic are measured against wall-clock duration.
//
// Threading model (see DESIGN.md "Serving layer"). All per-request server
// state — the freshness clock, the RAM-tier slice, and the revalidation RNG
// — is sharded by the same key hash the ShardedCache backend uses, and
// replay_concurrent assigns each shard to exactly one worker (shard s is
// owned by worker s mod n). Every worker scans the shared immutable trace
// and processes only the requests it owns, so each shard sees exactly the
// subsequence of its keys in trace order no matter how many workers run:
// aggregate hits, bytes and WAN traffic are *identical* to the
// single-threaded replay, and the shard mutexes are never contended by the
// replay itself (they still protect against external concurrent users of
// the backend).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "policies/lru.hpp"
#include "server/control_plane.hpp"
#include "server/origin.hpp"
#include "sim/cache_policy.hpp"
#include "trace/trace_source.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lhr::server {

class ShardedCache;

struct ServerConfig {
  std::uint64_t ram_bytes = 1ULL << 30;  ///< memory tier ("kept unchanged", §6.1)
  bool has_disk_tier = true;             ///< false = Caffeine-style in-memory cache

  double disk_seek_s = 120e-6;     ///< random-offset read penalty
  double disk_read_gbps = 20.0;
  double disk_write_gbps = 8.0;
  double origin_rtt_s = 0.060;
  double origin_gbps = 2.0;
  double client_gbps = 8.0;        ///< §7.3: 8 Gbps transmission rate
  double ram_gbps = 100.0;

  double freshness_ttl_s = 24 * 3600.0;   ///< contents older than this are stale
  double revalidate_change_prob = 0.05;   ///< P(stale content actually changed)

  double per_request_cpu_s = 4e-6;        ///< fixed server CPU per request
  double cpu_per_byte_s = 0.4e-9;         ///< per-byte copy/checksum cost (~1 cycle/B)
  int cpu_cores = 6;                       ///< matches the paper's i5-10400HQ class
  std::uint64_t seed = 11;

  /// When true (the classic behaviour) each request's CPU cost folds in the
  /// measured wall-clock time of the index lookup, so latency percentiles
  /// reflect the policy's real compute — and vary run to run. The fabric
  /// sets this false so per-request latency is a pure function of the trace
  /// and its end-to-end quantiles are byte-identical at any thread count.
  bool measured_lookup_cpu = true;

  // Origin resilience layer (see origin.hpp). The defaults — fixed latency
  // model, no fault schedule, timeouts disabled — reproduce the classic
  // infallible origin byte-for-byte; origin_rtt_s/origin_gbps above remain
  // the base numbers unless the profile overrides them.
  OriginProfile origin_profile;   ///< latency shape + per-shard draw-stream seed
  FetchPolicyConfig fetch;        ///< timeout/retry/backoff/hedge/grace knobs
  FaultSchedule fault_schedule;   ///< empty = fault-free origin
};

enum class ReplayMode {
  kNormal,  ///< original timestamps (latency-oriented, Table 2 "normal")
  kMax,     ///< back-to-back (throughput-bound, Table 2 "max")
};

/// One row of Table 2 / Table 4.
struct ServerReport {
  std::string policy_name;
  double throughput_gbps = 0.0;
  double peak_cpu_pct = 0.0;
  double peak_mem_gb = 0.0;
  double p90_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double avg_latency_ms = 0.0;
  double traffic_gbps = 0.0;     ///< WAN (origin-side) traffic rate
  double content_hit_pct = 0.0;
  /// Hit probability per window of `window_requests` (Figures 7/13).
  std::vector<double> window_hit_ratio;

  // Raw aggregate counters (integer sums, so they are exactly equal across
  // replay thread counts) plus serving observability.
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t bytes_served = 0;       ///< client-side bytes served (5xx excluded)
  std::uint64_t wan_bytes = 0;          ///< origin-side (miss + refetch) bytes
  std::uint64_t peak_metadata_bytes = 0;
  double replay_wall_seconds = 0.0;     ///< real wall-clock of this replay call
  std::size_t replay_threads = 1;       ///< workers the replay actually used
  /// Shard-mutex contention events of a ShardedCache backend during this
  /// replay (0 for unsharded backends; 0 under replay_concurrent's
  /// shard-ownership partition unless the backend is shared externally).
  std::uint64_t lock_contentions = 0;

  // Origin resilience counters — integer sums, identical across replay
  // thread counts like the aggregates above. `origin_fetches` counts
  // logical fetches (misses, revalidations, refetches); retries/timeouts/
  // errors/hedges count individual attempts inside them.
  std::uint64_t origin_fetches = 0;
  std::uint64_t origin_retries = 0;
  std::uint64_t origin_timeouts = 0;
  std::uint64_t origin_errors = 0;       ///< 5xx + refused-connection attempts
  std::uint64_t origin_hedges = 0;       ///< hedged second requests issued
  std::uint64_t hedge_cancels = 0;       ///< hedge losers cancelled in flight
  std::uint64_t stale_serves = 0;        ///< stale copies served on origin error
  std::uint64_t failed_requests = 0;     ///< 5xx returned to the client
  // Per-fetch latency distribution (0 when the replay made no fetches).
  double fetch_p50_ms = 0.0;
  double fetch_p90_ms = 0.0;
  double fetch_p99_ms = 0.0;
  double fetch_avg_ms = 0.0;

  /// Shadow-rollout control plane slice: cell counters summed in shard-index
  /// order (integer sums — identical across replay thread counts). Inactive
  /// (all zeros) unless the backend policy hosts control-plane cells.
  ControlPlaneReport control_plane;

  // Open-loop (saturation) accounting, filled only by replay_open_loop.
  // Request timestamps are treated as an arrival *schedule*: each worker
  // runs a virtual queue clock `completion = max(arrival, prev_completion)
  // + measured_service_wall_time`, so a request that lands behind a stalled
  // one is charged its full queueing delay — the coordinated-omission-free
  // sojourn production p99s are quoted in. offered_rps is the schedule's
  // arrival rate; achieved_rps divides by the span arrivals *plus drain*
  // actually took, so achieved < offered marks the saturation knee.
  bool open_loop = false;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double sojourn_p50_ms = 0.0;   ///< queue wait + service, from scheduled arrival
  double sojourn_p99_ms = 0.0;
  double sojourn_p999_ms = 0.0;
  double sojourn_avg_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double service_avg_us = 0.0;   ///< measured wall-clock service time per request
  std::uint64_t queued_requests = 0;  ///< arrivals that waited behind a prior request

  [[nodiscard]] double byte_hit_ratio() const {
    return bytes_served > 0
               ? static_cast<double>(bytes_served - wan_bytes) /
                     static_cast<double>(bytes_served)
               : 0.0;
  }

  /// Canonical determinism fingerprint: the deterministic subset of the
  /// report rendered with fixed formatting — integer counters, quantiles
  /// (pure functions of merged integer bucket counts), window hit ratios
  /// (exact-integer divisions) and the control-plane canonical block.
  /// Wall-clock, busy-time sums, averages, peak-metadata samples and
  /// throughput rates are deliberately absent. Two replays of the same
  /// trace/config produce byte-identical canonical summaries at any
  /// procs x threads combination (given measured_lookup_cpu = false, which
  /// makes the latency quantiles a pure function of the trace) — the
  /// equality proc_replay_test and the bench verdict lines grep.
  [[nodiscard]] std::string canonical_summary() const;
};

class CdnServer {
 public:
  struct RequestOutcome {
    bool hit = false;
    bool cache_hit = false;    ///< lookup hit before any refetch decision
    bool stale_serve = false;  ///< stale copy served because the origin failed
    bool failed = false;       ///< 5xx: origin failed and no serveable copy
    double user_latency_s = 0.0;
    double cpu_s = 0.0;
    double disk_s = 0.0;
    double origin_s = 0.0;
    double client_s = 0.0;
    std::uint64_t wan_bytes = 0;
  };

  /// Per-worker replay accumulator, reduced in worker-index order. Public so
  /// CdnFabric can drive serve() with its own per-(worker, node)
  /// accumulators and merge them under the same discipline.
  struct ReplayAccumulator {
    util::QuantileHistogram latency{1e-6, 1e4, 128};
    util::QuantileHistogram fetch_latency{1e-6, 1e4, 128};
    double cpu_busy = 0.0, disk_busy = 0.0, origin_busy = 0.0, client_busy = 0.0;
    std::uint64_t bytes_served = 0, wan_bytes = 0, hits = 0, requests = 0;
    std::uint64_t peak_meta = 0;
    std::uint64_t origin_fetches = 0, origin_retries = 0, origin_timeouts = 0,
                  origin_errors = 0, origin_hedges = 0, hedge_cancels = 0,
                  stale_serves = 0, failures = 0;
    // Traffic-conservation ledger (see fabric.hpp): lookup hits before the
    // refetch decision, refetch attempts, and body (bytes > 0) fetches sent
    // upstream. Invariant per tier, checked by FabricReport:
    //   body_fetches == (requests - cache_hits) + refetches.
    std::uint64_t cache_hits = 0, refetches = 0, body_fetches = 0;
    std::vector<std::uint64_t> window_hits, window_counts;

    void merge(const ReplayAccumulator& other);
  };

  /// Per-worker open-loop queue state (one virtual queue per worker, the
  /// shard-ownership analogue of a per-shard request queue). Sojourn =
  /// completion - scheduled arrival; queue_wait = start - arrival. Public so
  /// the process-parallel replay (proc_replay.hpp) can ship per-process
  /// open-loop partials over the worker pipe and merge them parent-side.
  struct OpenLoopAccumulator {
    util::QuantileHistogram sojourn{1e-9, 1e4, 128};
    util::QuantileHistogram queue_wait{1e-9, 1e4, 128};
    double clock = 0.0;            ///< completion instant of the last request
    double first_arrival = 0.0;
    double last_completion = 0.0;
    double service_s = 0.0;        ///< sum of measured wall service times
    std::uint64_t queued = 0;      ///< requests that found the worker busy
    bool any = false;

    void merge(const OpenLoopAccumulator& other);
  };

  /// Resolves one logical upstream fetch (miss, revalidation when bytes is
  /// 0, or refetch) in place of the built-in Origin + FetchPolicy. `ctx` is
  /// whatever the caller of serve() passed through — the fabric threads its
  /// per-worker state this way; `stream` is the freshness-shard index, the
  /// deterministic per-worker draw-stream id.
  using UpstreamFetch = std::function<FetchOutcome(
      void* ctx, const trace::Request& r, std::uint64_t bytes, double now,
      std::size_t stream)>;

  /// Takes ownership of the main-tier policy (LRU for stock ATS; LhrCache
  /// for the prototype; WTinyLfu for Caffeine; a ShardedCache of any of
  /// them for the concurrent serving path). When the policy is a
  /// ShardedCache the freshness metadata, revalidation RNG and RAM tier are
  /// sharded to match (one slice per cache shard); otherwise a single slice
  /// preserves the classic single-threaded behaviour.
  CdnServer(std::unique_ptr<sim::CachePolicy> main_policy, const ServerConfig& config);

  /// Replays a trace source on the calling thread; the server's cache state
  /// persists across calls. The trace is walked through a bounded-chunk
  /// cursor, so mmap- or generator-backed sources replay in O(chunk)
  /// resident trace memory.
  ServerReport replay(const trace::TraceSource& trace, ReplayMode mode,
                      std::size_t window_requests = 50'000);

  /// Replays a trace source on `n_threads` workers against a ShardedCache
  /// backend (throws std::invalid_argument for any other backend). Work is
  /// partitioned by shard ownership (header comment): every worker walks its
  /// own shard-filtered cursor over the same source/mapping, so hits/bytes/
  /// WAN aggregates are identical to replay() for every thread count;
  /// latency quantiles are exact too (integer bucket merges), while
  /// double-sum fields (busy times, averages) may differ in the last few
  /// ulps. `n_threads` is clamped to [1, shard_count].
  ServerReport replay_concurrent(const trace::TraceSource& trace, ReplayMode mode,
                                 std::size_t n_threads,
                                 std::size_t window_requests = 50'000);

  /// Open-loop saturation replay (bench/load_gen.hpp builds the schedule):
  /// request timestamps are scheduled arrival instants — typically a
  /// deterministic Poisson process at a target req/s — and every request is
  /// charged `completion - arrival` where completion advances a per-worker
  /// virtual queue clock by the *measured wall-clock* cost of processing
  /// the request. Unlike closed-loop replay(), a slow request does not slow
  /// the arrival process down, so queueing delay (the thing production p99s
  /// are made of) is measured instead of hidden — no coordinated omission.
  /// Sharding/threading contract matches replay_concurrent, except an
  /// unsharded backend is allowed at n_threads == 1. Aggregate hit/byte/WAN
  /// counters remain deterministic; sojourn quantiles reflect real
  /// machine-dependent service times (that is the point).
  ServerReport replay_open_loop(const trace::TraceSource& trace,
                                std::size_t n_threads,
                                std::size_t window_requests = 50'000);

  /// One process's slice of a `procs x threads` replay (the worker half of
  /// the process-parallel engine, see proc_replay.hpp). Thread t of process
  /// `proc_index` runs global worker `proc_index + t * procs` out of
  /// `procs * threads`, so a shard's owning process is
  /// `(s % (procs * threads)) % procs == s % procs` — the process partition
  /// composes exactly with the per-process thread partition. Thread 0 of
  /// every process samples its own main-index metadata (processes have
  /// disjoint cache state, so per-process peaks add like RAM slices). Thread
  /// accumulators are merged in thread order before returning; merging the
  /// returned per-process accumulators in process order then reproduces the
  /// single-process worker-index reduction. With `open_loop` non-null the
  /// slice runs open-loop accounting into it (thread-merged the same way).
  /// replay_concurrent(T) is exactly replay_slice(0, 1, T, ...).
  [[nodiscard]] ReplayAccumulator replay_slice(const trace::TraceSource& trace,
                                               std::size_t proc_index,
                                               std::size_t procs,
                                               std::size_t threads,
                                               std::size_t window_requests,
                                               OpenLoopAccumulator* open_loop = nullptr);

  /// Sums the control-plane cell counters in shard-index order (integer
  /// sums, so the result is identical at any worker partition). Cells of
  /// shards this server never touched contribute zeros.
  [[nodiscard]] ControlPlaneReport collect_control_plane() const;

  /// Assembles a ServerReport from an already-merged accumulator and
  /// control-plane slice — the parent half of the process-parallel merge,
  /// where the control plane was summed across worker processes rather than
  /// read from this (idle) server's own cells. `lock_contentions` is the
  /// absolute count to report.
  [[nodiscard]] ServerReport assemble_report(const trace::TraceSource& trace,
                                             ReplayMode mode,
                                             const ReplayAccumulator& total,
                                             const ControlPlaneReport& control_plane,
                                             std::size_t threads, double wall_seconds,
                                             std::uint64_t lock_contentions) const;

  /// Fills the open-loop block of `report` from a merged accumulator (the
  /// post-processing replay_open_loop applies, exposed so the multi-process
  /// parent can apply it to pipe-merged partials). Uses report.requests as
  /// the request count.
  static void apply_open_loop_stats(ServerReport& report,
                                    const OpenLoopAccumulator& open_loop,
                                    const trace::TraceSource& trace);

  /// Absolute shard-mutex contention count of a ShardedCache backend (0 for
  /// unsharded backends) — what a replay worker reports in its partial.
  [[nodiscard]] std::uint64_t backend_lock_contentions() const;

  /// Serves one request on the calling thread against the shard its key
  /// hashes to, accumulating hits/bytes/latency/fetch counters into `acc`.
  /// This is the per-request entry point CdnFabric composes tiers with; the
  /// caller owns the shard-ownership discipline (all requests of one
  /// freshness shard must arrive in time order from a single thread).
  /// `upstream_ctx` is forwarded verbatim to the UpstreamFetch hook.
  RequestOutcome serve(const trace::Request& r, ReplayAccumulator& acc,
                       void* upstream_ctx = nullptr);

  /// Routes every logical origin fetch (miss, revalidation, refetch)
  /// through `upstream` instead of the built-in simulated Origin — the hook
  /// that chains this server to the next tier of a fabric. Passing an empty
  /// function restores the built-in origin. Not thread-safe against
  /// concurrent replays; set it before serving.
  void set_upstream(UpstreamFetch upstream) { upstream_ = std::move(upstream); }

  [[nodiscard]] const sim::CachePolicy& main_policy() const { return *main_; }

  /// Number of freshness/RAM/RNG slices (= backend shard count, or 1).
  [[nodiscard]] std::size_t freshness_shard_count() const { return fresh_.size(); }

  /// The simulated origin behind this server (exposed for tests).
  [[nodiscard]] const Origin& origin() const { return *origin_; }

 private:
  /// One worker-owned slice of the server's per-request state. During
  /// replay_concurrent, shard s is touched only by worker s mod n_workers —
  /// that ownership discipline is what makes the struct lock-free.
  struct FreshnessShard {
    FreshnessShard(std::uint64_t ram_capacity, std::uint64_t rng_seed)
        : ram(ram_capacity), rng(rng_seed) {}

    policy::Lru ram;  ///< this slice of the RAM tier (disk-tier configs)
    std::unordered_map<trace::Key, trace::Time> admitted_at;  ///< freshness clock
    util::Xoshiro256 rng;  ///< revalidation coin flips
  };

  /// Processes one request against shard `shard_idx`. Origin fetch counters
  /// and per-fetch latencies go straight into `acc` (a request can make up
  /// to two logical fetches: revalidation then refetch). `upstream_ctx` is
  /// forwarded to the UpstreamFetch hook when one is set.
  RequestOutcome process(const trace::Request& r, std::size_t shard_idx,
                         ReplayAccumulator& acc, void* upstream_ctx = nullptr);

  /// The per-request accumulation shared by replay_partition and serve():
  /// latency sample, busy-time sums, hit/byte/stale/failure counters.
  static void accumulate(const RequestOutcome& out, const trace::Request& r,
                         ReplayAccumulator& acc);

  [[nodiscard]] std::size_t freshness_shard_of(trace::Key key) const;

  /// Processes the sub-stream of `trace` owned by `worker` (shards s with
  /// s % n_workers == worker) through a private cursor, accumulating into
  /// `acc`. Metadata peaks are sampled every `meta_sample_every` processed
  /// requests plus once at the end; the worker with `sample_main_index` set
  /// samples the (thread-safe) main index — thread 0 in-process, thread 0 of
  /// each process under the process fan-out — and every worker sums only the
  /// RAM slices it owns. `open_loop`, when non-null, switches the partition
  /// into open-loop accounting: each processed request is wall-clock timed
  /// and pushed through the worker's virtual queue.
  void replay_partition(const trace::TraceSource& trace, std::size_t worker,
                        std::size_t n_workers, std::size_t window_requests,
                        std::size_t meta_sample_every, ReplayAccumulator& acc,
                        OpenLoopAccumulator* open_loop = nullptr,
                        bool sample_main_index = true);

  [[nodiscard]] ServerReport finalize(const trace::TraceSource& trace, ReplayMode mode,
                                      const ReplayAccumulator& total,
                                      std::size_t threads, double wall_seconds,
                                      std::uint64_t contentions_before) const;

  ServerConfig config_;
  std::unique_ptr<sim::CachePolicy> main_;
  ShardedCache* sharded_ = nullptr;  ///< main_ downcast, null if unsharded
  /// Control-plane cell behind each freshness shard (null entries when the
  /// shard's policy hosts none). Discovered once at construction via
  /// ControlPlaneHost; shard s is only touched by the worker owning shard s,
  /// so feeding cells from process() needs no locks.
  std::vector<ControlPlane*> cells_;
  std::uint64_t revalidate_threshold_ = 0;  ///< of kRevalidateScale
  std::vector<std::unique_ptr<FreshnessShard>> fresh_;
  std::unique_ptr<Origin> origin_;  ///< one draw stream per freshness shard
  FetchPolicy fetch_policy_;
  UpstreamFetch upstream_;  ///< empty = built-in Origin + FetchPolicy
};

}  // namespace lhr::server
