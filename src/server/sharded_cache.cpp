#include "server/sharded_cache.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace lhr::server {

ShardedCache::ShardedCache(std::size_t shards, std::uint64_t capacity_bytes,
                           const PolicyFactory& factory)
    : capacity_(capacity_bytes) {
  if (shards == 0) throw std::invalid_argument("ShardedCache: need >= 1 shard");
  if (!factory) throw std::invalid_argument("ShardedCache: null factory");
  shards_.reserve(shards);
  const std::uint64_t per_shard = capacity_bytes / shards;
  const std::uint64_t remainder = capacity_bytes % shards;
  if (per_shard == 0) throw std::invalid_argument("ShardedCache: capacity too small");
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->policy = factory(per_shard + (i < remainder ? 1 : 0));
    if (!shard->policy) throw std::invalid_argument("ShardedCache: factory returned null");
    shards_.push_back(std::move(shard));
  }
}

void ShardedCache::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  const std::uint64_t per_shard = bytes / shards_.size();
  const std::uint64_t remainder = bytes % shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i]->mutex);
    shards_[i]->policy->set_capacity(per_shard + (i < remainder ? 1 : 0));
  }
}

std::uint64_t ShardedCache::shard_capacity_bytes(std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
  return shards_[shard]->policy->capacity_bytes();
}

std::size_t ShardedCache::shard_of(trace::Key key) const noexcept {
  return static_cast<std::size_t>(util::mix64(key)) % shards_.size();
}

bool ShardedCache::access(const trace::Request& r) {
  Shard& shard = *shards_[shard_of(r.key)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.policy->access(r);
}

std::uint64_t ShardedCache::used_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->policy->used_bytes();
  }
  return total;
}

std::uint64_t ShardedCache::metadata_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->policy->metadata_bytes();
  }
  return total;
}

std::string ShardedCache::name() const {
  const std::lock_guard<std::mutex> lock(shards_[0]->mutex);
  return "Sharded(" + shards_[0]->policy->name() + ")x" +
         std::to_string(shards_.size());
}

}  // namespace lhr::server
