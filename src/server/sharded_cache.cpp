#include "server/sharded_cache.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace lhr::server {

ShardedCache::ShardedCache(std::size_t shards, std::uint64_t capacity_bytes,
                           const PolicyFactory& factory)
    : capacity_(capacity_bytes) {
  if (shards == 0) throw std::invalid_argument("ShardedCache: need >= 1 shard");
  if (!factory) throw std::invalid_argument("ShardedCache: null factory");
  shards_.reserve(shards);
  const std::uint64_t per_shard = capacity_bytes / shards;
  const std::uint64_t remainder = capacity_bytes % shards;
  if (per_shard == 0) throw std::invalid_argument("ShardedCache: capacity too small");
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->policy = factory(per_shard + (i < remainder ? 1 : 0));
    if (!shard->policy) throw std::invalid_argument("ShardedCache: factory returned null");
    shards_.push_back(std::move(shard));
  }
}

void ShardedCache::set_capacity(std::uint64_t bytes) {
  // Take every shard lock up front (index order) so the re-split is atomic
  // with respect to access(): no request can run against a shard whose
  // budget is mid-update. See the header for the aggregate-reader caveat.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  capacity_.store(bytes, std::memory_order_relaxed);
  const std::uint64_t per_shard = bytes / shards_.size();
  const std::uint64_t remainder = bytes % shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->policy->set_capacity(per_shard + (i < remainder ? 1 : 0));
  }
}

std::uint64_t ShardedCache::shard_capacity_bytes(std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
  return shards_[shard]->policy->capacity_bytes();
}

std::size_t ShardedCache::shard_index(trace::Key key, std::size_t shard_count) noexcept {
  return static_cast<std::size_t>(util::mix64(key)) % shard_count;
}

std::size_t ShardedCache::shard_of(trace::Key key) const noexcept {
  return shard_index(key, shards_.size());
}

bool ShardedCache::access(const trace::Request& r) {
  Shard& shard = *shards_[shard_of(r.key)];
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard.contended.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  const bool hit = shard.policy->access(r);
  ++shard.accesses;
  shard.hits += static_cast<std::uint64_t>(hit);
  return hit;
}

std::uint64_t ShardedCache::used_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->policy->used_bytes();
  }
  return total;
}

std::uint64_t ShardedCache::metadata_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->policy->metadata_bytes();
  }
  return total;
}

sim::CachePolicy& ShardedCache::shard_policy(std::size_t shard) {
  return *shards_[shard]->policy;
}

ShardedCache::ShardStats ShardedCache::shard_stats(std::size_t shard) const {
  const Shard& s = *shards_[shard];
  ShardStats stats;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    stats.accesses = s.accesses;
    stats.hits = s.hits;
  }
  stats.lock_contentions = s.contended.load(std::memory_order_relaxed);
  return stats;
}

ShardedCache::ShardStats ShardedCache::total_stats() const {
  ShardStats total;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardStats s = shard_stats(i);
    total.accesses += s.accesses;
    total.hits += s.hits;
    total.lock_contentions += s.lock_contentions;
  }
  return total;
}

std::uint64_t ShardedCache::lock_contentions() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->contended.load(std::memory_order_relaxed);
  }
  return total;
}

std::string ShardedCache::name() const {
  const std::lock_guard<std::mutex> lock(shards_[0]->mutex);
  return "Sharded(" + shards_[0]->policy->name() + ")x" +
         std::to_string(shards_.size());
}

}  // namespace lhr::server
