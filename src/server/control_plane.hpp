// Live model control plane: shadow rollout, robust fallback, and online
// autotuning for the learned admission path.
//
// The paper's LHR retrains on every detected pattern change and swaps the
// fresh GBDT in unconditionally (§5.1). A production CDN does not trust a
// candidate model that far: new models are promoted the way Torabi &
// Khazaei's edge-caching system promotes them — continuously, by live
// comparison against the incumbent — and the whole learned path falls back
// to a robust baseline when its predictions drift, as in Chłędowski et
// al.'s robust learning-augmented caching (PAPERS.md).
//
// One ControlPlane instance rides along with each LhrCache (so, one per
// ShardedCache shard): the cell sees exactly its shard's request
// subsequence in trace order no matter how many replay workers run — the
// same ownership discipline the freshness shards use — which makes every
// decision below a pure function of the shard substream:
//
//   * Shadow rollout. When a retrain finishes (background AsyncTrainer
//     collect, or the inline window-close fit), the candidate CompiledModel
//     is *staged* here instead of swapped in. A deterministic sampled
//     fraction of subsequent requests (private per-cell Xoshiro stream, so
//     live admissions draw exactly the same RNG sequence with or without a
//     staged candidate) is mirrored through the candidate's forest, and
//     three signals accumulate over a rolling window: admission agreement
//     (same side of the threshold), score divergence (mean |Δp|), and a
//     would-hit delta (the §5.2.3 footprint estimator applied to both
//     models' previous scores). The candidate auto-promotes when it clears
//     the configured thresholds and rolls back otherwise.
//
//   * RobustGuard. Every scored request also reports |p - label| against
//     the HRO oracle label. When the rolling mean drifts past
//     guard_divergence, the cell engages the guard: the host cache degrades
//     to plain LRU ordering (admit everything, evict by recency) until the
//     drift mean recovers below guard_rearm — the robust-augmented regime.
//
//   * Online autotuning. The serving layer feeds each request's simulated
//     user latency into the cell. Every latency_window requests the cell
//     closes an epoch: if the epoch's served p99 exceeds p99_budget_ms, the
//     admission threshold gets a positive bias (admit less, shed admission
//     work) and the shadow evaluation window halves (decide faster); when
//     the p99 is back under budget the bias decays and the window grows
//     back toward its configured size.
//
// All counters are integers, merged in shard-index order by the server
// report, so ControlPlaneReport::canonical() is byte-identical at any
// replay worker count (bench_control_plane asserts 1/2/4/8).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ml/flat_forest.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lhr::server {

struct ControlPlaneConfig {
  bool enabled = false;

  // --- shadow rollout ---
  double sample_fraction = 0.25;  ///< mirrored fraction while a candidate is staged
  std::size_t window = 2048;      ///< mirrored comparisons per promote/rollback verdict
  double min_agreement = 0.85;    ///< admission-agreement floor to promote
  double max_divergence = 0.20;   ///< mean |p_shadow - p_live| ceiling to promote
  double min_hit_delta = -0.02;   ///< would-hit(shadow) - would-hit(live) floor

  // --- RobustGuard ---
  bool robust_guard = true;
  std::size_t guard_window = 2048;  ///< |p - label| samples per guard evaluation
  double guard_divergence = 0.35;   ///< engage LRU fallback above this mean drift
  double guard_rearm = 0.25;        ///< disengage below this (hysteresis band)

  // --- autotune ---
  bool autotune = false;
  double p99_budget_ms = 0.0;        ///< served-p99 target; <= 0 disables autotune
  double autotune_step = 0.02;       ///< threshold-bias step per over-budget epoch
  double max_threshold_bias = 0.20;  ///< bias is clamped to [0, this]
  std::size_t latency_window = 8192; ///< served-latency samples per epoch
  std::size_t min_window = 256;      ///< autotuned shadow-window floor

  std::uint64_t seed = 0xC0117101ULL;  ///< base of the cell's sampling stream
};

/// Parses "on" / "off" or a comma-separated "key=value" list: sample,
/// window, agree, div, hitdelta, guard (divergence), rearm, guardwin,
/// p99 (budget ms; also enables autotune), step, maxbias, latwin, minwin,
/// robust (0/1), seed. Examples:
///   "on"
///   "sample=0.5,window=512,agree=0.9"
///   "p99=2.5,step=0.05,guard=0.3,rearm=0.2"
/// Any spec other than "off" returns an enabled config. Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] ControlPlaneConfig parse_control_plane(const std::string& spec);

/// Integer event counters of one cell — and, summed in shard-index order,
/// of a whole server. Integers only, so cross-thread-count aggregation is
/// exact.
struct ControlPlaneCounters {
  std::uint64_t candidates_staged = 0;   ///< retrains routed into shadow
  std::uint64_t candidates_displaced = 0;///< staged candidate replaced unevaluated
  std::uint64_t shadow_samples = 0;      ///< requests mirrored through the shadow
  std::uint64_t shadow_agreements = 0;   ///< mirrored requests on the same side of δ
  std::uint64_t would_hit_pairs = 0;     ///< mirrored reuses with both prior scores
  std::uint64_t would_hits_live = 0;
  std::uint64_t would_hits_shadow = 0;
  std::uint64_t promotions = 0;          ///< candidates promoted to live
  std::uint64_t rollbacks = 0;           ///< candidates rejected by evaluation
  std::uint64_t guard_engagements = 0;
  std::uint64_t guard_disengagements = 0;
  std::uint64_t guarded_requests = 0;    ///< requests served under LRU fallback
  std::uint64_t autotune_epochs = 0;
  std::uint64_t threshold_raises = 0;
  std::uint64_t threshold_decays = 0;
  std::uint64_t window_shrinks = 0;
  std::uint64_t window_grows = 0;

  void merge(const ControlPlaneCounters& other);
};

/// Aggregated control-plane slice of a ServerReport.
struct ControlPlaneReport {
  bool active = false;       ///< any cell present behind this server
  std::size_t cells = 0;     ///< cells aggregated (== shards running LHR+CP)
  ControlPlaneCounters counters;

  /// Every integer counter in a fixed order — the determinism fingerprint
  /// compared byte-for-byte across replay thread counts.
  [[nodiscard]] std::string canonical() const;
};

class ControlPlane {
 public:
  enum class Verdict { kNone, kPromote, kRollback };

  explicit ControlPlane(const ControlPlaneConfig& config);

  [[nodiscard]] const ControlPlaneConfig& config() const noexcept { return config_; }

  // ----------------------------------------------------- candidate staging
  /// Stages a freshly trained candidate for shadow evaluation, replacing
  /// (and counting as displaced) any candidate still under evaluation.
  void stage(std::shared_ptr<const ml::CompiledModel> candidate);
  [[nodiscard]] bool has_candidate() const noexcept { return candidate_ != nullptr; }
  [[nodiscard]] const ml::CompiledModel* candidate() const noexcept {
    return candidate_.get();
  }
  /// Hands the candidate over on promotion (clears the staged slot).
  [[nodiscard]] std::shared_ptr<const ml::CompiledModel> take_candidate();

  // ------------------------------------------------------- shadow mirror
  /// Draws the per-request sampling coin. Only called while a candidate is
  /// staged, so the RNG stream advances identically whether or not earlier
  /// candidates were promoted.
  [[nodiscard]] bool sample_shadow();

  /// Records one mirrored comparison; prior_* report the footprint
  /// estimator's would-hit replay of the key's previous visit (pass
  /// have_prior = false when the key has no mirrored history yet). Returns
  /// a verdict once the rolling window is full.
  Verdict record_shadow(double live_p, double shadow_p, bool live_admit,
                        bool shadow_admit, bool have_prior, bool prior_live_hit,
                        bool prior_shadow_hit);

  // --------------------------------------------------------- RobustGuard
  /// Feeds one |prediction - oracle label| observation.
  void record_drift(double abs_error);
  [[nodiscard]] bool guard_engaged() const noexcept { return guard_engaged_; }
  /// Counts one request served under the engaged guard.
  void count_guarded_request() { ++counters_.guarded_requests; }

  // ------------------------------------------------------------ autotune
  /// Feeds one served-request latency (seconds) from the serving layer.
  void observe_latency(double seconds);
  /// Additive admission-threshold bias in [0, max_threshold_bias].
  [[nodiscard]] double threshold_bias() const noexcept { return threshold_bias_; }
  /// Current (possibly autotuned) shadow evaluation window.
  [[nodiscard]] std::size_t shadow_window() const noexcept { return window_; }

  [[nodiscard]] const ControlPlaneCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  void reset_evaluation();

  ControlPlaneConfig config_;
  util::Xoshiro256 rng_;  ///< private stream: never perturbs the host's draws
  std::shared_ptr<const ml::CompiledModel> candidate_;

  // Rolling evaluation window of the staged candidate.
  std::uint64_t eval_samples_ = 0;
  std::uint64_t eval_agreements_ = 0;
  double eval_divergence_sum_ = 0.0;
  std::uint64_t eval_pairs_ = 0;
  std::uint64_t eval_live_hits_ = 0;
  std::uint64_t eval_shadow_hits_ = 0;

  // RobustGuard rolling drift window.
  double drift_sum_ = 0.0;
  std::uint64_t drift_samples_ = 0;
  bool guard_engaged_ = false;

  // Autotune epoch state.
  util::QuantileHistogram latency_{1e-6, 1e4, 128};
  std::uint64_t latency_samples_ = 0;
  double threshold_bias_ = 0.0;
  std::size_t window_;

  ControlPlaneCounters counters_;
};

/// Implemented by policies that host a control-plane cell (LhrCache). The
/// serving layer discovers cells through this interface to feed latencies
/// and aggregate the report; the returned pointer is fixed for the
/// policy's lifetime (null when the control plane is disabled).
class ControlPlaneHost {
 public:
  virtual ~ControlPlaneHost() = default;
  [[nodiscard]] virtual ControlPlane* control_plane() noexcept = 0;
};

}  // namespace lhr::server
