#include "server/origin.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace lhr::server {

namespace {

double transfer_seconds(std::uint64_t bytes, double gbps) {
  return static_cast<double>(bytes) * 8.0 / (gbps * 1e9);
}

double parse_number(const std::string& text, const std::string& what) {
  return util::require_double(what, text);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Standard normal via Box-Muller; always consumes exactly two draws.
double standard_normal(util::Xoshiro256& rng) {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  // Nudge u1 away from 0 so the log is finite.
  const double u1 = std::max(rng.next_double(), 1e-300);
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace

// ------------------------------------------------------------ OriginSettings

OriginSettings parse_origin_profile(const std::string& spec) {
  OriginSettings settings;
  if (spec.empty()) return settings;

  const std::size_t colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  if (head == "fixed") {
    settings.profile.kind = OriginLatencyKind::kFixed;
  } else if (head == "lognormal") {
    settings.profile.kind = OriginLatencyKind::kLognormal;
  } else {
    throw std::invalid_argument("origin profile must start with 'fixed' or 'lognormal', got '" +
                                head + "'");
  }

  if (colon == std::string::npos) return settings;
  for (const auto& pair : split(spec.substr(colon + 1), ',')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("origin profile expects key=value pairs, got '" + pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "sigma") {
      settings.profile.sigma = parse_number(value, "sigma");
      if (settings.profile.sigma < 0.0) throw std::invalid_argument("sigma must be >= 0");
    } else if (key == "rtt") {
      settings.profile.rtt_s = parse_number(value, "rtt");
    } else if (key == "gbps") {
      settings.profile.gbps = parse_number(value, "gbps");
    } else if (key == "seed") {
      settings.profile.seed = static_cast<std::uint64_t>(parse_number(value, "seed"));
    } else if (key == "timeout") {
      settings.fetch.timeout_s = parse_number(value, "timeout");
    } else if (key == "retries") {
      const double n = parse_number(value, "retries");
      if (n < 0.0) throw std::invalid_argument("retries must be >= 0");
      settings.fetch.retry_budget = static_cast<std::size_t>(n);
    } else if (key == "backoff") {
      settings.fetch.backoff_base_s = parse_number(value, "backoff");
    } else if (key == "cap") {
      settings.fetch.backoff_cap_s = parse_number(value, "cap");
    } else if (key == "jitter") {
      settings.fetch.backoff_jitter = parse_number(value, "jitter");
      if (settings.fetch.backoff_jitter < 0.0 || settings.fetch.backoff_jitter > 1.0) {
        throw std::invalid_argument("jitter must be in [0, 1]");
      }
    } else if (key == "hedge") {
      settings.fetch.hedge_delay_s = parse_number(value, "hedge");
    } else if (key == "grace") {
      settings.fetch.stale_grace_s = parse_number(value, "grace");
    } else {
      throw std::invalid_argument("unknown origin profile key: '" + key + "'");
    }
  }
  return settings;
}

// ------------------------------------------------------------ FaultSchedule

FaultSchedule::FaultSchedule(std::vector<FaultEpisode> episodes)
    : episodes_(std::move(episodes)) {
  for (const auto& e : episodes_) {
    if (e.start_s < 0.0 || e.end_s <= e.start_s) {
      throw std::invalid_argument("fault episode needs 0 <= start < end");
    }
    if (e.error_prob < 0.0 || e.error_prob > 1.0) {
      throw std::invalid_argument("fault episode error probability must be in [0, 1]");
    }
    if (e.slow_factor <= 0.0) {
      throw std::invalid_argument("fault episode slow factor must be > 0");
    }
  }
}

FaultSchedule FaultSchedule::parse(const std::string& spec) {
  std::vector<FaultEpisode> episodes;
  for (const auto& clause : split(spec, ';')) {
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("fault clause needs 'kind:start-end', got '" + clause + "'");
    }
    FaultEpisode episode;
    const std::string kind = clause.substr(0, colon);
    if (kind == "outage") {
      episode.kind = FaultEpisode::Kind::kOutage;
    } else if (kind == "error") {
      episode.kind = FaultEpisode::Kind::kError;
    } else if (kind == "slow") {
      episode.kind = FaultEpisode::Kind::kSlow;
    } else {
      throw std::invalid_argument("fault kind must be outage|error|slow, got '" + kind + "'");
    }

    std::string window = clause.substr(colon + 1);
    const std::size_t at = window.find('@');
    std::string arg;
    if (at != std::string::npos) {
      arg = window.substr(at + 1);
      window = window.substr(0, at);
    }
    const std::size_t dash = window.find('-');
    if (dash == std::string::npos) {
      throw std::invalid_argument("fault window needs 'start-end', got '" + window + "'");
    }
    episode.start_s = parse_number(window.substr(0, dash), "fault window start");
    episode.end_s = parse_number(window.substr(dash + 1), "fault window end");

    if (!arg.empty()) {
      if (episode.kind == FaultEpisode::Kind::kError) {
        episode.error_prob = parse_number(arg, "error probability");
      } else if (episode.kind == FaultEpisode::Kind::kSlow) {
        // Accept both "@x4" and "@4".
        episode.slow_factor =
            parse_number(arg.front() == 'x' ? arg.substr(1) : arg, "slow factor");
      } else {
        throw std::invalid_argument("outage episodes take no '@' argument");
      }
    }
    episodes.push_back(episode);
  }
  return FaultSchedule(std::move(episodes));
}

bool FaultSchedule::in_outage(double t) const noexcept {
  for (const auto& e : episodes_) {
    if (e.kind == FaultEpisode::Kind::kOutage && t >= e.start_s && t < e.end_s) return true;
  }
  return false;
}

double FaultSchedule::error_prob(double t) const noexcept {
  double p = 0.0;
  for (const auto& e : episodes_) {
    if (e.kind == FaultEpisode::Kind::kError && t >= e.start_s && t < e.end_s) {
      p = std::max(p, e.error_prob);
    }
  }
  return p;
}

double FaultSchedule::slow_factor(double t) const noexcept {
  double factor = 1.0;
  for (const auto& e : episodes_) {
    if (e.kind == FaultEpisode::Kind::kSlow && t >= e.start_s && t < e.end_s) {
      factor *= e.slow_factor;
    }
  }
  return factor;
}

// -------------------------------------------------------------------- Origin

Origin::Origin(const OriginProfile& profile, double rtt_s, double gbps,
               FaultSchedule schedule, std::size_t streams)
    : profile_(profile),
      rtt_s_(profile.rtt_s >= 0.0 ? profile.rtt_s : rtt_s),
      gbps_(profile.gbps > 0.0 ? profile.gbps : gbps),
      schedule_(std::move(schedule)) {
  if (streams == 0) throw std::invalid_argument("Origin: need at least one stream");
  if (rtt_s_ < 0.0 || gbps_ <= 0.0) {
    throw std::invalid_argument("Origin: rtt must be >= 0 and bandwidth > 0");
  }
  streams_.resize(streams);
  std::uint64_t seed_state = profile_.seed;
  for (auto& stream : streams_) {
    stream.rng = util::Xoshiro256(util::splitmix64(seed_state));
  }
}

OriginAttempt Origin::attempt(std::size_t stream, double now, std::uint64_t bytes,
                              double timeout_s) {
  OriginAttempt out;
  util::Xoshiro256& rng = streams_[stream].rng;

  if (schedule_.in_outage(now)) {
    // Connection refused: one RTT to learn the origin is down. No RNG draw,
    // so an outage window does not shift the stream for later requests.
    out.latency_s = timeout_s > 0.0 ? std::min(rtt_s_, timeout_s) : rtt_s_;
    out.timed_out = false;
    return out;  // ok = false
  }

  double latency = rtt_s_ + transfer_seconds(bytes, gbps_);
  if (profile_.kind == OriginLatencyKind::kLognormal && profile_.sigma > 0.0) {
    // Mean-preserving multiplier: E[exp(sigma z - sigma^2/2)] = 1, so the
    // lognormal profile reshapes the tail without moving the average.
    const double z = standard_normal(rng);
    latency *= std::exp(profile_.sigma * z - 0.5 * profile_.sigma * profile_.sigma);
  }
  latency *= schedule_.slow_factor(now);

  bool errored = false;
  const double p = schedule_.error_prob(now);
  if (p > 0.0) errored = rng.next_double() < p;

  if (timeout_s > 0.0 && latency > timeout_s) {
    out.timed_out = true;
    out.latency_s = timeout_s;
    return out;  // ok = false
  }
  out.latency_s = latency;
  out.ok = !errored;
  return out;
}

// --------------------------------------------------------------- FetchPolicy

FetchOutcome FetchPolicy::fetch(Origin& origin, std::size_t stream, double now,
                                std::uint64_t bytes) const {
  FetchOutcome out;
  const auto count_failure = [&out](const OriginAttempt& a) {
    if (a.timed_out) {
      ++out.timeouts;
    } else {
      ++out.errors;
    }
  };

  double elapsed = 0.0;  // simulated seconds since the fetch was issued
  const std::size_t rounds = 1 + config_.retry_budget;
  for (std::size_t round = 0; round < rounds; ++round) {
    if (round > 0) {
      ++out.retries;
      double delay = std::min(config_.backoff_cap_s,
                              config_.backoff_base_s * std::pow(2.0, static_cast<double>(round - 1)));
      if (config_.backoff_jitter > 0.0) {
        // Deterministic jitter: scale into [1-j, 1] with a draw from the
        // shard's stream (the same stream the attempts draw from, so the
        // whole per-shard sequence is reproducible).
        delay *= (1.0 - config_.backoff_jitter) +
                 config_.backoff_jitter * origin.stream_rng(stream).next_double();
      }
      out.backoffs.push_back(delay);
      elapsed += delay;
    }

    const OriginAttempt primary = origin.attempt(stream, now + elapsed, bytes,
                                                 config_.timeout_s);
    ++out.attempts;

    double round_time;
    bool round_ok;
    // Hedge: issue a racing second attempt if the primary has not completed
    // after hedge_delay_s.
    if (config_.hedge_delay_s > 0.0 && primary.latency_s > config_.hedge_delay_s) {
      const OriginAttempt hedge = origin.attempt(
          stream, now + elapsed + config_.hedge_delay_s, bytes, config_.timeout_s);
      ++out.attempts;
      ++out.hedges;
      const double primary_done = primary.latency_s;
      const double hedge_done = config_.hedge_delay_s + hedge.latency_s;

      if (primary.ok && (!hedge.ok || primary_done <= hedge_done)) {
        round_ok = true;
        round_time = primary_done;
        out.origin_busy_s += primary_done;
        if (hedge_done > primary_done) {
          // Loser still in flight when the primary won: cancel it once; it
          // consumed origin time from issue until the cancellation point.
          ++out.hedge_cancels;
          out.origin_busy_s += primary_done - config_.hedge_delay_s;
        } else {
          // The hedge already completed (in failure) before the primary won.
          out.origin_busy_s += hedge_done - config_.hedge_delay_s;
          count_failure(hedge);
        }
      } else if (hedge.ok) {
        round_ok = true;
        round_time = hedge_done;
        out.origin_busy_s += hedge_done - config_.hedge_delay_s;
        if (primary_done > hedge_done) {
          ++out.hedge_cancels;
          out.origin_busy_s += hedge_done;
        } else {
          out.origin_busy_s += primary_done;
          count_failure(primary);
        }
      } else {
        // Both sides failed; the round fails when the last one does.
        round_ok = false;
        round_time = std::max(primary_done, hedge_done);
        out.origin_busy_s += primary_done + (hedge_done - config_.hedge_delay_s);
        count_failure(primary);
        count_failure(hedge);
      }
    } else {
      round_ok = primary.ok;
      round_time = primary.latency_s;
      out.origin_busy_s += primary.latency_s;
      if (!primary.ok) count_failure(primary);
    }

    if (round_ok) {
      out.ok = true;
      out.latency_s = elapsed + round_time;
      return out;
    }
    elapsed += round_time;
  }

  // Retry budget exhausted: a terminal failure, never a hang — the caller
  // serves stale within the grace window or returns a 5xx.
  out.latency_s = elapsed;
  return out;
}

}  // namespace lhr::server
