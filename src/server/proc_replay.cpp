#include "server/proc_replay.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/subprocess.hpp"

namespace lhr::server {

namespace {

// "LHRP" — partial-report pipe frame. Host-endian (same-machine IPC);
// repeated as a trailer so a stream cut anywhere decodes as truncation.
constexpr std::uint32_t kPartialMagic = 0x5052484CU;
constexpr std::uint32_t kPartialVersion = 1;

void append_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void append_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void append_histogram(std::string& out, const util::QuantileHistogram& h) {
  const auto counts = h.bucket_counts();
  append_u64(out, counts.size());
  append_f64(out, h.sum());
  out.append(reinterpret_cast<const char*>(counts.data()),
             counts.size() * sizeof(std::uint64_t));
}

void append_u64_vector(std::string& out, const std::vector<std::uint64_t>& v) {
  append_u64(out, v.size());
  out.append(reinterpret_cast<const char*>(v.data()),
             v.size() * sizeof(std::uint64_t));
}

/// Bounds-checked sequential reader over the encoded buffer.
struct Reader {
  const char* p;
  std::size_t remaining;

  void take(void* dst, std::size_t n) {
    if (n > remaining) {
      throw std::runtime_error("partial report truncated mid-field");
    }
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
  }

  std::uint32_t u32() {
    std::uint32_t v;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    take(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    take(&v, sizeof v);
    return v;
  }
  std::uint8_t u8() {
    std::uint8_t v;
    take(&v, sizeof v);
    return v;
  }

  void read_histogram(util::QuantileHistogram& h) {
    const std::uint64_t n = u64();
    const double sum = f64();
    if (n > remaining / sizeof(std::uint64_t)) {
      throw std::runtime_error("partial report truncated mid-histogram");
    }
    std::vector<std::uint64_t> counts(n);
    take(counts.data(), n * sizeof(std::uint64_t));
    // Throws on a layout mismatch, so a frame from a different histogram
    // configuration is rejected rather than silently mis-bucketed.
    h.add_bucket_counts(counts, sum);
  }

  std::vector<std::uint64_t> read_u64_vector() {
    const std::uint64_t n = u64();
    if (n > remaining / sizeof(std::uint64_t)) {
      throw std::runtime_error("partial report truncated mid-vector");
    }
    std::vector<std::uint64_t> v(n);
    take(v.data(), n * sizeof(std::uint64_t));
    return v;
  }
};

void append_counters(std::string& out, const ControlPlaneCounters& c) {
  append_u64(out, c.candidates_staged);
  append_u64(out, c.candidates_displaced);
  append_u64(out, c.shadow_samples);
  append_u64(out, c.shadow_agreements);
  append_u64(out, c.would_hit_pairs);
  append_u64(out, c.would_hits_live);
  append_u64(out, c.would_hits_shadow);
  append_u64(out, c.promotions);
  append_u64(out, c.rollbacks);
  append_u64(out, c.guard_engagements);
  append_u64(out, c.guard_disengagements);
  append_u64(out, c.guarded_requests);
  append_u64(out, c.autotune_epochs);
  append_u64(out, c.threshold_raises);
  append_u64(out, c.threshold_decays);
  append_u64(out, c.window_shrinks);
  append_u64(out, c.window_grows);
}

void read_counters(Reader& r, ControlPlaneCounters& c) {
  c.candidates_staged = r.u64();
  c.candidates_displaced = r.u64();
  c.shadow_samples = r.u64();
  c.shadow_agreements = r.u64();
  c.would_hit_pairs = r.u64();
  c.would_hits_live = r.u64();
  c.would_hits_shadow = r.u64();
  c.promotions = r.u64();
  c.rollbacks = r.u64();
  c.guard_engagements = r.u64();
  c.guard_disengagements = r.u64();
  c.guarded_requests = r.u64();
  c.autotune_epochs = r.u64();
  c.threshold_raises = r.u64();
  c.threshold_decays = r.u64();
  c.window_shrinks = r.u64();
  c.window_grows = r.u64();
}

}  // namespace

void PartialReport::merge(const PartialReport& other) {
  acc.merge(other.acc);
  control_plane.active = control_plane.active || other.control_plane.active;
  control_plane.counters.merge(other.control_plane.counters);
  lock_contentions += other.lock_contentions;
  wall_seconds = std::max(wall_seconds, other.wall_seconds);
  if (has_open_loop && other.has_open_loop) open_loop.merge(other.open_loop);
}

std::string encode_partial_report(const PartialReport& partial) {
  std::string out;
  out.reserve(1 << 16);
  append_u32(out, kPartialMagic);
  append_u32(out, kPartialVersion);
  append_u32(out, partial.proc_index);
  append_u32(out, partial.procs);
  append_u32(out, partial.threads);
  append_u32(out, partial.has_open_loop ? 1U : 0U);
  append_u64(out, partial.lock_contentions);
  append_f64(out, partial.wall_seconds);

  const CdnServer::ReplayAccumulator& a = partial.acc;
  append_f64(out, a.cpu_busy);
  append_f64(out, a.disk_busy);
  append_f64(out, a.origin_busy);
  append_f64(out, a.client_busy);
  append_u64(out, a.bytes_served);
  append_u64(out, a.wan_bytes);
  append_u64(out, a.hits);
  append_u64(out, a.requests);
  append_u64(out, a.peak_meta);
  append_u64(out, a.origin_fetches);
  append_u64(out, a.origin_retries);
  append_u64(out, a.origin_timeouts);
  append_u64(out, a.origin_errors);
  append_u64(out, a.origin_hedges);
  append_u64(out, a.hedge_cancels);
  append_u64(out, a.stale_serves);
  append_u64(out, a.failures);
  append_u64(out, a.cache_hits);
  append_u64(out, a.refetches);
  append_u64(out, a.body_fetches);
  append_histogram(out, a.latency);
  append_histogram(out, a.fetch_latency);
  append_u64_vector(out, a.window_hits);
  append_u64_vector(out, a.window_counts);

  append_u8(out, partial.control_plane.active ? 1 : 0);
  append_u64(out, partial.control_plane.cells);
  append_counters(out, partial.control_plane.counters);

  if (partial.has_open_loop) {
    const CdnServer::OpenLoopAccumulator& ol = partial.open_loop;
    append_histogram(out, ol.sojourn);
    append_histogram(out, ol.queue_wait);
    append_f64(out, ol.first_arrival);
    append_f64(out, ol.last_completion);
    append_f64(out, ol.service_s);
    append_u64(out, ol.queued);
    append_u8(out, ol.any ? 1 : 0);
  }

  append_u32(out, kPartialMagic);
  return out;
}

PartialReport decode_partial_report(std::string_view bytes) {
  Reader r{bytes.data(), bytes.size()};
  if (r.u32() != kPartialMagic) {
    throw std::runtime_error("partial report: bad magic");
  }
  if (const std::uint32_t v = r.u32(); v != kPartialVersion) {
    throw std::runtime_error("partial report: unsupported version " +
                             std::to_string(v));
  }
  PartialReport partial;
  partial.proc_index = r.u32();
  partial.procs = r.u32();
  partial.threads = r.u32();
  const std::uint32_t flags = r.u32();
  partial.has_open_loop = (flags & 1U) != 0;
  partial.lock_contentions = r.u64();
  partial.wall_seconds = r.f64();

  CdnServer::ReplayAccumulator& a = partial.acc;
  a.cpu_busy = r.f64();
  a.disk_busy = r.f64();
  a.origin_busy = r.f64();
  a.client_busy = r.f64();
  a.bytes_served = r.u64();
  a.wan_bytes = r.u64();
  a.hits = r.u64();
  a.requests = r.u64();
  a.peak_meta = r.u64();
  a.origin_fetches = r.u64();
  a.origin_retries = r.u64();
  a.origin_timeouts = r.u64();
  a.origin_errors = r.u64();
  a.origin_hedges = r.u64();
  a.hedge_cancels = r.u64();
  a.stale_serves = r.u64();
  a.failures = r.u64();
  a.cache_hits = r.u64();
  a.refetches = r.u64();
  a.body_fetches = r.u64();
  r.read_histogram(a.latency);
  r.read_histogram(a.fetch_latency);
  a.window_hits = r.read_u64_vector();
  a.window_counts = r.read_u64_vector();

  partial.control_plane.active = r.u8() != 0;
  partial.control_plane.cells = r.u64();
  read_counters(r, partial.control_plane.counters);

  if (partial.has_open_loop) {
    CdnServer::OpenLoopAccumulator& ol = partial.open_loop;
    r.read_histogram(ol.sojourn);
    r.read_histogram(ol.queue_wait);
    ol.first_arrival = r.f64();
    ol.last_completion = r.f64();
    ol.service_s = r.f64();
    ol.queued = r.u64();
    ol.any = r.u8() != 0;
  }

  if (r.u32() != kPartialMagic) {
    throw std::runtime_error("partial report: bad trailer magic");
  }
  if (r.remaining != 0) {
    throw std::runtime_error("partial report: trailing garbage");
  }
  return partial;
}

PartialReport replay_worker_slice(CdnServer& server,
                                  const trace::TraceSource& trace,
                                  std::size_t proc_index,
                                  const ProcReplayOptions& opts) {
  PartialReport partial;
  partial.proc_index = static_cast<std::uint32_t>(proc_index);
  partial.procs = static_cast<std::uint32_t>(opts.procs);
  partial.threads = static_cast<std::uint32_t>(opts.threads);
  partial.has_open_loop = opts.open_loop;
  const auto t0 = std::chrono::steady_clock::now();
  partial.acc =
      server.replay_slice(trace, proc_index, opts.procs, opts.threads,
                          opts.window_requests,
                          opts.open_loop ? &partial.open_loop : nullptr);
  partial.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  partial.control_plane = server.collect_control_plane();
  partial.lock_contentions = server.backend_lock_contentions();
  return partial;
}

int run_replay_worker(CdnServer& server, const trace::TraceSource& trace,
                      std::size_t proc_index, const ProcReplayOptions& opts,
                      int out_fd) {
  const PartialReport partial = replay_worker_slice(server, trace, proc_index, opts);
  const std::string encoded = encode_partial_report(partial);
  if (!util::write_all(out_fd, encoded.data(), encoded.size())) {
    std::fprintf(stderr,
                 "replay worker %zu: writing partial report to fd %d failed: %s\n",
                 proc_index, out_fd, std::strerror(errno));
    return 1;
  }
  return 0;
}

ServerReport replay_multiprocess(const CdnServer& parent,
                                 const trace::TraceSource& trace,
                                 const ProcReplayOptions& opts,
                                 const std::string& exe,
                                 const WorkerArgvFn& worker_argv) {
  const std::size_t procs = std::max<std::size_t>(opts.procs, 1);
  const std::size_t threads = std::max<std::size_t>(opts.threads, 1);

  const auto t0 = std::chrono::steady_clock::now();
  // Spawn every worker before reading anything so the slices replay
  // concurrently — that concurrency is the whole point of the fan-out.
  std::vector<util::ChildProcess> children;
  children.reserve(procs);
  for (std::size_t p = 0; p < procs; ++p) {
    children.push_back(util::spawn_with_pipe(exe, worker_argv(p), kWorkerPipeFd));
  }

  // Drain pipes in process order. A worker whose pipe fills simply blocks
  // until its turn — partials are small (tens of KB) and the parent reads
  // each stream to EOF, so there is no cross-pipe deadlock. A worker that
  // dies closes its pipe, so a crashed child yields a short stream, never a
  // hang. Reads and reaps happen for *every* child even when an earlier one
  // failed, so no zombies survive the error path.
  std::vector<std::string> blobs(procs);
  std::string diagnostics;
  const auto note = [&diagnostics, procs](std::size_t p, const std::string& what) {
    if (!diagnostics.empty()) diagnostics += "; ";
    diagnostics += "worker " + std::to_string(p) + "/" + std::to_string(procs) +
                   ": " + what;
  };
  for (std::size_t p = 0; p < procs; ++p) {
    try {
      blobs[p] = util::read_fd_to_eof(children[p].read_fd);
    } catch (const std::exception& e) {
      note(p, e.what());
    }
    ::close(children[p].read_fd);
  }
  std::vector<util::ExitStatus> statuses(procs);
  for (std::size_t p = 0; p < procs; ++p) {
    statuses[p] = util::wait_child(children[p].pid);
  }

  std::vector<PartialReport> partials(procs);
  for (std::size_t p = 0; p < procs; ++p) {
    if (!statuses[p].ok()) {
      note(p, statuses[p].describe() +
                  (blobs[p].empty() ? " (no partial report)"
                                    : " (partial report discarded)"));
      continue;
    }
    try {
      partials[p] = decode_partial_report(blobs[p]);
      if (partials[p].proc_index != p ||
          partials[p].procs != static_cast<std::uint32_t>(procs) ||
          partials[p].threads != static_cast<std::uint32_t>(threads) ||
          partials[p].has_open_loop != opts.open_loop) {
        note(p, "partial report shape mismatch (wrong worker or options)");
      }
    } catch (const std::exception& e) {
      note(p, e.what());
    }
  }
  if (!diagnostics.empty()) {
    throw std::runtime_error("replay_multiprocess: " + diagnostics);
  }

  // Merge in process-index order: process p hosted global workers
  // {p + t*procs}, each already thread-merged, so this completes the same
  // worker-index reduction replay_concurrent performs in-process.
  PartialReport total = std::move(partials[0]);
  for (std::size_t p = 1; p < procs; ++p) total.merge(partials[p]);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  ServerReport report =
      parent.assemble_report(trace, opts.mode, total.acc, total.control_plane,
                             procs * threads, wall, total.lock_contentions);
  if (opts.open_loop) {
    CdnServer::apply_open_loop_stats(report, total.open_loop, trace);
  }
  return report;
}

}  // namespace lhr::server
