// Asynchronous admission queue.
//
// Paper §6.1: "the eviction process is run by scheduling cache admissions in
// a lock-free queue" — the request path never blocks on disk-cache
// admission; a background worker drains pending admissions and performs the
// eviction work. This is the bounded MPSC queue + worker thread realizing
// that design: producers (request threads) enqueue admissions, one consumer
// applies them to the cache. When the queue is full the admission is
// dropped, exactly like a loaded CDN server sheds admission work rather
// than stall the hot path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "trace/request.hpp"

namespace lhr::server {

class AdmissionQueue {
 public:
  using AdmitFn = std::function<void(const trace::Request&)>;

  /// Starts the worker. `admit` runs on the worker thread for each drained
  /// request; it must synchronize access to the cache itself.
  AdmissionQueue(AdmitFn admit, std::size_t max_depth = 4096);

  /// Stops and joins the worker after draining outstanding work.
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Enqueues an admission; returns false (and drops it) when full.
  bool enqueue(const trace::Request& r);

  /// Blocks until every admission enqueued so far has been applied.
  void drain();

  /// Distinct admissions shed so far. A retry that re-enqueues a key whose
  /// admission was already dropped (the origin fetch path re-enqueues on
  /// retry) is the *same* shed admission and is counted once; once the key
  /// makes it into the queue, a later drop of it counts anew.
  [[nodiscard]] std::size_t dropped() const;
  [[nodiscard]] std::size_t processed() const;

  /// Deepest the queue has ever been (high-water mark; <= max_depth). A
  /// mark pinned at max_depth means the consumer cannot keep up and
  /// admissions are being shed — the back-pressure signal a production
  /// deployment would alarm on.
  [[nodiscard]] std::size_t max_depth_seen() const;

 private:
  void worker_loop();

  AdmitFn admit_;
  std::size_t max_depth_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable drained_;
  std::deque<trace::Request> queue_;
  /// Keys whose most recent enqueue was shed; membership keeps a retried
  /// re-enqueue of the same key from double-counting in dropped_.
  std::unordered_set<trace::Key> dropped_keys_;
  std::size_t dropped_ = 0;
  std::size_t processed_ = 0;
  std::size_t max_depth_seen_ = 0;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace lhr::server
