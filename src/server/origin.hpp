// Simulated origin server with configurable latency models and
// deterministic fault injection, plus the client-side FetchPolicy
// (timeout, capped exponential backoff with deterministic jitter, bounded
// retry budget, optional hedged second request) every CdnServer miss and
// revalidation is routed through.
//
// Real CDNs spend most of their tail latency and failure budget on origin
// fetches; an implicit, infallible, zero-latency origin hides exactly the
// regime where admission policies and retries interact. This module makes
// the origin a first-class simulated component:
//
//   * latency: fixed (rtt + size/bandwidth, the classic §6.1 model) or
//     lognormal (a mean-preserving multiplier on the RTT, the heavy-tailed
//     shape measured on production origin connections);
//   * faults: a FaultSchedule of time-windowed episodes — outage
//     (connections refused), error (5xx with probability p), slow
//     (latency multiplied by a factor) — evaluated against *trace* time,
//     so an episode hits the same requests no matter how fast the replay
//     host is;
//   * determinism: every stochastic draw (lognormal latency, error coin,
//     backoff jitter) comes from a per-shard Xoshiro256 stream seeded from
//     a single profile seed. CdnServer partitions replay work by shard
//     ownership (shard s is touched by exactly one worker, in trace
//     order), so fault-injected replays are byte-identical at any thread
//     count — the same guarantee the serving layer already makes for
//     hit/byte aggregates.
//
// The FetchPolicy executes in *simulated* time: an attempt's latency is
// sampled, compared against the timeout, and the retry clock (backoff
// included) advances `now` so a retry can straddle an episode boundary and
// succeed where the first attempt failed. A hedged request races a second
// attempt after `hedge_delay_s`; the losing side is cancelled exactly once
// and its consumed time still counts against origin busy time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lhr::server {

/// Distribution of an origin attempt's latency.
enum class OriginLatencyKind {
  kFixed,      ///< rtt + bytes/bandwidth, exactly (no RNG draw)
  kLognormal,  ///< fixed latency times a mean-preserving lognormal multiplier
};

/// Shape of the simulated origin. `rtt_s`/`gbps` default to the negative
/// sentinel "inherit from ServerConfig::origin_rtt_s / origin_gbps", so a
/// profile can reshape latency without repeating the server's base numbers.
struct OriginProfile {
  OriginLatencyKind kind = OriginLatencyKind::kFixed;
  double rtt_s = -1.0;   ///< base round-trip seconds (<0 = inherit)
  double gbps = -1.0;    ///< origin link bandwidth (<0 = inherit)
  double sigma = 0.4;    ///< lognormal shape (kLognormal only)
  std::uint64_t seed = 1729;  ///< base of the per-shard draw streams
};

/// Client-side resilience knobs for origin fetches.
struct FetchPolicyConfig {
  /// Per-attempt timeout; <= 0 disables timeouts (an attempt always
  /// completes), which keeps the default serving path byte-identical to
  /// the pre-origin-layer behaviour.
  double timeout_s = 0.0;
  std::size_t retry_budget = 2;   ///< retries after the first attempt
  double backoff_base_s = 0.050;  ///< first retry delay
  double backoff_cap_s = 1.0;     ///< exponential growth is capped here
  /// Jitter fraction j in [0, 1]: each backoff delay is scaled by a
  /// deterministic uniform draw in [1-j, 1] from the shard's stream.
  double backoff_jitter = 0.5;
  /// > 0 issues a hedged second attempt when the primary has not completed
  /// after this many seconds; 0 disables hedging.
  double hedge_delay_s = 0.0;
  /// Serve-stale-on-error window: a stale cached copy no older than
  /// freshness_ttl_s + stale_grace_s may be served when the origin fails.
  double stale_grace_s = 4.0 * 3600.0;
};

/// A parsed --origin-profile / LHR_ORIGIN_PROFILE spec: the origin shape
/// plus the client fetch policy (one spec string configures both sides).
struct OriginSettings {
  OriginProfile profile;
  FetchPolicyConfig fetch;
};

/// Parses "fixed" or "lognormal", optionally followed by ":key=value"
/// pairs (comma-separated): sigma, rtt, gbps, seed, timeout, retries,
/// backoff, cap, jitter, hedge, grace. Examples:
///   "fixed"
///   "lognormal:sigma=0.5"
///   "lognormal:sigma=0.5,timeout=0.25,retries=3,hedge=0.08,grace=7200"
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] OriginSettings parse_origin_profile(const std::string& spec);

/// One time-windowed fault episode, in trace-time seconds.
struct FaultEpisode {
  enum class Kind {
    kOutage,  ///< connections refused: every attempt fails after one RTT
    kError,   ///< attempt returns 5xx with probability `error_prob`
    kSlow,    ///< attempt latency multiplied by `slow_factor`
  };
  Kind kind = Kind::kOutage;
  double start_s = 0.0;
  double end_s = 0.0;  ///< half-open window [start_s, end_s)
  double error_prob = 1.0;
  double slow_factor = 1.0;
};

/// A deterministic, time-windowed schedule of origin fault episodes.
/// Episode membership depends only on trace time, so the schedule itself
/// holds no mutable state and is safely shared across replay workers.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<FaultEpisode> episodes);

  /// Parses "kind:start-end[@arg]" clauses separated by ';':
  ///   outage:100-160            connections refused in [100, 160)
  ///   error:200-400@0.5         5xx with p=0.5 in [200, 400)
  ///   slow:500-800@x4           latency x4 in [500, 800)
  /// An empty spec yields an empty (fault-free) schedule. Throws
  /// std::invalid_argument on malformed input.
  static FaultSchedule parse(const std::string& spec);

  [[nodiscard]] bool empty() const noexcept { return episodes_.empty(); }
  [[nodiscard]] const std::vector<FaultEpisode>& episodes() const noexcept {
    return episodes_;
  }

  [[nodiscard]] bool in_outage(double t) const noexcept;
  /// Highest error probability among error episodes covering `t` (0 if none).
  [[nodiscard]] double error_prob(double t) const noexcept;
  /// Product of slow factors covering `t` (1 if none; overlaps compound).
  [[nodiscard]] double slow_factor(double t) const noexcept;

 private:
  std::vector<FaultEpisode> episodes_;
};

/// Outcome of a single origin attempt (before retry policy).
struct OriginAttempt {
  bool ok = false;
  bool timed_out = false;
  /// Seconds the attempt consumed (capped at the timeout when timed out).
  double latency_s = 0.0;
};

/// The simulated origin. Holds one Xoshiro256 draw stream per shard;
/// stream `s` must only ever be used by the worker that owns shard `s`
/// (the CdnServer ownership discipline), which makes the class lock-free.
class Origin {
 public:
  /// `rtt_s`/`gbps` are the effective base numbers after profile
  /// inheritance; `streams` is the freshness-shard count.
  Origin(const OriginProfile& profile, double rtt_s, double gbps,
         FaultSchedule schedule, std::size_t streams);

  /// One fetch attempt of `bytes` issued at trace-time `now` on `stream`.
  /// `timeout_s <= 0` disables the timeout.
  OriginAttempt attempt(std::size_t stream, double now, std::uint64_t bytes,
                        double timeout_s);

  /// The stream's RNG, for draws that must interleave with attempt draws
  /// on the same deterministic sequence (backoff jitter).
  [[nodiscard]] util::Xoshiro256& stream_rng(std::size_t stream) noexcept {
    return streams_[stream].rng;
  }

  [[nodiscard]] std::size_t stream_count() const noexcept { return streams_.size(); }
  [[nodiscard]] const FaultSchedule& schedule() const noexcept { return schedule_; }
  [[nodiscard]] double base_rtt_s() const noexcept { return rtt_s_; }
  [[nodiscard]] double base_gbps() const noexcept { return gbps_; }

 private:
  // Padded so adjacent streams (owned by different replay workers) never
  // share a cache line.
  struct alignas(64) Stream {
    util::Xoshiro256 rng;
  };

  OriginProfile profile_;
  double rtt_s_;
  double gbps_;
  FaultSchedule schedule_;
  std::vector<Stream> streams_;
};

/// What one FetchPolicy execution (all attempts of one logical fetch)
/// produced.
struct FetchOutcome {
  bool ok = false;
  /// User-visible seconds from issue to success or final failure
  /// (attempt latencies + backoff waits; hedged rounds end at the winner).
  double latency_s = 0.0;
  /// Origin resource-seconds consumed across all attempts, including the
  /// cancelled side of a hedged round up to its cancellation point.
  double origin_busy_s = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;        ///< 5xx + refused-connection attempts
  std::uint64_t hedges = 0;        ///< hedged (second) requests issued
  std::uint64_t hedge_cancels = 0; ///< losing sides cancelled (<= hedges)
  /// Backoff delays actually waited, in order — exposed so tests can
  /// assert the deterministic backoff sequence directly.
  std::vector<double> backoffs;
};

/// Executes fetches against an Origin with timeout/retry/backoff/hedging.
/// Stateless apart from its config: all randomness lives in the origin's
/// per-shard streams, so outcomes are deterministic per shard sequence.
class FetchPolicy {
 public:
  explicit FetchPolicy(const FetchPolicyConfig& config) : config_(config) {}

  /// Runs one logical fetch of `bytes` at trace-time `now` on `stream`.
  FetchOutcome fetch(Origin& origin, std::size_t stream, double now,
                     std::uint64_t bytes) const;

  [[nodiscard]] const FetchPolicyConfig& config() const noexcept { return config_; }

 private:
  FetchPolicyConfig config_;
};

}  // namespace lhr::server
