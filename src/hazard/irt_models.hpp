// Inter-request-time models beyond Poisson.
//
// HRO's practical form (§3.2) approximates each content's request process as
// Poisson, whose hazard is constant. Real CDN inter-request times are
// heavy-tailed, with *decreasing* hazard: the longer a content has been
// silent, the less likely it is to be requested in the next instant. A
// 2-phase hyperexponential
//     f(t) = p·λ₁e^{-λ₁t} + (1-p)·λ₂e^{-λ₂t}
// is the textbook minimal model with that property (it is the paper's
// acknowledged approximation gap; this module is our extension past it).
//
// The fitted hazard supplies an age-decay profile g(age) =
// ζ(age)/ζ(0) that hazard::Hro can apply to its per-content rate estimates,
// letting idle contents sink in the knapsack ranking according to the
// trace's own IRT statistics instead of an ad-hoc cap.
#pragma once

#include <cstddef>
#include <span>

namespace lhr::hazard {

/// 2-phase hyperexponential distribution.
struct HyperExp {
  double p = 0.5;        ///< weight of phase 1
  double lambda1 = 1.0;  ///< fast phase rate
  double lambda2 = 0.1;  ///< slow phase rate

  /// Density f(t).
  [[nodiscard]] double pdf(double t) const;
  /// Complementary c.d.f. 1 - F(t).
  [[nodiscard]] double survival(double t) const;
  /// Hazard rate ζ(t) = f(t) / (1 - F(t)); decreasing in t when λ₁ > λ₂.
  [[nodiscard]] double hazard(double t) const;
  /// Normalized decay profile g(t) = ζ(t)/ζ(0) in (0, 1].
  [[nodiscard]] double hazard_decay(double t) const;
  [[nodiscard]] double mean() const;
};

/// Fits a hyperexponential to IRT samples by expectation-maximization.
/// Requires at least 2 positive samples; degenerate inputs collapse to an
/// exponential (p = 1, λ₁ = λ₂ = 1/mean).
[[nodiscard]] HyperExp fit_hyperexp_em(std::span<const double> irts,
                                       std::size_t iterations = 60);

}  // namespace lhr::hazard
