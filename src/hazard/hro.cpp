#include "hazard/hro.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace lhr::hazard {

namespace {
constexpr double kMinGap = 1e-9;  // guards against zero inter-request times
}

Hro::Hro(const HroConfig& config) : config_(config) {
  if (config_.size_aware && config_.capacity_bytes == 0) {
    throw std::invalid_argument("Hro: capacity_bytes must be positive");
  }
  if (!config_.size_aware && config_.capacity_objects == 0) {
    throw std::invalid_argument("Hro: capacity_objects must be positive");
  }
  if (config_.window_unique_bytes_mult <= 0.0) {
    throw std::invalid_argument("Hro: window multiplier must be positive");
  }
}

HroDecision Hro::classify(const trace::Request& r) {
  window_just_closed_ = false;
  ++requests_;
  if (config_.age_decay_hazard && config_.hazard_refresh_interval > 0 &&
      requests_ % config_.hazard_refresh_interval == 0) {
    refresh_densities(r.time);
  }

  auto [it, first_ever] = contents_.try_emplace(r.key, ContentState{});
  ContentState& st = it->second;
  const auto current_window = static_cast<std::uint32_t>(window_index_);

  if (first_ever) {
    window_unique_bytes_ += static_cast<double>(r.size);
  } else if (st.last_window != current_window) {
    // First appearance of a known content in this window.
    window_unique_bytes_ += static_cast<double>(r.size);
    st.window_count = 0;
  }

  // Reservoir-sample this IRT for the window's hyperexponential fit.
  if (config_.age_decay_hazard && !first_ever) {
    const double irt = std::max(r.time - st.last_time, kMinGap);
    constexpr std::size_t kIrtReservoir = 4096;
    ++window_irt_seen_;
    if (window_irt_sample_.size() < kIrtReservoir) {
      window_irt_sample_.push_back(irt);
    } else {
      const std::uint64_t slot = sample_rng_.next_below(window_irt_seen_);
      if (slot < kIrtReservoir) window_irt_sample_[static_cast<std::size_t>(slot)] = irt;
    }
  }

  // --- Update the Poisson rate estimate (§3.2). ---
  if (st.window_count == 0) st.window_first = r.time;
  ++st.window_count;
  if (!first_ever) {
    if (st.window_count >= 2) {
      // Window-local MLE for a Poisson process: (#IRTs) / elapsed time.
      const double elapsed = std::max(r.time - st.window_first, kMinGap);
      st.rate = static_cast<double>(st.window_count - 1) / elapsed;
    } else {
      // Single observation in this window: instantaneous IRT estimate,
      // which carries information across the window boundary.
      st.rate = 1.0 / std::max(r.time - st.last_time, kMinGap);
    }
  }
  st.last_time = r.time;
  st.last_window = current_window;
  st.size = r.size;

  HroDecision decision;
  decision.first_ever = first_ever;
  decision.rate = st.rate;

  const std::uint64_t index_bytes = config_.size_aware ? std::max<std::uint64_t>(r.size, 1) : 1;
  const std::uint64_t capacity =
      config_.size_aware ? config_.capacity_bytes : config_.capacity_objects;
  decision.density =
      config_.size_aware ? st.rate / static_cast<double>(std::max<std::uint64_t>(r.size, 1))
                         : st.rate;

  index_.upsert(r.key, decision.density, index_bytes);

  // --- Classify (Prop A.1 / fractional knapsack prefix). ---
  if (!first_ever) {
    decision.hit = index_.in_prefix(r.key, capacity);
    if (decision.hit) ++hits_;
  }

  // --- Window bookkeeping (footnote 3). ---
  const double window_limit =
      config_.window_unique_bytes_mult * static_cast<double>(config_.size_aware
                                                                 ? config_.capacity_bytes
                                                                 : config_.capacity_objects);
  if (window_unique_bytes_ >= window_limit) roll_window(r.time);

  return decision;
}

void Hro::roll_window(double now) {
  const auto closed_window = static_cast<std::uint32_t>(window_index_);
  ++window_index_;
  window_unique_bytes_ = 0.0;
  window_just_closed_ = true;

  // Contents idle for `retention_windows` windows leave the ranking (and
  // their memory is reclaimed). Contents idle for less than that decay:
  // a Poisson process of rate λ observed silent for Δ seconds cannot
  // plausibly sustain a rate above ~1/Δ, so cap the estimate — without this,
  // churned-out contents squat in the knapsack prefix with stale rates.
  const std::uint32_t retention =
      static_cast<std::uint32_t>(std::max<std::size_t>(config_.retention_windows, 1));
  const bool can_expire = closed_window + 1 >= retention;
  const std::uint32_t horizon = can_expire ? closed_window + 1 - retention : 0;
  for (auto it = contents_.begin(); it != contents_.end();) {
    ContentState& st = it->second;
    if (can_expire && st.last_window < horizon) {
      index_.erase(it->first);
      it = contents_.erase(it);
      continue;
    }
    if (!config_.age_decay_hazard && st.last_window != closed_window &&
        st.rate > 0.0) {
      // Poisson mode: cap the rate of idle contents (a silent Poisson source
      // cannot plausibly sustain a rate above ~1/idle).
      const double idle = std::max(now - st.last_time, kMinGap);
      const double capped = std::min(st.rate, 1.0 / idle);
      if (capped < st.rate) {
        st.rate = capped;
        reindex(it->first, st, now);
      }
    }
    ++it;
  }

  // Age-decay extension: refit the IRT model on the window's sample.
  if (config_.age_decay_hazard && window_irt_sample_.size() >= 64) {
    irt_model_ = fit_hyperexp_em(window_irt_sample_);
    irt_model_ready_ = true;
  }
  window_irt_sample_.clear();
  window_irt_seen_ = 0;
  if (config_.age_decay_hazard) refresh_densities(now);
}

void Hro::reindex(trace::Key key, const ContentState& st, double now) {
  double effective_rate = st.rate;
  if (config_.age_decay_hazard && st.rate > 0.0) {
    // Per-content survival decay: a content silent for Delta has missed
    // ~rate*Delta expected arrivals under its own estimate; after a grace of
    // one mean IRT, its effective hazard collapses by the survival factor.
    // (Kills burst corpses at once, leaves slow-but-punctual contents alone;
    // the fitted hyperexponential characterizes the window's IRT mixture and
    // is exposed via irt_model() for analysis.)
    const double idle = std::max(now - st.last_time, 0.0);
    const double excess = std::max(idle - 1.0 / st.rate, 0.0);
    effective_rate *= std::exp(-std::min(st.rate * excess, 700.0));
  }
  const std::uint64_t bytes =
      config_.size_aware ? std::max<std::uint64_t>(st.size, 1) : 1;
  const double density =
      config_.size_aware
          ? effective_rate / static_cast<double>(std::max<std::uint64_t>(st.size, 1))
          : effective_rate;
  index_.upsert(key, density, bytes);
}

void Hro::refresh_densities(double now) {
  for (const auto& [key, st] : contents_) {
    if (st.rate > 0.0) reindex(key, st, now);
  }
}

std::size_t Hro::memory_bytes() const noexcept {
  return index_.memory_bytes() +
         contents_.size() * (sizeof(trace::Key) + sizeof(ContentState) + 2 * sizeof(void*));
}

}  // namespace lhr::hazard
