// HRO: the online upper bound on OPT (paper §3, Appendix A.1).
//
// Theory: upon a request for content i at time t, sort all contents by their
// sized hazard rate ζ̃_i(t) = f_i(t) / ((1-F_i(t)) s_i) and classify the
// request as a hit iff i lies in the fractional-knapsack prefix of capacity
// M (Proposition A.1: this dominates every non-anticipative policy).
//
// Practice (§3.2): the c.d.f. F_i is unknown, so HRO approximates each
// content's request process as Poisson using inter-request times observed in
// the current sliding window. A Poisson process has *constant* hazard equal
// to its rate λ_i, so the sized hazard ordering reduces to the density
// ordering λ_i / s_i, which we maintain in a log-bucketed Fenwick index
// (util::DensityIndex) — O(log B) per request, fully online.
//
// Windows follow footnote 3: non-overlapping, closed when the unique bytes
// seen in the window reach `window_unique_bytes_mult` × capacity. At a window
// boundary, contents not requested during the closed window are dropped from
// the ranking ("only contents within the window are used").
#pragma once

#include <cstdint>
#include <vector>

#include "trace/request.hpp"
#include "hazard/irt_models.hpp"
#include "util/density_index.hpp"
#include "util/flat_hash_map.hpp"
#include "util/rng.hpp"

namespace lhr::hazard {

struct HroConfig {
  std::uint64_t capacity_bytes = 0;
  /// Window size: unique bytes = this multiple of the capacity (§5.1: 4×).
  double window_unique_bytes_mult = 4.0;
  /// Equation (2) (sized hazard) when true; equation (1) with an
  /// object-count capacity when false.
  bool size_aware = true;
  /// Capacity in objects for the equal-size variant (size_aware == false).
  std::uint64_t capacity_objects = 0;
  /// Contents not requested for this many consecutive windows are dropped
  /// from the hazard ranking. IRTs are still computed strictly within the
  /// current window (footnote 3); retention only bounds how long a content
  /// keeps its latest rate estimate while idle, trading memory for bound
  /// tightness.
  std::size_t retention_windows = 8;
  /// Extension beyond the paper's Poisson approximation: fit a
  /// hyperexponential to each window's IRTs and periodically decay idle
  /// contents' hazard by the fitted profile ζ(age)/ζ(0), so stale contents
  /// sink in the ranking according to the trace's own IRT statistics.
  bool age_decay_hazard = false;
  std::size_t hazard_refresh_interval = 8192;  ///< requests between decay sweeps
};

/// Per-request output of the HRO classifier. `hit` is the label LHR trains
/// on (§5.2.4); rate/density are exposed as optional learner features.
struct HroDecision {
  bool hit = false;
  bool first_ever = false;  ///< first request to this content, ever
  double rate = 0.0;        ///< Poisson rate estimate λ_i after this request
  double density = 0.0;     ///< λ_i / s_i (or λ_i when !size_aware)
};

class Hro {
 public:
  explicit Hro(const HroConfig& config);

  /// Processes one request (times must be non-decreasing).
  HroDecision classify(const trace::Request& r);

  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] double hit_ratio() const noexcept {
    return requests_ ? static_cast<double>(hits_) / static_cast<double>(requests_) : 0.0;
  }
  [[nodiscard]] std::size_t window_index() const noexcept { return window_index_; }
  /// True iff the last classify() call closed a sliding window.
  [[nodiscard]] bool window_just_closed() const noexcept { return window_just_closed_; }
  [[nodiscard]] std::size_t tracked_contents() const noexcept { return contents_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;
  /// Hyperexponential fitted to the last completed window's IRTs
  /// (age_decay_hazard mode; identity exponential before the first fit).
  [[nodiscard]] const HyperExp& irt_model() const noexcept { return irt_model_; }
  [[nodiscard]] bool irt_model_ready() const noexcept { return irt_model_ready_; }

 private:
  struct ContentState {
    double last_time = 0.0;     ///< time of the most recent request
    double window_first = 0.0;  ///< first request time within current window
    std::uint32_t window_count = 0;
    std::uint32_t last_window = 0;
    std::uint64_t size = 0;
    double rate = 0.0;
  };

  void roll_window(double now);
  void refresh_densities(double now);
  void reindex(trace::Key key, const ContentState& st, double now);

  HroConfig config_;
  util::DensityIndex index_;
  util::FlatHashMap<trace::Key, ContentState> contents_;

  // Age-decay extension state.
  HyperExp irt_model_{1.0, 1.0, 1.0};
  bool irt_model_ready_ = false;
  std::vector<double> window_irt_sample_;
  util::Xoshiro256 sample_rng_{0xabcdef};
  std::uint64_t window_irt_seen_ = 0;

  std::uint64_t requests_ = 0;
  std::uint64_t hits_ = 0;
  std::size_t window_index_ = 0;
  double window_unique_bytes_ = 0.0;
  bool window_just_closed_ = false;
};

}  // namespace lhr::hazard
