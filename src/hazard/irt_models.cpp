#include "hazard/irt_models.hpp"

#include <algorithm>
#include <cmath>

namespace lhr::hazard {

double HyperExp::pdf(double t) const {
  t = std::max(t, 0.0);
  return p * lambda1 * std::exp(-lambda1 * t) +
         (1.0 - p) * lambda2 * std::exp(-lambda2 * t);
}

double HyperExp::survival(double t) const {
  t = std::max(t, 0.0);
  return p * std::exp(-lambda1 * t) + (1.0 - p) * std::exp(-lambda2 * t);
}

double HyperExp::hazard(double t) const {
  const double s = survival(t);
  return s > 1e-300 ? pdf(t) / s : std::min(lambda1, lambda2);
}

double HyperExp::hazard_decay(double t) const {
  const double h0 = hazard(0.0);
  return h0 > 0.0 ? std::clamp(hazard(t) / h0, 0.0, 1.0) : 1.0;
}

double HyperExp::mean() const {
  return p / lambda1 + (1.0 - p) / lambda2;
}

HyperExp fit_hyperexp_em(std::span<const double> irts, std::size_t iterations) {
  // Collect positive samples; anything else cannot be an IRT.
  double sum = 0.0;
  std::size_t n = 0;
  double max_sample = 0.0;
  for (const double x : irts) {
    if (x > 0.0) {
      sum += x;
      max_sample = std::max(max_sample, x);
      ++n;
    }
  }
  HyperExp model;
  if (n < 2 || sum <= 0.0) {
    const double rate = (n > 0 && sum > 0.0) ? static_cast<double>(n) / sum : 1.0;
    return HyperExp{1.0, rate, rate};
  }
  const double mean = sum / static_cast<double>(n);

  // Moment-inspired initialization: a fast phase around 4/mean and a slow
  // phase around 1/(4·mean) split evenly.
  model = HyperExp{0.5, 4.0 / mean, 0.25 / mean};

  for (std::size_t iter = 0; iter < iterations; ++iter) {
    double w_sum = 0.0;      // responsibility mass of phase 1
    double wx_sum = 0.0;     // phase-1-weighted samples
    double vx_sum = 0.0;     // phase-2-weighted samples
    std::size_t used = 0;
    for (const double x : irts) {
      if (!(x > 0.0)) continue;
      const double a = model.p * model.lambda1 * std::exp(-model.lambda1 * x);
      const double b =
          (1.0 - model.p) * model.lambda2 * std::exp(-model.lambda2 * x);
      const double denom = a + b;
      const double w = denom > 1e-300 ? a / denom : 0.5;
      w_sum += w;
      wx_sum += w * x;
      vx_sum += (1.0 - w) * x;
      ++used;
    }
    const double nn = static_cast<double>(used);
    const double v_sum = nn - w_sum;
    if (w_sum < 1e-9 || v_sum < 1e-9) break;  // one phase vanished: keep fit
    model.p = std::clamp(w_sum / nn, 1e-6, 1.0 - 1e-6);
    model.lambda1 = std::clamp(w_sum / std::max(wx_sum, 1e-300), 1e-12, 1e12);
    model.lambda2 = std::clamp(v_sum / std::max(vx_sum, 1e-300), 1e-12, 1e12);
  }

  // Convention: phase 1 is the fast one.
  if (model.lambda1 < model.lambda2) {
    std::swap(model.lambda1, model.lambda2);
    model.p = 1.0 - model.p;
  }
  return model;
}

}  // namespace lhr::hazard
