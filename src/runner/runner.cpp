#include "runner/runner.hpp"

#include <cstdlib>
#include <exception>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/policy_factory.hpp"
#include "util/parse.hpp"
#include "util/thread_pool.hpp"

namespace lhr::runner {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("LHR_BENCH_THREADS")) {
    const std::uint64_t value = util::require_u64("LHR_BENCH_THREADS", env);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return util::ThreadPool::hardware_threads();
}

Result run_one(const Job& job, TraceCache& traces) {
  Result result;
  result.label = job.label;

  if (job.body) {
    job.body(result);
    return result;
  }

  const trace::TraceSource& trace = job.trace ? *job.trace : traces.get(job.trace_class);
  auto policy = job.make ? job.make() : core::make_policy(job.policy_name, job.capacity_bytes);
  result.policy = policy->name();
  result.trace = job.trace ? "custom" : gen::to_string(job.trace_class);
  result.capacity_bytes = job.capacity_bytes ? job.capacity_bytes : policy->capacity_bytes();
  if (result.label.empty()) result.label = result.policy + "/" + result.trace;
  result.metrics = sim::simulate(*policy, trace, job.options);
  if (job.inspect) job.inspect(*policy, result);
  return result;
}

std::vector<Result> run_all(const std::vector<Job>& jobs, const RunOptions& options) {
  TraceCache& traces = options.traces ? *options.traces : TraceCache::global();
  const std::size_t threads =
      options.threads ? options.threads : default_thread_count();

  std::vector<Result> results(jobs.size());
  if (threads <= 1 || jobs.size() <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = run_one(jobs[i], traces);
    return results;
  }

  std::vector<std::exception_ptr> errors(jobs.size());
  {
    util::ThreadPool pool(std::min(threads, jobs.size()));
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      pool.submit([&, i] {
        try {
          results[i] = run_one(jobs[i], traces);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

// ------------------------------------------------------------------ JSONL

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_field(std::string& out, const char* key, const std::string& value,
                  bool trailing_comma = true) {
  out += '"';
  out += key;
  out += "\":\"";
  append_escaped(out, value);
  out += trailing_comma ? "\"," : "\"";
}

std::string number(double v) {
  // JSON has no NaN/Inf; clamp to null.
  if (!(v == v) || v > 1e308 || v < -1e308) return "null";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::string to_jsonl(const Result& r) {
  std::string out = "{";
  append_field(out, "label", r.label);
  append_field(out, "policy", r.policy);
  append_field(out, "trace", r.trace);
  out += "\"capacity_bytes\":" + std::to_string(r.capacity_bytes) + ",";
  out += "\"requests\":" + std::to_string(r.metrics.requests) + ",";
  out += "\"hits\":" + std::to_string(r.metrics.hits) + ",";
  out += "\"object_hit_ratio\":" + number(r.metrics.object_hit_ratio()) + ",";
  out += "\"byte_hit_ratio\":" + number(r.metrics.byte_hit_ratio()) + ",";
  out += "\"wan_traffic_bytes\":" + number(r.metrics.wan_traffic_bytes()) + ",";
  out += "\"wall_seconds\":" + number(r.metrics.wall_seconds) + ",";
  out += "\"max_access_seconds\":" + number(r.metrics.max_access_seconds) + ",";
  out += "\"requests_per_second\":" + number(r.metrics.requests_per_second()) + ",";
  out += "\"windows\":" + std::to_string(r.metrics.windows.size()) + ",";
  out += "\"peak_metadata_bytes\":" + std::to_string(r.metrics.peak_metadata_bytes) + ",";
  out += "\"stats\":{";
  for (std::size_t i = 0; i < r.stats.size(); ++i) {
    if (i) out += ',';
    out += '"';
    append_escaped(out, r.stats[i].first);
    out += "\":" + number(r.stats[i].second);
  }
  out += "}}";
  return out;
}

void write_jsonl(std::ostream& out, const std::vector<Result>& results) {
  for (const auto& r : results) out << to_jsonl(r) << '\n';
}

bool append_jsonl_if_configured(const std::vector<Result>& results) {
  const char* path = std::getenv("LHR_BENCH_JSONL");
  if (path == nullptr || *path == '\0' || results.empty()) return false;
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  write_jsonl(out, results);
  return true;
}

}  // namespace lhr::runner
