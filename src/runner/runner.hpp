// The parallel experiment runner: one sweep substrate for bench/, examples/
// and tests/.
//
// Every experiment in this repository is a grid of independent jobs —
// policy × trace × capacity (× config variant). The runner executes such a
// grid on a fixed thread pool and returns results in *job order*, so output
// is bitwise-identical to the serial nested loops it replaces regardless of
// how the OS schedules the workers:
//
//   * each job constructs its own policy instance and only reads the shared
//     immutable trace, so jobs cannot observe each other;
//   * results[i] always corresponds to jobs[i]; worker scheduling decides
//     only *when* a slot is filled, never *which* slot.
//
// Three job flavours cover the whole bench suite:
//   1. named-policy simulation:  {policy_name, trace_class, capacity}
//   2. custom-policy simulation: same, with `make` building the policy
//      (LhrConfig variants, sharded caches, ...); an optional `inspect`
//      hook runs while the policy is still alive to pull extra numbers out
//      of it (training time, model quality, ...);
//   3. free-form: `body` runs arbitrary work (offline bounds, server
//      replays, trace statistics) and fills the Result itself.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gen/cdn_model.hpp"
#include "runner/trace_cache.hpp"
#include "sim/cache_policy.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace lhr::runner {

/// What one job produced. `metrics` is filled by simulation jobs; free-form
/// jobs and `inspect` hooks record additional numbers in `stats` (insertion
/// order is preserved for JSONL emission) and optional curves in `series`.
struct Result {
  std::string label;
  std::string policy;
  std::string trace;
  std::uint64_t capacity_bytes = 0;
  sim::SimMetrics metrics;
  std::vector<std::pair<std::string, double>> stats;
  std::vector<double> series;

  void set(const std::string& key, double value) {
    for (auto& [k, v] : stats) {
      if (k == key) {
        v = value;
        return;
      }
    }
    stats.emplace_back(key, value);
  }

  [[nodiscard]] double stat(const std::string& key, double fallback = 0.0) const {
    for (const auto& [k, v] : stats) {
      if (k == key) return v;
    }
    return fallback;
  }
};

/// One cell of an experiment grid. See the file comment for the flavours;
/// exactly one of {policy_name, make, body} drives the job.
struct Job {
  std::string label;  ///< defaults to "<policy>/<trace>" when empty

  // Simulation jobs.
  std::string policy_name;  ///< resolved via core::make_policy
  std::function<std::unique_ptr<sim::CachePolicy>()> make;  ///< overrides policy_name
  gen::TraceClass trace_class = gen::TraceClass::kCdnA;
  const trace::TraceSource* trace = nullptr;  ///< overrides trace_class (not owned)
  std::uint64_t capacity_bytes = 0;
  sim::SimOptions options{};
  /// Runs after simulate() while the policy instance is still alive; use it
  /// to pull policy-specific numbers into the Result.
  std::function<void(const sim::CachePolicy&, Result&)> inspect;

  // Free-form jobs: when set, everything above except `label` is ignored.
  std::function<void(Result&)> body;
};

struct RunOptions {
  /// 0 = default_thread_count() (LHR_BENCH_THREADS env, else hardware).
  std::size_t threads = 0;
  /// Trace store for jobs addressed by trace_class; defaults to the
  /// process-wide TraceCache::global().
  TraceCache* traces = nullptr;
};

/// Worker count used when RunOptions::threads is 0: the LHR_BENCH_THREADS
/// environment variable if set (>= 1), otherwise std::thread::hardware_concurrency.
[[nodiscard]] std::size_t default_thread_count();

/// Executes every job (in parallel unless the effective thread count is 1)
/// and returns results in job order. A throwing job aborts the run: the
/// first exception in job order is rethrown after all workers finish.
[[nodiscard]] std::vector<Result> run_all(const std::vector<Job>& jobs,
                                          const RunOptions& options = {});

/// Runs a single job synchronously on the calling thread (the unit the pool
/// executes; exposed for tests and for serial baselines).
[[nodiscard]] Result run_one(const Job& job, TraceCache& traces);

// ------------------------------------------------------------------ JSONL

/// One JSON object (single line, no trailing newline) per result: label,
/// policy, trace, capacity and the SimMetrics aggregates, plus every
/// `stats` entry under "stats".
[[nodiscard]] std::string to_jsonl(const Result& r);

/// Writes to_jsonl(r) + '\n' for every result.
void write_jsonl(std::ostream& out, const std::vector<Result>& results);

/// Appends all results to the file named by the LHR_BENCH_JSONL environment
/// variable, if set. Returns true if anything was written. The bench
/// harnesses call this after every run_all so sweeps are machine-readable
/// next to the human-readable tables.
bool append_jsonl_if_configured(const std::vector<Result>& results);

}  // namespace lhr::runner
