#include "runner/trace_cache.hpp"

#include <cstdlib>

namespace lhr::runner {

namespace {

std::size_t env_requests_per_trace() {
  if (const char* env = std::getenv("LHR_BENCH_REQUESTS")) {
    const long value = std::atol(env);
    if (value > 1000) return static_cast<std::size_t>(value);
  }
  return 200'000;
}

std::uint64_t env_bench_seed() {
  if (const char* env = std::getenv("LHR_BENCH_SEED")) {
    return static_cast<std::uint64_t>(std::atoll(env));
  }
  return 42;
}

}  // namespace

const trace::Trace& TraceCache::get(gen::TraceClass c) {
  Entry& entry = entries_[static_cast<std::size_t>(c)];
  std::call_once(entry.once, [&] {
    entry.trace = std::make_unique<trace::Trace>(
        gen::make_trace(c, requests_per_trace_, seed_));
  });
  return *entry.trace;
}

TraceCache& TraceCache::global() {
  static TraceCache cache(env_requests_per_trace(), env_bench_seed());
  return cache;
}

}  // namespace lhr::runner
