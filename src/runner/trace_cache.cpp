#include "runner/trace_cache.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>

#include "gen/streaming.hpp"
#include "trace/lhrt.hpp"
#include "util/file_lock.hpp"
#include "util/parse.hpp"

namespace lhr::runner {

namespace {

std::size_t env_requests_per_trace() {
  if (const char* env = std::getenv("LHR_BENCH_REQUESTS")) {
    const std::uint64_t value = util::require_u64("LHR_BENCH_REQUESTS", env);
    if (value > 1000) return static_cast<std::size_t>(value);
  }
  return 200'000;
}

std::uint64_t env_bench_seed() {
  if (const char* env = std::getenv("LHR_BENCH_SEED")) {
    return util::require_u64("LHR_BENCH_SEED", env);
  }
  return 42;
}

std::size_t env_spill_mb() {
  if (const char* env = std::getenv("LHR_TRACE_SPILL_MB")) {
    return static_cast<std::size_t>(util::require_u64("LHR_TRACE_SPILL_MB", env));
  }
  return 1024;
}

std::string env_string(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::string(env) : std::string();
}

std::filesystem::path spill_path(const TraceCache::Options& options,
                                 gen::TraceClass c) {
  namespace fs = std::filesystem;
  const fs::path dir = options.cache_dir.empty()
                           ? fs::temp_directory_path() / "lhr-trace-cache"
                           : fs::path(options.cache_dir);
  return dir / (std::string("lhr-") + gen::to_string(c) + "-" +
                std::to_string(options.requests_per_trace) + "-" +
                std::to_string(options.seed) + ".lhrt");
}

}  // namespace

const trace::TraceSource& TraceCache::get(gen::TraceClass c) {
  Entry& entry = entries_[static_cast<std::size_t>(c)];
  std::call_once(entry.once, [&] { entry.source = build(c); });
  return *entry.source;
}

std::unique_ptr<trace::TraceSource> TraceCache::build(gen::TraceClass c) const {
  if (!options_.trace_file.empty()) {
    // A real (or pre-converted) trace replaces every generated class.
    return std::make_unique<trace::MappedTrace>(options_.trace_file);
  }

  const std::size_t record_bytes =
      options_.requests_per_trace * trace::kLhrtRecordBytes;
  const std::size_t spill_bytes = options_.spill_mb * (std::size_t{1} << 20);
  if (record_bytes <= spill_bytes && options_.spill_mb != 0) {
    return std::make_unique<trace::Trace>(
        gen::make_trace(c, options_.requests_per_trace, options_.seed));
  }

  // Past the spill threshold: stream the trace to disk in bounded chunks
  // and serve it back through the mapping.
  return ensure_spill_file(c);
}

std::unique_ptr<trace::MappedTrace> TraceCache::try_map_spill(
    gen::TraceClass c) const {
  const std::filesystem::path path = spill_path(options_, c);
  if (!std::filesystem::exists(path)) return nullptr;
  try {
    auto mapped = std::make_unique<trace::MappedTrace>(path.string());
    // The file is keyed by everything that determines its contents, so a
    // matching header means a previous run (or another process) already
    // paid the generation.
    if (mapped->size() == options_.requests_per_trace &&
        mapped->seed() == options_.seed &&
        mapped->trace_class() == static_cast<int>(c)) {
      return mapped;
    }
  } catch (const std::exception&) {
    // Stale or unfinished file from a crashed run; caller regenerates.
  }
  return nullptr;
}

std::unique_ptr<trace::MappedTrace> TraceCache::ensure_spill_file(
    gen::TraceClass c) const {
  namespace fs = std::filesystem;
  const fs::path path = spill_path(options_, c);
  fs::create_directories(path.parent_path());

  if (auto mapped = try_map_spill(c)) return mapped;

  // Serialize generation across processes (the replay workers' parent and a
  // concurrent bench may want the same key): whoever wins the flock
  // generates; everyone else blocks, re-validates, and maps the winner's
  // file. Temp+rename stays in place underneath so a crashed holder — whose
  // flock the kernel releases — never leaves a half-written file at the
  // final path.
  util::FileLock lock(path.string() + ".lock");
  if (auto mapped = try_map_spill(c)) return mapped;

  const fs::path tmp = path.string() + ".tmp." + std::to_string(::getpid());
  gen::generate_lhrt_file(gen::make_config(c, options_.requests_per_trace,
                                           options_.seed),
                          tmp.string());
  fs::rename(tmp, path);
  return std::make_unique<trace::MappedTrace>(path.string());
}

std::string TraceCache::lhrt_path_for(gen::TraceClass c) const {
  if (!options_.trace_file.empty()) return options_.trace_file;
  return ensure_spill_file(c)->path();
}

TraceCache& TraceCache::global() {
  static TraceCache cache([] {
    Options o;
    o.requests_per_trace = env_requests_per_trace();
    o.seed = env_bench_seed();
    o.spill_mb = env_spill_mb();
    o.trace_file = env_string("LHR_TRACE_FILE");
    o.cache_dir = env_string("LHR_TRACE_CACHE_DIR");
    return o;
  }());
  return cache;
}

}  // namespace lhr::runner
