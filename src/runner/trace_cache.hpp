// Thread-safe, memoized generation of the paper-calibrated traces.
//
// Replaces the lazily-initialized static vector that used to live in
// bench/bench_common.hpp (`trace_for`), which raced as soon as two runner
// jobs requested the same trace class concurrently. Each class is generated
// exactly once behind a std::once_flag; different classes can generate in
// parallel, and every caller gets a reference to the same immutable source.
//
// The cache hands out `trace::TraceSource` handles, not concrete Traces:
//  * small traces are generated in memory exactly as before;
//  * traces whose record footprint exceeds `Options::spill_mb` are streamed
//    to an `.lhrt` file in the cache directory and served back through a
//    zero-copy `trace::MappedTrace`, so a huge sweep keeps O(chunk) trace
//    bytes resident per job instead of requests*24;
//  * spilled files are named by (class, requests, seed) and reused across
//    processes when the header matches, so repeated bench runs skip
//    regeneration entirely;
//  * `Options::trace_file` (the LHR_TRACE_FILE env knob) short-circuits
//    generation and serves that `.lhrt` file for every class — the hook the
//    bench harnesses use to replay a real production trace.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "gen/cdn_model.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace lhr::trace {
class MappedTrace;
}

namespace lhr::runner {

/// Number of values in gen::TraceClass (kCdnA..kWiki).
inline constexpr std::size_t kTraceClassCount = 4;

class TraceCache {
 public:
  struct Options {
    /// Requests per generated trace (gen::make_trace's `n`).
    std::size_t requests_per_trace = 200'000;
    /// Generator seed (gen::make_trace's `seed`).
    std::uint64_t seed = 42;
    /// Traces whose records exceed this many MiB are generated straight to
    /// disk and mmapped instead of held in memory. 0 spills everything.
    /// Env: LHR_TRACE_SPILL_MB (default 1024).
    std::size_t spill_mb = 1024;
    /// Non-empty: serve this `.lhrt` file for every class instead of
    /// generating. Env: LHR_TRACE_FILE.
    std::string trace_file;
    /// Directory for spilled traces; empty means the system temp dir.
    /// Env: LHR_TRACE_CACHE_DIR.
    std::string cache_dir;
  };

  explicit TraceCache(Options options) : options_(std::move(options)) {}

  /// Back-compat convenience: in-memory cache with the default spill knobs.
  TraceCache(std::size_t requests_per_trace, std::uint64_t seed)
      : TraceCache([&] {
          Options o;
          o.requests_per_trace = requests_per_trace;
          o.seed = seed;
          return o;
        }()) {}

  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  /// Returns the memoized source for `c`, generating (or mapping) it on
  /// first call. Safe to call from any number of threads.
  const trace::TraceSource& get(gen::TraceClass c);

  /// Path of an on-disk `.lhrt` holding `c`'s trace — what the process-
  /// parallel replay hands to its workers to mmap. Returns the trace_file
  /// override when one is set; otherwise forces the spill path (even for
  /// traces small enough to stay in memory), generating the keyed file
  /// under the flock guard if no valid copy exists yet. The file outlives
  /// the cache (it *is* the cross-process cache).
  [[nodiscard]] std::string lhrt_path_for(gen::TraceClass c) const;

  [[nodiscard]] std::size_t requests_per_trace() const noexcept {
    return options_.requests_per_trace;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return options_.seed; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// The process-wide cache the bench harnesses share, configured from the
  /// LHR_BENCH_REQUESTS / LHR_BENCH_SEED / LHR_TRACE_FILE /
  /// LHR_TRACE_SPILL_MB / LHR_TRACE_CACHE_DIR environment knobs.
  static TraceCache& global();

 private:
  struct Entry {
    std::once_flag once;
    std::unique_ptr<trace::TraceSource> source;
  };

  /// Builds the source for `c`: file override, spill-to-disk, or in-memory.
  std::unique_ptr<trace::TraceSource> build(gen::TraceClass c) const;

  /// Maps + validates the keyed spill file for `c`, or returns null when it
  /// is missing, stale (different requests/seed/class) or unreadable.
  std::unique_ptr<trace::MappedTrace> try_map_spill(gen::TraceClass c) const;

  /// Maps the keyed spill file for `c`, generating it first when no valid
  /// copy exists. Generation is serialized across processes by an flock on
  /// a sibling lock file, with re-validation after acquiring — two
  /// processes spilling the same key produce exactly one generation pass
  /// and never interleave writes.
  std::unique_ptr<trace::MappedTrace> ensure_spill_file(gen::TraceClass c) const;

  Options options_;
  std::array<Entry, kTraceClassCount> entries_;
};

}  // namespace lhr::runner
