// Thread-safe, memoized generation of the paper-calibrated traces.
//
// Replaces the lazily-initialized static vector that used to live in
// bench/bench_common.hpp (`trace_for`), which raced as soon as two runner
// jobs requested the same trace class concurrently. Each class is generated
// exactly once behind a std::once_flag; different classes can generate in
// parallel, and every caller gets a reference to the same immutable Trace.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

#include "gen/cdn_model.hpp"
#include "trace/trace.hpp"

namespace lhr::runner {

/// Number of values in gen::TraceClass (kCdnA..kWiki).
inline constexpr std::size_t kTraceClassCount = 4;

class TraceCache {
 public:
  /// Traces are generated on first use with `requests_per_trace` requests
  /// and the given generator seed (same knobs as gen::make_trace).
  TraceCache(std::size_t requests_per_trace, std::uint64_t seed)
      : requests_per_trace_(requests_per_trace), seed_(seed) {}

  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  /// Returns the memoized trace for `c`, generating it on first call.
  /// Safe to call from any number of threads.
  const trace::Trace& get(gen::TraceClass c);

  [[nodiscard]] std::size_t requests_per_trace() const noexcept {
    return requests_per_trace_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// The process-wide cache the bench harnesses share, sized from the
  /// LHR_BENCH_REQUESTS / LHR_BENCH_SEED environment knobs.
  static TraceCache& global();

 private:
  struct Entry {
    std::once_flag once;
    std::unique_ptr<trace::Trace> trace;
  };

  std::size_t requests_per_trace_;
  std::uint64_t seed_;
  std::array<Entry, kTraceClassCount> entries_;
};

}  // namespace lhr::runner
