// Discrete Zipf(α) sampling over N ranks.
//
// Popularity in production CDN workloads is Zipf-like (paper §5.2.2 cites
// [5,14,30]); every synthetic workload in this repository draws content
// ranks from this sampler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace lhr::gen {

/// Samples ranks in [0, n) with P(rank = i) ∝ 1 / (i+1)^alpha.
/// Precomputes the CDF once (O(n)); each sample is a binary search (O(log n)).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  [[nodiscard]] std::size_t sample(util::Xoshiro256& rng) const;

  [[nodiscard]] std::size_t n() const noexcept { return cdf_.size(); }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Probability mass of rank i (for tests and analytic baselines).
  [[nodiscard]] double pmf(std::size_t i) const;

 private:
  double alpha_;
  std::vector<double> cdf_;
};

}  // namespace lhr::gen
