// Markov-modulated request processes for the responsiveness experiment
// (paper §7.6, Figure 11).
//
// "Syn One": a 2-state chain; state 0 draws from Zipf(alpha) with increasing
// rank order (p_i ∝ 1/i^α), state 1 from the *reversed* ranking
// (p_j ∝ 1/(N-j+1)^α). "Syn Two": a 3-state chain with α ∈ {0.7, 0.9, 1.1}
// visiting 0→1→2→1→0→…  In each state a fixed number of requests r is drawn,
// then the chain transitions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gen/size_model.hpp"
#include "trace/trace.hpp"

namespace lhr::gen {

struct MarkovModulatedConfig {
  std::size_t num_requests = 1'000'000;  ///< paper: 1M
  std::size_t num_contents = 1'000;      ///< paper: N = 1000
  std::size_t requests_per_state = 200'000;  ///< paper: r = 200k
  double alpha = 0.8;                    ///< Syn One exponent
  double duration_seconds = 1'000'000.0;
  SizeModel size_model{{SizeComponent{1.0, 4.0 * 1024 * 1024, 1.0}},
                       64 * 1024, 1ULL << 30};
  std::uint64_t seed = 7;
};

/// Generates the "Syn One" workload (2 states, mirrored Zipf rankings).
[[nodiscard]] trace::Trace generate_syn_one(const MarkovModulatedConfig& config);

/// Generates the "Syn Two" workload (3 states, α = 0.7 / 0.9 / 1.1,
/// state path 0,1,2,1,0,1,2,...).
[[nodiscard]] trace::Trace generate_syn_two(const MarkovModulatedConfig& config);

}  // namespace lhr::gen
