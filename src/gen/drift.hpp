// Deterministic prediction-drift injection for generated traces — the
// workload-side analogue of the origin layer's FaultSchedule.
//
// A learned admission policy is only as good as the history its features
// summarize. Production CDNs see that history invalidated in bursts: a
// content catalogue rollover renames the hot set, a flash event floods the
// edge with never-again-requested objects. Both corrupt the model's
// predictions without touching the cache itself, which is exactly the
// regime the control plane's RobustGuard (server/control_plane.hpp) and
// shadow-rollout gating are designed for.
//
// A DriftSchedule is a list of episodes over *trace-position fractions*
// (half-open [start, end) windows in [0, 1] of the request index), applied
// as a deterministic post-processing pass over a generated trace:
//
//   * remap:A-B@f   — a fraction f of *keys* (chosen by a seeded hash coin,
//                     so a key is either renamed for the whole episode or
//                     not at all) is renamed through a seeded bijection.
//                     Popularity structure is preserved under the new
//                     names, but every per-key feature history and learned
//                     popularity estimate is invalidated at the boundary —
//                     corrupted predictions with an intact workload.
//   * onehit:A-B@f  — a fraction f of *requests* (per-request coin on the
//                     request index) is replaced by a unique, never-reused
//                     key: a flash crowd of one-hit wonders that an
//                     admit-happy stale model mispredicts.
//
// Episode membership depends only on the request's index fraction and the
// schedule seed — never on an RNG stream — so the transformed trace is
// byte-identical regardless of how (or how often) it is produced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace lhr::gen {

struct DriftEpisode {
  enum class Kind {
    kRemap,   ///< rename a key-fraction through a seeded bijection
    kOneHit,  ///< replace a request-fraction with unique fresh keys
  };
  Kind kind = Kind::kRemap;
  double start_fraction = 0.0;  ///< half-open [start, end) over request index
  double end_fraction = 0.0;
  double fraction = 1.0;  ///< key-fraction (remap) or request-fraction (onehit)
};

/// A deterministic, position-windowed schedule of prediction-drift episodes.
class DriftSchedule {
 public:
  DriftSchedule() = default;
  explicit DriftSchedule(std::vector<DriftEpisode> episodes);

  /// Parses "kind:start-end[@arg]" clauses separated by ';', with start/end
  /// as trace fractions in [0, 1]:
  ///   remap:0.4-0.7@0.9    rename 90% of keys inside [40%, 70%)
  ///   onehit:0.8-0.9@0.5   half the requests in [80%, 90%) become one-hit
  /// Throws std::invalid_argument on malformed input.
  [[nodiscard]] static DriftSchedule parse(const std::string& spec);

  [[nodiscard]] bool empty() const noexcept { return episodes_.empty(); }
  [[nodiscard]] const std::vector<DriftEpisode>& episodes() const noexcept {
    return episodes_;
  }

  /// The drifted key for request index `i` of `n` (identity outside every
  /// episode). Pure function of (key, i, n, seed) — no internal state.
  [[nodiscard]] trace::Key drifted_key(trace::Key key, std::size_t i, std::size_t n,
                                       std::uint64_t seed) const noexcept;

 private:
  std::vector<DriftEpisode> episodes_;
};

/// Applies the schedule to a materialized trace: every request keeps its
/// time and size, keys are rewritten per drifted_key. Deterministic in
/// (trace, schedule, seed).
[[nodiscard]] trace::Trace apply_drift(const trace::Trace& trace,
                                       const DriftSchedule& schedule,
                                       std::uint64_t seed);

}  // namespace lhr::gen
