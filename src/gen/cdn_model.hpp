// Calibrated synthetic CDN workloads.
//
// The paper evaluates on four proprietary production traces (Table 1). Those
// traces are not publicly available, so we substitute generators calibrated
// to the published per-trace statistics: request volume, content population,
// size distribution (mean & max), Zipf popularity, one-hit-wonder rate, and
// temporal non-stationarity (popularity churn / drifting Zipf exponent).
// Every algorithm under test consumes only (time, key, size), so matching
// these distributions preserves the behaviours the paper's evaluation
// exercises. See DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gen/size_model.hpp"
#include "trace/trace.hpp"

namespace lhr::gen {

/// Which production trace a generator imitates.
enum class TraceClass {
  kCdnA,  ///< web + video mix: bimodal sizes, mild churn
  kCdnB,  ///< live streaming: strong popularity churn, large segments
  kCdnC,  ///< equal ~100 MB objects, ~2/3 one-hit wonders, long duration
  kWiki,  ///< photos/media: many unique objects, bursty arrivals
};

[[nodiscard]] std::string to_string(TraceClass c);

/// A piecewise-constant schedule for the Zipf exponent: entry (f, a) means
/// "from fraction f of the trace onwards, use alpha = a".
struct AlphaBreakpoint {
  double at_fraction = 0.0;
  double alpha = 1.0;
};

struct CdnTraceConfig {
  std::string name = "synthetic";
  std::size_t num_requests = 1'000'000;
  std::size_t core_contents = 100'000;   ///< Zipf-distributed population
  std::vector<AlphaBreakpoint> alpha_schedule = {{0.0, 0.9}};
  double one_hit_wonder_rate = 0.1;      ///< P(request hits a fresh, never-reused key)
  double duration_seconds = 86'400.0;
  /// Every `churn_period` requests, the most popular `churn_fraction` of
  /// ranks are reassigned to brand-new keys (content turnover, as in live
  /// streaming). 0 disables churn.
  std::size_t churn_period = 0;
  double churn_fraction = 0.0;
  /// Lognormal sigma multiplying inter-arrival gaps (0 = pure Poisson).
  double burstiness_sigma = 0.0;
  SizeModel size_model{{SizeComponent{1.0, 4.0 * 1024 * 1024, 1.2}},
                       1024, 1ULL << 33};
  std::uint64_t seed = 1;
};

/// Generates a trace from an explicit configuration.
[[nodiscard]] trace::Trace generate_cdn_trace(const CdnTraceConfig& config);

/// Calibrated configuration for one of the four paper trace classes, scaled
/// to `num_requests` (the paper uses ~0.6-1.0 million).
[[nodiscard]] CdnTraceConfig make_config(TraceClass c, std::size_t num_requests,
                                         std::uint64_t seed);

/// Convenience: make_config + generate.
[[nodiscard]] trace::Trace make_trace(TraceClass c, std::size_t num_requests,
                                      std::uint64_t seed);

/// The paper evaluates each trace class at specific cache sizes (§7.2, §7.3,
/// Fig 8). Returns those sizes in bytes, scaled by `scale` so that reduced
/// request counts keep the same cache-to-workload ratio.
[[nodiscard]] std::vector<std::uint64_t> paper_cache_sizes(TraceClass c, double scale = 1.0);

/// The single "headline" cache size per trace used in §7.2/Table 2/Table 3
/// (512 GB, 1024 GB, 128 GB, 1024 GB), scaled.
[[nodiscard]] std::uint64_t headline_cache_size(TraceClass c, double scale = 1.0);

}  // namespace lhr::gen
