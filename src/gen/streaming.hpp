// Bounded-memory synthetic trace generation.
//
// CdnTraceGenerator is the incremental form of generate_cdn_trace: it holds
// the generator state (RNG, rank→key table, per-key size memo, alpha
// schedule, arrival clock) and yields one request at a time, producing the
// *identical* byte sequence at any chunking. generate_cdn_trace itself runs
// on top of it, so there is exactly one generation code path.
//
// StreamingGenerator wraps a configuration as a trace::TraceSource whose
// cursors each own a private generator: memory is O(core_contents + chunk)
// instead of O(num_requests), so billion-request workloads (the paper's real
// CDN-A scale) never materialize. generate_lhrt_file streams the same
// sequence straight to a packed .lhrt file for mmap replay.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gen/cdn_model.hpp"
#include "gen/zipf.hpp"
#include "trace/trace_source.hpp"
#include "util/rng.hpp"

namespace lhr::gen {

/// Pull-based generator over a CdnTraceConfig. next() returns requests in
/// trace order; the sequence is byte-identical to generate_cdn_trace.
class CdnTraceGenerator {
 public:
  /// Throws std::invalid_argument for empty workloads/schedules (the same
  /// validation generate_cdn_trace performs).
  explicit CdnTraceGenerator(const CdnTraceConfig& config);

  /// Fills `out` with the next request; false once num_requests were yielded.
  bool next(trace::Request& out);

  [[nodiscard]] std::size_t produced() const noexcept { return produced_; }

 private:
  const CdnTraceConfig config_;
  util::Xoshiro256 rng_;
  std::vector<trace::Key> rank_to_key_;
  trace::Key fresh_key_;
  std::unordered_map<trace::Key, std::uint64_t> size_of_;
  std::size_t schedule_pos_ = 0;
  ZipfSampler zipf_;
  double t_ = 0.0;
  std::size_t produced_ = 0;
};

/// A trace::TraceSource that regenerates the workload on demand. Each
/// cursor owns an independent CdnTraceGenerator, so concurrent cursors (the
/// replay_concurrent worker pattern) are safe; a cursor starting at index
/// `begin` pays O(begin) generation to fast-forward.
class StreamingGenerator final : public trace::TraceSource {
 public:
  explicit StreamingGenerator(CdnTraceConfig config);
  StreamingGenerator(TraceClass c, std::size_t num_requests, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const override { return config_.num_requests; }

  /// First call pays one full generation pass (cached thereafter).
  [[nodiscard]] trace::Time duration() const override;

  [[nodiscard]] const CdnTraceConfig& config() const noexcept { return config_; }

 protected:
  [[nodiscard]] std::unique_ptr<trace::TraceCursor> make_cursor(
      std::size_t begin, std::size_t end) const override;

 private:
  CdnTraceConfig config_;
  mutable std::mutex duration_mutex_;
  mutable bool duration_known_ = false;
  mutable trace::Time duration_ = 0.0;
};

/// Streams generate_cdn_trace(config) to `path` in .lhrt format using
/// O(core_contents + chunk_requests) memory. The resulting file is
/// byte-identical for every chunk size and mmap-replays through
/// trace::MappedTrace.
void generate_lhrt_file(const CdnTraceConfig& config, const std::string& path,
                        std::size_t chunk_requests = trace::kDefaultChunkRequests);

}  // namespace lhr::gen
