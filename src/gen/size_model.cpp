#include "gen/size_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lhr::gen {

SizeModel::SizeModel(std::vector<SizeComponent> components, std::uint64_t min_bytes,
                     std::uint64_t max_bytes)
    : components_(std::move(components)), min_bytes_(min_bytes), max_bytes_(max_bytes) {
  if (components_.empty()) throw std::invalid_argument("SizeModel: no components");
  if (min_bytes_ == 0 || max_bytes_ < min_bytes_) {
    throw std::invalid_argument("SizeModel: invalid size range");
  }
  double acc = 0.0;
  weight_cdf_.reserve(components_.size());
  for (const SizeComponent& c : components_) {
    if (c.weight <= 0.0 || c.median_bytes <= 0.0) {
      throw std::invalid_argument("SizeModel: invalid component");
    }
    acc += c.weight;
    weight_cdf_.push_back(acc);
  }
  for (double& w : weight_cdf_) w /= acc;
  weight_cdf_.back() = 1.0;
}

SizeModel SizeModel::constant(std::uint64_t bytes) {
  return SizeModel({SizeComponent{1.0, static_cast<double>(bytes), 1e-9}}, bytes, bytes);
}

std::uint64_t SizeModel::sample(util::Xoshiro256& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(weight_cdf_.begin(), weight_cdf_.end(), u);
  const SizeComponent& c = components_[static_cast<std::size_t>(it - weight_cdf_.begin())];

  // Box-Muller normal draw.
  const double u1 = std::max(rng.next_double(), 1e-12);
  const double u2 = rng.next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);

  const double value = c.median_bytes * std::exp(c.sigma * z);
  const double clamped =
      std::clamp(value, static_cast<double>(min_bytes_), static_cast<double>(max_bytes_));
  return static_cast<std::uint64_t>(clamped);
}

}  // namespace lhr::gen
