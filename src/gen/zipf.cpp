#include "gen/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lhr::gen {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -alpha);
    cdf_[i] = acc;
  }
  const double norm = 1.0 / acc;
  for (double& c : cdf_) c *= norm;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(util::Xoshiro256& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t i) const {
  if (i >= cdf_.size()) return 0.0;
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace lhr::gen
