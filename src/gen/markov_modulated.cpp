#include "gen/markov_modulated.hpp"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "gen/zipf.hpp"
#include "util/rng.hpp"

namespace lhr::gen {

namespace {

/// Shared driver: `rank_of_state(state, zipf_rank)` maps a sampled Zipf rank
/// to a content index under the current state's ranking.
template <typename StateAlpha, typename RankMap, typename NextState>
trace::Trace drive(const MarkovModulatedConfig& config, StateAlpha state_alpha,
                   RankMap rank_of_state, NextState next_state) {
  util::Xoshiro256 rng(config.seed);
  trace::Trace out;
  out.reserve(config.num_requests);

  std::vector<std::uint64_t> sizes(config.num_contents);
  for (auto& s : sizes) s = config.size_model.sample(rng);

  const double mean_gap =
      config.duration_seconds / static_cast<double>(config.num_requests);

  int state = 0;
  ZipfSampler zipf(config.num_contents, state_alpha(state));
  double current_alpha = state_alpha(state);

  double t = 0.0;
  std::size_t in_state = 0;
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    if (in_state == config.requests_per_state) {
      state = next_state(state);
      in_state = 0;
      if (state_alpha(state) != current_alpha) {
        current_alpha = state_alpha(state);
        zipf = ZipfSampler(config.num_contents, current_alpha);
      }
    }
    ++in_state;

    t += -mean_gap * std::log(std::max(rng.next_double(), 1e-12));
    const std::size_t content = rank_of_state(state, zipf.sample(rng));
    out.push_back(trace::Request{t, static_cast<trace::Key>(content), sizes[content]});
  }
  return out;
}

}  // namespace

trace::Trace generate_syn_one(const MarkovModulatedConfig& config) {
  const std::size_t n = config.num_contents;
  return drive(
      config,
      [&](int) { return config.alpha; },
      [n](int state, std::size_t rank) { return state == 0 ? rank : n - 1 - rank; },
      [](int state) { return 1 - state; });
}

trace::Trace generate_syn_two(const MarkovModulatedConfig& config) {
  static constexpr double kAlphas[3] = {0.7, 0.9, 1.1};
  // Path 0,1,2,1,0,1,2,... : bounce between 0 and 2.
  struct Bounce {
    int dir = 1;
    int operator()(int state) {
      if (state == 2) dir = -1;
      if (state == 0) dir = 1;
      return state + dir;
    }
  };
  return drive(
      config,
      [](int state) { return kAlphas[state]; },
      [](int, std::size_t rank) { return rank; },
      Bounce{});
}

}  // namespace lhr::gen
