#include "gen/cdn_model.hpp"

#include <algorithm>

#include "gen/streaming.hpp"

namespace lhr::gen {

namespace {
constexpr std::uint64_t kKB = 1024;
constexpr std::uint64_t kMB = 1024 * kKB;
constexpr std::uint64_t kGB = 1024 * kMB;
}  // namespace

std::string to_string(TraceClass c) {
  switch (c) {
    case TraceClass::kCdnA: return "CDN-A";
    case TraceClass::kCdnB: return "CDN-B";
    case TraceClass::kCdnC: return "CDN-C";
    case TraceClass::kWiki: return "Wiki";
  }
  return "unknown";
}

trace::Trace generate_cdn_trace(const CdnTraceConfig& config) {
  // One generation code path: materialize the incremental generator that
  // StreamingGenerator and generate_lhrt_file also run on (streaming.hpp).
  CdnTraceGenerator gen(config);
  trace::Trace out;
  out.reserve(config.num_requests);
  trace::Request r;
  while (gen.next(r)) out.push_back(r);
  return out;
}

CdnTraceConfig make_config(TraceClass c, std::size_t num_requests, std::uint64_t seed) {
  CdnTraceConfig cfg;
  cfg.num_requests = num_requests;
  cfg.seed = seed;
  cfg.name = to_string(c);
  const double scale = static_cast<double>(num_requests) / 1e6;

  switch (c) {
    case TraceClass::kCdnA:
      // Table 1: 0.97M reqs / 330k contents / mean 25.5 MB / max 7.8 GB / 24 h.
      // Web+video mixture: small web objects plus multi-MB video segments.
      cfg.core_contents = std::max<std::size_t>(64, static_cast<std::size_t>(210'000 * scale));
      cfg.alpha_schedule = {{0.0, 0.85}, {0.4, 0.95}, {0.75, 0.88}};
      cfg.one_hit_wonder_rate = 0.12;
      cfg.duration_seconds = 24 * 3600.0;
      cfg.churn_period = num_requests / 12;
      cfg.churn_fraction = 0.002;
      cfg.burstiness_sigma = 0.4;
      cfg.size_model = SizeModel({SizeComponent{0.45, 50.0 * kKB, 1.6},
                                  SizeComponent{0.45, 10.0 * static_cast<double>(kMB), 1.0},
                                  SizeComponent{0.10, 115.0 * static_cast<double>(kMB), 0.9}},
                                 10 * kKB, 7'790 * kMB);
      break;
    case TraceClass::kCdnB:
      // Table 1: 1M reqs / 162k contents / mean 68.4 MB / max 38 GB / 9.9 h.
      // Live streaming: heavy churn, hot set turns over continuously.
      cfg.core_contents = std::max<std::size_t>(64, static_cast<std::size_t>(110'000 * scale));
      cfg.alpha_schedule = {{0.0, 1.05}, {0.5, 1.15}};
      cfg.one_hit_wonder_rate = 0.05;
      cfg.duration_seconds = 9.9 * 3600.0;
      cfg.churn_period = std::max<std::size_t>(1, num_requests / 40);
      cfg.churn_fraction = 0.01;
      cfg.burstiness_sigma = 0.6;
      cfg.size_model = SizeModel({SizeComponent{0.7, 17.0 * static_cast<double>(kMB), 1.1},
                                  SizeComponent{0.3, 92.0 * static_cast<double>(kMB), 1.0}},
                                 64 * kKB, 38'392 * kMB);
      break;
    case TraceClass::kCdnC:
      // Table 1: 0.6M reqs / 298k contents / mean 100 MB / max 101 MB / 330 h.
      // Nearly equal sizes; most contents requested exactly once (§7.3).
      cfg.core_contents = std::max<std::size_t>(64, static_cast<std::size_t>(90'000 * scale));
      cfg.alpha_schedule = {{0.0, 0.6}};
      cfg.one_hit_wonder_rate = 0.55;
      cfg.duration_seconds = 330 * 3600.0;
      cfg.churn_period = 0;
      cfg.burstiness_sigma = 0.2;
      cfg.size_model = SizeModel({SizeComponent{1.0, 100.0 * static_cast<double>(kMB), 0.02}},
                                 99 * kMB, 101 * kMB);
      break;
    case TraceClass::kWiki:
      // Table 1: 1M reqs / 407k contents / mean 69.5 MB / max 92 GB / 0.1 h.
      // Media blobs, very high arrival rate, large unique population.
      cfg.core_contents = std::max<std::size_t>(64, static_cast<std::size_t>(280'000 * scale));
      cfg.alpha_schedule = {{0.0, 0.95}};
      cfg.one_hit_wonder_rate = 0.20;
      cfg.duration_seconds = 360.0;
      cfg.churn_period = 0;
      cfg.burstiness_sigma = 0.8;
      cfg.size_model = SizeModel({SizeComponent{0.5, 360.0 * kKB, 1.4},
                                  SizeComponent{0.4, 24.0 * static_cast<double>(kMB), 1.2},
                                  SizeComponent{0.1, 300.0 * static_cast<double>(kMB), 1.0}},
                                 10 * kKB, 92'100 * kMB);
      break;
  }
  return cfg;
}

trace::Trace make_trace(TraceClass c, std::size_t num_requests, std::uint64_t seed) {
  return generate_cdn_trace(make_config(c, num_requests, seed));
}

std::vector<std::uint64_t> paper_cache_sizes(TraceClass c, double scale) {
  const auto scaled = [scale](double gb) {
    return static_cast<std::uint64_t>(gb * scale * static_cast<double>(kGB));
  };
  switch (c) {
    case TraceClass::kCdnA: return {scaled(128), scaled(256), scaled(512), scaled(1024)};
    case TraceClass::kCdnB: return {scaled(256), scaled(512), scaled(1024), scaled(2048)};
    case TraceClass::kCdnC: return {scaled(32), scaled(64), scaled(128), scaled(256)};
    case TraceClass::kWiki: return {scaled(256), scaled(512), scaled(1024), scaled(2048)};
  }
  return {};
}

std::uint64_t headline_cache_size(TraceClass c, double scale) {
  const auto scaled = [scale](double gb) {
    return static_cast<std::uint64_t>(gb * scale * static_cast<double>(kGB));
  };
  switch (c) {
    case TraceClass::kCdnA: return scaled(512);
    case TraceClass::kCdnB: return scaled(1024);
    case TraceClass::kCdnC: return scaled(128);
    case TraceClass::kWiki: return scaled(1024);
  }
  return scaled(512);
}

}  // namespace lhr::gen
