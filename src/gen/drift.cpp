#include "gen/drift.hpp"

#include <cmath>
#include <stdexcept>

#include "util/parse.hpp"
#include "util/rng.hpp"

namespace lhr::gen {

namespace {

/// One stateless splitmix64 draw keyed on (seed, salt, value): the hash-coin
/// primitive every episode decision uses, so membership is a pure function.
std::uint64_t keyed_mix(std::uint64_t seed, std::uint64_t salt,
                        std::uint64_t value) noexcept {
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^ value;
  return util::splitmix64(state);
}

/// True with probability `fraction` as a deterministic function of the mix.
bool hash_coin(std::uint64_t mix, double fraction) noexcept {
  if (fraction >= 1.0) return true;
  if (fraction <= 0.0) return false;
  return static_cast<double>(mix >> 11) * 0x1.0p-53 < fraction;
}

DriftEpisode parse_episode(const std::string& clause) {
  const auto fail = [&clause](const std::string& why) -> DriftEpisode {
    throw std::invalid_argument("DriftSchedule::parse: " + why + " in clause '" +
                                clause + "'");
  };
  const std::size_t colon = clause.find(':');
  if (colon == std::string::npos) return fail("missing ':'");
  const std::string kind = clause.substr(0, colon);

  DriftEpisode episode;
  if (kind == "remap") {
    episode.kind = DriftEpisode::Kind::kRemap;
  } else if (kind == "onehit") {
    episode.kind = DriftEpisode::Kind::kOneHit;
  } else {
    return fail("unknown kind '" + kind + "' (want remap|onehit)");
  }

  std::string window = clause.substr(colon + 1);
  const std::size_t at = window.find('@');
  if (at != std::string::npos) {
    const std::string arg = window.substr(at + 1);
    window = window.substr(0, at);
    const auto fraction = util::parse_double(arg);
    if (!fraction || !(*fraction >= 0.0) || !(*fraction <= 1.0)) {
      return fail("fraction '" + arg + "' must be in [0, 1]");
    }
    episode.fraction = *fraction;
  }

  const std::size_t dash = window.find('-');
  if (dash == std::string::npos) return fail("window needs 'start-end'");
  const auto start = util::parse_double(window.substr(0, dash));
  const auto end = util::parse_double(window.substr(dash + 1));
  if (!start || !end) return fail("non-numeric window bound");
  if (!(*start >= 0.0) || !(*end <= 1.0) || !(*start < *end)) {
    return fail("window must satisfy 0 <= start < end <= 1");
  }
  episode.start_fraction = *start;
  episode.end_fraction = *end;
  return episode;
}

}  // namespace

DriftSchedule::DriftSchedule(std::vector<DriftEpisode> episodes)
    : episodes_(std::move(episodes)) {
  for (const DriftEpisode& e : episodes_) {
    if (!(e.start_fraction >= 0.0) || !(e.end_fraction <= 1.0) ||
        !(e.start_fraction < e.end_fraction) || !(e.fraction >= 0.0) ||
        !(e.fraction <= 1.0)) {
      throw std::invalid_argument("DriftSchedule: invalid episode bounds");
    }
  }
}

DriftSchedule DriftSchedule::parse(const std::string& spec) {
  std::vector<DriftEpisode> episodes;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::string clause =
        spec.substr(start, semi == std::string::npos ? semi : semi - start);
    if (!clause.empty()) episodes.push_back(parse_episode(clause));
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  if (episodes.empty()) {
    throw std::invalid_argument("DriftSchedule::parse: empty spec '" + spec + "'");
  }
  return DriftSchedule(std::move(episodes));
}

trace::Key DriftSchedule::drifted_key(trace::Key key, std::size_t i, std::size_t n,
                                      std::uint64_t seed) const noexcept {
  if (n == 0) return key;
  const double fraction =
      static_cast<double>(i) / static_cast<double>(n);  // position in [0, 1)
  trace::Key out = key;
  for (std::size_t e = 0; e < episodes_.size(); ++e) {
    const DriftEpisode& episode = episodes_[e];
    if (fraction < episode.start_fraction || fraction >= episode.end_fraction) {
      continue;
    }
    // Each episode salts its draws with its own index, so two overlapping
    // episodes of the same kind make independent decisions.
    const std::uint64_t salt = e + 1;
    switch (episode.kind) {
      case DriftEpisode::Kind::kRemap: {
        // Key-level coin: the key is renamed for the whole episode or never,
        // so reuse survives under the new name. The rename itself is a
        // seeded bijection (xor of a mixed constant keeps it invertible and
        // collision-free against other renamed keys).
        const std::uint64_t coin = keyed_mix(seed, salt, out);
        if (hash_coin(coin, episode.fraction)) {
          std::uint64_t rename_state = seed ^ (salt * 0xbf58476d1ce4e5b9ULL);
          out ^= util::splitmix64(rename_state);
        }
        break;
      }
      case DriftEpisode::Kind::kOneHit: {
        // Request-level coin on the index: the replacement key is derived
        // from the index, so it is unique across the trace — a guaranteed
        // one-hit wonder.
        const std::uint64_t coin = keyed_mix(seed, salt ^ 0xabcdULL, i);
        if (hash_coin(coin, episode.fraction)) {
          out = keyed_mix(seed, salt ^ 0x1e9fULL, i) | (1ULL << 63);
        }
        break;
      }
    }
  }
  return out;
}

trace::Trace apply_drift(const trace::Trace& trace, const DriftSchedule& schedule,
                         std::uint64_t seed) {
  std::vector<trace::Request> out;
  out.reserve(trace.size());
  const std::size_t n = trace.size();
  for (std::size_t i = 0; i < n; ++i) {
    trace::Request r = trace[i];
    r.key = schedule.drifted_key(r.key, i, n, seed);
    out.push_back(r);
  }
  return trace::Trace(std::move(out));
}

}  // namespace lhr::gen
