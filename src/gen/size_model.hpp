// Content-size models.
//
// Production CDN content sizes vary over six orders of magnitude (Table 1:
// 10 KB web objects to 92 GB media). We model sizes as a mixture of
// lognormal components ("web objects", "video segments", "large media"),
// clamped to a [min, max] range, which reproduces the mean/max columns of
// Table 1 and the heavy upper tail that AdaptSize-style admission exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace lhr::gen {

/// One lognormal mixture component, parameterized by the *median* of the
/// component (exp(mu)) and sigma of the underlying normal.
struct SizeComponent {
  double weight = 1.0;       ///< relative mixture weight
  double median_bytes = 0;   ///< exp(mu)
  double sigma = 1.0;        ///< lognormal shape
};

class SizeModel {
 public:
  SizeModel(std::vector<SizeComponent> components, std::uint64_t min_bytes,
            std::uint64_t max_bytes);

  /// Constant-size model (CDN-C has ~equal 100 MB objects).
  static SizeModel constant(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t sample(util::Xoshiro256& rng) const;

  [[nodiscard]] std::uint64_t min_bytes() const noexcept { return min_bytes_; }
  [[nodiscard]] std::uint64_t max_bytes() const noexcept { return max_bytes_; }

 private:
  std::vector<SizeComponent> components_;
  std::vector<double> weight_cdf_;
  std::uint64_t min_bytes_;
  std::uint64_t max_bytes_;
};

}  // namespace lhr::gen
