#include "gen/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/lhrt.hpp"

namespace lhr::gen {

CdnTraceGenerator::CdnTraceGenerator(const CdnTraceConfig& config)
    : config_(config), rng_(config.seed),
      rank_to_key_(config.core_contents),
      fresh_key_(static_cast<trace::Key>(config.core_contents) +
                 static_cast<trace::Key>(config.num_requests)),  // disjoint range
      zipf_(std::max<std::size_t>(config.core_contents, 1),
            config.alpha_schedule.empty() ? 1.0 : config.alpha_schedule[0].alpha) {
  if (config.num_requests == 0 || config.core_contents == 0) {
    throw std::invalid_argument("generate_cdn_trace: empty workload");
  }
  if (config.alpha_schedule.empty()) {
    throw std::invalid_argument("generate_cdn_trace: empty alpha schedule");
  }
  trace::Key next_key = 0;
  for (auto& k : rank_to_key_) k = next_key++;
  size_of_.reserve(config.core_contents * 2);
}

bool CdnTraceGenerator::next(trace::Request& out) {
  if (produced_ >= config_.num_requests) return false;
  const std::size_t i = produced_;

  // Advance the alpha schedule.
  const double frac = static_cast<double>(i) / static_cast<double>(config_.num_requests);
  while (schedule_pos_ + 1 < config_.alpha_schedule.size() &&
         frac >= config_.alpha_schedule[schedule_pos_ + 1].at_fraction) {
    ++schedule_pos_;
    zipf_ = ZipfSampler(config_.core_contents, config_.alpha_schedule[schedule_pos_].alpha);
  }

  // Popularity churn: retire the hottest ranks for brand-new keys.
  if (config_.churn_period > 0 && i > 0 && i % config_.churn_period == 0 &&
      config_.churn_fraction > 0.0) {
    const auto n_churn = static_cast<std::size_t>(
        config_.churn_fraction * static_cast<double>(config_.core_contents));
    for (std::size_t r = 0; r < n_churn; ++r) rank_to_key_[r] = fresh_key_++;
  }

  // Arrival time: exponential gap, optionally lognormally modulated.
  const double mean_gap =
      config_.duration_seconds / static_cast<double>(config_.num_requests);
  double gap = -mean_gap * std::log(std::max(rng_.next_double(), 1e-12));
  if (config_.burstiness_sigma > 0.0) {
    const double u1 = std::max(rng_.next_double(), 1e-12);
    const double u2 = rng_.next_double();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    // exp(sigma*z - sigma^2/2) has mean 1: modulates gaps without changing rate.
    gap *= std::exp(config_.burstiness_sigma * z -
                    config_.burstiness_sigma * config_.burstiness_sigma / 2.0);
  }
  t_ += gap;

  trace::Key key;
  std::uint64_t size;
  if (rng_.next_double() < config_.one_hit_wonder_rate) {
    // A one-hit wonder is never requested again, so its size needs no memo
    // entry — that keeps size_of_ at O(contents), not O(requests). The RNG
    // draw order matches the memoized path exactly (one size sample).
    key = fresh_key_++;
    size = config_.size_model.sample(rng_);
  } else {
    // Sizes are fixed per key: memoize the first draw. Churned-in keys can
    // recur, so they go through the memo like core keys.
    key = rank_to_key_[zipf_.sample(rng_)];
    auto [it, inserted] = size_of_.try_emplace(key, 0);
    if (inserted) it->second = config_.size_model.sample(rng_);
    size = it->second;
  }

  out = trace::Request{t_, key, size};
  ++produced_;
  return true;
}

// ------------------------------------------------------ StreamingGenerator

namespace {

class GeneratorCursor final : public trace::TraceCursor {
 public:
  GeneratorCursor(const CdnTraceConfig& config, std::size_t begin, std::size_t end)
      : gen_(config), end_(std::min(end, config.num_requests)) {
    // Fast-forward: the generator must replay every draw up to `begin`.
    trace::Request discard;
    for (std::size_t i = 0; i < std::min(begin, end_); ++i) gen_.next(discard);
  }

  [[nodiscard]] std::size_t position() const noexcept override {
    return gen_.produced();
  }

  [[nodiscard]] std::span<const trace::Request> next_chunk(
      std::size_t max_requests) override {
    const std::size_t remaining = end_ - std::min(gen_.produced(), end_);
    const std::size_t n = std::min(max_requests, remaining);
    buffer_.resize(n);
    for (std::size_t i = 0; i < n; ++i) gen_.next(buffer_[i]);
    return buffer_;
  }

 private:
  CdnTraceGenerator gen_;
  std::size_t end_;
  std::vector<trace::Request> buffer_;
};

}  // namespace

StreamingGenerator::StreamingGenerator(CdnTraceConfig config)
    : config_(std::move(config)) {
  // Surface bad configurations at construction, not first iteration (the
  // same checks CdnTraceGenerator performs, without its O(contents) state).
  if (config_.num_requests == 0 || config_.core_contents == 0) {
    throw std::invalid_argument("generate_cdn_trace: empty workload");
  }
  if (config_.alpha_schedule.empty()) {
    throw std::invalid_argument("generate_cdn_trace: empty alpha schedule");
  }
}

StreamingGenerator::StreamingGenerator(TraceClass c, std::size_t num_requests,
                                       std::uint64_t seed)
    : StreamingGenerator(make_config(c, num_requests, seed)) {}

trace::Time StreamingGenerator::duration() const {
  std::lock_guard<std::mutex> lock(duration_mutex_);
  if (!duration_known_) {
    CdnTraceGenerator gen(config_);
    trace::Request r;
    trace::Time first = 0.0, last = 0.0;
    for (std::size_t i = 0; gen.next(r); ++i) {
      if (i == 0) first = r.time;
      last = r.time;
    }
    duration_ = config_.num_requests < 2 ? 0.0 : last - first;
    duration_known_ = true;
  }
  return duration_;
}

std::unique_ptr<trace::TraceCursor> StreamingGenerator::make_cursor(
    std::size_t begin, std::size_t end) const {
  return std::make_unique<GeneratorCursor>(config_, begin, end);
}

void generate_lhrt_file(const CdnTraceConfig& config, const std::string& path,
                        std::size_t chunk_requests) {
  if (chunk_requests == 0) {
    throw std::invalid_argument("generate_lhrt_file: chunk_requests must be > 0");
  }
  std::int32_t trace_class = trace::kLhrtClassUnknown;
  for (const TraceClass c : {TraceClass::kCdnA, TraceClass::kCdnB,
                             TraceClass::kCdnC, TraceClass::kWiki}) {
    if (config.name == to_string(c)) trace_class = static_cast<std::int32_t>(c);
  }

  trace::LhrtWriter writer(path, config.seed, trace_class);
  CdnTraceGenerator gen(config);
  std::vector<trace::Request> buffer;
  buffer.reserve(std::min(chunk_requests, config.num_requests));
  trace::Request r;
  while (gen.next(r)) {
    buffer.push_back(r);
    if (buffer.size() == chunk_requests) {
      writer.append(buffer);
      buffer.clear();
    }
  }
  writer.append(buffer);
  writer.finish();
}

}  // namespace lhr::gen
