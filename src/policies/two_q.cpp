#include "policies/two_q.hpp"

#include <algorithm>

namespace lhr::policy {

TwoQ::TwoQ(std::uint64_t capacity_bytes, const TwoQConfig& config)
    : CacheBase(capacity_bytes), config_(config) {}

void TwoQ::ghost_insert(trace::Key key, std::uint64_t size) {
  a1out_.push_front(key);
  ghost_[key] = GhostSlot{a1out_.begin(), size};
  ghost_bytes_ += size;
  const auto kout = static_cast<std::uint64_t>(
      config_.kout_fraction * static_cast<double>(capacity_bytes()));
  while (ghost_bytes_ > kout && !a1out_.empty()) {
    const trace::Key victim = a1out_.back();
    a1out_.pop_back();
    ghost_bytes_ -= ghost_.at(victim).size;
    ghost_.erase(victim);
  }
}

void TwoQ::make_room(std::uint64_t incoming_size) {
  const auto kin = static_cast<std::uint64_t>(
      config_.kin_fraction * static_cast<double>(capacity_bytes()));
  while (used_bytes() + incoming_size > capacity_bytes() && !slots_.empty()) {
    // 2Q's reclaim: shrink A1in first (its tail moves to the ghost list),
    // then take from Am's LRU end.
    const bool take_a1in = !a1in_.empty() && (a1in_bytes_ > kin || am_.empty());
    if (take_a1in) {
      const trace::Key victim = a1in_.back();
      a1in_.pop_back();
      const Slot slot = slots_.at(victim);
      slots_.erase(victim);
      a1in_bytes_ -= slot.size;
      remove_object(victim);
      ghost_insert(victim, slot.size);
    } else if (!am_.empty()) {
      const trace::Key victim = am_.back();
      am_.pop_back();
      slots_.erase(victim);
      remove_object(victim);
    } else {
      break;
    }
  }
}

bool TwoQ::access(const trace::Request& r) {
  const auto it = slots_.find(r.key);
  if (it != slots_.end()) {
    if (it->second.where == Where::kAm) {
      am_.splice(am_.begin(), am_, it->second.it);  // LRU touch
    }
    // A1in hits deliberately do not promote (2Q's correlated-reference rule).
    return true;
  }
  if (oversized(r.size)) return false;

  const auto ghost = ghost_.find(r.key);
  const bool proven = ghost != ghost_.end();
  if (proven) {
    ghost_bytes_ -= ghost->second.size;
    a1out_.erase(ghost->second.it);
    ghost_.erase(ghost);
  }

  make_room(r.size);
  if (proven) {
    am_.push_front(r.key);
    slots_[r.key] = Slot{Where::kAm, am_.begin(), r.size};
  } else {
    a1in_.push_front(r.key);
    slots_[r.key] = Slot{Where::kA1in, a1in_.begin(), r.size};
    a1in_bytes_ += r.size;
  }
  store_object(r.key, r.size);
  return false;
}

std::uint64_t TwoQ::metadata_bytes() const {
  return slots_.size() * (sizeof(trace::Key) + sizeof(Slot) + 4 * sizeof(void*)) +
         ghost_.size() * (sizeof(trace::Key) + sizeof(GhostSlot) + 4 * sizeof(void*));
}

}  // namespace lhr::policy
