// LRU: the production default the paper repeatedly references (§1: "major
// CDNs today still employ the classic LRU"; ATS's default policy).
// Admits everything that fits; evicts the least recently used.
#pragma once

#include <list>

#include "sim/cache_policy.hpp"
#include "util/flat_hash_map.hpp"

namespace lhr::policy {

class Lru final : public sim::CacheBase {
 public:
  explicit Lru(std::uint64_t capacity_bytes) : CacheBase(capacity_bytes) {}

  [[nodiscard]] std::string name() const override { return "LRU"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

 private:
  void evict_until_fits(std::uint64_t incoming_size);

  std::list<trace::Key> order_;  // front = most recent
  util::FlatHashMap<trace::Key, std::list<trace::Key>::iterator> where_;
};

}  // namespace lhr::policy
