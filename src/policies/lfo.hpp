// LFO: Learning From OPT (Berger, HotNets'18 — paper ref [10]).
//
// LFO learns an *admission* policy by imitating offline-optimal decisions
// derived over a past window, then pairs it with LRU eviction. The paper
// notes LFO "performs even worse than some conventional algorithms on
// production traces" and excludes it from the top seven; it is included
// here for completeness of the baseline set.
//
// Label derivation (practical OPT proxy): an admission was "good" iff the
// object was re-requested while its reuse footprint (approximate unique
// bytes touched in between) still fit in the cache — the byte analogue of
// a stack-distance test. Samples that age out unlabeled are negatives.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "ml/features.hpp"
#include "ml/flat_forest.hpp"
#include "ml/gbdt.hpp"
#include "sim/cache_policy.hpp"

namespace lhr::policy {

struct LfoConfig {
  std::size_t window_requests = 100'000;  ///< training window / label horizon
  double admit_threshold = 0.5;
  std::size_t max_train_samples = 40'000;
  ml::FeatureConfig features;
  ml::GbdtConfig gbdt;
};

class Lfo final : public sim::CacheBase {
 public:
  explicit Lfo(std::uint64_t capacity_bytes, const LfoConfig& config = {});

  [[nodiscard]] std::string name() const override { return "LFO"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

  [[nodiscard]] bool model_trained() const noexcept { return model_.trained(); }

 private:
  struct PendingSample {
    trace::Key key;
    std::uint64_t request_index;
    double bytes_seen;  ///< cumulative request bytes at sample time
    bool labeled;
  };

  void add_labeled(std::size_t slot, float label);
  void expire_and_train();
  void evict_until_fits(std::uint64_t incoming_size);

  LfoConfig config_;
  ml::FeatureExtractor extractor_;
  ml::Gbdt model_;
  ml::FlatForest forest_;  ///< compiled from model_ after every fit
  std::vector<float> feature_scratch_;  ///< per-request extraction buffer

  std::deque<PendingSample> pending_;
  std::deque<float> pending_features_;
  std::uint64_t pending_base_ = 0;
  std::unordered_map<trace::Key, std::uint64_t> last_pending_;

  ml::Dataset train_x_;
  std::vector<float> train_y_;

  std::list<trace::Key> order_;
  std::unordered_map<trace::Key, std::list<trace::Key>::iterator> where_;

  std::uint64_t request_index_ = 0;
  double bytes_seen_ = 0.0;
};

}  // namespace lhr::policy
