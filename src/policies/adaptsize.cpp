#include "policies/adaptsize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lhr::policy {

AdaptSize::AdaptSize(std::uint64_t capacity_bytes, const AdaptSizeConfig& config)
    : CacheBase(capacity_bytes), config_(config), rng_(config.seed) {
  // Initial c: a tenth of the cache, i.e. admit almost everything at first.
  c_ = static_cast<double>(capacity_bytes) / 10.0;
}

bool AdaptSize::access(const trace::Request& r) {
  last_time_ = r.time;
  auto& ws = window_stats_[r.key];
  ++ws.count;
  ws.size = r.size;
  if (++since_reconfigure_ >= config_.reconfigure_interval) reconfigure();

  const auto it = where_.find(r.key);
  if (it != where_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (oversized(r.size)) return false;

  // Probabilistic size-based admission.
  const double p_admit = std::exp(-static_cast<double>(r.size) / c_);
  if (rng_.next_double() >= p_admit) return false;

  evict_until_fits(r.size);
  order_.push_front(r.key);
  where_[r.key] = order_.begin();
  store_object(r.key, r.size);
  return false;
}

void AdaptSize::evict_until_fits(std::uint64_t incoming_size) {
  while (used_bytes() + incoming_size > capacity_bytes() && !order_.empty()) {
    const trace::Key victim = order_.back();
    order_.pop_back();
    where_.erase(victim);
    remove_object(victim);
  }
}

double AdaptSize::modeled_hit_ratio(double c, double window_seconds) const {
  // Characteristic time T solves: sum_i s_i p_i (1 - e^{-λ_i T}) = capacity.
  const auto resident_bytes = [&](double T) {
    double bytes = 0.0;
    for (const auto& [key, ws] : window_stats_) {
      const double lambda = static_cast<double>(ws.count) / window_seconds;
      const double p = std::exp(-static_cast<double>(ws.size) / c);
      bytes += static_cast<double>(ws.size) * p * (1.0 - std::exp(-lambda * T));
    }
    return bytes;
  };

  const double cap = static_cast<double>(capacity_bytes());
  double lo = 1e-6, hi = window_seconds * 64.0;
  if (resident_bytes(hi) <= cap) {
    hi = std::numeric_limits<double>::infinity();  // everything fits
  } else {
    for (int iter = 0; iter < 50; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (resident_bytes(mid) > cap ? hi : lo) = mid;
    }
  }
  const double T = std::isinf(hi) ? hi : 0.5 * (lo + hi);

  double weighted_hits = 0.0, total_rate = 0.0;
  for (const auto& [key, ws] : window_stats_) {
    const double lambda = static_cast<double>(ws.count) / window_seconds;
    const double p = std::exp(-static_cast<double>(ws.size) / c);
    const double in_cache =
        std::isinf(T) ? p : p * (1.0 - std::exp(-lambda * T));
    weighted_hits += lambda * in_cache;
    total_rate += lambda;
  }
  return total_rate > 0.0 ? weighted_hits / total_rate : 0.0;
}

void AdaptSize::reconfigure() {
  since_reconfigure_ = 0;
  const double window_seconds = std::max(last_time_ - window_start_, 1e-6);
  if (window_stats_.size() >= 32) {
    // Log grid of candidate c values spanning [1 KB, capacity].
    const double lo = std::log(1024.0);
    const double hi = std::log(static_cast<double>(capacity_bytes()));
    double best_c = c_;
    double best_ohr = -1.0;
    for (std::size_t g = 0; g < config_.grid_points; ++g) {
      const double f = static_cast<double>(g) /
                       static_cast<double>(config_.grid_points - 1);
      const double c = std::exp(lo + f * (hi - lo));
      const double ohr = modeled_hit_ratio(c, window_seconds);
      if (ohr > best_ohr) {
        best_ohr = ohr;
        best_c = c;
      }
    }
    c_ = best_c;
  }
  window_stats_.clear();
  window_start_ = last_time_;
}

std::uint64_t AdaptSize::metadata_bytes() const {
  return where_.size() * (2 * sizeof(trace::Key) + 4 * sizeof(void*)) +
         window_stats_.size() *
             (sizeof(trace::Key) + sizeof(WindowStat) + 2 * sizeof(void*));
}

}  // namespace lhr::policy
