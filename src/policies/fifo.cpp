#include "policies/fifo.hpp"

namespace lhr::policy {

bool Fifo::access(const trace::Request& r) {
  if (contains(r.key)) return true;
  if (oversized(r.size)) return false;
  while (used_bytes() + r.size > capacity_bytes() && !queue_.empty()) {
    remove_object(queue_.front());
    queue_.pop_front();
  }
  queue_.push_back(r.key);
  store_object(r.key, r.size);
  return false;
}

}  // namespace lhr::policy
