// FIFO: evicts in insertion order, ignoring recency. A classic baseline
// (paper §8 "Conventional caching algorithms").
#pragma once

#include <deque>
#include <unordered_set>

#include "sim/cache_policy.hpp"

namespace lhr::policy {

class Fifo final : public sim::CacheBase {
 public:
  explicit Fifo(std::uint64_t capacity_bytes) : CacheBase(capacity_bytes) {}

  [[nodiscard]] std::string name() const override { return "FIFO"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override {
    return object_count() * (2 * sizeof(trace::Key) + 2 * sizeof(void*));
  }

 private:
  std::deque<trace::Key> queue_;  // front = oldest
};

}  // namespace lhr::policy
