#include "policies/hyperbolic.hpp"

#include <algorithm>
#include <limits>

namespace lhr::policy {

double Hyperbolic::priority(const Meta& m, std::uint64_t size, trace::Time now) const {
  const double in_cache = std::max(now - m.inserted, 1e-9);
  return static_cast<double>(m.count) /
         (in_cache * static_cast<double>(std::max<std::uint64_t>(size, 1)));
}

bool Hyperbolic::access(const trace::Request& r) {
  const auto it = meta_.find(r.key);
  if (it != meta_.end()) {
    ++it->second.count;
    return true;
  }
  if (oversized(r.size)) return false;

  while (used_bytes() + r.size > capacity_bytes() && !residents_.empty()) {
    trace::Key victim = residents_.sample(rng_);
    double worst = std::numeric_limits<double>::infinity();
    const std::size_t n = std::min(eviction_sample_, residents_.size());
    for (std::size_t s = 0; s < n; ++s) {
      const trace::Key candidate =
          (n == residents_.size()) ? residents_.at(s) : residents_.sample(rng_);
      const double p =
          priority(meta_.at(candidate), object_size(candidate), r.time);
      if (p < worst) {
        worst = p;
        victim = candidate;
      }
    }
    meta_.erase(victim);
    residents_.erase(victim);
    remove_object(victim);
  }
  meta_[r.key] = Meta{1, r.time};
  residents_.insert(r.key);
  store_object(r.key, r.size);
  return false;
}

std::uint64_t Hyperbolic::metadata_bytes() const {
  return meta_.size() * (sizeof(trace::Key) + sizeof(Meta) + 2 * sizeof(void*)) +
         residents_.memory_bytes();
}

}  // namespace lhr::policy
