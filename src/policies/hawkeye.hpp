// Hawkeye (Jain & Lin, ISCA'16 — paper ref [36]), adapted from hardware
// caches to CDN object caching as the paper's §8 suggests ("its idea of
// applying Bélády to history data ... can be implemented in CDNs").
//
// OPTgen: replays recent history against a simulated Belady cache using an
// occupancy vector — a re-requested object would have been an OPT hit iff
// its reuse interval can be overlaid on the occupancy profile without
// exceeding capacity at any point. Each outcome trains a predictor.
//
// Predictor: a table of 3-bit saturating counters indexed by content hash
// (the CDN analogue of Hawkeye's PC-indexed counters). Counter >= threshold
// means "cache-friendly".
//
// Policy: friendly objects are admitted and inserted with RRPV 0; averse
// objects are bypassed (the object-cache analogue of inserting at RRPV 7,
// where the line is evicted before being reused). Eviction: highest RRPV
// first, oldest last-use as a tiebreak, via sampling.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "policies/sampled_set.hpp"
#include "sim/cache_policy.hpp"
#include "util/rng.hpp"

namespace lhr::policy {

struct HawkeyeConfig {
  std::size_t bucket_requests = 1024;   ///< occupancy-vector granularity
  std::size_t max_buckets = 256;        ///< history length in buckets
  std::size_t predictor_bits = 14;      ///< 2^bits counters
  std::uint32_t friendly_threshold = 4; ///< counter >= this => friendly
  std::size_t eviction_sample = 64;
  std::uint64_t seed = 777;
};

class Hawkeye final : public sim::CacheBase {
 public:
  explicit Hawkeye(std::uint64_t capacity_bytes, const HawkeyeConfig& config = {});

  [[nodiscard]] std::string name() const override { return "Hawkeye"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

  /// Exposed for tests: predictor state for a key.
  [[nodiscard]] bool predicts_friendly(trace::Key key) const;

 private:
  struct Resident {
    std::uint8_t rrpv;        // 0 = friendly, 7 = averse
    std::uint64_t last_index; // for LRU tiebreak
  };

  /// OPTgen outcome for the reuse interval ending now; trains the predictor.
  void train_on_reuse(trace::Key key, std::uint64_t size, std::uint64_t prev_index,
                      std::uint64_t now_index);
  void advance_buckets(std::uint64_t now_index);
  [[nodiscard]] std::size_t counter_slot(trace::Key key) const;
  void prune_history();

  HawkeyeConfig config_;
  util::Xoshiro256 rng_;

  // OPTgen occupancy vector over coarse request-index buckets.
  std::deque<std::uint64_t> occupancy_;
  std::uint64_t first_bucket_ = 0;

  std::vector<std::uint8_t> counters_;
  std::unordered_map<trace::Key, std::uint64_t> last_index_;
  std::unordered_map<trace::Key, Resident> residents_;
  SampledKeySet resident_keys_;
  std::uint64_t request_index_ = 0;
};

}  // namespace lhr::policy
