// A key set with O(1) insert/erase/uniform-sample — the substrate of every
// sampled-eviction policy (Random, LRU-K, LRB, LHR's eviction agent).
#pragma once

#include <cassert>
#include <unordered_map>
#include <vector>

#include "trace/request.hpp"
#include "util/rng.hpp"

namespace lhr::policy {

class SampledKeySet {
 public:
  void insert(trace::Key key) {
    if (slot_.contains(key)) return;
    slot_[key] = keys_.size();
    keys_.push_back(key);
  }

  void erase(trace::Key key) {
    const auto it = slot_.find(key);
    if (it == slot_.end()) return;
    const std::size_t s = it->second;
    slot_.erase(it);
    if (s != keys_.size() - 1) {
      keys_[s] = keys_.back();
      slot_[keys_[s]] = s;
    }
    keys_.pop_back();
  }

  [[nodiscard]] bool contains(trace::Key key) const { return slot_.contains(key); }
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }
  [[nodiscard]] trace::Key at(std::size_t i) const { return keys_[i]; }

  [[nodiscard]] trace::Key sample(util::Xoshiro256& rng) const {
    assert(!keys_.empty());
    return keys_[rng.next_below(keys_.size())];
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return keys_.size() * (2 * sizeof(trace::Key) + sizeof(std::size_t) + 2 * sizeof(void*));
  }

 private:
  std::vector<trace::Key> keys_;
  std::unordered_map<trace::Key, std::size_t> slot_;
};

}  // namespace lhr::policy
