#include "policies/arc.hpp"

#include <algorithm>

namespace lhr::policy {

std::list<trace::Key>& Arc::list_of(ListId id) {
  switch (id) {
    case ListId::kT1: return t1_;
    case ListId::kT2: return t2_;
    case ListId::kB1: return b1_;
    case ListId::kB2: return b2_;
  }
  return t1_;
}

std::uint64_t& Arc::bytes_of(ListId id) {
  switch (id) {
    case ListId::kT1: return t1_bytes_;
    case ListId::kT2: return t2_bytes_;
    case ListId::kB1: return b1_bytes_;
    case ListId::kB2: return b2_bytes_;
  }
  return t1_bytes_;
}

void Arc::move_to_front(trace::Key key, ListId to) {
  Slot& slot = slots_.at(key);
  list_of(slot.list).erase(slot.it);
  bytes_of(slot.list) -= slot.size;
  auto& target = list_of(to);
  target.push_front(key);
  slot.it = target.begin();
  slot.list = to;
  bytes_of(to) += slot.size;
}

void Arc::evict_lru(ListId from) {
  auto& list = list_of(from);
  if (list.empty()) return;
  const trace::Key victim = list.back();
  remove_object(victim);
  // Resident -> corresponding ghost list (keeps key + size only).
  move_to_front(victim, from == ListId::kT1 ? ListId::kB1 : ListId::kB2);
}

void Arc::drop_ghost_lru(ListId from) {
  auto& list = list_of(from);
  if (list.empty()) return;
  const trace::Key victim = list.back();
  Slot& slot = slots_.at(victim);
  bytes_of(from) -= slot.size;
  list.pop_back();
  slots_.erase(victim);
}

void Arc::trim_ghosts() {
  // Ghost entries hold no cache bytes, only metadata; each ghost list is
  // bounded to one cache's worth of *nominal* bytes, the byte analogue of
  // ARC's |B1|,|B2| <= c entry bound. (Bounding |T1|+|B1| <= c as in the
  // slot formulation would drop ghosts the moment T1 fills, killing the
  // adaptation signal.)
  const std::uint64_t c = capacity_bytes();
  while (b1_bytes_ > c && !b1_.empty()) drop_ghost_lru(ListId::kB1);
  while (b2_bytes_ > c && !b2_.empty()) drop_ghost_lru(ListId::kB2);
}

void Arc::replace(bool hit_in_b2, std::uint64_t incoming_size) {
  while (used_bytes() + incoming_size > capacity_bytes() &&
         (!t1_.empty() || !t2_.empty())) {
    const bool take_t1 =
        !t1_.empty() &&
        (static_cast<double>(t1_bytes_) > p_ ||
         (hit_in_b2 && static_cast<double>(t1_bytes_) == p_) || t2_.empty());
    evict_lru(take_t1 ? ListId::kT1 : ListId::kT2);
  }
}

bool Arc::access(const trace::Request& r) {
  const auto it = slots_.find(r.key);

  if (it != slots_.end() &&
      (it->second.list == ListId::kT1 || it->second.list == ListId::kT2)) {
    move_to_front(r.key, ListId::kT2);  // Case I: resident hit -> T2 MRU
    return true;
  }
  if (oversized(r.size)) return false;

  const double c = static_cast<double>(capacity_bytes());
  if (it != slots_.end() && it->second.list == ListId::kB1) {
    // Case II: ghost hit in B1 -> favor recency.
    const double delta =
        std::max(1.0, static_cast<double>(b2_bytes_) / std::max<double>(b1_bytes_, 1.0)) *
        static_cast<double>(it->second.size);
    p_ = std::min(p_ + delta, c);
    replace(false, r.size);
    move_to_front(r.key, ListId::kT2);
    store_object(r.key, r.size);
    return false;
  }
  if (it != slots_.end() && it->second.list == ListId::kB2) {
    // Case III: ghost hit in B2 -> favor frequency.
    const double delta =
        std::max(1.0, static_cast<double>(b1_bytes_) / std::max<double>(b2_bytes_, 1.0)) *
        static_cast<double>(it->second.size);
    p_ = std::max(p_ - delta, 0.0);
    replace(true, r.size);
    move_to_front(r.key, ListId::kT2);
    store_object(r.key, r.size);
    return false;
  }

  // Case IV: brand-new key -> T1 MRU.
  replace(false, r.size);
  t1_.push_front(r.key);
  slots_[r.key] = Slot{ListId::kT1, t1_.begin(), r.size};
  t1_bytes_ += r.size;
  store_object(r.key, r.size);
  trim_ghosts();
  return false;
}

std::uint64_t Arc::metadata_bytes() const {
  return slots_.size() * (sizeof(trace::Key) + sizeof(Slot) + 4 * sizeof(void*));
}

}  // namespace lhr::policy
