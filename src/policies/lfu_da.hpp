// LFU-DA: LFU with Dynamic Aging (Arlitt et al., paper refs [4, 54]).
//
// Priority K_i = C_i + L, where C_i is the object's reference count and L is
// a global "age" set to the priority of the most recently evicted object.
// Aging prevents formerly popular objects from squatting forever — the
// classic LFU pathology on drifting workloads.
#pragma once

#include <queue>
#include <unordered_map>

#include "sim/cache_policy.hpp"

namespace lhr::policy {

class LfuDa final : public sim::CacheBase {
 public:
  explicit LfuDa(std::uint64_t capacity_bytes) : CacheBase(capacity_bytes) {}

  [[nodiscard]] std::string name() const override { return "LFU-DA"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

 private:
  struct Meta {
    double priority = 0.0;   // C_i + L at last touch
    std::uint64_t count = 0;
  };
  // Lazy min-heap entries: (priority snapshot, key). Stale when the stored
  // priority no longer matches Meta::priority.
  using HeapEntry = std::pair<double, trace::Key>;

  void evict_until_fits(std::uint64_t incoming_size);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<trace::Key, Meta> meta_;
  double age_ = 0.0;  // L
};

}  // namespace lhr::policy
