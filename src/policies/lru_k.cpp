#include "policies/lru_k.hpp"

#include <algorithm>
#include <limits>

namespace lhr::policy {

LruK::LruK(std::uint64_t capacity_bytes, std::size_t k, std::size_t eviction_sample,
           std::uint64_t seed)
    : CacheBase(capacity_bytes),
      k_(std::max<std::size_t>(k, 1)),
      eviction_sample_(std::max<std::size_t>(eviction_sample, 1)),
      rng_(seed) {}

std::string LruK::name() const { return "LRU-" + std::to_string(k_); }

void LruK::touch(History& h, trace::Time now) {
  if (h.times.empty()) h.times.assign(k_, 0.0);
  h.times[h.pos] = now;
  h.pos = (h.pos + 1) % k_;
  h.count = std::min(h.count + 1, k_);
  h.last = now;
}

double LruK::backward_k_time(const History& h) const {
  if (h.count < k_) {
    // Fewer than K references: maximal backward distance (preferred victim);
    // the caller breaks ties among these by last-use time.
    return -std::numeric_limits<double>::infinity();
  }
  // Oldest entry in the ring = K-th most recent reference.
  return h.times[h.pos];
}

bool LruK::access(const trace::Request& r) {
  ++accesses_;
  if (accesses_ % 65'536 == 0) prune_ghosts();

  History& h = history_[r.key];
  touch(h, r.time);

  if (contains(r.key)) return true;
  if (oversized(r.size)) return false;

  while (used_bytes() + r.size > capacity_bytes() && !resident_.empty()) {
    // Sampled victim: minimal (k-th reference time, last-use time).
    trace::Key victim = resident_.sample(rng_);
    double victim_kt = std::numeric_limits<double>::infinity();
    double victim_last = std::numeric_limits<double>::infinity();
    const std::size_t n = std::min(eviction_sample_, resident_.size());
    for (std::size_t s = 0; s < n; ++s) {
      const trace::Key candidate =
          (n == resident_.size()) ? resident_.at(s) : resident_.sample(rng_);
      const History& ch = history_[candidate];
      const double kt = backward_k_time(ch);
      if (kt < victim_kt || (kt == victim_kt && ch.last < victim_last)) {
        victim = candidate;
        victim_kt = kt;
        victim_last = ch.last;
      }
    }
    resident_.erase(victim);
    remove_object(victim);
  }
  resident_.insert(r.key);
  store_object(r.key, r.size);
  return false;
}

void LruK::prune_ghosts() {
  // Retain history for residents plus a bounded ghost population: drop the
  // oldest ghosts when more than 4x the resident count are tracked.
  const std::size_t limit = std::max<std::size_t>(resident_.size() * 4, 4096);
  if (history_.size() <= limit) return;
  std::vector<std::pair<double, trace::Key>> ghosts;
  ghosts.reserve(history_.size());
  for (const auto& [key, h] : history_) {
    if (!resident_.contains(key)) ghosts.emplace_back(h.last, key);
  }
  const std::size_t excess = history_.size() - limit;
  if (ghosts.size() <= excess) return;
  std::nth_element(ghosts.begin(), ghosts.begin() + static_cast<std::ptrdiff_t>(excess),
                   ghosts.end());
  for (std::size_t i = 0; i < excess; ++i) history_.erase(ghosts[i].second);
}

std::uint64_t LruK::metadata_bytes() const {
  return history_.size() *
             (sizeof(trace::Key) + sizeof(History) + k_ * sizeof(trace::Time) +
              2 * sizeof(void*)) +
         resident_.memory_bytes();
}

}  // namespace lhr::policy
