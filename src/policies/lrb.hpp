// LRB: Learning Relaxed Belady (Song et al., NSDI'20 — paper ref [56]).
//
// LRB learns to imitate a *relaxed* Belady oracle: instead of evicting the
// farthest-in-future object, it suffices to evict any object whose next
// request lies beyond the "Belady boundary". Mechanically:
//   * every request generates an unlabeled sample (features at request time);
//   * the sample is labeled with the time until the object's next request
//     when that request arrives, or with "beyond the memory window" when it
//     ages out unlabeled;
//   * a GBM regressor is (re)trained on recent labeled samples;
//   * eviction predicts the time-to-next-request of 64 sampled residents
//     and evicts the maximum (LRB's published eviction procedure);
//   * admission is admit-all (LRB is an eviction-side learner).
//
// This mirrors the published design with the same feature family the paper's
// LHR uses (IRTs + static features) so the two learners differ only in what
// they learn from — LRB from its own past, LHR from HRO's optimal decisions.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ml/features.hpp"
#include "ml/flat_forest.hpp"
#include "ml/gbdt.hpp"
#include "policies/sampled_set.hpp"
#include "sim/cache_policy.hpp"
#include "util/flat_hash_map.hpp"
#include "util/rng.hpp"

namespace lhr::policy {

struct LrbConfig {
  std::size_t memory_window = 1 << 17;    ///< requests a sample may stay unlabeled
  std::size_t train_interval = 50'000;    ///< labeled samples per retraining
  std::size_t max_train_samples = 40'000; ///< training batch cap
  std::size_t eviction_sample = 64;
  ml::FeatureConfig features;
  ml::GbdtConfig gbdt;
  std::uint64_t seed = 31337;
};

class Lrb final : public sim::CacheBase {
 public:
  explicit Lrb(std::uint64_t capacity_bytes, const LrbConfig& config = {});

  [[nodiscard]] std::string name() const override { return "LRB"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

  [[nodiscard]] bool model_trained() const noexcept { return model_.trained(); }
  [[nodiscard]] std::size_t trainings() const noexcept { return trainings_; }
  /// Cumulative seconds spent in Gbdt::fit (Figure 9's "running time").
  [[nodiscard]] double training_seconds() const noexcept { return training_seconds_; }

 private:
  struct PendingSample {
    trace::Key key = 0;
    std::uint64_t request_index = 0;
    trace::Time time = 0.0;
    bool labeled = false;
  };

  void add_labeled(std::size_t pending_slot, float target);
  void expire_pending();
  void maybe_train();
  void evict_until_fits(const trace::Request& r);

  LrbConfig config_;
  util::Xoshiro256 rng_;
  ml::FeatureExtractor extractor_;
  ml::Gbdt model_;
  ml::FlatForest forest_;  ///< compiled from model_ after every fit

  // Ring of pending samples; features stored flat alongside.
  std::deque<PendingSample> pending_;
  std::deque<float> pending_features_;  // dim() floats per sample
  std::uint64_t pending_base_index_ = 0;

  util::FlatHashMap<trace::Key, std::uint64_t> last_pending_;  // key -> request idx

  ml::Dataset train_x_;
  std::vector<float> train_y_;

  // Open-addressing like every other per-request map (PR 5); flat storage
  // also makes the eviction gather's candidate prefetch a one-line hint.
  util::FlatHashMap<trace::Key, trace::Time> resident_last_use_;
  SampledKeySet residents_;

  // Per-request / per-eviction scratch (avoids allocation churn on the hot
  // path; sized once per use, capacity persists).
  std::vector<float> feature_scratch_;
  std::vector<trace::Key> candidate_keys_;
  std::vector<float> candidate_rows_;    ///< eviction_sample rows, row-major
  std::vector<double> candidate_scores_;

  std::uint64_t request_index_ = 0;
  trace::Time now_ = 0.0;
  std::size_t trainings_ = 0;
  double training_seconds_ = 0.0;
};

}  // namespace lhr::policy
