// SecondHit: Akamai's cache-on-second-request admission rule (Maggs &
// Sitaraman, "Algorithmic Nuggets in Content Delivery" — paper ref [46]).
//
// A missed object is admitted only if it was requested before within a
// recent history horizon. Unlike B-LRU's Bloom filter, this keeps an exact
// (bounded) ghost table of last-seen times, which is how the rule is
// usually described; eviction is LRU.
#pragma once

#include <list>
#include <unordered_map>

#include "sim/cache_policy.hpp"

namespace lhr::policy {

struct SecondHitConfig {
  double history_horizon_s = 4.0 * 3600.0;  ///< remember first hits this long
  std::size_t max_ghosts = 1 << 20;         ///< bound on the ghost table
};

class SecondHit final : public sim::CacheBase {
 public:
  explicit SecondHit(std::uint64_t capacity_bytes, const SecondHitConfig& config = {});

  [[nodiscard]] std::string name() const override { return "SecondHit"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

 private:
  void evict_until_fits(std::uint64_t incoming_size);
  void prune_ghosts(trace::Time now);

  SecondHitConfig config_;
  std::list<trace::Key> order_;
  std::unordered_map<trace::Key, std::list<trace::Key>::iterator> where_;
  std::unordered_map<trace::Key, trace::Time> ghosts_;  // first-seen times
  std::uint64_t accesses_ = 0;
};

}  // namespace lhr::policy
