#include "policies/lhd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lhr::policy {

Lhd::Lhd(std::uint64_t capacity_bytes, const LhdConfig& config)
    : CacheBase(capacity_bytes), config_(config), rng_(config.seed) {
  classes_.resize(config_.size_classes);
  for (auto& c : classes_) {
    c.hits.assign(config_.age_bins, 0.0);
    c.evictions.assign(config_.age_bins, 0.0);
    // Optimistic start: young objects assumed dense so the cache can learn.
    c.density.assign(config_.age_bins, 1.0);
    for (std::size_t a = 0; a < config_.age_bins; ++a) {
      c.density[a] = 1.0 / static_cast<double>(a + 1);
    }
  }
}

std::size_t Lhd::age_bin(double age_seconds) const {
  const double clamped = std::max(age_seconds, 1.0);
  const auto bin = static_cast<std::size_t>(std::log2(clamped));
  return std::min(bin, config_.age_bins - 1);
}

std::size_t Lhd::size_class_of(std::uint64_t size) const {
  // Log-spaced classes starting at 64 KB.
  const double ratio = std::max(static_cast<double>(size) / 65'536.0, 1.0);
  const auto cls = static_cast<std::size_t>(std::log2(ratio) / 2.0);
  return std::min(cls, config_.size_classes - 1);
}

double Lhd::hit_density(const Meta& m, std::uint64_t size, trace::Time now) const {
  const std::size_t bin = age_bin(now - m.last_access);
  return classes_[m.size_class].density[bin] /
         static_cast<double>(std::max<std::uint64_t>(size, 1));
}

void Lhd::reconfigure() {
  for (auto& c : classes_) {
    // density[a] = P(hit | alive at age a) / E[remaining lifetime], computed
    // by a reverse sweep over the age bins (events at age >= a).
    double hits_beyond = 0.0;
    double events_beyond = 0.0;
    double lifetime_beyond = 0.0;
    for (std::size_t a = c.hits.size(); a-- > 0;) {
      hits_beyond += c.hits[a];
      events_beyond += c.hits[a] + c.evictions[a];
      // Age bins are log-spaced: bin a spans ~2^a seconds of residency.
      lifetime_beyond +=
          (c.hits[a] + c.evictions[a]) * static_cast<double>(1ULL << std::min<std::size_t>(a, 40));
      if (events_beyond > 0.0) {
        c.density[a] = hits_beyond / std::max(lifetime_beyond, 1.0);
      }
      c.hits[a] *= config_.decay;
      c.evictions[a] *= config_.decay;
    }
  }
}

bool Lhd::access(const trace::Request& r) {
  if (++accesses_ % config_.reconfigure_interval == 0) reconfigure();

  const auto it = meta_.find(r.key);
  if (it != meta_.end()) {
    Meta& m = it->second;
    classes_[m.size_class].hits[age_bin(r.time - m.last_access)] += 1.0;
    m.last_access = r.time;
    return true;
  }
  if (oversized(r.size)) return false;

  while (used_bytes() + r.size > capacity_bytes() && !residents_.empty()) {
    trace::Key victim = residents_.sample(rng_);
    double worst = std::numeric_limits<double>::infinity();
    const std::size_t n = std::min(config_.eviction_sample, residents_.size());
    for (std::size_t s = 0; s < n; ++s) {
      const trace::Key candidate =
          (n == residents_.size()) ? residents_.at(s) : residents_.sample(rng_);
      const double d = hit_density(meta_.at(candidate), object_size(candidate), r.time);
      if (d < worst) {
        worst = d;
        victim = candidate;
      }
    }
    const Meta& vm = meta_.at(victim);
    classes_[vm.size_class].evictions[age_bin(r.time - vm.last_access)] += 1.0;
    meta_.erase(victim);
    residents_.erase(victim);
    remove_object(victim);
  }
  meta_[r.key] = Meta{r.time, size_class_of(r.size)};
  residents_.insert(r.key);
  store_object(r.key, r.size);
  return false;
}

std::uint64_t Lhd::metadata_bytes() const {
  return meta_.size() * (sizeof(trace::Key) + sizeof(Meta) + 2 * sizeof(void*)) +
         residents_.memory_bytes() +
         classes_.size() * 3 * config_.age_bins * sizeof(double);
}

}  // namespace lhr::policy
