// LRU-K (O'Neil et al., paper ref [51]): evicts the object with the largest
// backward K-distance, i.e. whose K-th most recent reference is oldest.
// The paper's SOTA set uses LRU-4.
//
// Reference history is also kept for a bounded ghost population of recently
// seen non-resident objects (the "retained information" of the original
// algorithm), so that an object's first K references are not forgotten
// between insertions. Victim selection uses uniform sampling, the standard
// production technique for priority-based eviction over byte caches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "policies/sampled_set.hpp"
#include "sim/cache_policy.hpp"
#include "util/rng.hpp"

namespace lhr::policy {

class LruK final : public sim::CacheBase {
 public:
  LruK(std::uint64_t capacity_bytes, std::size_t k = 4,
       std::size_t eviction_sample = 64, std::uint64_t seed = 4242);

  [[nodiscard]] std::string name() const override;
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

 private:
  struct History {
    std::vector<trace::Time> times;  // ring buffer of the last k reference times
    std::size_t pos = 0;
    std::size_t count = 0;
    trace::Time last = 0.0;
  };

  /// K-th most recent reference time; -inf when fewer than K references
  /// (such objects are preferred victims, ties broken by oldest last use).
  [[nodiscard]] double backward_k_time(const History& h) const;
  void touch(History& h, trace::Time now);
  void prune_ghosts();

  std::size_t k_;
  std::size_t eviction_sample_;
  util::Xoshiro256 rng_;
  std::unordered_map<trace::Key, History> history_;
  SampledKeySet resident_;
  std::uint64_t accesses_ = 0;
};

}  // namespace lhr::policy
