#include "policies/lfo.hpp"

#include <algorithm>
#include <cmath>

namespace lhr::policy {

Lfo::Lfo(std::uint64_t capacity_bytes, const LfoConfig& config)
    : CacheBase(capacity_bytes), config_(config), extractor_(config.features) {
  train_x_.n_features = extractor_.dim();
  feature_scratch_.resize(extractor_.dim());
}

void Lfo::add_labeled(std::size_t slot, float label) {
  const std::size_t dim = extractor_.dim();
  const std::size_t offset = slot * dim;
  for (std::size_t f = 0; f < dim; ++f) {
    train_x_.values.push_back(pending_features_[offset + f]);
  }
  train_y_.push_back(label);
  if (train_y_.size() > config_.max_train_samples) {
    train_y_.erase(train_y_.begin());
    train_x_.values.erase(train_x_.values.begin(),
                          train_x_.values.begin() + static_cast<std::ptrdiff_t>(dim));
  }
}

void Lfo::expire_and_train() {
  const std::size_t dim = extractor_.dim();
  while (!pending_.empty() &&
         pending_.front().request_index + config_.window_requests < request_index_) {
    if (!pending_.front().labeled) {
      add_labeled(0, 0.0f);  // aged out: OPT would not have cached it
      const auto lp = last_pending_.find(pending_.front().key);
      if (lp != last_pending_.end() && lp->second == pending_.front().request_index) {
        last_pending_.erase(lp);
      }
    }
    pending_.pop_front();
    pending_features_.erase(pending_features_.begin(),
                            pending_features_.begin() + static_cast<std::ptrdiff_t>(dim));
    ++pending_base_;
  }

  if (request_index_ > 0 && request_index_ % config_.window_requests == 0 &&
      train_y_.size() >= 1000) {
    model_.fit(train_x_, train_y_, config_.gbdt);
    forest_ = ml::FlatForest(model_);
  }
}

bool Lfo::access(const trace::Request& r) {
  const std::uint64_t idx = request_index_++;
  bytes_seen_ += static_cast<double>(r.size);

  // Label the outstanding sample: positive iff the approximate reuse
  // footprint fit in the cache.
  const auto lp = last_pending_.find(r.key);
  if (lp != last_pending_.end() && lp->second >= pending_base_) {
    PendingSample& ps = pending_[static_cast<std::size_t>(lp->second - pending_base_)];
    if (!ps.labeled) {
      const double footprint = bytes_seen_ - ps.bytes_seen;
      add_labeled(static_cast<std::size_t>(lp->second - pending_base_),
                  footprint <= static_cast<double>(capacity_bytes()) ? 1.0f : 0.0f);
      ps.labeled = true;
    }
  }

  {
    const std::size_t dim = extractor_.dim();
    const std::size_t old_size = pending_features_.size();
    pending_features_.resize(old_size + dim);
    extractor_.extract(r, feature_scratch_);
    std::copy(feature_scratch_.begin(), feature_scratch_.end(),
              pending_features_.begin() + static_cast<std::ptrdiff_t>(old_size));
    pending_.push_back(PendingSample{r.key, idx, bytes_seen_, false});
    last_pending_[r.key] = idx;
  }
  extractor_.record(r);
  expire_and_train();

  const auto it = where_.find(r.key);
  if (it != where_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (oversized(r.size)) return false;

  if (forest_.trained()) {
    extractor_.extract(r, feature_scratch_);  // post-record features of the fresh state
    if (forest_.score_row(feature_scratch_) < config_.admit_threshold) return false;
  }

  evict_until_fits(r.size);
  order_.push_front(r.key);
  where_[r.key] = order_.begin();
  store_object(r.key, r.size);
  return false;
}

void Lfo::evict_until_fits(std::uint64_t incoming_size) {
  while (used_bytes() + incoming_size > capacity_bytes() && !order_.empty()) {
    const trace::Key victim = order_.back();
    order_.pop_back();
    where_.erase(victim);
    remove_object(victim);
  }
}

std::uint64_t Lfo::metadata_bytes() const {
  return extractor_.memory_bytes() + model_.memory_bytes() +
         pending_.size() * sizeof(PendingSample) +
         pending_features_.size() * sizeof(float) +
         train_x_.values.size() * sizeof(float) + train_y_.size() * sizeof(float) +
         where_.size() * (2 * sizeof(trace::Key) + 4 * sizeof(void*));
}

}  // namespace lhr::policy
