// LIRS: Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS'02 —
// paper ref [38]), generalized to byte capacities.
//
// LIRS ranks blocks by their *inter-reference recency* (IRR — the recency of
// the previous access) rather than plain recency, which makes it immune to
// the long-scan pollution that defeats LRU. State:
//   * stack S: recency-ordered entries — resident LIR ("hot") blocks,
//     resident HIR blocks, and non-resident HIR ghosts;
//   * queue Q: resident HIR blocks, the eviction source;
//   * the LIR set is budgeted ~90% of capacity, resident HIR ~10%.
// Rules: a hit on an HIR entry that is still in S proves a small IRR and
// promotes it to LIR (demoting the LIR at S's bottom); S is pruned so its
// bottom is always LIR; evictions take Q's front.
#pragma once

#include <list>
#include <unordered_map>

#include "sim/cache_policy.hpp"

namespace lhr::policy {

struct LirsConfig {
  double lir_fraction = 0.90;          ///< byte budget of the LIR (hot) set
  double ghost_bytes_fraction = 2.0;   ///< non-resident ghost budget (× capacity)
};

class Lirs final : public sim::CacheBase {
 public:
  explicit Lirs(std::uint64_t capacity_bytes, const LirsConfig& config = {});

  [[nodiscard]] std::string name() const override { return "LIRS"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

  // Introspection for tests.
  [[nodiscard]] std::uint64_t lir_bytes() const noexcept { return lir_bytes_; }
  [[nodiscard]] std::size_t ghost_count() const noexcept { return ghosts_; }

 private:
  enum class Status : std::uint8_t { kLir, kHirResident, kHirGhost };
  struct Entry {
    Status status = Status::kHirGhost;
    std::uint64_t size = 0;
    bool in_stack = false;
    bool in_queue = false;
    std::list<trace::Key>::iterator stack_it;
    std::list<trace::Key>::iterator queue_it;
  };

  void stack_push_top(trace::Key key, Entry& e);
  void stack_remove(trace::Key key, Entry& e);
  void queue_push_back(trace::Key key, Entry& e);
  void queue_remove(trace::Key key, Entry& e);
  /// Removes trailing non-LIR entries so S's bottom is a LIR block.
  void prune_stack();
  /// Demotes the bottom LIR block to resident HIR (tail of Q).
  void demote_bottom_lir();
  /// Evicts resident HIR blocks (Q front) until `incoming` fits.
  void evict_until_fits(std::uint64_t incoming);
  void enforce_lir_budget();
  void bound_ghosts();

  LirsConfig config_;
  std::list<trace::Key> stack_;  // front = most recent
  std::list<trace::Key> queue_;  // front = eviction candidate
  std::unordered_map<trace::Key, Entry> entries_;
  std::uint64_t lir_bytes_ = 0;
  std::uint64_t ghost_bytes_ = 0;
  std::size_t ghosts_ = 0;
};

}  // namespace lhr::policy
