#include "policies/lfu_da.hpp"

namespace lhr::policy {

bool LfuDa::access(const trace::Request& r) {
  const auto it = meta_.find(r.key);
  if (it != meta_.end() && contains(r.key)) {
    Meta& m = it->second;
    ++m.count;
    m.priority = static_cast<double>(m.count) + age_;
    heap_.emplace(m.priority, r.key);
    return true;
  }
  if (oversized(r.size)) return false;

  evict_until_fits(r.size);
  Meta& m = meta_[r.key];
  m.count = 1;
  m.priority = 1.0 + age_;
  heap_.emplace(m.priority, r.key);
  store_object(r.key, r.size);
  return false;
}

void LfuDa::evict_until_fits(std::uint64_t incoming_size) {
  while (used_bytes() + incoming_size > capacity_bytes() && !heap_.empty()) {
    const auto [priority, key] = heap_.top();
    heap_.pop();
    const auto it = meta_.find(key);
    if (it == meta_.end() || it->second.priority != priority) continue;  // stale
    age_ = priority;  // dynamic aging: L <- priority of the evicted object
    meta_.erase(it);
    remove_object(key);
  }
}

std::uint64_t LfuDa::metadata_bytes() const {
  return meta_.size() * (sizeof(trace::Key) + sizeof(Meta) + 2 * sizeof(void*)) +
         heap_.size() * sizeof(HeapEntry);
}

}  // namespace lhr::policy
