// S4LRU: four-segment LRU (Huang et al., "An Analysis of Facebook Photo
// Caching", SOSP'13 — paper ref [34]).
//
// The cache is split into 4 equal-byte segments L0..L3. Misses are admitted
// to L0's MRU end; a hit in L_i promotes to L_{i+1} (capped at L3);
// overflow of L_i demotes its LRU tail to L_{i-1}, and L0's tail is evicted.
#pragma once

#include <array>
#include <list>
#include <unordered_map>

#include "sim/cache_policy.hpp"

namespace lhr::policy {

class S4Lru final : public sim::CacheBase {
 public:
  explicit S4Lru(std::uint64_t capacity_bytes) : CacheBase(capacity_bytes) {}

  [[nodiscard]] std::string name() const override { return "S4LRU"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

  /// Bytes currently held by segment i (for tests).
  [[nodiscard]] std::uint64_t segment_bytes(std::size_t i) const { return bytes_[i]; }

 private:
  static constexpr std::size_t kSegments = 4;
  struct Slot {
    std::size_t segment;
    std::list<trace::Key>::iterator it;
    std::uint64_t size;
  };

  [[nodiscard]] std::uint64_t segment_cap() const { return capacity_bytes() / kSegments; }
  void insert_into(std::size_t segment, trace::Key key, std::uint64_t size);
  /// Demotes overflow from `segment` downward; evicts from L0.
  void rebalance(std::size_t from_segment);

  std::array<std::list<trace::Key>, kSegments> lists_;  // front = MRU
  std::array<std::uint64_t, kSegments> bytes_{};
  std::unordered_map<trace::Key, Slot> slots_;
};

}  // namespace lhr::policy
