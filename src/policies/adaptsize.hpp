// AdaptSize (Berger, Sitaraman, Harchol-Balter, NSDI'17 — paper ref [12]).
//
// Admission: a missed object of size s is admitted with probability
// exp(-s / c). Eviction: LRU. The size threshold c is re-tuned periodically
// by the paper's Markov-chain model: for an LRU cache, an object requested
// at Poisson rate λ_i and admitted with probability p_i resides with
// stationary probability ≈ p_i (1 - e^{-λ_i T}), where the characteristic
// time T solves  Σ_i s_i p_i (1 - e^{-λ_i T}) = capacity.  AdaptSize scans
// candidate c values on a log grid, solves T for each by bisection, and
// keeps the c maximizing the modeled object hit ratio.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/cache_policy.hpp"
#include "util/rng.hpp"

namespace lhr::policy {

struct AdaptSizeConfig {
  std::size_t reconfigure_interval = 250'000;  ///< requests between re-tunings
  std::size_t grid_points = 24;                ///< candidate c values per tuning
  std::uint64_t seed = 1234;
};

class AdaptSize final : public sim::CacheBase {
 public:
  AdaptSize(std::uint64_t capacity_bytes, const AdaptSizeConfig& config = {});

  [[nodiscard]] std::string name() const override { return "AdaptSize"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

  /// Current admission size parameter (exposed for tests).
  [[nodiscard]] double threshold_c() const noexcept { return c_; }

 private:
  struct WindowStat {
    std::uint64_t count = 0;
    std::uint64_t size = 0;
  };

  void evict_until_fits(std::uint64_t incoming_size);
  void reconfigure();
  /// Modeled object hit ratio for admission parameter c over the window stats.
  [[nodiscard]] double modeled_hit_ratio(double c, double window_seconds) const;

  AdaptSizeConfig config_;
  util::Xoshiro256 rng_;
  double c_;

  std::list<trace::Key> order_;
  std::unordered_map<trace::Key, std::list<trace::Key>::iterator> where_;

  std::unordered_map<trace::Key, WindowStat> window_stats_;
  trace::Time window_start_ = 0.0;
  trace::Time last_time_ = 0.0;
  std::size_t since_reconfigure_ = 0;
};

}  // namespace lhr::policy
