#include "policies/hawkeye.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace lhr::policy {

Hawkeye::Hawkeye(std::uint64_t capacity_bytes, const HawkeyeConfig& config)
    : CacheBase(capacity_bytes), config_(config), rng_(config.seed) {
  counters_.assign(1ULL << config_.predictor_bits, config_.friendly_threshold);
}

std::size_t Hawkeye::counter_slot(trace::Key key) const {
  return static_cast<std::size_t>(util::mix64(key)) & (counters_.size() - 1);
}

bool Hawkeye::predicts_friendly(trace::Key key) const {
  return counters_[counter_slot(key)] >= config_.friendly_threshold;
}

void Hawkeye::advance_buckets(std::uint64_t now_index) {
  const std::uint64_t bucket = now_index / config_.bucket_requests;
  while (first_bucket_ + occupancy_.size() <= bucket) {
    occupancy_.push_back(0);
    if (occupancy_.size() > config_.max_buckets) {
      occupancy_.pop_front();
      ++first_bucket_;
    }
  }
}

void Hawkeye::train_on_reuse(trace::Key key, std::uint64_t size,
                             std::uint64_t prev_index, std::uint64_t now_index) {
  const std::uint64_t prev_bucket = prev_index / config_.bucket_requests;
  const std::uint64_t now_bucket = now_index / config_.bucket_requests;
  if (prev_bucket < first_bucket_) return;  // interval fell out of history

  // Would OPT have kept this object across [prev, now)?
  bool fits = true;
  for (std::uint64_t b = prev_bucket; b <= now_bucket; ++b) {
    if (occupancy_[static_cast<std::size_t>(b - first_bucket_)] + size >
        capacity_bytes()) {
      fits = false;
      break;
    }
  }
  std::uint8_t& counter = counters_[counter_slot(key)];
  if (fits) {
    for (std::uint64_t b = prev_bucket; b <= now_bucket; ++b) {
      occupancy_[static_cast<std::size_t>(b - first_bucket_)] += size;
    }
    if (counter < 7) ++counter;
  } else {
    if (counter > 0) --counter;
  }
}

bool Hawkeye::access(const trace::Request& r) {
  const std::uint64_t now = request_index_++;
  advance_buckets(now);

  // OPTgen training on the reuse interval.
  const auto hist = last_index_.find(r.key);
  if (hist != last_index_.end()) {
    train_on_reuse(r.key, r.size, hist->second, now);
    hist->second = now;
  } else {
    last_index_.emplace(r.key, now);
  }
  if (now % (config_.bucket_requests * config_.max_buckets) == 0) prune_history();

  const bool friendly = predicts_friendly(r.key);

  const auto res = residents_.find(r.key);
  if (res != residents_.end()) {
    res->second.rrpv = friendly ? 0 : 7;
    res->second.last_index = now;
    return true;
  }

  if (oversized(r.size)) return false;
  if (!friendly) return false;  // bypass cache-averse objects

  while (used_bytes() + r.size > capacity_bytes() && !resident_keys_.empty()) {
    // Sampled victim: max RRPV, then oldest last use.
    trace::Key victim = resident_keys_.sample(rng_);
    int victim_rrpv = -1;
    std::uint64_t victim_age = 0;
    const std::size_t n = std::min(config_.eviction_sample, resident_keys_.size());
    for (std::size_t s = 0; s < n; ++s) {
      const trace::Key candidate = (n == resident_keys_.size())
                                       ? resident_keys_.at(s)
                                       : resident_keys_.sample(rng_);
      const Resident& c = residents_.at(candidate);
      const std::uint64_t age = now - c.last_index;
      if (static_cast<int>(c.rrpv) > victim_rrpv ||
          (static_cast<int>(c.rrpv) == victim_rrpv && age > victim_age)) {
        victim = candidate;
        victim_rrpv = static_cast<int>(c.rrpv);
        victim_age = age;
      }
    }
    // Belady-aware detraining: evicting a friendly line means the predictor
    // was too optimistic (original Hawkeye decrements on such evictions).
    if (victim_rrpv == 0) {
      std::uint8_t& counter = counters_[counter_slot(victim)];
      if (counter > 0) --counter;
    }
    residents_.erase(victim);
    resident_keys_.erase(victim);
    remove_object(victim);
  }
  residents_[r.key] = Resident{0, now};
  resident_keys_.insert(r.key);
  store_object(r.key, r.size);
  return false;
}

void Hawkeye::prune_history() {
  const std::uint64_t horizon =
      first_bucket_ * config_.bucket_requests;  // oldest tracked index
  for (auto it = last_index_.begin(); it != last_index_.end();) {
    if (it->second < horizon && !residents_.contains(it->first)) {
      it = last_index_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t Hawkeye::metadata_bytes() const {
  return counters_.size() + occupancy_.size() * sizeof(std::uint64_t) +
         last_index_.size() * (sizeof(trace::Key) + sizeof(std::uint64_t) + 2 * sizeof(void*)) +
         residents_.size() * (sizeof(trace::Key) + sizeof(Resident) + 2 * sizeof(void*)) +
         resident_keys_.memory_bytes();
}

}  // namespace lhr::policy
