#include "policies/lru.hpp"

namespace lhr::policy {

bool Lru::access(const trace::Request& r) {
  const auto it = where_.find(r.key);
  if (it != where_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (oversized(r.size)) return false;
  evict_until_fits(r.size);
  order_.push_front(r.key);
  where_[r.key] = order_.begin();
  store_object(r.key, r.size);
  return false;
}

void Lru::evict_until_fits(std::uint64_t incoming_size) {
  while (used_bytes() + incoming_size > capacity_bytes() && !order_.empty()) {
    const trace::Key victim = order_.back();
    order_.pop_back();
    where_.erase(victim);
    remove_object(victim);
  }
}

std::uint64_t Lru::metadata_bytes() const {
  // list node (key + 2 pointers) + hash map node per object.
  return object_count() * (sizeof(trace::Key) + 4 * sizeof(void*) + sizeof(trace::Key));
}

}  // namespace lhr::policy
