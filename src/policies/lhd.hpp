// LHD: Least Hit Density (Beckmann, Chen, Cidon, NSDI'18 — paper ref [8]).
//
// Evicts the object with the lowest *hit density*: expected hits per byte
// of cache space per unit time. LHD estimates hit density empirically from
// the ages at which objects of each class hit or are evicted; we follow the
// published design with log-spaced age bins and size-based classes, using
// sampled eviction (the paper's own mechanism).
//
// For an object of class c at age bin a:
//   density(c, a) = E[hits at ages >= a] / E[resource consumed beyond a]
// estimated from per-class counters with exponential decay, divided by the
// object's size.
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "policies/sampled_set.hpp"
#include "sim/cache_policy.hpp"
#include "util/rng.hpp"

namespace lhr::policy {

struct LhdConfig {
  std::size_t age_bins = 32;        ///< log-spaced bins over [1s, ~2^31 s]
  std::size_t size_classes = 8;     ///< log-spaced size classes
  double decay = 0.9;               ///< per-reconfiguration EWMA factor
  std::size_t reconfigure_interval = 50'000;  ///< requests between refits
  std::size_t eviction_sample = 64;
  std::uint64_t seed = 909;
};

class Lhd final : public sim::CacheBase {
 public:
  explicit Lhd(std::uint64_t capacity_bytes, const LhdConfig& config = {});

  [[nodiscard]] std::string name() const override { return "LHD"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

 private:
  struct Meta {
    trace::Time last_access = 0.0;
    std::size_t size_class = 0;
  };
  struct ClassStats {
    std::vector<double> hits;       // per age bin
    std::vector<double> evictions;  // per age bin
    std::vector<double> density;    // derived: hit density per age bin
  };

  [[nodiscard]] std::size_t age_bin(double age_seconds) const;
  [[nodiscard]] std::size_t size_class_of(std::uint64_t size) const;
  [[nodiscard]] double hit_density(const Meta& m, std::uint64_t size,
                                   trace::Time now) const;
  void reconfigure();

  LhdConfig config_;
  util::Xoshiro256 rng_;
  std::vector<ClassStats> classes_;
  std::unordered_map<trace::Key, Meta> meta_;
  SampledKeySet residents_;
  std::uint64_t accesses_ = 0;
};

}  // namespace lhr::policy
