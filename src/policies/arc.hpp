// ARC: Adaptive Replacement Cache (Megiddo & Modha, FAST'03 — paper ref
// [48]), generalized from slot counts to byte capacities.
//
// Four lists: T1 (recent, resident), T2 (frequent, resident), B1/B2 (ghost
// histories of evictions from T1/T2). The adaptation target p (in bytes)
// shifts toward recency when B1 ghosts re-appear and toward frequency when
// B2 ghosts do; REPLACE evicts from T1 when |T1| > p, else from T2. Ghost
// lists are bounded to one cache's worth of bytes each, as in the original.
#pragma once

#include <list>
#include <unordered_map>

#include "sim/cache_policy.hpp"

namespace lhr::policy {

class Arc final : public sim::CacheBase {
 public:
  explicit Arc(std::uint64_t capacity_bytes) : CacheBase(capacity_bytes) {}

  [[nodiscard]] std::string name() const override { return "ARC"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

  /// Adaptation target in bytes (exposed for tests).
  [[nodiscard]] double target_p() const noexcept { return p_; }

 private:
  enum class ListId : std::uint8_t { kT1, kT2, kB1, kB2 };
  struct Slot {
    ListId list;
    std::list<trace::Key>::iterator it;
    std::uint64_t size;
  };

  void replace(bool hit_in_b2, std::uint64_t incoming_size);
  void evict_lru(ListId from);   // resident -> matching ghost list
  void drop_ghost_lru(ListId from);
  void trim_ghosts();
  std::list<trace::Key>& list_of(ListId id);
  std::uint64_t& bytes_of(ListId id);
  void move_to_front(trace::Key key, ListId to);

  std::list<trace::Key> t1_, t2_, b1_, b2_;  // front = MRU
  std::uint64_t t1_bytes_ = 0, t2_bytes_ = 0, b1_bytes_ = 0, b2_bytes_ = 0;
  std::unordered_map<trace::Key, Slot> slots_;
  double p_ = 0.0;
};

}  // namespace lhr::policy
