#include "policies/rl_cache.hpp"

#include <algorithm>
#include <cmath>

namespace lhr::policy {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

RlCache::RlCache(std::uint64_t capacity_bytes, const RlCacheConfig& config)
    : CacheBase(capacity_bytes), config_(config), rng_(config.seed) {}

std::size_t RlCache::bucket_of(std::uint64_t size, double irt_seconds,
                               std::uint64_t count) const {
  const auto size_cls = std::min<std::size_t>(
      static_cast<std::size_t>(
          std::log2(std::max(static_cast<double>(size) / 1024.0, 1.0)) / 2.0),
      kSizeClasses - 1);
  const auto rec_cls = std::min<std::size_t>(
      static_cast<std::size_t>(std::log2(std::max(irt_seconds, 1.0)) / 2.0),
      kRecencyClasses - 1);
  const auto freq_cls =
      std::min<std::size_t>(static_cast<std::size_t>(std::log2(std::max<double>(
                                static_cast<double>(count), 1.0))),
                            kFrequencyClasses - 1);
  return (size_cls * kRecencyClasses + rec_cls) * kFrequencyClasses + freq_cls;
}

double RlCache::admit_probability(std::uint64_t size, double irt_seconds,
                                  std::uint64_t count) const {
  return sigmoid(theta_[bucket_of(size, irt_seconds, count)]);
}

void RlCache::reinforce(History& h, double reward) {
  if (!h.pending) return;
  // REINFORCE for a Bernoulli policy: d log pi / d theta = a - p,
  // where a = 1 for "admit".
  const double action = h.admitted ? 1.0 : 0.0;
  theta_[h.bucket] += config_.learning_rate * reward *
                      (action - static_cast<double>(h.p_at_decision));
  theta_[h.bucket] = std::clamp(theta_[h.bucket], -6.0, 6.0);
  h.pending = false;
}

bool RlCache::access(const trace::Request& r) {
  if (++accesses_ % 65'536 == 0) prune_history();

  History& h = history_[r.key];
  const double irt = h.count > 0 ? std::max(r.time - h.last_seen, 1e-6) : 1e9;

  const auto resident = where_.find(r.key);
  if (resident != where_.end()) {
    // Delayed reward: the admission decision paid off.
    reinforce(h, +1.0);
    ++h.count;
    h.last_seen = r.time;
    order_.splice(order_.begin(), order_, resident->second);
    return true;
  }

  // If we bypassed this object earlier and it came back, that was a mistake.
  if (h.pending && !h.admitted) reinforce(h, -config_.bypass_penalty);

  ++h.count;
  h.last_seen = r.time;
  if (oversized(r.size)) return false;

  const std::size_t bucket = bucket_of(r.size, irt, h.count);
  const double p = sigmoid(theta_[bucket]);
  const bool admit = rng_.next_double() < p;
  h.pending = true;
  h.admitted = admit;
  h.bucket = static_cast<std::uint16_t>(bucket);
  h.p_at_decision = static_cast<float>(p);
  if (!admit) return false;

  evict_until_fits(r.size, r.time);
  order_.push_front(r.key);
  where_[r.key] = order_.begin();
  store_object(r.key, r.size);
  return false;
}

void RlCache::evict_until_fits(std::uint64_t incoming_size, trace::Time /*now*/) {
  while (used_bytes() + incoming_size > capacity_bytes() && !order_.empty()) {
    const trace::Key victim = order_.back();
    order_.pop_back();
    where_.erase(victim);
    remove_object(victim);
    // Evicted without a hit since admission: the admission was wasted.
    const auto h = history_.find(victim);
    if (h != history_.end() && h->second.pending && h->second.admitted) {
      reinforce(h->second, -config_.eviction_penalty);
    }
  }
}

void RlCache::prune_history() {
  // Bound the ghost history to ~4x the resident population.
  const std::size_t limit = std::max<std::size_t>(where_.size() * 4, 8192);
  if (history_.size() <= limit) return;
  for (auto it = history_.begin(); it != history_.end() && history_.size() > limit;) {
    if (!where_.contains(it->first) && !it->second.pending) {
      it = history_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t RlCache::metadata_bytes() const {
  return sizeof(theta_) +
         history_.size() * (sizeof(trace::Key) + sizeof(History) + 2 * sizeof(void*)) +
         where_.size() * (2 * sizeof(trace::Key) + 4 * sizeof(void*));
}

}  // namespace lhr::policy
