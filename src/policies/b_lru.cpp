#include "policies/b_lru.hpp"

namespace lhr::policy {

BLru::BLru(std::uint64_t capacity_bytes, const BLruConfig& config)
    : CacheBase(capacity_bytes),
      config_(config),
      filter_(config.expected_items, config.false_positive_rate) {}

bool BLru::access(const trace::Request& r) {
  const auto it = where_.find(r.key);
  if (it != where_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (oversized(r.size)) return false;

  const bool seen_before = filter_.insert(r.key);
  if (filter_.inserted() >= config_.expected_items) filter_.clear();  // new epoch
  if (!seen_before) return false;  // one-hit-wonder shield

  evict_until_fits(r.size);
  order_.push_front(r.key);
  where_[r.key] = order_.begin();
  store_object(r.key, r.size);
  return false;
}

void BLru::evict_until_fits(std::uint64_t incoming_size) {
  while (used_bytes() + incoming_size > capacity_bytes() && !order_.empty()) {
    const trace::Key victim = order_.back();
    order_.pop_back();
    where_.erase(victim);
    remove_object(victim);
  }
}

std::uint64_t BLru::metadata_bytes() const {
  return filter_.memory_bytes() +
         where_.size() * (2 * sizeof(trace::Key) + 4 * sizeof(void*));
}

}  // namespace lhr::policy
