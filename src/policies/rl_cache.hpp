// RL-Cache-style learned admission (Kirilin et al., JSAC'20 — paper ref
// [40]; also the RL line of work the paper's §8 critiques).
//
// Admission is a stochastic policy over coarse feature buckets
// (size class × recency class × frequency class): p_admit = sigmoid(theta_b).
// The parameters are updated by a REINFORCE-style rule when an admission
// decision's delayed reward materializes — +1 if the object is re-requested
// while resident (the admission paid off), -cost if it is evicted unused or
// a bypassed object is re-requested soon (the decision was wrong).
//
// The paper argues such delayed-reward learners adapt slowly compared to
// LHR's supervised imitation of HRO; this implementation lets the
// benchmarks make that comparison concrete. Eviction is LRU.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/cache_policy.hpp"
#include "util/rng.hpp"

namespace lhr::policy {

struct RlCacheConfig {
  double learning_rate = 0.05;
  double bypass_penalty = 0.5;   ///< cost of bypassing an object that returns
  double eviction_penalty = 0.3; ///< cost of admitting an object never reused
  std::uint64_t seed = 555;
};

class RlCache final : public sim::CacheBase {
 public:
  explicit RlCache(std::uint64_t capacity_bytes, const RlCacheConfig& config = {});

  [[nodiscard]] std::string name() const override { return "RL-Cache"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

  /// Current admission probability for a feature bucket (for tests).
  [[nodiscard]] double admit_probability(std::uint64_t size, double irt_seconds,
                                         std::uint64_t count) const;

 private:
  static constexpr std::size_t kSizeClasses = 8;
  static constexpr std::size_t kRecencyClasses = 8;
  static constexpr std::size_t kFrequencyClasses = 4;
  static constexpr std::size_t kBuckets =
      kSizeClasses * kRecencyClasses * kFrequencyClasses;

  struct History {
    trace::Time last_seen = 0.0;
    std::uint32_t count = 0;
    // Outstanding decision awaiting its delayed reward:
    bool pending = false;
    bool admitted = false;
    std::uint16_t bucket = 0;
    float p_at_decision = 0.5f;
  };

  [[nodiscard]] std::size_t bucket_of(std::uint64_t size, double irt_seconds,
                                      std::uint64_t count) const;
  void reinforce(History& h, double reward);
  void evict_until_fits(std::uint64_t incoming_size, trace::Time now);
  void prune_history();

  RlCacheConfig config_;
  util::Xoshiro256 rng_;
  std::array<double, kBuckets> theta_{};
  std::unordered_map<trace::Key, History> history_;
  std::list<trace::Key> order_;
  std::unordered_map<trace::Key, std::list<trace::Key>::iterator> where_;
  std::uint64_t accesses_ = 0;
};

}  // namespace lhr::policy
