#include "policies/lirs.hpp"

#include <algorithm>

namespace lhr::policy {

Lirs::Lirs(std::uint64_t capacity_bytes, const LirsConfig& config)
    : CacheBase(capacity_bytes), config_(config) {}

void Lirs::stack_push_top(trace::Key key, Entry& e) {
  if (e.in_stack) stack_.erase(e.stack_it);
  stack_.push_front(key);
  e.stack_it = stack_.begin();
  e.in_stack = true;
}

void Lirs::stack_remove(trace::Key key, Entry& e) {
  (void)key;
  if (!e.in_stack) return;
  stack_.erase(e.stack_it);
  e.in_stack = false;
}

void Lirs::queue_push_back(trace::Key key, Entry& e) {
  if (e.in_queue) queue_.erase(e.queue_it);
  queue_.push_back(key);
  e.queue_it = std::prev(queue_.end());
  e.in_queue = true;
}

void Lirs::queue_remove(trace::Key key, Entry& e) {
  (void)key;
  if (!e.in_queue) return;
  queue_.erase(e.queue_it);
  e.in_queue = false;
}

void Lirs::prune_stack() {
  while (!stack_.empty()) {
    const trace::Key bottom = stack_.back();
    Entry& e = entries_.at(bottom);
    if (e.status == Status::kLir) return;
    // HIR (resident or ghost) at the bottom carries no IRR information.
    stack_.pop_back();
    e.in_stack = false;
    if (e.status == Status::kHirGhost && !e.in_queue) {
      ghost_bytes_ -= e.size;
      --ghosts_;
      entries_.erase(bottom);
    }
  }
}

void Lirs::demote_bottom_lir() {
  // After prune_stack the bottom is LIR (if any LIR exists).
  prune_stack();
  if (stack_.empty()) return;
  const trace::Key bottom = stack_.back();
  Entry& e = entries_.at(bottom);
  if (e.status != Status::kLir) return;
  stack_.pop_back();
  e.in_stack = false;
  e.status = Status::kHirResident;
  lir_bytes_ -= e.size;
  queue_push_back(bottom, e);
  prune_stack();
}

void Lirs::enforce_lir_budget() {
  const auto lir_cap = static_cast<std::uint64_t>(
      config_.lir_fraction * static_cast<double>(capacity_bytes()));
  while (lir_bytes_ > lir_cap) demote_bottom_lir();
}

void Lirs::evict_until_fits(std::uint64_t incoming) {
  while (used_bytes() + incoming > capacity_bytes()) {
    if (queue_.empty()) {
      // No resident HIR left: demote a LIR block to make one.
      demote_bottom_lir();
      if (queue_.empty()) return;  // cache genuinely empty
    }
    const trace::Key victim = queue_.front();
    Entry& e = entries_.at(victim);
    queue_remove(victim, e);
    remove_object(victim);
    if (e.in_stack) {
      // Stays in S as a non-resident ghost (its recency is still useful).
      e.status = Status::kHirGhost;
      ghost_bytes_ += e.size;
      ++ghosts_;
    } else {
      entries_.erase(victim);
    }
  }
}

void Lirs::bound_ghosts() {
  const auto ghost_cap = static_cast<std::uint64_t>(
      config_.ghost_bytes_fraction * static_cast<double>(capacity_bytes()));
  while (ghost_bytes_ > ghost_cap && !stack_.empty()) {
    // Drop the oldest ghost in S (scan from the bottom; bounded in practice
    // because prune_stack keeps HIR runs short).
    bool dropped = false;
    for (auto it = std::prev(stack_.end());; --it) {
      Entry& e = entries_.at(*it);
      if (e.status == Status::kHirGhost) {
        const trace::Key key = *it;
        stack_.erase(it);
        ghost_bytes_ -= e.size;
        --ghosts_;
        entries_.erase(key);
        dropped = true;
        break;
      }
      if (it == stack_.begin()) break;
    }
    if (!dropped) break;
    prune_stack();
  }
}

bool Lirs::access(const trace::Request& r) {
  const auto lir_cap = static_cast<std::uint64_t>(
      config_.lir_fraction * static_cast<double>(capacity_bytes()));
  auto found = entries_.find(r.key);

  // --- Resident hit paths. ---
  if (found != entries_.end() && found->second.status == Status::kLir) {
    stack_push_top(r.key, found->second);
    prune_stack();
    return true;
  }
  if (found != entries_.end() && found->second.status == Status::kHirResident) {
    Entry& e = found->second;
    if (e.in_stack) {
      // Small IRR proven: promote to LIR; rebalance the LIR budget.
      e.status = Status::kLir;
      lir_bytes_ += e.size;
      queue_remove(r.key, e);
      stack_push_top(r.key, e);
      enforce_lir_budget();
    } else {
      // Long IRR: stay HIR; refresh both recency orders.
      stack_push_top(r.key, e);
      queue_push_back(r.key, e);
    }
    prune_stack();
    return true;
  }

  // --- Miss paths. ---
  if (oversized(r.size)) return false;

  evict_until_fits(r.size);
  if (used_bytes() + r.size > capacity_bytes()) return false;  // cannot make room

  // Eviction/pruning may have dropped this key's ghost: re-resolve it.
  found = entries_.find(r.key);
  const bool ghost_hit =
      found != entries_.end() && found->second.status == Status::kHirGhost;

  if (ghost_hit) {
    Entry& e = found->second;
    ghost_bytes_ -= e.size;
    --ghosts_;
    e.size = r.size;
    e.status = Status::kLir;  // ghost hit proves small IRR
    lir_bytes_ += r.size;
    stack_push_top(r.key, e);
    store_object(r.key, r.size);
    enforce_lir_budget();
  } else if (lir_bytes_ + r.size <= lir_cap && queue_.empty()) {
    // Cold start: fill the LIR set directly.
    Entry e;
    e.status = Status::kLir;
    e.size = r.size;
    lir_bytes_ += r.size;
    auto [it, inserted] = entries_.insert_or_assign(r.key, e);
    stack_push_top(r.key, it->second);
    store_object(r.key, r.size);
  } else {
    // Ordinary new block: resident HIR at S top and Q tail.
    Entry e;
    e.status = Status::kHirResident;
    e.size = r.size;
    auto [it, inserted] = entries_.insert_or_assign(r.key, e);
    stack_push_top(r.key, it->second);
    queue_push_back(r.key, it->second);
    store_object(r.key, r.size);
  }
  prune_stack();
  bound_ghosts();
  return false;
}

std::uint64_t Lirs::metadata_bytes() const {
  return entries_.size() * (sizeof(trace::Key) + sizeof(Entry) + 6 * sizeof(void*));
}

}  // namespace lhr::policy
