// RANDOM: evicts a uniformly random resident object. The memoryless
// baseline (paper §8).
#pragma once

#include "policies/sampled_set.hpp"
#include "sim/cache_policy.hpp"
#include "util/rng.hpp"

namespace lhr::policy {

class RandomPolicy final : public sim::CacheBase {
 public:
  explicit RandomPolicy(std::uint64_t capacity_bytes, std::uint64_t seed = 99)
      : CacheBase(capacity_bytes), rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "Random"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override {
    return keys_.memory_bytes();
  }

 private:
  SampledKeySet keys_;
  util::Xoshiro256 rng_;
};

}  // namespace lhr::policy
