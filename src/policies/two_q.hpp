// 2Q (Johnson & Shadmon, VLDB'94): the classic scan-resistant two-queue
// design that ARC later made adaptive.
//
// A1in: FIFO holding first-time objects (kin = 25% of capacity).
// A1out: ghost FIFO of keys evicted from A1in (kout = 50% nominal bytes).
// Am: LRU main. A miss whose key sits in A1out is "proven reused" and goes
// straight to Am; brand-new keys enter A1in and must earn their way back.
#pragma once

#include <list>
#include <unordered_map>

#include "sim/cache_policy.hpp"

namespace lhr::policy {

struct TwoQConfig {
  double kin_fraction = 0.25;   ///< share of capacity for A1in
  double kout_fraction = 0.50;  ///< ghost bytes (nominal) for A1out
};

class TwoQ final : public sim::CacheBase {
 public:
  explicit TwoQ(std::uint64_t capacity_bytes, const TwoQConfig& config = {});

  [[nodiscard]] std::string name() const override { return "2Q"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

 private:
  enum class Where : std::uint8_t { kA1in, kAm };
  struct Slot {
    Where where;
    std::list<trace::Key>::iterator it;
    std::uint64_t size;
  };

  void make_room(std::uint64_t incoming_size);
  void ghost_insert(trace::Key key, std::uint64_t size);

  TwoQConfig config_;
  std::list<trace::Key> a1in_, am_;          // front = newest / MRU
  std::list<trace::Key> a1out_;              // ghost keys, front = newest
  struct GhostSlot {
    std::list<trace::Key>::iterator it;
    std::uint64_t size;
  };
  std::unordered_map<trace::Key, Slot> slots_;
  std::unordered_map<trace::Key, GhostSlot> ghost_;
  std::uint64_t a1in_bytes_ = 0;
  std::uint64_t ghost_bytes_ = 0;
};

}  // namespace lhr::policy
