#include "policies/random_policy.hpp"

namespace lhr::policy {

bool RandomPolicy::access(const trace::Request& r) {
  if (contains(r.key)) return true;
  if (oversized(r.size)) return false;
  while (used_bytes() + r.size > capacity_bytes() && !keys_.empty()) {
    const trace::Key victim = keys_.sample(rng_);
    keys_.erase(victim);
    remove_object(victim);
  }
  keys_.insert(r.key);
  store_object(r.key, r.size);
  return false;
}

}  // namespace lhr::policy
