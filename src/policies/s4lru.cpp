#include "policies/s4lru.hpp"

#include <algorithm>

namespace lhr::policy {

void S4Lru::insert_into(std::size_t segment, trace::Key key, std::uint64_t size) {
  lists_[segment].push_front(key);
  slots_[key] = Slot{segment, lists_[segment].begin(), size};
  bytes_[segment] += size;
}

void S4Lru::rebalance(std::size_t from_segment) {
  // Cascade demotions from the touched segment down to L0, then evict.
  for (std::size_t seg = from_segment + 1; seg-- > 0;) {
    while (bytes_[seg] > segment_cap() && !lists_[seg].empty()) {
      const trace::Key victim = lists_[seg].back();
      Slot slot = slots_.at(victim);
      lists_[seg].pop_back();
      bytes_[seg] -= slot.size;
      if (seg == 0) {
        slots_.erase(victim);
        remove_object(victim);
      } else {
        // Demote to the MRU end of the segment below.
        lists_[seg - 1].push_front(victim);
        slots_[victim] = Slot{seg - 1, lists_[seg - 1].begin(), slot.size};
        bytes_[seg - 1] += slot.size;
      }
    }
  }
}

bool S4Lru::access(const trace::Request& r) {
  const auto it = slots_.find(r.key);
  if (it != slots_.end()) {
    // Promote to the next segment (or refresh within L3).
    const Slot slot = it->second;
    const std::size_t target = std::min(slot.segment + 1, kSegments - 1);
    lists_[slot.segment].erase(slot.it);
    bytes_[slot.segment] -= slot.size;
    insert_into(target, r.key, slot.size);
    rebalance(kSegments - 1);  // full cascade: also repairs capacity shrinks
    return true;
  }
  if (r.size > segment_cap()) return false;  // must fit one segment

  insert_into(0, r.key, r.size);
  store_object(r.key, r.size);
  rebalance(kSegments - 1);
  return false;
}

std::uint64_t S4Lru::metadata_bytes() const {
  return slots_.size() * (sizeof(trace::Key) + sizeof(Slot) + 4 * sizeof(void*));
}

}  // namespace lhr::policy
