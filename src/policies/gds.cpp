#include "policies/gds.hpp"

#include <algorithm>

namespace lhr::policy {

bool Gds::access(const trace::Request& r) {
  const double size = static_cast<double>(std::max<std::uint64_t>(r.size, 1));
  const auto it = priority_.find(r.key);
  if (it != priority_.end()) {
    it->second = age_ + 1.0 / size;  // refresh on hit
    heap_.emplace(it->second, r.key);
    return true;
  }
  if (oversized(r.size)) return false;

  evict_until_fits(r.size);
  priority_[r.key] = age_ + 1.0 / size;
  heap_.emplace(priority_[r.key], r.key);
  store_object(r.key, r.size);
  return false;
}

void Gds::evict_until_fits(std::uint64_t incoming_size) {
  while (used_bytes() + incoming_size > capacity_bytes() && !heap_.empty()) {
    const auto [priority, key] = heap_.top();
    heap_.pop();
    const auto it = priority_.find(key);
    if (it == priority_.end() || it->second != priority) continue;  // stale
    age_ = priority;
    priority_.erase(it);
    remove_object(key);
  }
}

std::uint64_t Gds::metadata_bytes() const {
  return priority_.size() * (sizeof(trace::Key) + sizeof(double) + 2 * sizeof(void*)) +
         heap_.size() * sizeof(HeapEntry);
}

}  // namespace lhr::policy
