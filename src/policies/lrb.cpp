#include "policies/lrb.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace lhr::policy {

Lrb::Lrb(std::uint64_t capacity_bytes, const LrbConfig& config)
    : CacheBase(capacity_bytes),
      config_(config),
      rng_(config.seed),
      extractor_(config.features) {
  train_x_.n_features = extractor_.dim();
  feature_scratch_.resize(extractor_.dim());
}

void Lrb::add_labeled(std::size_t pending_slot, float target) {
  const std::size_t dim = extractor_.dim();
  const std::size_t offset = pending_slot * dim;
  for (std::size_t f = 0; f < dim; ++f) {
    train_x_.values.push_back(pending_features_[offset + f]);
  }
  train_y_.push_back(target);
}

void Lrb::expire_pending() {
  const std::size_t dim = extractor_.dim();
  while (!pending_.empty() &&
         pending_.front().request_index + config_.memory_window < request_index_) {
    if (!pending_.front().labeled) {
      // Aged out unlabeled: relaxed-Belady "beyond the boundary" label.
      const float beyond =
          static_cast<float>(std::log1p(2.0 * (now_ - pending_.front().time)));
      add_labeled(0, beyond);
      const auto lp = last_pending_.find(pending_.front().key);
      if (lp != last_pending_.end() && lp->second == pending_.front().request_index) {
        last_pending_.erase(lp);
      }
    }
    pending_.pop_front();
    pending_features_.erase(pending_features_.begin(),
                            pending_features_.begin() + static_cast<std::ptrdiff_t>(dim));
    ++pending_base_index_;
  }
}

void Lrb::maybe_train() {
  if (train_y_.size() < config_.train_interval) return;
  const std::size_t dim = extractor_.dim();

  // Keep the most recent max_train_samples.
  if (train_y_.size() > config_.max_train_samples) {
    const std::size_t drop = train_y_.size() - config_.max_train_samples;
    train_y_.erase(train_y_.begin(), train_y_.begin() + static_cast<std::ptrdiff_t>(drop));
    train_x_.values.erase(
        train_x_.values.begin(),
        train_x_.values.begin() + static_cast<std::ptrdiff_t>(drop * dim));
  }

  const auto t0 = std::chrono::steady_clock::now();
  model_.fit(train_x_, train_y_, config_.gbdt);
  forest_ = ml::FlatForest(model_);
  training_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  ++trainings_;
  train_x_.values.clear();
  train_y_.clear();
}

bool Lrb::access(const trace::Request& r) {
  now_ = r.time;
  const std::uint64_t idx = request_index_++;

  // Label the key's outstanding sample with the realized reuse time.
  const auto lp = last_pending_.find(r.key);
  if (lp != last_pending_.end() && lp->second >= pending_base_index_) {
    const std::size_t slot = static_cast<std::size_t>(lp->second - pending_base_index_);
    PendingSample& ps = pending_[slot];
    if (!ps.labeled) {
      add_labeled(slot, static_cast<float>(std::log1p(r.time - ps.time)));
      ps.labeled = true;
    }
  }

  // Create this request's unlabeled sample (features *before* recording).
  {
    const std::size_t dim = extractor_.dim();
    const std::size_t old_size = pending_features_.size();
    pending_features_.resize(old_size + dim);
    extractor_.extract(r, feature_scratch_);
    std::copy(feature_scratch_.begin(), feature_scratch_.end(),
              pending_features_.begin() + static_cast<std::ptrdiff_t>(old_size));
    pending_.push_back(PendingSample{r.key, idx, r.time, false});
    last_pending_[r.key] = idx;
  }
  extractor_.record(r);
  expire_pending();
  maybe_train();

  const auto res = resident_last_use_.find(r.key);
  if (res != resident_last_use_.end()) {
    res->second = r.time;
    return true;
  }
  if (oversized(r.size)) return false;

  evict_until_fits(r);
  resident_last_use_[r.key] = r.time;
  residents_.insert(r.key);
  store_object(r.key, r.size);
  return false;
}

void Lrb::evict_until_fits(const trace::Request& r) {
  const std::size_t dim = extractor_.dim();
  while (used_bytes() + r.size > capacity_bytes() && !residents_.empty()) {
    trace::Key victim = residents_.sample(rng_);
    double worst = -std::numeric_limits<double>::infinity();
    const std::size_t n = std::min(config_.eviction_sample, residents_.size());
    if (forest_.trained()) {
      // Gather the sample's feature rows (same RNG draw order as the old
      // per-candidate loop) and score them in one blocked forest pass:
      // predicted time to next request, as of now, for every candidate.
      // Keys are drawn up front — the identical sequence of sample() calls
      // — so candidate s+1's history/size lines can be prefetched while
      // candidate s's features are built: the gather's dependent misses
      // overlap instead of serializing.
      candidate_keys_.clear();
      candidate_rows_.resize(n * dim);
      candidate_scores_.resize(n);
      for (std::size_t s = 0; s < n; ++s) {
        candidate_keys_.push_back(
            (n == residents_.size()) ? residents_.at(s) : residents_.sample(rng_));
      }
      for (std::size_t s = 0; s < n; ++s) {
        if (s + 1 < n) {
          extractor_.prefetch(candidate_keys_[s + 1]);
          prefetch_object(candidate_keys_[s + 1]);
        }
        const trace::Key candidate = candidate_keys_[s];
        extractor_.extract(trace::Request{now_, candidate, object_size(candidate)},
                           std::span<float>(candidate_rows_.data() + s * dim, dim));
      }
      forest_.score_block(candidate_rows_, n, candidate_scores_);
      // score_block is bit-identical to per-candidate predict, and the
      // strict > argmax visits candidates in the same order, so the victim
      // choice matches the pre-forest implementation exactly.
      for (std::size_t s = 0; s < n; ++s) {
        if (candidate_scores_[s] > worst) {
          worst = candidate_scores_[s];
          victim = candidate_keys_[s];
        }
      }
    } else {
      // Cold start: fall back to LRU (largest idle time evicted first).
      // Same draw-ahead shape as the trained branch so the last-use lookup
      // of candidate s+1 is in flight while s is compared.
      candidate_keys_.clear();
      for (std::size_t s = 0; s < n; ++s) {
        candidate_keys_.push_back(
            (n == residents_.size()) ? residents_.at(s) : residents_.sample(rng_));
      }
      for (std::size_t s = 0; s < n; ++s) {
        if (s + 1 < n) resident_last_use_.prefetch(candidate_keys_[s + 1]);
        const trace::Key candidate = candidate_keys_[s];
        const double score = now_ - resident_last_use_.at(candidate);
        if (score > worst) {
          worst = score;
          victim = candidate;
        }
      }
    }
    residents_.erase(victim);
    resident_last_use_.erase(victim);
    remove_object(victim);
  }
}

std::uint64_t Lrb::metadata_bytes() const {
  return extractor_.memory_bytes() + model_.memory_bytes() +
         pending_.size() * sizeof(PendingSample) +
         pending_features_.size() * sizeof(float) +
         train_x_.values.size() * sizeof(float) + train_y_.size() * sizeof(float) +
         last_pending_.memory_bytes() + resident_last_use_.memory_bytes() +
         residents_.memory_bytes();
}

}  // namespace lhr::policy
