// Hyperbolic caching (Blankstein, Sen, Freedman, ATC'17 — paper ref [13]).
//
// Each object's priority is its request count divided by the time it has
// spent in the cache: p_i = n_i / (now - t_insert). Unlike LRU/LFU this
// needs no eviction-ordered data structure; victims are found by sampling,
// exactly as the original system does. We size-weight the priority
// (n_i / (Δt · s_i)), the paper's cost-aware extension, since our caches
// are byte-bounded.
#pragma once

#include <unordered_map>

#include "policies/sampled_set.hpp"
#include "sim/cache_policy.hpp"
#include "util/rng.hpp"

namespace lhr::policy {

class Hyperbolic final : public sim::CacheBase {
 public:
  explicit Hyperbolic(std::uint64_t capacity_bytes, std::size_t eviction_sample = 64,
                      std::uint64_t seed = 1717)
      : CacheBase(capacity_bytes), eviction_sample_(eviction_sample), rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "Hyperbolic"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

 private:
  struct Meta {
    std::uint64_t count = 0;
    trace::Time inserted = 0.0;
  };

  [[nodiscard]] double priority(const Meta& m, std::uint64_t size,
                                trace::Time now) const;

  std::size_t eviction_sample_;
  util::Xoshiro256 rng_;
  std::unordered_map<trace::Key, Meta> meta_;
  SampledKeySet residents_;
};

}  // namespace lhr::policy
