// B-LRU: Bloom-filter LRU (paper §6.2 footnote 6).
//
// "Uses a Bloom filter to prevent one-hit contents from being admitted":
// a missed object is admitted only if the filter has already seen its key
// during the current filter epoch, i.e. on its second request. The filter
// is cleared when it saturates, starting a new epoch.
#pragma once

#include <list>
#include <unordered_map>

#include "sim/cache_policy.hpp"
#include "util/bloom_filter.hpp"

namespace lhr::policy {

struct BLruConfig {
  std::size_t expected_items = 1'000'000;  ///< filter sizing
  double false_positive_rate = 0.01;
};

class BLru final : public sim::CacheBase {
 public:
  explicit BLru(std::uint64_t capacity_bytes, const BLruConfig& config = {});

  [[nodiscard]] std::string name() const override { return "B-LRU"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

 private:
  void evict_until_fits(std::uint64_t incoming_size);

  BLruConfig config_;
  util::BloomFilter filter_;
  std::list<trace::Key> order_;
  std::unordered_map<trace::Key, std::list<trace::Key>::iterator> where_;
};

}  // namespace lhr::policy
