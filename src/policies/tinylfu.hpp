// TinyLFU admission (Einziger, Friedman, Manes — paper ref [25]) and
// W-TinyLFU (Caffeine's baseline policy, paper Appendix A.3 / ref [23-25]).
//
// TinyLFU: an LRU cache whose admission is gated by an approximate
// frequency comparison — a missed object only displaces a victim whose
// sketch frequency is lower. A Bloom-filter "doorkeeper" absorbs the
// long tail of singletons before they touch the sketch.
//
// W-TinyLFU: a small LRU *window* absorbs bursts of new objects; objects
// evicted from the window must pass the TinyLFU frequency duel to enter the
// main SLRU (probation + protected segments), which is how Caffeine ships.
#pragma once

#include <list>
#include <unordered_map>

#include "sim/cache_policy.hpp"
#include "util/bloom_filter.hpp"
#include "util/count_min_sketch.hpp"

namespace lhr::policy {

struct TinyLfuConfig {
  std::size_t sketch_counters = 1 << 18;
  std::uint64_t sketch_sample = 10ULL << 18;  ///< aging period (increments)
  std::size_t doorkeeper_items = 1 << 17;
  double doorkeeper_fpr = 0.02;
};

class TinyLfu final : public sim::CacheBase {
 public:
  explicit TinyLfu(std::uint64_t capacity_bytes, const TinyLfuConfig& config = {});

  [[nodiscard]] std::string name() const override { return "TinyLFU"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;
  /// Shrinking evicts LRU victims immediately (no frequency duel: the bytes
  /// must go regardless of who "deserves" to stay).
  void set_capacity(std::uint64_t bytes) override;

 private:
  /// Doorkeeper-boosted frequency estimate.
  [[nodiscard]] std::uint32_t frequency(trace::Key key) const;
  void on_request_seen(trace::Key key);

  TinyLfuConfig config_;
  util::CountMinSketch sketch_;
  util::BloomFilter doorkeeper_;
  std::list<trace::Key> order_;
  std::unordered_map<trace::Key, std::list<trace::Key>::iterator> where_;
};

struct WTinyLfuConfig {
  /// Share of capacity for the window LRU. Caffeine uses 1% for slot caches
  /// with millions of entries; CDN byte caches hold only hundreds-to-
  /// thousands of large objects, so a 1% window degenerates to a handful of
  /// slots. 10% keeps the window's role (absorbing bursts of new objects)
  /// at object-cache scale.
  double window_fraction = 0.10;
  double protected_fraction = 0.80;   ///< share of the main cache
  /// Caffeine's adaptivity (Einziger et al., "Adaptive Software Cache
  /// Management"): hill-climb the window fraction on the observed hit rate.
  bool adaptive_window = false;
  std::size_t adapt_interval = 65'536;  ///< requests per climbing step
  double adapt_step = 0.05;             ///< window-fraction step size
  TinyLfuConfig sketch;
};

class WTinyLfu final : public sim::CacheBase {
 public:
  explicit WTinyLfu(std::uint64_t capacity_bytes, const WTinyLfuConfig& config = {});

  [[nodiscard]] std::string name() const override { return "W-TinyLFU"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

  /// Current window fraction (moves only in adaptive mode).
  [[nodiscard]] double window_fraction() const noexcept {
    return config_.window_fraction;
  }
  void set_capacity(std::uint64_t bytes) override;

 private:
  enum class Segment : std::uint8_t { kWindow, kProbation, kProtected };

  void maybe_adapt();
  /// Evicts until window and main both fit their (possibly shrunk) shares.
  void enforce_caps();

  struct Slot {
    Segment segment;
    std::list<trace::Key>::iterator it;
    std::uint64_t size;
  };

  [[nodiscard]] std::uint32_t frequency(trace::Key key) const;
  void on_request_seen(trace::Key key);
  void insert_window(trace::Key key, std::uint64_t size);
  /// Moves window overflow through the frequency duel into probation.
  void drain_window();
  /// Frees `needed` bytes from probation (duel already won by `challenger`).
  bool make_room_in_main(std::uint64_t needed, std::uint32_t challenger_freq);
  void erase_slot(trace::Key key);

  WTinyLfuConfig config_;
  util::CountMinSketch sketch_;
  util::BloomFilter doorkeeper_;

  std::list<trace::Key> window_;      // front = MRU
  std::list<trace::Key> probation_;
  std::list<trace::Key> protected_;
  std::unordered_map<trace::Key, Slot> slots_;
  std::uint64_t window_bytes_ = 0;
  std::uint64_t probation_bytes_ = 0;
  std::uint64_t protected_bytes_ = 0;

  // Hill-climbing state (adaptive mode).
  std::uint64_t period_requests_ = 0;
  std::uint64_t period_hits_ = 0;
  double previous_hit_rate_ = -1.0;
  double climb_direction_ = 1.0;
};

}  // namespace lhr::policy
