#include "policies/gdsf.hpp"

#include <algorithm>

namespace lhr::policy {

bool Gdsf::access(const trace::Request& r) {
  const double size = static_cast<double>(std::max<std::uint64_t>(r.size, 1));
  const auto it = meta_.find(r.key);
  if (it != meta_.end() && contains(r.key)) {
    Meta& m = it->second;
    ++m.count;
    m.priority = age_ + static_cast<double>(m.count) / size;
    heap_.emplace(m.priority, r.key);
    return true;
  }
  if (oversized(r.size)) return false;

  evict_until_fits(r.size);
  Meta& m = meta_[r.key];
  m.count = 1;
  m.priority = age_ + 1.0 / size;
  heap_.emplace(m.priority, r.key);
  store_object(r.key, r.size);
  return false;
}

void Gdsf::evict_until_fits(std::uint64_t incoming_size) {
  while (used_bytes() + incoming_size > capacity_bytes() && !heap_.empty()) {
    const auto [priority, key] = heap_.top();
    heap_.pop();
    const auto it = meta_.find(key);
    if (it == meta_.end() || it->second.priority != priority) continue;  // stale
    age_ = priority;
    meta_.erase(it);
    remove_object(key);
  }
}

std::uint64_t Gdsf::metadata_bytes() const {
  return meta_.size() * (sizeof(trace::Key) + sizeof(Meta) + 2 * sizeof(void*)) +
         heap_.size() * sizeof(HeapEntry);
}

}  // namespace lhr::policy
