#include "policies/second_hit.hpp"

namespace lhr::policy {

SecondHit::SecondHit(std::uint64_t capacity_bytes, const SecondHitConfig& config)
    : CacheBase(capacity_bytes), config_(config) {}

bool SecondHit::access(const trace::Request& r) {
  if (++accesses_ % 65'536 == 0) prune_ghosts(r.time);

  const auto it = where_.find(r.key);
  if (it != where_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (oversized(r.size)) return false;

  const auto ghost = ghosts_.find(r.key);
  const bool seen_recently =
      ghost != ghosts_.end() && (r.time - ghost->second) <= config_.history_horizon_s;
  if (!seen_recently) {
    if (ghosts_.size() < config_.max_ghosts) ghosts_[r.key] = r.time;
    return false;  // first sighting: remember, do not admit
  }
  ghosts_.erase(ghost);

  evict_until_fits(r.size);
  order_.push_front(r.key);
  where_[r.key] = order_.begin();
  store_object(r.key, r.size);
  return false;
}

void SecondHit::evict_until_fits(std::uint64_t incoming_size) {
  while (used_bytes() + incoming_size > capacity_bytes() && !order_.empty()) {
    const trace::Key victim = order_.back();
    order_.pop_back();
    where_.erase(victim);
    remove_object(victim);
  }
}

void SecondHit::prune_ghosts(trace::Time now) {
  for (auto it = ghosts_.begin(); it != ghosts_.end();) {
    if (now - it->second > config_.history_horizon_s) {
      it = ghosts_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t SecondHit::metadata_bytes() const {
  return where_.size() * (2 * sizeof(trace::Key) + 4 * sizeof(void*)) +
         ghosts_.size() * (sizeof(trace::Key) + sizeof(trace::Time) + 2 * sizeof(void*));
}

}  // namespace lhr::policy
