#include "policies/tinylfu.hpp"

#include <algorithm>

namespace lhr::policy {

// ---------------------------------------------------------------- TinyLfu

TinyLfu::TinyLfu(std::uint64_t capacity_bytes, const TinyLfuConfig& config)
    : CacheBase(capacity_bytes),
      config_(config),
      sketch_(config.sketch_counters, config.sketch_sample),
      doorkeeper_(config.doorkeeper_items, config.doorkeeper_fpr) {}

std::uint32_t TinyLfu::frequency(trace::Key key) const {
  return sketch_.estimate(key) + (doorkeeper_.contains(key) ? 1 : 0);
}

void TinyLfu::on_request_seen(trace::Key key) {
  // Doorkeeper absorbs the first occurrence; repeats feed the sketch.
  if (doorkeeper_.insert(key)) sketch_.increment(key);
  if (doorkeeper_.inserted() >= config_.doorkeeper_items) doorkeeper_.clear();
}

bool TinyLfu::access(const trace::Request& r) {
  on_request_seen(r.key);
  const auto it = where_.find(r.key);
  if (it != where_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (oversized(r.size)) return false;

  // Frequency duel against every victim the admission would displace.
  const std::uint32_t incoming = frequency(r.key);
  std::uint64_t freed = 0;
  auto victim = order_.rbegin();
  std::vector<trace::Key> victims;
  while (used_bytes() - freed + r.size > capacity_bytes()) {
    if (victim == order_.rend()) return false;  // nothing left to evict
    if (frequency(*victim) >= incoming) return false;  // victim wins: bypass
    freed += object_size(*victim);
    victims.push_back(*victim);
    ++victim;
  }
  for (const trace::Key v : victims) {
    const auto vit = where_.find(v);
    order_.erase(vit->second);
    where_.erase(vit);
    remove_object(v);
  }
  order_.push_front(r.key);
  where_[r.key] = order_.begin();
  store_object(r.key, r.size);
  return false;
}

void TinyLfu::set_capacity(std::uint64_t bytes) {
  CacheBase::set_capacity(bytes);
  while (used_bytes() > capacity_bytes() && !order_.empty()) {
    const trace::Key victim = order_.back();
    order_.pop_back();
    where_.erase(victim);
    remove_object(victim);
  }
}

std::uint64_t TinyLfu::metadata_bytes() const {
  return sketch_.memory_bytes() + doorkeeper_.memory_bytes() +
         where_.size() * (2 * sizeof(trace::Key) + 4 * sizeof(void*));
}

// -------------------------------------------------------------- WTinyLfu

WTinyLfu::WTinyLfu(std::uint64_t capacity_bytes, const WTinyLfuConfig& config)
    : CacheBase(capacity_bytes),
      config_(config),
      sketch_(config.sketch.sketch_counters, config.sketch.sketch_sample),
      doorkeeper_(config.sketch.doorkeeper_items, config.sketch.doorkeeper_fpr) {}

std::uint32_t WTinyLfu::frequency(trace::Key key) const {
  return sketch_.estimate(key) + (doorkeeper_.contains(key) ? 1 : 0);
}

void WTinyLfu::on_request_seen(trace::Key key) {
  if (doorkeeper_.insert(key)) sketch_.increment(key);
  if (doorkeeper_.inserted() >= config_.sketch.doorkeeper_items) doorkeeper_.clear();
}

void WTinyLfu::erase_slot(trace::Key key) {
  const auto it = slots_.find(key);
  if (it == slots_.end()) return;
  switch (it->second.segment) {
    case Segment::kWindow:
      window_.erase(it->second.it);
      window_bytes_ -= it->second.size;
      break;
    case Segment::kProbation:
      probation_.erase(it->second.it);
      probation_bytes_ -= it->second.size;
      break;
    case Segment::kProtected:
      protected_.erase(it->second.it);
      protected_bytes_ -= it->second.size;
      break;
  }
  slots_.erase(it);
  remove_object(key);
}

bool WTinyLfu::access(const trace::Request& r) {
  on_request_seen(r.key);
  ++period_requests_;
  if (config_.adaptive_window && period_requests_ >= config_.adapt_interval) {
    maybe_adapt();
  }

  const auto it = slots_.find(r.key);
  if (it != slots_.end()) {
    ++period_hits_;
    Slot& slot = it->second;
    switch (slot.segment) {
      case Segment::kWindow:
        window_.splice(window_.begin(), window_, slot.it);
        break;
      case Segment::kProbation: {
        // Promote to protected; demote protected overflow back to probation.
        probation_.erase(slot.it);
        probation_bytes_ -= slot.size;
        protected_.push_front(r.key);
        slot.it = protected_.begin();
        slot.segment = Segment::kProtected;
        protected_bytes_ += slot.size;
        const auto protected_cap = static_cast<std::uint64_t>(
            config_.protected_fraction * (1.0 - config_.window_fraction) *
            static_cast<double>(capacity_bytes()));
        while (protected_bytes_ > protected_cap && protected_.size() > 1) {
          const trace::Key demoted = protected_.back();
          protected_.pop_back();
          Slot& ds = slots_.at(demoted);
          protected_bytes_ -= ds.size;
          probation_.push_front(demoted);
          ds.it = probation_.begin();
          ds.segment = Segment::kProbation;
          probation_bytes_ += ds.size;
        }
        break;
      }
      case Segment::kProtected:
        protected_.splice(protected_.begin(), protected_, slot.it);
        break;
    }
    return true;
  }

  if (oversized(r.size)) return false;
  insert_window(r.key, r.size);
  drain_window();
  return false;
}

void WTinyLfu::insert_window(trace::Key key, std::uint64_t size) {
  window_.push_front(key);
  slots_[key] = Slot{Segment::kWindow, window_.begin(), size};
  window_bytes_ += size;
  store_object(key, size);
}

void WTinyLfu::drain_window() {
  const auto window_cap = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(config_.window_fraction *
                                    static_cast<double>(capacity_bytes())));
  while (window_bytes_ > window_cap && !window_.empty()) {
    const trace::Key candidate = window_.back();
    window_.pop_back();
    Slot slot = slots_.at(candidate);
    window_bytes_ -= slot.size;
    slots_.erase(candidate);
    remove_object(candidate);

    // Candidate duels for a place in the main cache.
    const auto main_cap = static_cast<std::uint64_t>(
        (1.0 - config_.window_fraction) * static_cast<double>(capacity_bytes()));
    if (slot.size > main_cap) continue;
    const std::uint32_t challenger = frequency(candidate);
    const std::uint64_t main_bytes = probation_bytes_ + protected_bytes_;
    if (main_bytes + slot.size > main_cap) {
      if (!make_room_in_main(main_bytes + slot.size - main_cap, challenger)) {
        continue;  // victims won the duel: drop the candidate
      }
    }
    probation_.push_front(candidate);
    slots_[candidate] = Slot{Segment::kProbation, probation_.begin(), slot.size};
    probation_bytes_ += slot.size;
    store_object(candidate, slot.size);
  }
}

bool WTinyLfu::make_room_in_main(std::uint64_t needed, std::uint32_t challenger_freq) {
  // Victims come from probation LRU first, then protected LRU.
  std::vector<trace::Key> victims;
  std::uint64_t freed = 0;
  const auto consider = [&](const std::list<trace::Key>& seg) {
    for (auto it = seg.rbegin(); it != seg.rend() && freed < needed; ++it) {
      if (frequency(*it) >= challenger_freq) return false;  // victim survives
      freed += slots_.at(*it).size;
      victims.push_back(*it);
    }
    return true;
  };
  if (!consider(probation_) && freed < needed) return false;
  if (freed < needed && !consider(protected_)) return false;
  if (freed < needed) return false;
  for (const trace::Key v : victims) erase_slot(v);
  return true;
}

void WTinyLfu::maybe_adapt() {
  // Caffeine-style climber: keep moving the window boundary in the direction
  // that improved the hit rate, reverse otherwise.
  const double hit_rate = static_cast<double>(period_hits_) /
                          static_cast<double>(std::max<std::uint64_t>(period_requests_, 1));
  if (previous_hit_rate_ >= 0.0 && hit_rate < previous_hit_rate_) {
    climb_direction_ = -climb_direction_;
  }
  previous_hit_rate_ = hit_rate;
  period_requests_ = 0;
  period_hits_ = 0;
  config_.window_fraction = std::clamp(
      config_.window_fraction + climb_direction_ * config_.adapt_step, 0.01, 0.80);
  enforce_caps();
}

void WTinyLfu::enforce_caps() {
  drain_window();  // shrink the window share first
  // The main tier must also fit its (possibly reduced) share, or the total
  // would exceed capacity.
  const auto main_cap = static_cast<std::uint64_t>(
      (1.0 - config_.window_fraction) * static_cast<double>(capacity_bytes()));
  while (probation_bytes_ + protected_bytes_ > main_cap) {
    if (!probation_.empty()) {
      erase_slot(probation_.back());
    } else if (!protected_.empty()) {
      erase_slot(protected_.back());
    } else {
      break;
    }
  }
}

void WTinyLfu::set_capacity(std::uint64_t bytes) {
  CacheBase::set_capacity(bytes);
  enforce_caps();
}

std::uint64_t WTinyLfu::metadata_bytes() const {
  return sketch_.memory_bytes() + doorkeeper_.memory_bytes() +
         slots_.size() * (sizeof(trace::Key) + sizeof(Slot) + 4 * sizeof(void*));
}

}  // namespace lhr::policy
