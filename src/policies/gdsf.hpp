// GDSF: GreedyDual-Size-Frequency (Cherkasova, paper ref [18]).
//
// Priority H_i = L + C_i / s_i (cost = 1): frequently requested small
// objects are protected; large cold objects go first. L ages like LFU-DA.
#pragma once

#include <queue>
#include <unordered_map>

#include "sim/cache_policy.hpp"

namespace lhr::policy {

class Gdsf final : public sim::CacheBase {
 public:
  explicit Gdsf(std::uint64_t capacity_bytes) : CacheBase(capacity_bytes) {}

  [[nodiscard]] std::string name() const override { return "GDSF"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

 private:
  struct Meta {
    double priority = 0.0;
    std::uint64_t count = 0;
  };
  using HeapEntry = std::pair<double, trace::Key>;

  void evict_until_fits(std::uint64_t incoming_size);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<trace::Key, Meta> meta_;
  double age_ = 0.0;  // L
};

}  // namespace lhr::policy
