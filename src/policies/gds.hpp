// GDS: GreedyDual-Size (Cao & Irani, paper ref [15]).
//
// Priority H_i = L + cost / s_i with cost = 1 ("recency-sized" GreedyDual):
// the frequency-free ancestor of GDSF. Kept separate from GDSF so the
// benchmarks can show what the frequency term buys.
#pragma once

#include <queue>
#include <unordered_map>

#include "sim/cache_policy.hpp"

namespace lhr::policy {

class Gds final : public sim::CacheBase {
 public:
  explicit Gds(std::uint64_t capacity_bytes) : CacheBase(capacity_bytes) {}

  [[nodiscard]] std::string name() const override { return "GDS"; }
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

 private:
  using HeapEntry = std::pair<double, trace::Key>;
  void evict_until_fits(std::uint64_t incoming_size);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<trace::Key, double> priority_;
  double age_ = 0.0;
};

}  // namespace lhr::policy
