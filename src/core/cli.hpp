// Command-line simulator front end (webcachesim-style), factored into the
// library so argument parsing and run orchestration are unit-testable; the
// `lhr_sim` binary in examples/ is a thin wrapper.
//
//   lhr_sim --policy LHR --capacity-gb 64 --trace trace.txt
//   lhr_sim --policy LRU,LHR --capacity-gb 16,64 --synthetic cdn-a --requests 500000
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "server/fabric.hpp"
#include "sim/metrics.hpp"

namespace lhr::core {

struct CliOptions {
  std::vector<std::string> policies;        ///< --policy A,B,...
  std::vector<double> capacities_gb;        ///< --capacity-gb 16,64,...
  std::string trace_path;                   ///< --trace FILE (exclusive with synthetic)
  /// --trace-file FILE: a packed binary `.lhrt` trace, replayed zero-copy
  /// via mmap (O(chunk) resident memory). Validated at parse time: a bad
  /// magic/version or truncated file is a CLI error, not a mid-run throw.
  std::string trace_file;
  std::string synthetic;                    ///< --synthetic cdn-a|cdn-b|cdn-c|wiki
  std::size_t requests = 200'000;           ///< --requests N (synthetic only)
  std::uint64_t seed = 42;                  ///< --seed S
  std::size_t warmup = 0;                   ///< --warmup N
  bool csv = false;                         ///< --csv (machine-readable output)
  std::size_t train_threads = 0;            ///< --train-threads N (LHR family)
  bool async_train = false;                 ///< --async-train (LHR family)
  /// --serve-threads N: replay through the concurrent CdnServer serving
  /// path (a ShardedCache backend over the named policy) with N workers
  /// instead of the single-threaded simulator. 0 = plain sim::simulate.
  std::size_t serve_threads = 0;
  /// --procs P: fan the serving replay out across P worker processes (each
  /// re-execs this binary in hidden --replay-worker mode, mmaps the same
  /// .lhrt read-only and owns shards s % P == p), with --serve-threads
  /// replay threads *per process* (default 1). Canonical aggregates are
  /// byte-identical to --procs 1 at any P x threads (see DESIGN.md "Process
  /// fan-out"). 0 = in-process replay; incompatible with --fabric. Env
  /// default: LHR_SERVE_PROCS. A --trace / --synthetic source is spilled to
  /// a temporary .lhrt so workers can map it.
  std::size_t procs = 0;
  /// --origin-profile SPEC: origin latency model + fetch policy for the
  /// serving path, e.g. "lognormal:sigma=0.5,timeout=0.25,retries=3"
  /// (see server::parse_origin_profile). Requires --serve-threads.
  std::string origin_profile;
  /// --fault-schedule SPEC: deterministic origin fault episodes, e.g.
  /// "outage:100-160;error:200-400@0.5;slow:500-800@x4" (see
  /// server::FaultSchedule::parse). Requires --serve-threads or --fabric;
  /// with --fabric it applies to the innermost (origin-facing) link.
  std::string fault_schedule;
  /// --fabric SPEC: replay through a multi-tier edge -> regional -> origin
  /// fabric instead of a single node, e.g.
  /// "edge=4xLHR@1;regional=2xLRU@8;shards=16;link-rtt-ms=4;link-gbps=40"
  /// (see server::parse_fabric_spec). --serve-threads then sets the replay
  /// worker count (default 1); --policy/--capacity-gb are ignored (the
  /// spec carries per-tier policies and capacities).
  std::string fabric;
  /// --control-plane SPEC: shadow-rollout control plane for the LHR-family
  /// policies, e.g. "on" or "sample=0.5,window=512,agree=0.9,p99=2.5" (see
  /// server::parse_control_plane). Also settable via LHR_SHADOW /
  /// LHR_SHADOW_* environment knobs; the flag wins.
  std::string control_plane;
};

/// Parses argv. Returns std::nullopt and fills `error` on bad input;
/// `--help` yields an options struct with `policies` empty and no error.
[[nodiscard]] std::optional<CliOptions> parse_cli(int argc, const char* const* argv,
                                                  std::string& error);

/// Human- or CSV-formatted usage text.
[[nodiscard]] std::string cli_usage();

struct CliRunResult {
  std::string policy;
  double capacity_gb = 0.0;
  sim::SimMetrics metrics;
};

/// Executes the parsed run matrix (every policy × every capacity).
/// Throws std::runtime_error / std::invalid_argument on unusable options.
[[nodiscard]] std::vector<CliRunResult> run_cli(const CliOptions& options);

/// Renders results as a table or CSV per `options.csv`.
[[nodiscard]] std::string format_results(const std::vector<CliRunResult>& results,
                                         bool csv);

/// Executes a --fabric run: builds the fabric from options.fabric (with
/// --origin-profile / --fault-schedule applied to the origin-facing tier),
/// replays the trace at max(1, --serve-threads) workers. Throws on
/// unusable options.
[[nodiscard]] server::FabricReport run_fabric(const CliOptions& options);

/// Human-readable per-tier summary of a fabric replay (hit ratios,
/// inter-tier traffic, end-to-end latency quantiles, conservation status).
[[nodiscard]] std::string format_fabric_report(const server::FabricReport& report);

}  // namespace lhr::core
