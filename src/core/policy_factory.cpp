#include "core/policy_factory.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "core/lhr_cache.hpp"
#include "policies/adaptsize.hpp"
#include "policies/arc.hpp"
#include "policies/b_lru.hpp"
#include "policies/fifo.hpp"
#include "policies/gds.hpp"
#include "policies/gdsf.hpp"
#include "policies/hawkeye.hpp"
#include "policies/hyperbolic.hpp"
#include "policies/lfo.hpp"
#include "policies/lfu_da.hpp"
#include "policies/lhd.hpp"
#include "policies/lirs.hpp"
#include "policies/lrb.hpp"
#include "policies/lru.hpp"
#include "policies/lru_k.hpp"
#include "util/parse.hpp"
#include "policies/random_policy.hpp"
#include "policies/rl_cache.hpp"
#include "policies/s4lru.hpp"
#include "policies/second_hit.hpp"
#include "policies/tinylfu.hpp"
#include "policies/two_q.hpp"

namespace lhr::core {

namespace {

/// LhrConfig with the process-wide training knobs applied: explicit tuning
/// wins, then the LHR_TRAIN_THREADS / LHR_TRAIN_ASYNC environment variables,
/// then the struct defaults (sequential, synchronous).
LhrConfig tuned_lhr_config(const PolicyTuning& tuning) {
  LhrConfig config;
  if (tuning.lhr_train_threads >= 1) {
    config.gbdt.n_threads = tuning.lhr_train_threads;
  } else if (const char* env = std::getenv("LHR_TRAIN_THREADS")) {
    const std::uint64_t value = util::require_u64("LHR_TRAIN_THREADS", env);
    if (value >= 1) config.gbdt.n_threads = static_cast<std::size_t>(value);
  }
  if (tuning.lhr_async_train >= 0) {
    config.train_synchronously = tuning.lhr_async_train == 0;
  } else if (const char* env = std::getenv("LHR_TRAIN_ASYNC")) {
    if (*env != '\0' && std::string(env) != "0") config.train_synchronously = false;
  }

  // Shadow-rollout control plane: explicit spec wins, then the LHR_SHADOW
  // env spec; the LHR_SHADOW_* refinements then overlay individual fields
  // of whichever base is active (they are ignored while disabled).
  if (!tuning.control_plane_spec.empty()) {
    config.control_plane = server::parse_control_plane(tuning.control_plane_spec);
  } else if (const char* env = std::getenv("LHR_SHADOW")) {
    config.control_plane = server::parse_control_plane(env);
  }
  if (config.control_plane.enabled) {
    const auto env_double = [](const char* name, double& slot) {
      if (const char* env = std::getenv(name)) slot = util::require_double(name, env);
    };
    const auto env_size = [](const char* name, std::size_t& slot) {
      if (const char* env = std::getenv(name)) {
        slot = static_cast<std::size_t>(util::require_u64(name, env));
      }
    };
    env_double("LHR_SHADOW_SAMPLE", config.control_plane.sample_fraction);
    env_size("LHR_SHADOW_WINDOW", config.control_plane.window);
    env_double("LHR_SHADOW_AGREE", config.control_plane.min_agreement);
    env_double("LHR_SHADOW_DIV", config.control_plane.max_divergence);
    env_double("LHR_SHADOW_GUARD", config.control_plane.guard_divergence);
    env_double("LHR_SHADOW_REARM", config.control_plane.guard_rearm);
    if (const char* env = std::getenv("LHR_SHADOW_P99")) {
      config.control_plane.p99_budget_ms = util::require_double("LHR_SHADOW_P99", env);
      config.control_plane.autotune = config.control_plane.p99_budget_ms > 0.0;
    }
  }
  return config;
}

}  // namespace

std::unique_ptr<sim::CachePolicy> make_policy(const std::string& name,
                                              std::uint64_t capacity_bytes) {
  return make_policy(name, capacity_bytes, PolicyTuning{});
}

std::unique_ptr<sim::CachePolicy> make_policy(const std::string& name,
                                              std::uint64_t capacity_bytes,
                                              const PolicyTuning& tuning) {
  if (name == "LRU") return std::make_unique<policy::Lru>(capacity_bytes);
  if (name == "FIFO") return std::make_unique<policy::Fifo>(capacity_bytes);
  if (name == "Random") return std::make_unique<policy::RandomPolicy>(capacity_bytes);
  if (name == "LRU-4") return std::make_unique<policy::LruK>(capacity_bytes, 4);
  if (name == "LFU-DA") return std::make_unique<policy::LfuDa>(capacity_bytes);
  if (name == "GDS") return std::make_unique<policy::Gds>(capacity_bytes);
  if (name == "GDSF") return std::make_unique<policy::Gdsf>(capacity_bytes);
  if (name == "LHD") return std::make_unique<policy::Lhd>(capacity_bytes);
  if (name == "LIRS") return std::make_unique<policy::Lirs>(capacity_bytes);
  if (name == "Hyperbolic") return std::make_unique<policy::Hyperbolic>(capacity_bytes);
  if (name == "ARC") return std::make_unique<policy::Arc>(capacity_bytes);
  if (name == "S4LRU") return std::make_unique<policy::S4Lru>(capacity_bytes);
  if (name == "SecondHit") return std::make_unique<policy::SecondHit>(capacity_bytes);
  if (name == "RL-Cache") return std::make_unique<policy::RlCache>(capacity_bytes);
  if (name == "2Q") return std::make_unique<policy::TwoQ>(capacity_bytes);
  if (name == "AdaptSize") return std::make_unique<policy::AdaptSize>(capacity_bytes);
  if (name == "B-LRU") return std::make_unique<policy::BLru>(capacity_bytes);
  if (name == "TinyLFU") return std::make_unique<policy::TinyLfu>(capacity_bytes);
  if (name == "W-TinyLFU") return std::make_unique<policy::WTinyLfu>(capacity_bytes);
  if (name == "Hawkeye") return std::make_unique<policy::Hawkeye>(capacity_bytes);
  if (name == "LRB") return std::make_unique<policy::Lrb>(capacity_bytes);
  if (name == "LFO") return std::make_unique<policy::Lfo>(capacity_bytes);
  if (name == "LHR") {
    return std::make_unique<LhrCache>(capacity_bytes, tuned_lhr_config(tuning));
  }
  if (name == "LHR-Async") {
    // LHR with background retraining forced on: same algorithm, but window
    // boundaries no longer stall the request path on Gbdt::fit. Kept out of
    // all_policy_names() because its model-swap timing is scheduling-
    // dependent, which would make the deterministic policy sweeps flaky.
    LhrConfig config = tuned_lhr_config(tuning);
    config.train_synchronously = false;
    return std::make_unique<LhrCache>(capacity_bytes, config);
  }
  if (name == "D-LHR") {
    LhrConfig config = tuned_lhr_config(tuning);
    config.enable_threshold_estimation = false;
    return std::make_unique<LhrCache>(capacity_bytes, config);
  }
  if (name == "N-LHR") {
    LhrConfig config = tuned_lhr_config(tuning);
    config.enable_threshold_estimation = false;
    config.enable_detection = false;
    return std::make_unique<LhrCache>(capacity_bytes, config);
  }
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

server::FabricConfig make_fabric_config(const server::FabricSpec& spec,
                                        const PolicyTuning& tuning) {
  const auto gb_to_bytes = [](double gb) {
    return static_cast<std::uint64_t>(gb * 1024.0 * 1024.0 * 1024.0);
  };
  server::FabricConfig cfg;
  cfg.edge_nodes = spec.edge.nodes;
  cfg.regional_nodes = spec.regional.nodes;
  cfg.shards_per_node = spec.shards;
  cfg.edge_capacity_bytes = gb_to_bytes(spec.edge.capacity_gb);
  cfg.regional_capacity_bytes = gb_to_bytes(spec.regional.capacity_gb);
  cfg.edge_policy = [name = spec.edge.policy, tuning](std::uint64_t capacity) {
    return make_policy(name, capacity, tuning);
  };
  cfg.regional_policy = [name = spec.regional.policy, tuning](std::uint64_t capacity) {
    return make_policy(name, capacity, tuning);
  };
  cfg.link_rtt_s = spec.link_rtt_ms * 1e-3;
  cfg.link_gbps = spec.link_gbps;
  cfg.edge_server.ram_bytes =
      std::max<std::uint64_t>(cfg.edge_capacity_bytes / 100, 1ULL << 20);
  cfg.regional_server.ram_bytes =
      std::max<std::uint64_t>(cfg.regional_capacity_bytes / 100, 1ULL << 20);
  return cfg;
}

std::vector<std::string> sota_policy_names() {
  return {"LRB", "Hawkeye", "LRU", "LRU-4", "LFU-DA", "AdaptSize", "B-LRU"};
}

std::vector<std::string> all_policy_names() {
  return {"LRU",       "FIFO",      "Random",    "LRU-4",     "LFU-DA",
          "GDS",       "GDSF",      "LHD",       "LIRS",      "Hyperbolic", "ARC",
          "S4LRU",     "SecondHit", "RL-Cache",  "2Q",        "AdaptSize", "B-LRU",     "TinyLFU",
          "W-TinyLFU", "Hawkeye",   "LRB",       "LFO",       "LHR",
          "D-LHR",     "N-LHR"};
}

}  // namespace lhr::core
