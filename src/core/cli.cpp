#include "core/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "server/cdn_server.hpp"
#include "server/sharded_cache.hpp"
#include "sim/engine.hpp"
#include "trace/lhrt.hpp"
#include "trace/trace.hpp"

namespace lhr::core {

namespace {

std::vector<std::string> split_commas(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// --serve-threads: shard count of the ShardedCache backend. Fixed (not
/// tied to the thread count) so hit ratios are identical for every N.
constexpr std::size_t kServeShards = 16;

sim::SimMetrics serve_replay(const std::string& policy_name, std::uint64_t capacity,
                             const PolicyTuning& tuning, const trace::TraceSource& trace,
                             const CliOptions& options) {
  const std::size_t threads = options.serve_threads;
  auto backend = std::make_unique<server::ShardedCache>(
      kServeShards, capacity, [&](std::uint64_t cap) {
        return make_policy(policy_name, cap, tuning);
      });
  server::ServerConfig cfg;
  cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1ULL << 20);
  if (!options.origin_profile.empty()) {
    const auto settings = server::parse_origin_profile(options.origin_profile);
    cfg.origin_profile = settings.profile;
    cfg.fetch = settings.fetch;
  }
  if (!options.fault_schedule.empty()) {
    cfg.fault_schedule = server::FaultSchedule::parse(options.fault_schedule);
  }
  server::CdnServer server(std::move(backend), cfg);
  const auto report =
      server.replay_concurrent(trace, server::ReplayMode::kNormal, threads);

  sim::SimMetrics m;
  m.requests = report.requests;
  m.hits = report.hits;
  m.bytes_requested = static_cast<double>(report.bytes_served);
  m.bytes_hit = static_cast<double>(report.bytes_served - report.wan_bytes);
  m.wall_seconds = report.replay_wall_seconds;
  m.peak_metadata_bytes = report.peak_metadata_bytes;
  return m;
}

}  // namespace

std::string cli_usage() {
  return
      "usage: lhr_sim [options]\n"
      "  --policy NAMES       comma-separated policies (default LRU,LHR)\n"
      "  --capacity-gb LIST   comma-separated cache sizes in GB (default 64)\n"
      "  --trace FILE         replay a 'time key size' trace file\n"
      "  --trace-file FILE    replay a packed binary .lhrt trace via mmap\n"
      "                       (zero-copy; see tools/trace_convert)\n"
      "  --synthetic CLASS    cdn-a | cdn-b | cdn-c | wiki (default cdn-a)\n"
      "  --requests N         synthetic trace length (default 200000)\n"
      "  --seed S             generator seed (default 42)\n"
      "  --warmup N           requests excluded from the aggregate metrics\n"
      "  --train-threads N    LHR: worker threads for GBDT training (default 1)\n"
      "  --async-train        LHR: retrain in the background instead of stalling\n"
      "                       the request path at window boundaries\n"
      "  --serve-threads N    replay through the concurrent CdnServer serving path\n"
      "                       (16-shard ShardedCache backend) with N worker threads;\n"
      "                       hit ratios are identical for every N\n"
      "  --origin-profile S   serving-path origin latency model + fetch policy, e.g.\n"
      "                       lognormal:sigma=0.5,timeout=0.25,retries=3,hedge=0.08\n"
      "                       (requires --serve-threads)\n"
      "  --fault-schedule S   deterministic origin fault episodes, e.g.\n"
      "                       'outage:100-160;error:200-400@0.5;slow:500-800@x4'\n"
      "                       (requires --serve-threads)\n"
      "  --csv                machine-readable output\n"
      "  --help               this text\n";
}

std::optional<CliOptions> parse_cli(int argc, const char* const* argv,
                                    std::string& error) {
  CliOptions options;
  options.policies = {"LRU", "LHR"};
  options.capacities_gb = {64.0};
  options.synthetic = "cdn-a";

  const auto need_value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      error = flag + " requires a value";
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      options.policies.clear();  // signals "print usage"
      return options;
    }
    if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--policy") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.policies = split_commas(v);
      if (options.policies.empty()) {
        error = "--policy needs at least one name";
        return std::nullopt;
      }
    } else if (arg == "--capacity-gb") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.capacities_gb.clear();
      for (const auto& item : split_commas(v)) {
        try {
          const double gb = std::stod(item);
          if (gb <= 0.0) throw std::invalid_argument("non-positive");
          options.capacities_gb.push_back(gb);
        } catch (const std::exception&) {
          error = "bad capacity: " + item;
          return std::nullopt;
        }
      }
      if (options.capacities_gb.empty()) {
        error = "--capacity-gb needs at least one value";
        return std::nullopt;
      }
    } else if (arg == "--trace") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.trace_path = v;
    } else if (arg == "--trace-file") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.trace_file = v;
    } else if (arg == "--synthetic") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.synthetic = v;
    } else if (arg == "--requests") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.requests = static_cast<std::size_t>(std::atoll(v));
      if (options.requests == 0) {
        error = "--requests must be positive";
        return std::nullopt;
      }
    } else if (arg == "--seed") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--warmup") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.warmup = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--train-threads") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.train_threads = static_cast<std::size_t>(std::atoll(v));
      if (options.train_threads == 0) {
        error = "--train-threads must be positive";
        return std::nullopt;
      }
    } else if (arg == "--serve-threads") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.serve_threads = static_cast<std::size_t>(std::atoll(v));
      if (options.serve_threads == 0) {
        error = "--serve-threads must be positive";
        return std::nullopt;
      }
    } else if (arg == "--origin-profile") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.origin_profile = v;
    } else if (arg == "--fault-schedule") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.fault_schedule = v;
    } else if (arg == "--async-train") {
      options.async_train = true;
    } else {
      error = "unknown option: " + arg;
      return std::nullopt;
    }
  }
  if ((!options.origin_profile.empty() || !options.fault_schedule.empty()) &&
      options.serve_threads == 0) {
    error = "--origin-profile/--fault-schedule require --serve-threads";
    return std::nullopt;
  }
  if (!options.trace_path.empty() && !options.trace_file.empty()) {
    error = "--trace and --trace-file are mutually exclusive";
    return std::nullopt;
  }
  // Probe the binary trace now so a bad magic, wrong version or truncated
  // file is a clear CLI error instead of a mid-run throw.
  if (!options.trace_file.empty()) {
    try {
      (void)trace::MappedTrace(options.trace_file);
    } catch (const std::exception& e) {
      error = e.what();
      return std::nullopt;
    }
  }
  // Fail on malformed specs at parse time, not mid-run.
  if (!options.origin_profile.empty()) {
    try {
      (void)server::parse_origin_profile(options.origin_profile);
    } catch (const std::exception& e) {
      error = e.what();
      return std::nullopt;
    }
  }
  if (!options.fault_schedule.empty()) {
    try {
      (void)server::FaultSchedule::parse(options.fault_schedule);
    } catch (const std::exception& e) {
      error = e.what();
      return std::nullopt;
    }
  }
  return options;
}

std::vector<CliRunResult> run_cli(const CliOptions& options) {
  trace::Trace trace;
  std::unique_ptr<trace::MappedTrace> mapped;
  if (!options.trace_file.empty()) {
    mapped = std::make_unique<trace::MappedTrace>(options.trace_file);
  } else if (!options.trace_path.empty()) {
    trace = trace::read_trace_file(options.trace_path);
    if (!trace.is_time_ordered()) trace.sort_by_time();
  } else {
    gen::TraceClass cls;
    if (options.synthetic == "cdn-a") {
      cls = gen::TraceClass::kCdnA;
    } else if (options.synthetic == "cdn-b") {
      cls = gen::TraceClass::kCdnB;
    } else if (options.synthetic == "cdn-c") {
      cls = gen::TraceClass::kCdnC;
    } else if (options.synthetic == "wiki") {
      cls = gen::TraceClass::kWiki;
    } else {
      throw std::invalid_argument("unknown synthetic class: " + options.synthetic);
    }
    trace = gen::make_trace(cls, options.requests, options.seed);
  }
  const trace::TraceSource& source =
      mapped ? static_cast<const trace::TraceSource&>(*mapped) : trace;

  sim::SimOptions sim_options;
  sim_options.warmup_requests = options.warmup;

  PolicyTuning tuning;
  tuning.lhr_train_threads = options.train_threads;
  if (options.async_train) tuning.lhr_async_train = 1;

  std::vector<CliRunResult> results;
  for (const auto& policy_name : options.policies) {
    for (const double gb : options.capacities_gb) {
      const auto capacity =
          static_cast<std::uint64_t>(gb * 1024.0 * 1024.0 * 1024.0);
      CliRunResult result;
      result.policy = policy_name;
      result.capacity_gb = gb;
      if (options.serve_threads > 0) {
        result.metrics = serve_replay(policy_name, capacity, tuning, source, options);
      } else {
        auto policy = make_policy(policy_name, capacity, tuning);  // throws on typo
        result.metrics = sim::simulate(*policy, source, sim_options);
      }
      results.push_back(std::move(result));
    }
  }
  return results;
}

std::string format_results(const std::vector<CliRunResult>& results, bool csv) {
  std::ostringstream out;
  if (csv) {
    out << "policy,capacity_gb,requests,hit_ratio,byte_hit_ratio,wan_bytes,"
           "peak_metadata_bytes,wall_seconds\n";
    for (const auto& r : results) {
      out << r.policy << ',' << r.capacity_gb << ',' << r.metrics.requests << ','
          << r.metrics.object_hit_ratio() << ',' << r.metrics.byte_hit_ratio() << ','
          << r.metrics.wan_traffic_bytes() << ',' << r.metrics.peak_metadata_bytes
          << ',' << r.metrics.wall_seconds << '\n';
    }
    return out.str();
  }
  char line[256];
  std::snprintf(line, sizeof(line), "%-12s %-10s %-10s %-12s %-12s %-10s\n", "policy",
                "cache(GB)", "hit(%)", "bytehit(%)", "WAN(GB)", "wall(s)");
  out << line;
  for (const auto& r : results) {
    std::snprintf(line, sizeof(line), "%-12s %-10.1f %-10.2f %-12.2f %-12.1f %-10.2f\n",
                  r.policy.c_str(), r.capacity_gb, 100.0 * r.metrics.object_hit_ratio(),
                  100.0 * r.metrics.byte_hit_ratio(),
                  r.metrics.wan_traffic_bytes() / (1024.0 * 1024.0 * 1024.0),
                  r.metrics.wall_seconds);
    out << line;
  }
  return out.str();
}

}  // namespace lhr::core
