#include "core/cli.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "core/policy_factory.hpp"
#include "core/proc_replay.hpp"
#include "gen/cdn_model.hpp"
#include "server/cdn_server.hpp"
#include "server/fabric.hpp"
#include "server/sharded_cache.hpp"
#include "sim/engine.hpp"
#include "trace/lhrt.hpp"
#include "trace/trace.hpp"
#include "util/parse.hpp"

namespace lhr::core {

namespace {

std::vector<std::string> split_commas(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// --serve-threads: shard count of the ShardedCache backend. Fixed (not
/// tied to the thread count) so hit ratios are identical for every N.
constexpr std::size_t kServeShards = 16;

/// Materializes the request source the options name. `trace`/`mapped` own
/// the storage; the returned reference points into whichever was filled.
const trace::TraceSource& load_trace(const CliOptions& options, trace::Trace& trace,
                                     std::unique_ptr<trace::MappedTrace>& mapped) {
  if (!options.trace_file.empty()) {
    mapped = std::make_unique<trace::MappedTrace>(options.trace_file);
    return *mapped;
  }
  if (!options.trace_path.empty()) {
    trace = trace::read_trace_file(options.trace_path);
    if (!trace.is_time_ordered()) trace.sort_by_time();
    return trace;
  }
  gen::TraceClass cls;
  if (options.synthetic == "cdn-a") {
    cls = gen::TraceClass::kCdnA;
  } else if (options.synthetic == "cdn-b") {
    cls = gen::TraceClass::kCdnB;
  } else if (options.synthetic == "cdn-c") {
    cls = gen::TraceClass::kCdnC;
  } else if (options.synthetic == "wiki") {
    cls = gen::TraceClass::kWiki;
  } else {
    throw std::invalid_argument("unknown synthetic class: " + options.synthetic);
  }
  trace = gen::make_trace(cls, options.requests, options.seed);
  return trace;
}

sim::SimMetrics serve_replay(const std::string& policy_name, std::uint64_t capacity,
                             const PolicyTuning& tuning, const trace::TraceSource& trace,
                             const CliOptions& options) {
  const std::size_t threads = options.serve_threads;
  auto backend = std::make_unique<server::ShardedCache>(
      kServeShards, capacity, [&](std::uint64_t cap) {
        return make_policy(policy_name, cap, tuning);
      });
  server::ServerConfig cfg;
  cfg.ram_bytes = std::max<std::uint64_t>(capacity / 100, 1ULL << 20);
  if (!options.origin_profile.empty()) {
    const auto settings = server::parse_origin_profile(options.origin_profile);
    cfg.origin_profile = settings.profile;
    cfg.fetch = settings.fetch;
  }
  if (!options.fault_schedule.empty()) {
    cfg.fault_schedule = server::FaultSchedule::parse(options.fault_schedule);
  }
  server::CdnServer server(std::move(backend), cfg);
  const auto report =
      server.replay_concurrent(trace, server::ReplayMode::kNormal, threads);

  sim::SimMetrics m;
  m.requests = report.requests;
  m.hits = report.hits;
  m.bytes_requested = static_cast<double>(report.bytes_served);
  m.bytes_hit = static_cast<double>(report.bytes_served - report.wan_bytes);
  m.wall_seconds = report.replay_wall_seconds;
  m.peak_metadata_bytes = report.peak_metadata_bytes;
  return m;
}

sim::SimMetrics report_to_metrics(const server::ServerReport& report) {
  sim::SimMetrics m;
  m.requests = report.requests;
  m.hits = report.hits;
  m.bytes_requested = static_cast<double>(report.bytes_served);
  m.bytes_hit = static_cast<double>(report.bytes_served - report.wan_bytes);
  m.wall_seconds = report.replay_wall_seconds;
  m.peak_metadata_bytes = report.peak_metadata_bytes;
  return m;
}

/// The --procs serving path: fan the replay out across worker processes via
/// run_proc_replay. `trace_path` names the .lhrt every worker mmaps.
sim::SimMetrics proc_serve_replay(const std::string& policy_name,
                                  std::uint64_t capacity,
                                  const std::string& trace_path,
                                  const CliOptions& options) {
  ProcReplayJob job;
  job.trace_path = trace_path;
  job.policy = policy_name;
  job.capacity_bytes = capacity;
  job.shards = kServeShards;
  job.procs = options.procs;
  job.threads = std::max<std::size_t>(options.serve_threads, 1);
  job.origin_profile = options.origin_profile;
  job.fault_schedule = options.fault_schedule;
  job.control_plane = options.control_plane;
  job.train_threads = options.train_threads;
  job.async_train = options.async_train;
  return report_to_metrics(run_proc_replay(job));
}

/// Deletes the temporary .lhrt spilled for worker processes when the run
/// ends (normally or by exception).
struct TempFileGuard {
  std::string path;
  ~TempFileGuard() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
  }
};

}  // namespace

std::string cli_usage() {
  return
      "usage: lhr_sim [options]\n"
      "  --policy NAMES       comma-separated policies (default LRU,LHR)\n"
      "  --capacity-gb LIST   comma-separated cache sizes in GB (default 64)\n"
      "  --trace FILE         replay a 'time key size' trace file\n"
      "  --trace-file FILE    replay a packed binary .lhrt trace via mmap\n"
      "                       (zero-copy; see tools/trace_convert)\n"
      "  --synthetic CLASS    cdn-a | cdn-b | cdn-c | wiki (default cdn-a)\n"
      "  --requests N         synthetic trace length (default 200000)\n"
      "  --seed S             generator seed (default 42)\n"
      "  --warmup N           requests excluded from the aggregate metrics\n"
      "  --train-threads N    LHR: worker threads for GBDT training (default 1)\n"
      "  --async-train        LHR: retrain in the background instead of stalling\n"
      "                       the request path at window boundaries\n"
      "  --serve-threads N    replay through the concurrent CdnServer serving path\n"
      "                       (16-shard ShardedCache backend) with N worker threads;\n"
      "                       hit ratios are identical for every N\n"
      "  --procs P            fan the serving replay out across P worker processes\n"
      "                       (own-binary re-exec, shared read-only .lhrt mapping,\n"
      "                       shard ownership s % P == p) with --serve-threads\n"
      "                       replay threads per process (default 1); canonical\n"
      "                       aggregates are byte-identical to --procs 1 at any\n"
      "                       P x threads (env default: LHR_SERVE_PROCS;\n"
      "                       incompatible with --fabric)\n"
      "  --origin-profile S   serving-path origin latency model + fetch policy, e.g.\n"
      "                       lognormal:sigma=0.5,timeout=0.25,retries=3,hedge=0.08\n"
      "                       (requires --serve-threads)\n"
      "  --fault-schedule S   deterministic origin fault episodes, e.g.\n"
      "                       'outage:100-160;error:200-400@0.5;slow:500-800@x4'\n"
      "                       (requires --serve-threads or --fabric; applies to the\n"
      "                       origin-facing link of a fabric)\n"
      "  --control-plane S    LHR family: shadow-rollout control plane; 'on', 'off'\n"
      "                       or 'sample=0.5,window=512,agree=0.9,div=0.2,p99=2.5'\n"
      "                       (see server::parse_control_plane; env: LHR_SHADOW,\n"
      "                       LHR_SHADOW_SAMPLE/WINDOW/AGREE/DIV/GUARD/REARM/P99)\n"
      "  --fabric SPEC        replay a multi-tier edge -> regional -> origin fabric,\n"
      "                       e.g. 'edge=4xLHR@1;regional=2xLRU@8;shards=16;\n"
      "                       link-rtt-ms=4;link-gbps=40'; regional=0 selects the\n"
      "                       two-tier topology; --serve-threads sets the replay\n"
      "                       worker count (default 1)\n"
      "  --csv                machine-readable output\n"
      "  --help               this text\n";
}

std::optional<CliOptions> parse_cli(int argc, const char* const* argv,
                                    std::string& error) {
  CliOptions options;
  options.policies = {"LRU", "LHR"};
  options.capacities_gb = {64.0};
  options.synthetic = "cdn-a";

  const auto need_value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      error = flag + " requires a value";
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      options.policies.clear();  // signals "print usage"
      return options;
    }
    if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--policy") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.policies = split_commas(v);
      if (options.policies.empty()) {
        error = "--policy needs at least one name";
        return std::nullopt;
      }
    } else if (arg == "--capacity-gb") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.capacities_gb.clear();
      for (const auto& item : split_commas(v)) {
        const auto gb = util::parse_double(item);
        if (!gb || *gb <= 0.0) {
          error = "--capacity-gb: invalid capacity '" + item +
                  "' (need a positive number)";
          return std::nullopt;
        }
        options.capacities_gb.push_back(*gb);
      }
      if (options.capacities_gb.empty()) {
        error = "--capacity-gb needs at least one value";
        return std::nullopt;
      }
    } else if (arg == "--trace") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.trace_path = v;
    } else if (arg == "--trace-file") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.trace_file = v;
    } else if (arg == "--synthetic") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.synthetic = v;
    } else if (arg == "--requests") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      const auto n = util::parse_u64(v);
      if (!n || *n == 0) {
        error = "--requests: invalid positive integer '" + std::string(v) + "'";
        return std::nullopt;
      }
      options.requests = static_cast<std::size_t>(*n);
    } else if (arg == "--seed") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      const auto n = util::parse_u64(v);
      if (!n) {
        error = "--seed: invalid unsigned integer '" + std::string(v) + "'";
        return std::nullopt;
      }
      options.seed = *n;
    } else if (arg == "--warmup") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      const auto n = util::parse_u64(v);
      if (!n) {
        error = "--warmup: invalid unsigned integer '" + std::string(v) + "'";
        return std::nullopt;
      }
      options.warmup = static_cast<std::size_t>(*n);
    } else if (arg == "--train-threads") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      const auto n = util::parse_u64(v);
      if (!n || *n == 0) {
        error = "--train-threads: invalid positive integer '" + std::string(v) + "'";
        return std::nullopt;
      }
      options.train_threads = static_cast<std::size_t>(*n);
    } else if (arg == "--serve-threads") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      const auto n = util::parse_u64(v);
      if (!n || *n == 0) {
        error = "--serve-threads: invalid positive integer '" + std::string(v) + "'";
        return std::nullopt;
      }
      options.serve_threads = static_cast<std::size_t>(*n);
    } else if (arg == "--procs") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      const auto n = util::parse_u64(v);
      if (!n || *n == 0) {
        error = "--procs: invalid positive integer '" + std::string(v) + "'";
        return std::nullopt;
      }
      options.procs = static_cast<std::size_t>(*n);
    } else if (arg == "--fabric") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.fabric = v;
    } else if (arg == "--origin-profile") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.origin_profile = v;
    } else if (arg == "--fault-schedule") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.fault_schedule = v;
    } else if (arg == "--control-plane") {
      const char* v = need_value(i, arg);
      if (!v) return std::nullopt;
      options.control_plane = v;
    } else if (arg == "--async-train") {
      options.async_train = true;
    } else {
      error = "unknown option: " + arg;
      return std::nullopt;
    }
  }
  // Env default for the process fan-out (the flag wins, like the
  // control-plane env knobs). Not applied to --fabric runs, which have no
  // process-parallel path.
  if (options.procs == 0 && options.fabric.empty()) {
    if (const char* env = std::getenv("LHR_SERVE_PROCS");
        env != nullptr && *env != '\0') {
      const auto n = util::parse_u64(env);
      if (!n) {
        error = "LHR_SERVE_PROCS: invalid unsigned integer '" + std::string(env) + "'";
        return std::nullopt;
      }
      options.procs = static_cast<std::size_t>(*n);
    }
  }
  if (options.procs > 0 && !options.fabric.empty()) {
    error = "--procs is incompatible with --fabric";
    return std::nullopt;
  }
  if ((!options.origin_profile.empty() || !options.fault_schedule.empty()) &&
      options.serve_threads == 0 && options.fabric.empty() && options.procs == 0) {
    error =
        "--origin-profile/--fault-schedule require --serve-threads, --procs or "
        "--fabric";
    return std::nullopt;
  }
  if (!options.trace_path.empty() && !options.trace_file.empty()) {
    error = "--trace and --trace-file are mutually exclusive";
    return std::nullopt;
  }
  // Probe the binary trace now so a bad magic, wrong version or truncated
  // file is a clear CLI error instead of a mid-run throw.
  if (!options.trace_file.empty()) {
    try {
      (void)trace::MappedTrace(options.trace_file);
    } catch (const std::exception& e) {
      error = e.what();
      return std::nullopt;
    }
  }
  // Fail on malformed specs at parse time, not mid-run.
  if (!options.origin_profile.empty()) {
    try {
      (void)server::parse_origin_profile(options.origin_profile);
    } catch (const std::exception& e) {
      error = e.what();
      return std::nullopt;
    }
  }
  if (!options.fault_schedule.empty()) {
    try {
      (void)server::FaultSchedule::parse(options.fault_schedule);
    } catch (const std::exception& e) {
      error = e.what();
      return std::nullopt;
    }
  }
  if (!options.control_plane.empty()) {
    try {
      (void)server::parse_control_plane(options.control_plane);
    } catch (const std::exception& e) {
      error = e.what();
      return std::nullopt;
    }
  }
  if (!options.fabric.empty()) {
    try {
      const server::FabricSpec spec = server::parse_fabric_spec(options.fabric);
      const auto names = all_policy_names();
      const auto known = [&names](const std::string& n) {
        return std::find(names.begin(), names.end(), n) != names.end();
      };
      if (!known(spec.edge.policy)) {
        error = "--fabric: unknown edge policy '" + spec.edge.policy + "'";
        return std::nullopt;
      }
      if (spec.regional.nodes > 0 && !known(spec.regional.policy)) {
        error = "--fabric: unknown regional policy '" + spec.regional.policy + "'";
        return std::nullopt;
      }
    } catch (const std::exception& e) {
      error = e.what();
      return std::nullopt;
    }
  }
  return options;
}

std::vector<CliRunResult> run_cli(const CliOptions& options) {
  trace::Trace trace;
  std::unique_ptr<trace::MappedTrace> mapped;
  const trace::TraceSource& source = load_trace(options, trace, mapped);

  sim::SimOptions sim_options;
  sim_options.warmup_requests = options.warmup;

  PolicyTuning tuning;
  tuning.lhr_train_threads = options.train_threads;
  if (options.async_train) tuning.lhr_async_train = 1;
  tuning.control_plane_spec = options.control_plane;

  // Worker processes mmap the trace by path: an existing .lhrt is shared
  // as-is (one page-cache mapping across all workers); a text or synthetic
  // source is spilled to a temporary .lhrt for the duration of the run.
  std::string proc_trace_path;
  TempFileGuard temp_lhrt;
  if (options.procs > 0) {
    if (!options.trace_file.empty()) {
      proc_trace_path = options.trace_file;
    } else {
      temp_lhrt.path =
          (std::filesystem::temp_directory_path() /
           ("lhr-sim-procs-" + std::to_string(::getpid()) + ".lhrt"))
              .string();
      trace::write_lhrt_file(source, temp_lhrt.path, options.seed);
      proc_trace_path = temp_lhrt.path;
    }
  }

  std::vector<CliRunResult> results;
  for (const auto& policy_name : options.policies) {
    for (const double gb : options.capacities_gb) {
      const auto capacity =
          static_cast<std::uint64_t>(gb * 1024.0 * 1024.0 * 1024.0);
      CliRunResult result;
      result.policy = policy_name;
      result.capacity_gb = gb;
      if (options.procs > 0) {
        result.metrics =
            proc_serve_replay(policy_name, capacity, proc_trace_path, options);
      } else if (options.serve_threads > 0) {
        result.metrics = serve_replay(policy_name, capacity, tuning, source, options);
      } else {
        auto policy = make_policy(policy_name, capacity, tuning);  // throws on typo
        result.metrics = sim::simulate(*policy, source, sim_options);
      }
      results.push_back(std::move(result));
    }
  }
  return results;
}

server::FabricReport run_fabric(const CliOptions& options) {
  if (options.fabric.empty()) {
    throw std::invalid_argument("run_fabric: --fabric not set");
  }
  trace::Trace trace;
  std::unique_ptr<trace::MappedTrace> mapped;
  const trace::TraceSource& source = load_trace(options, trace, mapped);

  PolicyTuning tuning;
  tuning.lhr_train_threads = options.train_threads;
  if (options.async_train) tuning.lhr_async_train = 1;
  tuning.control_plane_spec = options.control_plane;

  const server::FabricSpec spec = server::parse_fabric_spec(options.fabric);
  server::FabricConfig cfg = make_fabric_config(spec, tuning);
  // --origin-profile / --fault-schedule shape the origin-facing link: the
  // regional -> origin hop, or the edge -> origin hop when regional=0.
  server::ServerConfig& origin_facing =
      spec.regional.nodes > 0 ? cfg.regional_server : cfg.edge_server;
  if (!options.origin_profile.empty()) {
    const server::OriginSettings settings =
        server::parse_origin_profile(options.origin_profile);
    origin_facing.origin_profile = settings.profile;
    origin_facing.fetch = settings.fetch;
  }
  if (!options.fault_schedule.empty()) {
    origin_facing.fault_schedule = server::FaultSchedule::parse(options.fault_schedule);
  }
  cfg.seed = options.seed;

  server::CdnFabric fabric(std::move(cfg));
  const std::size_t threads = options.serve_threads > 0 ? options.serve_threads : 1;
  return fabric.replay(source, threads);
}

std::string format_fabric_report(const server::FabricReport& report) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-10s %-6s %-10s %-10s %-12s %-12s %-10s\n",
                "tier", "nodes", "requests", "hit(%)", "served(GB)", "pulled(GB)",
                "failed");
  out << line;
  const auto gb = [](std::uint64_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
  };
  const auto tier_line = [&](const server::FabricTierReport& t) {
    if (t.nodes == 0) return;
    std::snprintf(line, sizeof(line),
                  "%-10s %-6zu %-10llu %-10.2f %-12.2f %-12.2f %-10llu\n",
                  t.name.c_str(), t.nodes,
                  static_cast<unsigned long long>(t.requests), t.hit_pct(),
                  gb(t.bytes_served), gb(t.upstream_bytes),
                  static_cast<unsigned long long>(t.failed_requests));
    out << line;
  };
  tier_line(report.edge);
  tier_line(report.regional);
  std::snprintf(line, sizeof(line),
                "origin: fetches=%llu body_fetches=%llu wan=%.2f GB\n",
                static_cast<unsigned long long>(report.origin_fetches),
                static_cast<unsigned long long>(report.origin_body_fetches),
                gb(report.origin_wan_bytes));
  out << line;
  if (report.regional.nodes > 0) {
    std::snprintf(line, sizeof(line),
                  "link: body_fetches=%llu failures=%llu regional_lookups=%llu\n",
                  static_cast<unsigned long long>(report.link_body_fetches),
                  static_cast<unsigned long long>(report.link_failures),
                  static_cast<unsigned long long>(report.regional_lookups));
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "e2e latency: p50=%.3f ms p90=%.3f ms p99=%.3f ms avg=%.3f ms\n",
                report.e2e_p50_ms, report.e2e_p90_ms, report.e2e_p99_ms,
                report.e2e_avg_ms);
  out << line;
  out << "traffic conservation: "
      << (report.traffic_conserved() ? "ok" : report.conservation_error) << '\n';
  return out.str();
}

std::string format_results(const std::vector<CliRunResult>& results, bool csv) {
  std::ostringstream out;
  if (csv) {
    out << "policy,capacity_gb,requests,hit_ratio,byte_hit_ratio,wan_bytes,"
           "peak_metadata_bytes,wall_seconds\n";
    for (const auto& r : results) {
      out << r.policy << ',' << r.capacity_gb << ',' << r.metrics.requests << ','
          << r.metrics.object_hit_ratio() << ',' << r.metrics.byte_hit_ratio() << ','
          << r.metrics.wan_traffic_bytes() << ',' << r.metrics.peak_metadata_bytes
          << ',' << r.metrics.wall_seconds << '\n';
    }
    return out.str();
  }
  char line[256];
  std::snprintf(line, sizeof(line), "%-12s %-10s %-10s %-12s %-12s %-10s\n", "policy",
                "cache(GB)", "hit(%)", "bytehit(%)", "WAN(GB)", "wall(s)");
  out << line;
  for (const auto& r : results) {
    std::snprintf(line, sizeof(line), "%-12s %-10.1f %-10.2f %-12.2f %-12.1f %-10.2f\n",
                  r.policy.c_str(), r.capacity_gb, 100.0 * r.metrics.object_hit_ratio(),
                  100.0 * r.metrics.byte_hit_ratio(),
                  r.metrics.wan_traffic_bytes() / (1024.0 * 1024.0 * 1024.0),
                  r.metrics.wall_seconds);
    out << line;
  }
  return out.str();
}

}  // namespace lhr::core
