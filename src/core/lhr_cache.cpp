#include "core/lhr_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace lhr::core {

namespace {
constexpr double kMinIrt = 1e-6;  // seconds; guards q_i against division by zero
}

LhrCache::LhrCache(std::uint64_t capacity_bytes, const LhrConfig& config)
    : CacheBase(capacity_bytes),
      config_(config),
      rng_(config.seed),
      hro_(hazard::HroConfig{.capacity_bytes = capacity_bytes,
                             .window_unique_bytes_mult = config.window_unique_bytes_mult,
                             .size_aware = true,
                             .age_decay_hazard = config.hro_age_decay}),
      extractor_(config.features),
      detector_(ml::ZipfDetectorConfig{.epsilon = config.detection_epsilon}),
      threshold_(config.initial_threshold) {
  if (!config_.train_synchronously) {
    trainer_ = std::make_unique<ml::AsyncTrainer>(config_.gbdt.n_threads);
  }
  if (config_.control_plane.enabled) {
    // Fold the cache seed into the cell's stream so per-shard caches (which
    // already get distinct seeds) get distinct sampling streams too.
    server::ControlPlaneConfig cell = config_.control_plane;
    cell.seed ^= config_.seed * 0x9e3779b97f4a7c15ULL;
    control_ = std::make_unique<server::ControlPlane>(cell);
  }
  train_x_.n_features = extractor_.dim();
  feature_buf_.resize(extractor_.dim());
  candidate_thresholds_ = {0.0, 0.5, threshold_ - config_.threshold_step,
                           threshold_ + config_.threshold_step, threshold_};
  candidate_hits_.fill(0.0);
}

std::string LhrCache::name() const {
  std::string base = "LHR";
  if (!config_.enable_threshold_estimation && !config_.enable_detection) {
    base = "N-LHR";
  } else if (!config_.enable_threshold_estimation) {
    base = "D-LHR";
  }
  if (!config_.train_synchronously) base += "-Async";
  if (control_) base += "+CP";
  return base;
}

double LhrCache::effective_threshold() const noexcept {
  const double bias = control_ ? control_->threshold_bias() : 0.0;
  return std::clamp(threshold_ + bias, 0.0, 1.0);
}

void LhrCache::install_model(std::shared_ptr<const ml::CompiledModel> fresh,
                             bool count_swap) {
  // The bootstrap model (nothing live yet) always adopts directly: there is
  // no incumbent to shadow against, and admit-all is strictly worse than any
  // trained model.
  if (control_ && model_) {
    control_->stage(std::move(fresh));
    shadow_last_.clear();  // fresh candidate, fresh would-hit history
    return;
  }
  model_ = std::move(fresh);
  if (count_swap) model_swaps_.fetch_add(1, std::memory_order_relaxed);
}

void LhrCache::mirror_shadow(const trace::Request& r, double live_p) {
  const double delta = effective_threshold();
  const double shadow_p = control_->candidate()->forest.probability(feature_buf_);

  // Would-hit replay of the key's previous mirrored visit (§5.2.3 footprint
  // estimator, applied to both models' scores as of that visit).
  bool have_prior = false;
  bool prior_live_hit = false;
  bool prior_shadow_hit = false;
  const auto prev = shadow_last_.find(r.key);
  if (prev != shadow_last_.end()) {
    have_prior = true;
    const double footprint = bytes_marker_ - prev->second.bytes_marker;
    const bool would_fit = footprint <= static_cast<double>(capacity_bytes());
    prior_live_hit = would_fit && prev->second.live_p >= delta;
    prior_shadow_hit = would_fit && prev->second.shadow_p >= delta;
    prev->second = ShadowSeen{static_cast<float>(live_p),
                              static_cast<float>(shadow_p), bytes_marker_};
  } else {
    shadow_last_.emplace(r.key,
                         ShadowSeen{static_cast<float>(live_p),
                                    static_cast<float>(shadow_p), bytes_marker_});
  }

  const auto verdict =
      control_->record_shadow(live_p, shadow_p, live_p >= delta, shadow_p >= delta,
                              have_prior, prior_live_hit, prior_shadow_hit);
  if (verdict == server::ControlPlane::Verdict::kPromote) {
    model_ = control_->take_candidate();
    model_swaps_.fetch_add(1, std::memory_order_relaxed);
    shadow_last_.clear();
  } else if (verdict == server::ControlPlane::Verdict::kRollback) {
    shadow_last_.clear();  // candidate already dropped by the cell
  }
}

double LhrCache::predict_probability(std::span<const float> features) const {
  if (!model_) return 1.0;  // bootstrap: admit-all until trained (§5.1)
  // Squared loss (the paper's choice) clamps the regression output to [0,1];
  // the logistic option maps through a sigmoid instead. Scored through the
  // compiled FlatForest, which is exactly equivalent to Gbdt::predict.
  return model_->forest.probability(features);
}

void LhrCache::adopt_finished_model() {
  if (auto fresh = trainer_->collect()) {
    install_model(std::move(fresh), /*count_swap=*/true);
  }
}

bool LhrCache::access(const trace::Request& r) {
  // Async retraining: swap a finished background model in the moment it is
  // ready (result_ready() is a lock-free flag, so the common case costs one
  // atomic load). The swap itself is the entire foreground cost of a
  // retrain — no request ever blocks on Gbdt::fit.
  if (trainer_) {
    if (trainer_->result_ready()) adopt_finished_model();
    if (trainer_->busy()) {
      stale_requests_.fetch_add(1, std::memory_order_relaxed);  // old model serving
    }
  }

  bytes_marker_ += static_cast<double>(r.size);

  // 1. Features as of this request (§5.2.1).
  extractor_.extract(r, feature_buf_);

  // 2. HRO supplies the "optimal caching decision" label (§5.2.4).
  const hazard::HroDecision hro = hro_.classify(r);

  // 3. Admission probability from the learning model.
  const double p = predict_probability(feature_buf_);

  // Collect the training sample (reservoir-capped at max_train_samples).
  {
    const float label = hro.hit ? 1.0f : 0.0f;
    const std::size_t dim = extractor_.dim();
    if (train_y_.size() < config_.max_train_samples) {
      train_x_.values.insert(train_x_.values.end(), feature_buf_.begin(),
                             feature_buf_.end());
      train_y_.push_back(label);
    } else {
      const std::uint64_t slot = rng_.next_below(window_samples_seen_ + 1);
      if (slot < config_.max_train_samples) {
        std::copy(feature_buf_.begin(), feature_buf_.end(),
                  train_x_.values.begin() + static_cast<std::ptrdiff_t>(slot * dim));
        train_y_[static_cast<std::size_t>(slot)] = label;
      }
    }
    ++window_samples_seen_;
  }

  // Track prediction quality against the HRO label (only once the model is
  // live; bootstrap predictions of 1.0 would just measure the class prior).
  if (model_) {
    constexpr std::size_t kEvalRing = 65'536;
    if (eval_preds_.size() < kEvalRing) {
      eval_preds_.push_back(static_cast<float>(p));
      eval_labels_.push_back(hro.hit ? 1.0f : 0.0f);
    } else {
      eval_preds_[eval_pos_] = static_cast<float>(p);
      eval_labels_[eval_pos_] = hro.hit ? 1.0f : 0.0f;
      eval_pos_ = (eval_pos_ + 1) % kEvalRing;
      eval_full_ = true;
    }
  }

  detector_.record(r.key);
  if (config_.enable_threshold_estimation) update_estimation_counters(r, p);
  extractor_.record(r);

  // Control plane: feed the drift monitor (|p - label| against the HRO
  // oracle — §7.5's model-error gap, measured online), then mirror a
  // sampled fraction of requests through any staged candidate.
  if (control_ && model_) {
    control_->record_drift(std::abs(p - (hro.hit ? 1.0 : 0.0)));
    if (control_->has_candidate() && control_->sample_shadow()) {
      mirror_shadow(r, p);
    }
  }
  const bool guarded = control_ && control_->guard_engaged();
  if (guarded) control_->count_guarded_request();

  // 4. The four cases of §4.1. Under an engaged RobustGuard the learned
  // admission gate is bypassed: admit everything that fits and (in
  // evict_one) evict by pure recency — plain LRU, the robust baseline.
  const double delta = effective_threshold();
  bool hit = false;
  const auto res = residents_.find(r.key);
  if (res != residents_.end()) {
    hit = true;
    res->second.p = p;
    res->second.last_use = r.time;
    if (!guarded && p < delta) {
      candidates_.insert(r.key);  // case (ii): label as eviction candidate
    } else {
      candidates_.erase(r.key);   // case (i)
    }
  } else if ((guarded || p >= delta) && !oversized(r.size)) {
    admit(r, p);                  // case (iii); case (iv) is the fall-through
  }

  // 5. Window bookkeeping (the supervisor).
  if (hro_.window_just_closed()) on_window_closed(r.time);
  return hit;
}

void LhrCache::update_estimation_counters(const trace::Request& r, double p) {
  // §5.2.3: evaluate candidate thresholds on a sampled fraction of the
  // window. A request would hit under threshold δ' iff its previous request
  // was admitted under δ' (p_prev ≥ δ') and its reuse footprint (approximate
  // unique-byte distance) still fit in the cache.
  const auto prev = estimation_last_.find(r.key);
  if (prev != estimation_last_.end()) {
    if (rng_.next_double() < config_.estimation_sample_fraction) {
      // Object-hit weighting by default; byte weighting tunes δ for WAN
      // traffic instead (config_.optimize_byte_hit).
      const double weight =
          config_.optimize_byte_hit ? static_cast<double>(r.size) : 1.0;
      estimation_requests_ += weight;
      const double footprint = bytes_marker_ - prev->second.bytes_marker;
      const bool would_fit = footprint <= static_cast<double>(capacity_bytes());
      if (would_fit) {
        for (std::size_t c = 0; c < kCandidates; ++c) {
          if (prev->second.p >= candidate_thresholds_[c]) candidate_hits_[c] += weight;
        }
      }
    }
    prev->second = LastSeen{p, bytes_marker_};
  } else {
    estimation_last_.emplace(r.key, LastSeen{p, bytes_marker_});
  }
}

double LhrCache::eviction_value(const Resident& res, trace::Time now) const {
  // §5.2.5: q_i = (p_i / s_i) × (1 / IRT₁). The paper's 1/s factor evicts
  // large objects first, trading byte hits for object hits; the byte-hit
  // objective drops it (size-neutral eviction keeps large hot objects).
  const double irt1 = std::max(now - res.last_use, kMinIrt);
  const double size_factor =
      config_.optimize_byte_hit
          ? 1.0
          : static_cast<double>(std::max<std::uint64_t>(res.size, 1));
  return res.p / size_factor / irt1;
}

void LhrCache::evict_one(trace::Time now) {
  // Under an engaged RobustGuard the learned scores are not trusted: sample
  // from all residents and evict the least-recently used of the sample.
  const bool guarded = control_ && control_->guard_engaged();
  // Prefer labeled eviction candidates (p < δ); fall back to all residents.
  const policy::SampledKeySet& pool =
      (guarded || candidates_.empty()) ? resident_keys_ : candidates_;
  const std::size_t n = std::min(config_.eviction_sample, pool.size());
  trace::Key victim = pool.sample(rng_);
  double worst = std::numeric_limits<double>::infinity();
  // Draw the candidate keys first (identical sample() sequence, so the
  // victim choice is unchanged), then score with the next candidate's
  // resident entry prefetched: the gather's 64 dependent map lookups
  // overlap in the memory pipeline instead of serializing.
  eviction_scratch_.clear();
  for (std::size_t s = 0; s < n; ++s) {
    eviction_scratch_.push_back((n == pool.size()) ? pool.at(s) : pool.sample(rng_));
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (s + 1 < n) residents_.prefetch(eviction_scratch_[s + 1]);
    const trace::Key candidate = eviction_scratch_[s];
    const Resident& res = residents_.at(candidate);
    // Guarded: score by recency alone (oldest last_use loses) — LRU order.
    const double q = guarded ? res.last_use : eviction_value(res, now);
    if (q < worst) {
      worst = q;
      victim = candidate;
    }
  }
  residents_.erase(victim);
  resident_keys_.erase(victim);
  candidates_.erase(victim);
  remove_object(victim);
}

void LhrCache::admit(const trace::Request& r, double p) {
  while (used_bytes() + r.size > capacity_bytes() && !resident_keys_.empty()) {
    evict_one(r.time);
  }
  residents_[r.key] = Resident{r.size, p, r.time};
  resident_keys_.insert(r.key);
  store_object(r.key, r.size);
}

void LhrCache::on_window_closed(trace::Time now) {
  ++windows_seen_;
  const auto detection = detector_.close_window();

  // Algorithm 1: retrain (and re-tune δ) when a pattern change is detected.
  // The first window always trains the initial model (§5.1). With detection
  // disabled (N-LHR), every window retrains.
  const bool retrain = (windows_seen_ == 1) || !config_.enable_detection ||
                       detection.change_detected;

  if (retrain) {
    const double min_weight =
        config_.optimize_byte_hit
            ? static_cast<double>(config_.min_estimation_samples) * 1024.0
            : static_cast<double>(config_.min_estimation_samples);
    if (config_.enable_threshold_estimation && windows_seen_ > 1 &&
        estimation_requests_ >= min_weight) {
      // §5.2.3: adopt argmax candidate iff it beats the current threshold's
      // estimated hit probability by more than β.
      const double denom = estimation_requests_;
      const double h_current = candidate_hits_[kCandidates - 1] / denom;
      std::size_t best = kCandidates - 1;
      double h_best = h_current;
      for (std::size_t c = 0; c + 1 < kCandidates; ++c) {
        const double h = candidate_hits_[c] / denom;
        if (h > h_best) {
          h_best = h;
          best = c;
        }
      }
      if (best != kCandidates - 1 && h_best > h_current + config_.beta) {
        threshold_ = std::clamp(candidate_thresholds_[best], 0.0, 1.0);
      }
      // Counters answered a decision: restart them around the (possibly
      // new) threshold. Otherwise they keep accumulating across windows.
      candidate_thresholds_ = {
          0.0, 0.5, std::clamp(threshold_ - config_.threshold_step, 0.0, 1.0),
          std::clamp(threshold_ + config_.threshold_step, 0.0, 1.0), threshold_};
      candidate_hits_.fill(0.0);
      estimation_requests_ = 0.0;
    }
    train_model();
  }
  // Keep reuse markers that can still witness an in-cache reuse (footprint
  // within ~2x capacity); older entries would be classified misses anyway.
  const double marker_horizon =
      bytes_marker_ - 2.0 * static_cast<double>(capacity_bytes());
  for (auto it = estimation_last_.begin(); it != estimation_last_.end();) {
    if (it->second.bytes_marker < marker_horizon) {
      it = estimation_last_.erase(it);
    } else {
      ++it;
    }
  }
  // The training buffer is cleared by train_model() on success; when the
  // window was too thin to train, samples accumulate into the next window
  // (tiny caches on sparse traces would otherwise never train).
  if (train_y_.size() >= config_.max_train_samples) {
    train_x_.values.clear();
    train_y_.clear();
  }
  window_samples_seen_ = train_y_.size();

  // Bound the feature-history memory: drop contents idle for the retention
  // horizon (in windows). Too short a horizon blinds the learner on traces
  // whose hot contents recur slowly (e.g. CDN-C).
  const double window_span = now - last_window_close_;
  if (windows_seen_ > 1 && window_span > 0.0) {
    const double horizon =
        static_cast<double>(std::max<std::size_t>(config_.history_retention_windows, 1));
    extractor_.prune_older_than(now - horizon * window_span);
  }
  last_window_close_ = now;
}

void LhrCache::train_model() {
  if (train_y_.size() < config_.min_train_samples) return;  // not enough signal
  const auto t0 = std::chrono::steady_clock::now();
  if (trainer_ == nullptr) {
    // Synchronous: the fit runs inline and its full wall-clock is a
    // request-path stall.
    ml::Gbdt fresh;
    fresh.fit(train_x_, train_y_, config_.gbdt);
    install_model(std::make_shared<ml::CompiledModel>(std::move(fresh)),
                  /*count_swap=*/false);
    ++trainings_;
    train_x_.values.clear();
    train_y_.clear();
  } else if (trainer_->submit(std::move(train_x_), std::move(train_y_),
                              config_.gbdt)) {
    // Asynchronous: the foreground cost is just the batch handoff; the fit
    // itself runs on the trainer thread (background_train_seconds()).
    ++trainings_;
    train_x_ = ml::Dataset{};
    train_x_.n_features = extractor_.dim();
    train_y_.clear();
  } else {
    // A previous training is still in flight: skip this window's retrain
    // and keep the batch (it stays subject to the caller's cap handling).
    ++deferred_trainings_;
  }
  training_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void LhrCache::drain_training() {
  if (trainer_ == nullptr) return;
  trainer_->wait();
  if (trainer_->result_ready()) adopt_finished_model();
}

LhrCache::TrainingStats LhrCache::training_stats() const {
  TrainingStats s;
  s.trainings = trainings_;
  s.deferred_trainings = deferred_trainings_;
  s.model_swaps = model_swaps_.load(std::memory_order_relaxed);
  s.stale_requests = stale_requests_.load(std::memory_order_relaxed);
  s.foreground_seconds = training_seconds_;
  if (trainer_) {
    const ml::AsyncTrainer::Stats t = trainer_->stats();  // one lock pass
    s.background_completed = t.completed;
    s.background_failed = t.failed;
    s.background_seconds = t.background_seconds;
  }
  return s;
}

ml::BinaryMetrics LhrCache::model_quality() const {
  return ml::evaluate_binary(eval_preds_, eval_labels_);
}

void LhrCache::save_model(std::ostream& out) const {
  if (!model_) throw std::runtime_error("LhrCache::save_model: untrained");
  out << threshold_ << '\n';
  model_->gbdt.save(out);
}

void LhrCache::load_model(std::istream& in) {
  double threshold = 0.0;
  if (!(in >> threshold)) throw std::runtime_error("LhrCache::load_model: bad header");
  ml::Gbdt restored;
  restored.load(in);
  model_ = std::make_shared<ml::CompiledModel>(std::move(restored));
  threshold_ = std::clamp(threshold, 0.0, 1.0);
}

void LhrCache::save_model_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("LhrCache::save_model_file: cannot open " + path);
  save_model(out);
}

void LhrCache::load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("LhrCache::load_model_file: cannot open " + path);
  load_model(in);
}

std::uint64_t LhrCache::metadata_bytes() const {
  return hro_.memory_bytes() + extractor_.memory_bytes() + detector_.memory_bytes() +
         // The FlatForest is the same model in a different layout; counting
         // gbdt.memory_bytes() alone keeps the capacity deduction (and every
         // downstream sim output) identical to the pre-forest accounting.
         (model_ ? model_->gbdt.memory_bytes() : 0) +
         (trainer_ ? trainer_->memory_bytes() : 0) +
         train_x_.values.size() * sizeof(float) +
         train_y_.size() * sizeof(float) +
         estimation_last_.size() *
             (sizeof(trace::Key) + sizeof(LastSeen) + 2 * sizeof(void*)) +
         (control_ ? control_->memory_bytes() +
                         (control_->has_candidate()
                              ? control_->candidate()->gbdt.memory_bytes()
                              : 0)
                   : 0) +
         shadow_last_.size() *
             (sizeof(trace::Key) + sizeof(ShadowSeen) + 2 * sizeof(void*)) +
         residents_.memory_bytes() +
         resident_keys_.memory_bytes() + candidates_.memory_bytes();
}

}  // namespace lhr::core
