// LHR: Learning from HRO (the paper's primary contribution, §4–§5,
// Algorithm 1).
//
// Per request, LHR:
//   1. extracts the content's features u_i (20 IRTs + static, §5.2.1);
//   2. runs HRO on the request; HRO's hit/miss classification is the
//      training label y_i ("optimal caching decision", §5.2.4);
//   3. predicts an admission probability p_i with a GBDT trained on
//      (u_i, y_i) pairs, and compares it against the auto-tuned threshold δ:
//        hit  & p ≥ δ  -> update p in the resident table            (case i)
//        hit  & p < δ  -> update p and mark as eviction candidate   (case ii)
//        miss & p ≥ δ  -> admit, evicting by the rule below         (case iii)
//        miss & p < δ  -> bypass                                    (case iv)
//   4. eviction rule (§5.2.5): evict argmin q_i = (p_i / s_i) · (1 / IRT₁),
//      sampling eviction candidates first, then the whole cache.
//
// Windowing (§5.1): non-overlapping windows of unique bytes = 4 × capacity
// (shared with the embedded HRO). At each boundary the supervisor:
//   * estimates the window's Zipf α via least squares (§5.2.2) and retrains
//     the GBDT only when |Δα| ≥ ε (the detection mechanism);
//   * re-tunes δ over candidates {0, 0.5, δ±0.1}, adopting the argmax only
//     when it improves the estimated hit probability by more than β (§5.2.3).
//
// Ablations (§7.4): `enable_threshold_estimation = false` gives D-LHR
// (fixed δ = 0.5); additionally `enable_detection = false` gives N-LHR
// (retrain every window).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hazard/hro.hpp"
#include "ml/async_trainer.hpp"
#include "ml/eval.hpp"
#include "ml/features.hpp"
#include "ml/gbdt.hpp"
#include "ml/zipf_detector.hpp"
#include "policies/sampled_set.hpp"
#include "server/control_plane.hpp"
#include "sim/cache_policy.hpp"
#include "util/flat_hash_map.hpp"
#include "util/rng.hpp"

namespace lhr::core {

struct LhrConfig {
  double window_unique_bytes_mult = 4.0;  ///< §5.1 (Figure 5 sweeps 1×–8×)
  /// Label source extension: run the embedded HRO with per-content survival
  /// decay (see hazard::HroConfig::age_decay_hazard). Default follows the
  /// paper's Poisson form.
  bool hro_age_decay = false;
  ml::FeatureConfig features;             ///< §5.2.1 (Figure 6 sweeps IRT count)

  bool enable_detection = true;            ///< false => N-LHR-style retraining
  double detection_epsilon = 0.002;        ///< ε of §5.2.2 / Appendix A.2

  bool enable_threshold_estimation = true; ///< false => D-LHR (fixed δ)
  double initial_threshold = 0.5;          ///< δ₀ (Algorithm 1)
  double threshold_step = 0.1;             ///< candidate spacing (§5.2.3)
  double beta = 0.002;                     ///< β = 0.2% adoption margin (§7.1)
  double estimation_sample_fraction = 0.5; ///< §5.2.3: half the window suffices
  /// When true, LHR optimizes byte hit ratio / WAN traffic instead of object
  /// hit probability (an extension; the paper optimizes object hits):
  /// the threshold estimator weights hits by bytes and the eviction rule
  /// drops its 1/s factor (q = p · 1/IRT₁, size-neutral).
  bool optimize_byte_hit = false;
  /// Minimum reuse samples before a threshold decision is made; counters
  /// accumulate across windows until reached (keeps the β-margin test above
  /// the sampling noise on sparse-reuse traces).
  std::size_t min_estimation_samples = 4000;

  std::size_t eviction_sample = 64;
  std::size_t max_train_samples = 50'000;  ///< training-batch cap per window
  std::size_t min_train_samples = 256;     ///< skip training on thinner windows
  /// When true (the default), window-close retraining runs inline on the
  /// request path — fully reproducible, but every window boundary stalls for
  /// the whole Gbdt::fit. When false, the batch is snapshotted and handed to
  /// a background ml::AsyncTrainer; admissions keep using the current model
  /// until the fresh one is swapped in (an O(shared_ptr) operation), so the
  /// per-request stall is bounded by the swap, not the fit. The async path
  /// trades exact reproducibility (swap timing is scheduling-dependent) for
  /// request-path latency; see training_seconds()/background_train_seconds().
  bool train_synchronously = true;
  /// Per-content feature history is dropped after this many windows of
  /// idleness. Must cover the hot set's inter-request times, which on
  /// long-duration traces (CDN-C) exceed several windows.
  std::size_t history_retention_windows = 8;
  ml::GbdtConfig gbdt;
  /// Shadow-rollout control plane (server/control_plane.hpp). Disabled by
  /// default: retrained models swap in immediately, exactly the paper's
  /// behaviour. When enabled, every retrain after the bootstrap model is
  /// staged for shadow evaluation instead, and the RobustGuard/autotune
  /// machinery runs. The cell draws from its own RNG stream derived from
  /// `control_plane.seed ^ seed`, so enabling it never perturbs the host
  /// cache's reservoir/eviction/estimation draws.
  server::ControlPlaneConfig control_plane;
  std::uint64_t seed = 2021;
};

class LhrCache final : public sim::CacheBase, public server::ControlPlaneHost {
 public:
  LhrCache(std::uint64_t capacity_bytes, const LhrConfig& config = {});

  [[nodiscard]] std::string name() const override;
  bool access(const trace::Request& r) override;
  [[nodiscard]] std::uint64_t metadata_bytes() const override;

  /// The control-plane cell riding along with this cache; null when the
  /// control plane is disabled. The serving layer discovers cells through
  /// this (ControlPlaneHost) to feed served latencies and sum the report.
  [[nodiscard]] server::ControlPlane* control_plane() noexcept override {
    return control_.get();
  }

  // --- introspection for tests/benches ---
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] bool model_trained() const noexcept { return model_ != nullptr; }
  [[nodiscard]] std::size_t windows_seen() const noexcept { return windows_seen_; }
  /// Trainings started (inline fits, or batches handed to the background
  /// trainer; windows skipped because the trainer was busy count under
  /// deferred_trainings() instead).
  [[nodiscard]] std::size_t trainings() const noexcept { return trainings_; }
  /// Foreground (request-path) training stall: the whole fit when training
  /// synchronously, just the snapshot + submit + swap when asynchronous.
  [[nodiscard]] double training_seconds() const noexcept { return training_seconds_; }
  /// Wall-clock spent fitting on the background trainer thread (0 when
  /// training synchronously). Not request-path time.
  [[nodiscard]] double background_train_seconds() const noexcept {
    return trainer_ ? trainer_->background_seconds() : 0.0;
  }
  /// Background-trained models swapped in (plus shadow promotions when the
  /// control plane is enabled), and requests served while a newer model was
  /// still training (staleness of the async path).
  [[nodiscard]] std::size_t model_swaps() const noexcept {
    return model_swaps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t stale_requests() const noexcept {
    return stale_requests_.load(std::memory_order_relaxed);
  }

  /// Every training-pipeline counter for report emission, taken as one
  /// consistent snapshot: the trainer-side numbers come from a single
  /// AsyncTrainer::stats() lock acquisition instead of one lock per
  /// accessor, so a fit finishing mid-report can no longer yield e.g. a
  /// swap count from before the fit paired with the background seconds
  /// from after it (async_train_test covers this under TSan).
  struct TrainingStats {
    std::size_t trainings = 0;
    std::size_t deferred_trainings = 0;
    std::size_t model_swaps = 0;
    std::size_t stale_requests = 0;
    std::size_t background_completed = 0;
    std::size_t background_failed = 0;
    double foreground_seconds = 0.0;
    double background_seconds = 0.0;
  };
  [[nodiscard]] TrainingStats training_stats() const;
  /// Window-close retrains skipped because the background trainer was busy.
  [[nodiscard]] std::size_t deferred_trainings() const noexcept {
    return deferred_trainings_;
  }
  [[nodiscard]] double hro_hit_ratio() const noexcept { return hro_.hit_ratio(); }
  [[nodiscard]] std::size_t eviction_candidates() const noexcept {
    return candidates_.size();
  }

  /// Blocks until an in-flight background training finishes and swaps the
  /// result in (no-op when training synchronously). Shutdown paths call this
  /// before save_model so the freshest model is the one persisted.
  void drain_training();

  /// Prediction quality of the admission model against HRO's labels over a
  /// sliding sample of recent requests (§7.5: the LHR-HRO gap is "mainly due
  /// to the errors in our model" — this quantifies those errors).
  [[nodiscard]] ml::BinaryMetrics model_quality() const;

  /// Persists / restores the trained admission model (warm start across
  /// process restarts — a production CDN reboots without forgetting).
  /// Throws std::runtime_error on I/O or format errors.
  void save_model(std::ostream& out) const;
  void load_model(std::istream& in);
  void save_model_file(const std::string& path) const;
  void load_model_file(const std::string& path);

 private:
  struct Resident {
    std::uint64_t size = 0;
    double p = 1.0;            ///< learned admission probability
    trace::Time last_use = 0.0;
  };

  /// Number of candidate thresholds tracked by the estimation algorithm:
  /// {0, 0.5, δ-step, δ+step, δ itself}.
  static constexpr std::size_t kCandidates = 5;

  [[nodiscard]] double predict_probability(std::span<const float> features) const;
  void update_estimation_counters(const trace::Request& r, double p);
  void admit(const trace::Request& r, double p);
  void evict_one(trace::Time now);
  [[nodiscard]] double eviction_value(const Resident& res, trace::Time now) const;
  void on_window_closed(trace::Time now);
  void train_model();
  void adopt_finished_model();
  /// δ plus the control plane's autotuned bias, clamped to [0, 1].
  [[nodiscard]] double effective_threshold() const noexcept;
  /// Routes a freshly trained model: adopted directly while untrained
  /// (bootstrap) or without a control plane; staged for shadow evaluation
  /// otherwise. count_swap preserves the model_swaps() contract — only
  /// background-trained adoptions (and shadow promotions) count.
  void install_model(std::shared_ptr<const ml::CompiledModel> fresh, bool count_swap);
  /// The shadow mirror + promotion step of access(); precondition: a
  /// candidate is staged.
  void mirror_shadow(const trace::Request& r, double live_p);

  LhrConfig config_;
  util::Xoshiro256 rng_;
  hazard::Hro hro_;
  ml::FeatureExtractor extractor_;
  ml::ZipfDetector detector_;
  /// The live admission model (null until first trained): the fitted Gbdt
  /// plus its compiled FlatForest, scored through the forest on the request
  /// path. Only the request thread reads or swaps this pointer; the
  /// background trainer builds (and compiles) a separate object, so
  /// concurrent predict-during-retrain is race-free.
  std::shared_ptr<const ml::CompiledModel> model_;
  std::unique_ptr<ml::AsyncTrainer> trainer_;  ///< null in synchronous mode
  std::unique_ptr<server::ControlPlane> control_;  ///< null when disabled

  double threshold_;
  double prev_alpha_ = 0.0;

  // Per-window training buffer (reservoir-capped).
  ml::Dataset train_x_;
  std::vector<float> train_y_;
  std::size_t window_samples_seen_ = 0;

  // Threshold-estimation state (§5.2.3): per-candidate approximate hit
  // counts over a sampled subset of the window's requests.
  std::array<double, kCandidates> candidate_thresholds_{};
  std::array<double, kCandidates> candidate_hits_{};  // byte-weighted if configured
  double estimation_requests_ = 0.0;                  // sample weight total
  struct LastSeen {
    double p = 0.0;
    double bytes_marker = 0.0;  ///< cumulative request bytes at last request
  };
  std::unordered_map<trace::Key, LastSeen> estimation_last_;
  double bytes_marker_ = 0.0;

  // Shadow-rollout history: previous live/shadow scores of mirrored keys,
  // feeding the §5.2.3-style would-hit estimator for the staged candidate.
  // Populated only while a candidate is staged; cleared on every verdict.
  struct ShadowSeen {
    float live_p = 0.0f;
    float shadow_p = 0.0f;
    double bytes_marker = 0.0;  ///< cumulative request bytes at last mirror
  };
  std::unordered_map<trace::Key, ShadowSeen> shadow_last_;

  // Flat open-addressing map (PR 5 discipline): touched on every request
  // and 64 times per sampled eviction, where the gather prefetches the next
  // candidate's entry while scoring the current one.
  util::FlatHashMap<trace::Key, Resident> residents_;
  policy::SampledKeySet resident_keys_;
  policy::SampledKeySet candidates_;  ///< residents with p < δ (case ii)

  // Ring buffer of (prediction, HRO label) pairs for model_quality().
  std::vector<float> eval_preds_;
  std::vector<float> eval_labels_;
  std::size_t eval_pos_ = 0;
  bool eval_full_ = false;

  std::vector<float> feature_buf_;
  std::vector<trace::Key> eviction_scratch_;  ///< candidate keys, drawn ahead
  trace::Time last_window_close_ = 0.0;
  std::size_t windows_seen_ = 0;
  std::size_t trainings_ = 0;
  double training_seconds_ = 0.0;  ///< foreground stall only (see accessor)
  // Atomics (relaxed): mutated only by the request thread, but readable by
  // a concurrent report emitter without a data race.
  std::atomic<std::size_t> model_swaps_{0};
  std::atomic<std::size_t> stale_requests_{0};
  std::size_t deferred_trainings_ = 0;
};

}  // namespace lhr::core
