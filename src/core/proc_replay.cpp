#include "core/proc_replay.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "core/policy_factory.hpp"
#include "server/sharded_cache.hpp"
#include "trace/lhrt.hpp"
#include "util/parse.hpp"
#include "util/subprocess.hpp"

namespace lhr::core {

namespace {

std::string format_double(double v) {
  // %.17g round-trips every finite double exactly through strtod, so config
  // doubles survive the argv hop bit-for-bit.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

server::ReplayMode parse_mode(std::string_view text) {
  if (text == "normal") return server::ReplayMode::kNormal;
  if (text == "max") return server::ReplayMode::kMax;
  throw std::invalid_argument("replay worker: unknown --worker-mode '" +
                              std::string(text) + "'");
}

/// Inverse of worker_argv: rebuilds (job, proc_index) from the tokens after
/// kReplayWorkerFlag. Unknown or value-less flags throw — a version-skewed
/// parent/worker pair must fail loudly, not replay the wrong slice.
std::size_t parse_worker_argv(int argc, const char* const* argv,
                              ProcReplayJob& job) {
  std::size_t proc_index = 0;
  int i = 2;
  const auto need_value = [&](std::string_view flag) -> std::string_view {
    if (i + 1 >= argc) {
      throw std::invalid_argument("replay worker: missing value for " +
                                  std::string(flag));
    }
    return argv[++i];
  };
  for (; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--worker-index") {
      proc_index = util::require_u64(arg, need_value(arg));
    } else if (arg == "--worker-trace") {
      job.trace_path = std::string(need_value(arg));
    } else if (arg == "--worker-policy") {
      job.policy = std::string(need_value(arg));
    } else if (arg == "--worker-capacity-bytes") {
      job.capacity_bytes = util::require_u64(arg, need_value(arg));
    } else if (arg == "--worker-shards") {
      job.shards = util::require_u64(arg, need_value(arg));
    } else if (arg == "--worker-procs") {
      job.procs = util::require_u64(arg, need_value(arg));
    } else if (arg == "--worker-threads") {
      job.threads = util::require_u64(arg, need_value(arg));
    } else if (arg == "--worker-mode") {
      job.mode = parse_mode(need_value(arg));
    } else if (arg == "--worker-window") {
      job.window_requests = util::require_u64(arg, need_value(arg));
    } else if (arg == "--worker-open-loop") {
      job.open_loop = util::require_u64(arg, need_value(arg)) != 0;
    } else if (arg == "--worker-ram-bytes") {
      job.ram_bytes = util::require_u64(arg, need_value(arg));
    } else if (arg == "--worker-seed") {
      job.seed = util::require_u64(arg, need_value(arg));
    } else if (arg == "--worker-ttl") {
      job.freshness_ttl_s = util::require_double(arg, need_value(arg));
    } else if (arg == "--worker-reval-prob") {
      job.revalidate_change_prob = util::require_double(arg, need_value(arg));
    } else if (arg == "--worker-origin-profile") {
      job.origin_profile = std::string(need_value(arg));
    } else if (arg == "--worker-fault-schedule") {
      job.fault_schedule = std::string(need_value(arg));
    } else if (arg == "--worker-control-plane") {
      job.control_plane = std::string(need_value(arg));
    } else if (arg == "--worker-train-threads") {
      job.train_threads = util::require_u64(arg, need_value(arg));
    } else if (arg == "--worker-async-train") {
      job.async_train = true;
    } else {
      throw std::invalid_argument("replay worker: unknown flag '" +
                                  std::string(arg) + "'");
    }
  }
  if (job.trace_path.empty()) {
    throw std::invalid_argument("replay worker: --worker-trace is required");
  }
  return proc_index;
}

server::ProcReplayOptions job_options(const ProcReplayJob& job) {
  server::ProcReplayOptions opts;
  opts.procs = std::max<std::size_t>(job.procs, 1);
  opts.threads = std::max<std::size_t>(job.threads, 1);
  opts.mode = job.mode;
  opts.window_requests = job.window_requests;
  opts.open_loop = job.open_loop;
  return opts;
}

}  // namespace

std::vector<std::string> worker_argv(const ProcReplayJob& job,
                                     std::size_t proc_index) {
  std::vector<std::string> args;
  args.reserve(40);
  args.emplace_back(kReplayWorkerFlag);
  const auto add = [&args](std::string_view flag, std::string value) {
    args.emplace_back(flag);
    args.push_back(std::move(value));
  };
  add("--worker-index", std::to_string(proc_index));
  add("--worker-trace", job.trace_path);
  add("--worker-policy", job.policy);
  add("--worker-capacity-bytes", std::to_string(job.capacity_bytes));
  add("--worker-shards", std::to_string(job.shards));
  add("--worker-procs", std::to_string(job.procs));
  add("--worker-threads", std::to_string(job.threads));
  add("--worker-mode", job.mode == server::ReplayMode::kMax ? "max" : "normal");
  add("--worker-window", std::to_string(job.window_requests));
  add("--worker-open-loop", job.open_loop ? "1" : "0");
  add("--worker-ram-bytes", std::to_string(job.ram_bytes));
  add("--worker-seed", std::to_string(job.seed));
  add("--worker-ttl", format_double(job.freshness_ttl_s));
  add("--worker-reval-prob", format_double(job.revalidate_change_prob));
  if (!job.origin_profile.empty()) {
    add("--worker-origin-profile", job.origin_profile);
  }
  if (!job.fault_schedule.empty()) {
    add("--worker-fault-schedule", job.fault_schedule);
  }
  if (!job.control_plane.empty()) {
    add("--worker-control-plane", job.control_plane);
  }
  if (job.train_threads != 0) {
    add("--worker-train-threads", std::to_string(job.train_threads));
  }
  if (job.async_train) args.emplace_back("--worker-async-train");
  return args;
}

std::unique_ptr<server::CdnServer> make_job_server(const ProcReplayJob& job) {
  PolicyTuning tuning;
  tuning.lhr_train_threads = job.train_threads;
  if (job.async_train) tuning.lhr_async_train = 1;
  tuning.control_plane_spec = job.control_plane;
  auto backend = std::make_unique<server::ShardedCache>(
      job.shards, job.capacity_bytes, [&](std::uint64_t cap) {
        return make_policy(job.policy, cap, tuning);
      });

  server::ServerConfig cfg;
  cfg.ram_bytes = job.ram_bytes != 0
                      ? job.ram_bytes
                      : std::max<std::uint64_t>(job.capacity_bytes / 100, 1ULL << 20);
  cfg.seed = job.seed;
  cfg.freshness_ttl_s = job.freshness_ttl_s;
  cfg.revalidate_change_prob = job.revalidate_change_prob;
  cfg.measured_lookup_cpu = false;
  if (!job.origin_profile.empty()) {
    const server::OriginSettings settings =
        server::parse_origin_profile(job.origin_profile);
    cfg.origin_profile = settings.profile;
    cfg.fetch = settings.fetch;
  }
  if (!job.fault_schedule.empty()) {
    cfg.fault_schedule = server::FaultSchedule::parse(job.fault_schedule);
  }
  return std::make_unique<server::CdnServer>(std::move(backend), cfg);
}

server::ServerReport run_proc_replay(const ProcReplayJob& job) {
  if (job.trace_path.empty()) {
    throw std::invalid_argument(
        "run_proc_replay: trace_path must name an .lhrt file (workers mmap it "
        "by path)");
  }
  const trace::MappedTrace trace(job.trace_path);
  const auto parent = make_job_server(job);
  return server::replay_multiprocess(
      *parent, trace, job_options(job), util::self_exe_path(),
      [&job](std::size_t p) { return worker_argv(job, p); });
}

int proc_replay_worker_main(int argc, const char* const* argv) {
  if (argc < 2 || std::string_view(argv[1]) != kReplayWorkerFlag) return -1;
  try {
    ProcReplayJob job;
    const std::size_t proc_index = parse_worker_argv(argc, argv, job);
    if (const char* crash = std::getenv("LHR_PROC_REPLAY_TEST_CRASH")) {
      if (std::string_view(crash) == std::to_string(proc_index)) {
        ::raise(SIGKILL);
      }
    }
    const trace::MappedTrace trace(job.trace_path);
    const auto server = make_job_server(job);
    return server::run_replay_worker(*server, trace, proc_index,
                                     job_options(job), server::kWorkerPipeFd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay worker error: %s\n", e.what());
    return 1;
  }
}

}  // namespace lhr::core
