// Process-parallel replay engine, core half: the job description a worker
// process needs to rebuild the parent's serving stack from scratch (policy
// factory + server config + trace path), its round-trip through plain argv
// tokens, and the parent/worker entry points. The generic IPC/merge engine
// lives in server/proc_replay.hpp; this layer exists because rebuilding the
// server needs core::make_policy, which lhr_server cannot link.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/cdn_server.hpp"
#include "server/proc_replay.hpp"

namespace lhr::core {

/// Everything a worker process needs to reconstruct the replay: the .lhrt
/// file every process mmaps read-only, the policy/backend shape, the server
/// config knobs that affect results, and the fan-out geometry. Origin,
/// fault-schedule and control-plane configuration travel as their CLI spec
/// strings and are re-parsed in the worker — one serialization for humans,
/// the CLI, and the pipe protocol.
struct ProcReplayJob {
  std::string trace_path;             ///< packed .lhrt trace (shared mapping)
  std::string policy = "LRU";
  std::uint64_t capacity_bytes = 1ULL << 30;
  std::size_t shards = 16;            ///< ShardedCache backend shard count
  std::size_t procs = 1;              ///< worker processes
  std::size_t threads = 1;            ///< replay threads per worker process
  server::ReplayMode mode = server::ReplayMode::kNormal;
  std::size_t window_requests = 50'000;
  bool open_loop = false;
  std::uint64_t ram_bytes = 0;        ///< 0 = capacity/100, min 1 MiB (CLI rule)
  std::uint64_t seed = 11;            ///< ServerConfig::seed
  double freshness_ttl_s = 24 * 3600.0;
  double revalidate_change_prob = 0.05;
  std::string origin_profile;         ///< server::parse_origin_profile spec
  std::string fault_schedule;         ///< server::FaultSchedule::parse spec
  std::string control_plane;          ///< server::parse_control_plane spec
  std::size_t train_threads = 0;      ///< LHR GBDT training threads
  bool async_train = false;           ///< LHR background retraining
};

/// argv[1] that routes a process into hidden worker mode. Binaries hosting
/// the engine (lhr_sim, benches, proc_replay_test) call
/// proc_replay_worker_main first thing in main().
inline constexpr const char* kReplayWorkerFlag = "--replay-worker";

/// Builds the argv (tokens after argv[0]) that re-enters the current binary
/// as worker `proc_index` of `job`. Plain flag/value tokens — posix_spawn
/// takes argv directly, so no shell quoting exists to get wrong; doubles
/// round-trip exactly via %.17g.
[[nodiscard]] std::vector<std::string> worker_argv(const ProcReplayJob& job,
                                                   std::size_t proc_index);

/// Constructs the serving stack `job` describes: a ShardedCache of
/// `job.shards` x make_policy(job.policy) under a CdnServer. Parent and
/// workers both use this, so their servers are identical by construction.
/// Forces measured_lookup_cpu = false (the fabric determinism mode): the
/// canonical report's latency quantiles must be a pure function of the
/// trace for the byte-identical merge contract to hold.
[[nodiscard]] std::unique_ptr<server::CdnServer> make_job_server(
    const ProcReplayJob& job);

/// Parent entry point: spawns `job.procs` workers of the *current binary*
/// (util::self_exe_path) and returns the merged report. See
/// server::replay_multiprocess for the failure contract (any worker crash,
/// kill or bad partial throws std::runtime_error with per-worker detail).
[[nodiscard]] server::ServerReport run_proc_replay(const ProcReplayJob& job);

/// Worker entry point, to be called at the very top of main(): returns -1
/// when argv is not a worker invocation (caller proceeds normally),
/// otherwise runs the slice, writes the partial to server::kWorkerPipeFd
/// and returns the process exit code (non-zero on any error, with a
/// diagnostic on stderr). Honors LHR_PROC_REPLAY_TEST_CRASH=<index>, a test
/// hook that SIGKILLs the matching worker before it reports — how the
/// kill-a-worker test exercises the parent's failure path.
[[nodiscard]] int proc_replay_worker_main(int argc, const char* const* argv);

}  // namespace lhr::core
