// Construction of any policy in the repository by name — the entry point
// examples and benchmark harnesses use to assemble the paper's SOTA lineup.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cache_policy.hpp"

namespace lhr::core {

/// Known names: "LRU", "FIFO", "Random", "LRU-4", "LFU-DA", "GDSF",
/// "AdaptSize", "B-LRU", "TinyLFU", "W-TinyLFU", "Hawkeye", "LRB", "LFO",
/// "LHR", "D-LHR", "N-LHR". Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<sim::CachePolicy> make_policy(const std::string& name,
                                                            std::uint64_t capacity_bytes);

/// The seven best-performing SOTAs reported in the paper's figures (§6.2):
/// LRB, Hawkeye, LRU, LRU-4, LFU-DA, AdaptSize, B-LRU.
[[nodiscard]] std::vector<std::string> sota_policy_names();

/// Every policy name make_policy accepts.
[[nodiscard]] std::vector<std::string> all_policy_names();

}  // namespace lhr::core
