// Construction of any policy in the repository by name — the entry point
// examples and benchmark harnesses use to assemble the paper's SOTA lineup.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/fabric.hpp"
#include "sim/cache_policy.hpp"

namespace lhr::core {

/// Cross-cutting tuning applied to the LHR-family policies built by
/// make_policy (other policies ignore it). Field defaults mean "keep the
/// policy default, unless the corresponding environment knob overrides it":
/// LHR_TRAIN_THREADS (intra-fit worker count), LHR_TRAIN_ASYNC (any value
/// but "0" moves retraining off the request path), LHR_SHADOW (control-plane
/// spec, same grammar as --control-plane) and the LHR_SHADOW_* refinements
/// (SAMPLE/WINDOW/AGREE/DIV/GUARD/REARM/P99 — see server/control_plane.hpp).
struct PolicyTuning {
  std::size_t lhr_train_threads = 0;  ///< 0 = default/env; >=1 forces a value
  int lhr_async_train = -1;           ///< -1 = default/env; 0/1 force sync/async
  /// Shadow-rollout control-plane spec (server::parse_control_plane
  /// grammar). Empty = default/env (LHR_SHADOW); "off" forces disabled.
  std::string control_plane_spec;
};

/// Known names: "LRU", "FIFO", "Random", "LRU-4", "LFU-DA", "GDSF",
/// "AdaptSize", "B-LRU", "TinyLFU", "W-TinyLFU", "Hawkeye", "LRB", "LFO",
/// "LHR", "LHR-Async", "D-LHR", "N-LHR". Throws std::invalid_argument for
/// unknown names.
[[nodiscard]] std::unique_ptr<sim::CachePolicy> make_policy(const std::string& name,
                                                            std::uint64_t capacity_bytes,
                                                            const PolicyTuning& tuning);
[[nodiscard]] std::unique_ptr<sim::CachePolicy> make_policy(const std::string& name,
                                                            std::uint64_t capacity_bytes);

/// Binds a parsed --fabric topology spec to a buildable fabric config: tier
/// policy names become make_policy factories (with `tuning` applied),
/// capacities convert to bytes, link numbers to seconds, and per-node RAM
/// tiers default to capacity/100 (min 1 MiB) like the serving CLI path.
/// The caller may still adjust server templates (origin profile, fault
/// schedule) before constructing the server::CdnFabric.
[[nodiscard]] server::FabricConfig make_fabric_config(const server::FabricSpec& spec,
                                                      const PolicyTuning& tuning = {});

/// The seven best-performing SOTAs reported in the paper's figures (§6.2):
/// LRB, Hawkeye, LRU, LRU-4, LFU-DA, AdaptSize, B-LRU.
[[nodiscard]] std::vector<std::string> sota_policy_names();

/// Every policy name make_policy accepts.
[[nodiscard]] std::vector<std::string> all_policy_names();

}  // namespace lhr::core
