#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>

namespace lhr::sim {

SimMetrics simulate(CachePolicy& policy, const trace::TraceSource& source,
                    const SimOptions& options) {
  SimMetrics m;
  const std::uint64_t raw_capacity = policy.capacity_bytes();
  const auto t0 = std::chrono::steady_clock::now();

  WindowPoint window;
  std::size_t in_window = 0;
  std::size_t window_index = 0;
  SimObserver* const observer = options.observer;

  const bool timed = observer != nullptr || options.time_accesses;
  // Chunked iteration: contiguous sources hand out zero-copy subspans, and
  // mmap/generator-backed sources keep resident trace memory at O(chunk).
  auto cursor = source.cursor();
  std::span<const trace::Request> chunk;
  for (std::size_t base = cursor->position();
       !(chunk = cursor->next_chunk(trace::kDefaultChunkRequests)).empty();
       base = cursor->position()) {
    for (std::size_t j = 0; j < chunk.size(); ++j) {
      const std::size_t i = base + j;
      const trace::Request& r = chunk[j];
      bool hit;
      if (timed) {
        // Per-request timing is only paid when someone is listening.
        const auto a0 = std::chrono::steady_clock::now();
        hit = policy.access(r);
        const double access_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - a0).count();
        m.max_access_seconds = std::max(m.max_access_seconds, access_seconds);
        if (observer != nullptr) observer->on_request(i, r, hit, access_seconds);
      } else {
        hit = policy.access(r);
      }

      if (i >= options.warmup_requests) {
        ++m.requests;
        m.bytes_requested += static_cast<double>(r.size);
        if (hit) {
          ++m.hits;
          m.bytes_hit += static_cast<double>(r.size);
        }
      }

      ++window.requests;
      window.bytes_requested += static_cast<double>(r.size);
      if (hit) {
        ++window.hits;
        window.bytes_hit += static_cast<double>(r.size);
      }
      if (++in_window == options.window_requests) {
        m.windows.push_back(window);
        if (observer != nullptr) observer->on_window(window_index, window);
        ++window_index;
        window = WindowPoint{};
        in_window = 0;
      }

      if (options.deduct_metadata && options.capacity_adjust_interval > 0 &&
          (i + 1) % options.capacity_adjust_interval == 0) {
        const std::uint64_t meta = policy.metadata_bytes();
        m.peak_metadata_bytes = std::max(m.peak_metadata_bytes, meta);
        policy.set_capacity(meta >= raw_capacity ? 0 : raw_capacity - meta);
      }
    }
  }
  if (in_window > 0) {
    m.windows.push_back(window);
    if (observer != nullptr) observer->on_window(window_index, window);
  }

  m.peak_metadata_bytes = std::max(m.peak_metadata_bytes, policy.metadata_bytes());
  m.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return m;
}

}  // namespace lhr::sim
