// The cache-policy interface every algorithm in src/policies and src/core
// implements, plus a small base class with the bookkeeping they all share.
#pragma once

#include <cstdint>
#include <string>

#include "trace/request.hpp"
#include "util/flat_hash_map.hpp"

namespace lhr::sim {

/// A byte-capacity cache policy driven one request at a time.
///
/// The policy owns both decisions the paper separates (§1): *admission*
/// (whether to cache a missed content) and *eviction* (whom to remove when
/// full). `access` returns whether the request hit, and internally performs
/// any admission/eviction.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  CachePolicy(const CachePolicy&) = delete;
  CachePolicy& operator=(const CachePolicy&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Processes one request; returns true iff it was a cache hit.
  virtual bool access(const trace::Request& r) = 0;

  [[nodiscard]] virtual std::uint64_t used_bytes() const = 0;
  [[nodiscard]] virtual std::uint64_t capacity_bytes() const = 0;

  /// Bytes of auxiliary state (indexes, sketches, ML features/models).
  /// The engine deducts this from the usable capacity so that algorithms
  /// with heavy metadata do not get a free ride (paper §7.1 "Overhead").
  [[nodiscard]] virtual std::uint64_t metadata_bytes() const { return 0; }

  /// Shrinks/grows usable capacity (engine fairness accounting). Policies
  /// must evict down to the new capacity lazily or eagerly.
  virtual void set_capacity(std::uint64_t bytes) = 0;

 protected:
  CachePolicy() = default;
};

/// Shared bookkeeping: the key->size map, used/capacity counters, and the
/// membership test. Concrete policies layer their replacement state on top.
class CacheBase : public CachePolicy {
 public:
  explicit CacheBase(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  [[nodiscard]] std::uint64_t used_bytes() const final { return used_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const final { return capacity_; }
  void set_capacity(std::uint64_t bytes) override { capacity_ = bytes; }

  [[nodiscard]] bool contains(trace::Key key) const { return sizes_.contains(key); }
  [[nodiscard]] std::size_t object_count() const noexcept { return sizes_.size(); }

 protected:
  /// Records the object as cached. Caller must have made room first.
  void store_object(trace::Key key, std::uint64_t size) {
    auto [it, inserted] = sizes_.try_emplace(key, size);
    if (inserted) {
      used_ += size;
    } else if (it->second != size) {
      used_ += size - it->second;
      it->second = size;
    }
  }

  /// Removes the object; returns its size (0 if absent).
  std::uint64_t remove_object(trace::Key key) {
    const auto it = sizes_.find(key);
    if (it == sizes_.end()) return 0;
    const std::uint64_t size = it->second;
    used_ -= size;
    sizes_.erase(it);
    return size;
  }

  [[nodiscard]] std::uint64_t object_size(trace::Key key) const {
    const auto it = sizes_.find(key);
    return it == sizes_.end() ? 0 : it->second;
  }

  /// Hints that `key`'s size entry will be looked up soon (the sampled-
  /// eviction gathers prefetch the next candidate while scoring this one).
  void prefetch_object(trace::Key key) const noexcept { sizes_.prefetch(key); }

  /// True when an object of `size` can never fit (bigger than the cache).
  [[nodiscard]] bool oversized(std::uint64_t size) const { return size > capacity_; }

  const util::FlatHashMap<trace::Key, std::uint64_t>& cached_sizes() const {
    return sizes_;
  }

 private:
  util::FlatHashMap<trace::Key, std::uint64_t> sizes_;
  std::uint64_t used_ = 0;
  std::uint64_t capacity_;
};

}  // namespace lhr::sim
