// The idealized latency/throughput model of §7.3 and Table 3.
//
// The paper assumes: (a) an 8 Gbps transmission rate; (b) latency dominated
// by distance (edge vs origin round trip) plus a size-proportional transfer
// term; (c) the per-request running time of the caching algorithm adds to
// latency. Throughput is the bits delivered per unit of busy time.
#pragma once

#include <cstdint>

#include "util/stats.hpp"

namespace lhr::sim {

struct LatencyModelConfig {
  double link_gbps = 8.0;        ///< §7.3(a): per-content transmission rate
  double edge_rtt_s = 0.010;     ///< distance term for a hit
  double origin_rtt_s = 0.060;   ///< distance term for a miss (origin fetch)
  double origin_gbps = 2.0;      ///< origin-side bottleneck on misses
};

/// Accumulates per-request latency samples and derives the Table 3 metrics.
class LatencyModel {
 public:
  explicit LatencyModel(const LatencyModelConfig& config = {}) : config_(config) {}

  /// Records one request. `algo_seconds` is the measured compute time spent
  /// by the caching algorithm on this request (paper: "We also take the
  /// running time of the ML model into account").
  void record(std::uint64_t size_bytes, bool hit, double algo_seconds);

  [[nodiscard]] double latency_seconds(std::uint64_t size_bytes, bool hit,
                                       double algo_seconds) const;

  [[nodiscard]] double mean_latency_ms() const { return hist_.mean() * 1e3; }
  [[nodiscard]] double p90_latency_ms() const { return hist_.quantile(0.90) * 1e3; }
  [[nodiscard]] double p99_latency_ms() const { return hist_.quantile(0.99) * 1e3; }

  /// Delivered bits / busy seconds, in Gbps.
  [[nodiscard]] double throughput_gbps() const {
    return busy_seconds_ > 0.0 ? (bits_served_ / busy_seconds_) / 1e9 : 0.0;
  }

  [[nodiscard]] std::uint64_t requests() const { return hist_.count(); }

 private:
  LatencyModelConfig config_;
  util::QuantileHistogram hist_{1e-6, 1e4, 128};
  double bits_served_ = 0.0;
  double busy_seconds_ = 0.0;
};

}  // namespace lhr::sim
