#include "sim/latency_model.hpp"

namespace lhr::sim {

double LatencyModel::latency_seconds(std::uint64_t size_bytes, bool hit,
                                     double algo_seconds) const {
  const double bits = static_cast<double>(size_bytes) * 8.0;
  const double edge_transfer = bits / (config_.link_gbps * 1e9);
  double latency = config_.edge_rtt_s + edge_transfer + algo_seconds;
  if (!hit) {
    // Miss path: origin round trip plus the slower origin-side transfer.
    latency += config_.origin_rtt_s + bits / (config_.origin_gbps * 1e9);
  }
  return latency;
}

void LatencyModel::record(std::uint64_t size_bytes, bool hit, double algo_seconds) {
  const double latency = latency_seconds(size_bytes, hit, algo_seconds);
  hist_.add(latency);
  bits_served_ += static_cast<double>(size_bytes) * 8.0;
  busy_seconds_ += latency;
}

}  // namespace lhr::sim
