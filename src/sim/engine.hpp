// The trace-driven simulation engine.
#pragma once

#include <cstddef>
#include <span>

#include "sim/cache_policy.hpp"
#include "sim/metrics.hpp"
#include "trace/request.hpp"
#include "trace/trace.hpp"

namespace lhr::sim {

struct SimOptions {
  /// Requests per time-series window (Figures 7/13).
  std::size_t window_requests = 50'000;
  /// Requests ignored by the aggregate counters (cold-start handling); the
  /// per-window series still includes them.
  std::size_t warmup_requests = 0;
  /// When true, the engine periodically sets the policy's capacity to
  /// (raw capacity - metadata_bytes), the fairness rule of §7.1.
  bool deduct_metadata = true;
  /// How often (in requests) the metadata deduction is refreshed.
  std::size_t capacity_adjust_interval = 16'384;
};

/// Replays `requests` through `policy` and gathers metrics.
/// The policy's initial capacity is treated as the raw cache size.
[[nodiscard]] SimMetrics simulate(CachePolicy& policy,
                                  std::span<const trace::Request> requests,
                                  const SimOptions& options = {});

[[nodiscard]] inline SimMetrics simulate(CachePolicy& policy, const trace::Trace& trace,
                                         const SimOptions& options = {}) {
  return simulate(policy, trace.requests(), options);
}

}  // namespace lhr::sim
