// The trace-driven simulation engine.
#pragma once

#include <cstddef>
#include <span>

#include "sim/cache_policy.hpp"
#include "sim/metrics.hpp"
#include "trace/request.hpp"
#include "trace/trace_source.hpp"

namespace lhr::sim {

/// Observation hooks into the replay loop. Attach one via
/// `SimOptions::observer` to watch progress, collect per-request latency
/// samples, or export per-window series without patching any policy.
///
/// Callbacks run synchronously on the simulating thread; an observer
/// attached to a job running on the parallel runner is only ever invoked
/// from that job's worker thread, so observers need no locking unless they
/// are shared across jobs.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// Called after every request. `access_seconds` is the wall-clock cost of
  /// the policy's `access()` call; per-request timing is only measured when
  /// an observer is attached, so unobserved runs pay no clock overhead.
  virtual void on_request(std::size_t index, const trace::Request& r, bool hit,
                          double access_seconds) {
    (void)index, (void)r, (void)hit, (void)access_seconds;
  }

  /// Called each time a window of `SimOptions::window_requests` closes
  /// (including the final partial window).
  virtual void on_window(std::size_t window_index, const WindowPoint& window) {
    (void)window_index, (void)window;
  }
};

struct SimOptions {
  /// Requests per time-series window (Figures 7/13).
  std::size_t window_requests = 50'000;
  /// Requests ignored by the aggregate counters (cold-start handling); the
  /// per-window series still includes them.
  std::size_t warmup_requests = 0;
  /// When true, the engine periodically sets the policy's capacity to
  /// (raw capacity - metadata_bytes), the fairness rule of §7.1.
  bool deduct_metadata = true;
  /// How often (in requests) the metadata deduction is refreshed.
  std::size_t capacity_adjust_interval = 16'384;
  /// Optional replay hooks (progress, per-request timing, window series).
  /// Not owned; must outlive the simulate() call.
  SimObserver* observer = nullptr;
  /// Time every access() even without an observer, filling
  /// SimMetrics::max_access_seconds (the per-request stall ceiling).
  bool time_accesses = false;
};

/// Replays `source` through `policy` and gathers metrics, iterating the
/// trace in bounded chunks: an mmap-backed or generator-backed source is
/// simulated in O(chunk) resident trace memory. The policy's initial
/// capacity is treated as the raw cache size.
[[nodiscard]] SimMetrics simulate(CachePolicy& policy, const trace::TraceSource& source,
                                  const SimOptions& options = {});

[[nodiscard]] inline SimMetrics simulate(CachePolicy& policy,
                                         std::span<const trace::Request> requests,
                                         const SimOptions& options = {}) {
  return simulate(policy, trace::TraceView(requests), options);
}

}  // namespace lhr::sim
