// Simulation metrics: the quantities reported throughout the paper's
// evaluation — object hit probability, byte hit ratio, WAN traffic, and
// per-window time series (Figures 7/13 plot hit probability per window).
#pragma once

#include <cstdint>
#include <vector>

namespace lhr::sim {

struct WindowPoint {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  double bytes_requested = 0.0;
  double bytes_hit = 0.0;

  [[nodiscard]] double hit_ratio() const {
    return requests ? static_cast<double>(hits) / static_cast<double>(requests) : 0.0;
  }
};

struct SimMetrics {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  double bytes_requested = 0.0;
  double bytes_hit = 0.0;
  std::vector<WindowPoint> windows;  ///< fixed-request-count windows

  double wall_seconds = 0.0;          ///< wall-clock of the simulation loop
  /// Worst single access() wall-clock — the per-request stall ceiling (e.g.
  /// a window-boundary retrain). Only measured when the engine times
  /// accesses (observer attached or SimOptions::time_accesses); 0 otherwise.
  double max_access_seconds = 0.0;
  std::uint64_t peak_metadata_bytes = 0;

  /// "Content hit probability" in the paper's terminology.
  [[nodiscard]] double object_hit_ratio() const {
    return requests ? static_cast<double>(hits) / static_cast<double>(requests) : 0.0;
  }
  [[nodiscard]] double byte_hit_ratio() const {
    return bytes_requested > 0.0 ? bytes_hit / bytes_requested : 0.0;
  }
  /// Bytes fetched from the origin over the WAN (the traffic the paper's
  /// Figure 8 bottom row reports, normalized per unit time by callers).
  [[nodiscard]] double wan_traffic_bytes() const { return bytes_requested - bytes_hit; }

  // Simulation throughput (replay speed of the engine itself, not of the
  // modeled server) — the runner reports these per job.
  [[nodiscard]] double requests_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(requests) / wall_seconds : 0.0;
  }
  [[nodiscard]] double mbytes_per_second() const {
    return wall_seconds > 0.0 ? bytes_requested / wall_seconds / 1e6 : 0.0;
  }
};

}  // namespace lhr::sim
