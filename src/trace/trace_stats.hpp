// Trace characterization: the columns of Table 1 and the distributions of
// Figure 1 (content popularity and inter-arrival times).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace_source.hpp"

namespace lhr::trace {

/// Summary statistics matching Table 1 of the paper.
struct TraceSummary {
  double duration_hours = 0.0;
  std::uint64_t unique_contents = 0;
  std::uint64_t total_requests = 0;
  double total_bytes_requested_tb = 0.0;
  double unique_bytes_gb = 0.0;
  double peak_active_bytes_gb = 0.0;  ///< max over t of "active bytes" (footnote 2)
  double mean_content_size_mb = 0.0;
  double max_content_size_mb = 0.0;
  double one_hit_wonder_fraction = 0.0;  ///< contents requested exactly once
};

/// Streams `trace` once per pass; works unchanged over in-memory, mmapped
/// and generator-backed sources (per-content state is O(unique contents)).
[[nodiscard]] TraceSummary summarize(const TraceSource& trace);

/// Rank/frequency pairs sorted by decreasing request count (Figure 1 left).
/// `points[i]` is the request count of the (i+1)-th most popular content.
[[nodiscard]] std::vector<std::uint64_t> popularity_counts(const TraceSource& trace);

/// Fits a Zipf exponent alpha to the rank-frequency curve via least squares
/// on log-log coordinates (the detection model of §5.2.2, applied offline).
/// `max_rank` truncates the tail, which is standard practice because the tail
/// of a finite trace departs from the power law.
[[nodiscard]] double fit_zipf_alpha(const std::vector<std::uint64_t>& counts,
                                    std::size_t max_rank = 0);

/// All inter-request times across contents (Figure 1 right). The caller can
/// histogram or CDF them as needed.
[[nodiscard]] std::vector<double> inter_request_times(const TraceSource& trace);

/// Empirical CDF evaluated at each of `points` over `samples`.
[[nodiscard]] std::vector<double> empirical_cdf(std::vector<double> samples,
                                                const std::vector<double>& points);

}  // namespace lhr::trace
