// The request model shared by every layer of the system.
//
// All caching algorithms in this repository consume only (time, key, size):
// the same triple the paper's production traces expose.
#pragma once

#include <cstdint>

namespace lhr::trace {

/// Seconds since trace start. Double precision keeps microsecond resolution
/// over multi-week traces.
using Time = double;

/// Opaque content identifier (hash of the URL in a real CDN).
using Key = std::uint64_t;

/// A single content request.
struct Request {
  Time time = 0.0;
  Key key = 0;
  std::uint64_t size = 0;  ///< content size in bytes

  friend bool operator==(const Request&, const Request&) = default;
};

}  // namespace lhr::trace
