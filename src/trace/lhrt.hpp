// The packed binary trace format (.lhrt) and its zero-copy mmap reader.
//
// Layout (all integers little-endian; see DESIGN.md "Trace I/O & streaming"):
//
//   offset  0  u32  magic   "LHRT" (0x5452484C)
//   offset  4  u32  version (currently 1)
//   offset  8  u64  count   number of records
//   offset 16  u64  seed    generator seed (0 when unknown)
//   offset 24  i32  trace_class  gen::TraceClass value, -1 when unknown
//   offset 28  u32  reserved (0)
//   offset 32  u8[32] reserved (0)
//   offset 64  count × 24-byte records: f64 time, u64 key, u64 size
//
// The 64-byte header keeps records 8-byte aligned in the mapping, so the
// reader can expose them as a `span<const Request>` with no copy or decode
// step. Records are exactly the in-memory trace::Request layout; a file is
// valid iff its size is exactly 64 + 24*count bytes — a partially written
// file is rejected, never silently truncated.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>

#include "trace/request.hpp"
#include "trace/trace_source.hpp"

namespace lhr::trace {

inline constexpr std::uint32_t kLhrtMagic = 0x5452484Cu;  // "LHRT" when read LE
inline constexpr std::uint32_t kLhrtVersion = 1;
inline constexpr std::size_t kLhrtHeaderBytes = 64;
inline constexpr std::size_t kLhrtRecordBytes = 24;
inline constexpr std::int32_t kLhrtClassUnknown = -1;

static_assert(sizeof(Request) == kLhrtRecordBytes,
              "Request must pack to the 24-byte .lhrt record");

/// Streaming .lhrt writer: append records in any chunking, then finish().
/// The header is written last (the placeholder carries a zero magic), so a
/// crashed or abandoned write is rejected by every reader instead of being
/// read as a shorter trace.
class LhrtWriter {
 public:
  /// Opens `path` for writing and reserves the header. Throws
  /// std::runtime_error if the file cannot be created.
  explicit LhrtWriter(const std::string& path, std::uint64_t seed = 0,
                      std::int32_t trace_class = kLhrtClassUnknown);

  LhrtWriter(const LhrtWriter&) = delete;
  LhrtWriter& operator=(const LhrtWriter&) = delete;

  /// Closes the file. A writer destroyed without finish() leaves an invalid
  /// (zero-magic) file behind by design.
  ~LhrtWriter();

  void append(std::span<const Request> records);
  void append(const Request& r) { append({&r, 1}); }

  /// Seals the file: writes the real header with the final record count and
  /// flushes. Throws std::runtime_error on any I/O failure. Idempotent.
  void finish();

  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t seed_;
  std::int32_t trace_class_;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

/// Writes every record of `source` to `path` in .lhrt format, streaming
/// through bounded chunks (never materializing the source).
void write_lhrt_file(const TraceSource& source, const std::string& path,
                     std::uint64_t seed = 0,
                     std::int32_t trace_class = kLhrtClassUnknown);

/// Zero-copy reader over an .lhrt file: validates the header, maps the file
/// read-only and exposes the records directly from the page cache, so
/// resident memory is O(touched pages) however large the trace is.
///
/// The constructor throws std::runtime_error with a precise reason for a
/// missing file, short/invalid header, bad magic, unsupported version, or a
/// file whose size disagrees with its record count (truncation/corruption).
class MappedTrace final : public TraceSource {
 public:
  explicit MappedTrace(const std::string& path);
  ~MappedTrace() override;

  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  [[nodiscard]] std::size_t size() const override { return count_; }
  [[nodiscard]] Time duration() const override {
    if (count_ < 2) return 0.0;
    return records_[count_ - 1].time - records_[0].time;
  }
  [[nodiscard]] std::optional<std::span<const Request>> contiguous() const override {
    return requests();
  }

  [[nodiscard]] std::span<const Request> requests() const noexcept {
    return {records_, count_};
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::int32_t trace_class() const noexcept { return trace_class_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 protected:
  /// Plain zero-copy subspans for small mappings; for large ones the cursor
  /// additionally releases consumed pages (a lagging MADV_DONTNEED prefix),
  /// so replay RSS stays O(chunk + lag) however long the trace is.
  [[nodiscard]] std::unique_ptr<TraceCursor> make_cursor(
      std::size_t begin, std::size_t end) const override;

 private:
  std::string path_;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  const Request* records_ = nullptr;
  std::size_t count_ = 0;
  std::uint64_t seed_ = 0;
  std::int32_t trace_class_ = kLhrtClassUnknown;
};

}  // namespace lhr::trace
