// The streaming trace abstraction: cursor/chunk iteration over Request
// records, decoupling every consumer from "the whole trace is a vector in
// RAM".
//
// A TraceSource knows its length and hands out independent TraceCursors;
// each cursor yields the requests of a half-open index range in order, one
// bounded chunk at a time. Three implementations cover the repository:
//
//   * trace::Trace        — the classic in-memory vector (contiguous);
//   * trace::MappedTrace  — zero-copy mmap over a packed .lhrt file
//                           (lhrt.hpp), resident memory O(touched pages);
//   * gen::StreamingGenerator — regenerates the synthetic workload chunk by
//                           chunk in O(contents + chunk) memory.
//
// Cursors are independent objects: any number of them may walk the same
// source concurrently (the replay_concurrent worker pattern), and a source
// is never mutated by reads. Contiguous sources additionally expose their
// whole record array through contiguous(), which the offline-optimal
// analyses use for zero-copy random access.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <span>

#include "trace/request.hpp"

namespace lhr::trace {

/// "To the end of the source" for TraceSource::cursor.
inline constexpr std::size_t kTraceNpos = std::numeric_limits<std::size_t>::max();

/// Default requests per chunk (24 B/request -> 1.5 MiB per chunk): large
/// enough to amortize virtual dispatch, small enough to stay cache-friendly
/// and keep streaming sources' buffers bounded.
inline constexpr std::size_t kDefaultChunkRequests = 1 << 16;

/// A forward cursor over a request range. Not thread-safe itself; create one
/// cursor per thread instead.
class TraceCursor {
 public:
  virtual ~TraceCursor() = default;

  /// Global index (within the source) of the next request next_chunk()
  /// will yield.
  [[nodiscard]] virtual std::size_t position() const noexcept = 0;

  /// The next run of at most `max_requests` requests; empty at end of range.
  /// The returned span is valid until the next next_chunk() call or cursor
  /// destruction (contiguous sources keep it valid for the source lifetime).
  [[nodiscard]] virtual std::span<const Request> next_chunk(
      std::size_t max_requests = kDefaultChunkRequests) = 0;
};

/// Cursor over a contiguous in-memory record array: every chunk is a
/// zero-copy subspan. Shared by Trace, TraceView and MappedTrace.
class SpanCursor final : public TraceCursor {
 public:
  SpanCursor(std::span<const Request> all, std::size_t begin, std::size_t end)
      : all_(all), pos_(std::min(begin, all.size())),
        end_(std::min(end, all.size())) {
    if (pos_ > end_) pos_ = end_;
  }

  [[nodiscard]] std::size_t position() const noexcept override { return pos_; }

  [[nodiscard]] std::span<const Request> next_chunk(std::size_t max_requests) override {
    const std::size_t n = std::min(max_requests, end_ - pos_);
    const auto chunk = all_.subspan(pos_, n);
    pos_ += n;
    return chunk;
  }

 private:
  std::span<const Request> all_;
  std::size_t pos_;
  std::size_t end_;
};

/// Abstract ordered request stream of known length.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Duration between first and last request (0 for < 2 requests). O(1) for
  /// contiguous sources; streaming sources may pay one generation pass on
  /// first call (they cache the answer).
  [[nodiscard]] virtual Time duration() const = 0;

  /// A fresh cursor over requests [begin, min(end, size())). Cursors are
  /// independent; creating and using one per thread is safe.
  [[nodiscard]] std::unique_ptr<TraceCursor> cursor(
      std::size_t begin = 0, std::size_t end = kTraceNpos) const {
    return make_cursor(begin, end);
  }

  /// The whole record array, when this source is backed by contiguous
  /// memory (Trace, TraceView, MappedTrace); std::nullopt for streaming
  /// sources. Zero-copy — for mmap-backed sources residency is still
  /// demand-paged by the kernel.
  [[nodiscard]] virtual std::optional<std::span<const Request>> contiguous() const {
    return std::nullopt;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  // ---- range-for support (input iteration via chunks) -------------------
  struct sentinel {};

  class iterator {
   public:
    using value_type = Request;
    using reference = const Request&;
    using difference_type = std::ptrdiff_t;

    explicit iterator(std::unique_ptr<TraceCursor> cursor)
        : cursor_(std::move(cursor)) {
      refill();
    }

    reference operator*() const { return chunk_[idx_]; }
    iterator& operator++() {
      if (++idx_ == chunk_.size()) refill();
      return *this;
    }
    bool operator==(sentinel) const { return done_; }

   private:
    void refill() {
      chunk_ = cursor_->next_chunk(kDefaultChunkRequests);
      idx_ = 0;
      done_ = chunk_.empty();
    }

    std::unique_ptr<TraceCursor> cursor_;
    std::span<const Request> chunk_;
    std::size_t idx_ = 0;
    bool done_ = false;
  };

  [[nodiscard]] iterator begin() const { return iterator(cursor()); }
  [[nodiscard]] sentinel end() const { return {}; }

 protected:
  [[nodiscard]] virtual std::unique_ptr<TraceCursor> make_cursor(
      std::size_t begin, std::size_t end) const = 0;
};

/// Non-owning contiguous view over an existing record array (the adapter the
/// span-based simulate() overload rides on). The viewed storage must outlive
/// the view.
class TraceView final : public TraceSource {
 public:
  explicit TraceView(std::span<const Request> requests) : requests_(requests) {}

  [[nodiscard]] std::size_t size() const override { return requests_.size(); }
  [[nodiscard]] Time duration() const override {
    if (requests_.size() < 2) return 0.0;
    return requests_.back().time - requests_.front().time;
  }
  [[nodiscard]] std::optional<std::span<const Request>> contiguous() const override {
    return requests_;
  }

 protected:
  [[nodiscard]] std::unique_ptr<TraceCursor> make_cursor(
      std::size_t begin, std::size_t end) const override {
    return std::make_unique<SpanCursor>(requests_, begin, end);
  }

 private:
  std::span<const Request> requests_;
};

}  // namespace lhr::trace
