#include "trace/trace_tools.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace lhr::trace {

Trace head(const Trace& trace, std::size_t n) {
  Trace out;
  const std::size_t count = std::min(n, trace.size());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(trace[i]);
  return out;
}

Trace time_slice(const Trace& trace, Time t_begin, Time t_end) {
  Trace out;
  for (const Request& r : trace) {
    if (r.time >= t_begin && r.time < t_end) out.push_back(r);
  }
  return out;
}

Trace sample_keys(const Trace& trace, std::uint64_t rate, std::uint64_t seed) {
  if (rate <= 1) return trace;
  Trace out;
  for (const Request& r : trace) {
    if (util::mix64(r.key ^ seed) % rate == 0) out.push_back(r);
  }
  return out;
}

Trace merge(const std::vector<Trace>& traces) {
  // Tag keys with the trace index in the top byte to keep key spaces apart.
  std::vector<Request> all;
  std::size_t total = 0;
  for (const Trace& t : traces) total += t.size();
  all.reserve(total);
  for (std::size_t idx = 0; idx < traces.size(); ++idx) {
    const std::uint64_t tag = static_cast<std::uint64_t>(idx + 1) << 56;
    for (const Request& r : traces[idx]) {
      all.push_back(Request{r.time, (r.key & 0x00ffffffffffffffULL) | tag, r.size});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Request& a, const Request& b) { return a.time < b.time; });
  return Trace{std::move(all)};
}

Trace rescale_time(const Trace& trace, Time new_duration) {
  if (trace.size() < 2 || new_duration <= 0.0) return trace;
  const Time t0 = trace[0].time;
  const Time old_duration = trace.duration();
  if (old_duration <= 0.0) return trace;
  const double factor = new_duration / old_duration;
  Trace out;
  out.reserve(trace.size());
  for (const Request& r : trace) {
    out.push_back(Request{(r.time - t0) * factor, r.key, r.size});
  }
  return out;
}

}  // namespace lhr::trace
