#include "trace/trace_stats.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/least_squares.hpp"

namespace lhr::trace {

namespace {
constexpr double kGB = 1024.0 * 1024.0 * 1024.0;
constexpr double kTB = kGB * 1024.0;
constexpr double kMB = 1024.0 * 1024.0;

struct PerContent {
  std::uint64_t count = 0;
  std::uint64_t size = 0;
  Time first = 0.0;
  Time last = 0.0;
};

std::unordered_map<Key, PerContent> collect(const TraceSource& trace) {
  std::unordered_map<Key, PerContent> per;
  per.reserve(trace.size() / 2 + 1);
  for (const Request& r : trace) {
    auto [it, inserted] = per.try_emplace(r.key, PerContent{0, r.size, r.time, r.time});
    ++it->second.count;
    it->second.last = r.time;
    it->second.size = r.size;  // latest size wins if the content changed
  }
  return per;
}

}  // namespace

TraceSummary summarize(const TraceSource& trace) {
  TraceSummary s;
  if (trace.empty()) return s;

  const auto per = collect(trace);
  s.duration_hours = trace.duration() / 3600.0;
  s.unique_contents = per.size();
  s.total_requests = trace.size();

  double total_bytes = 0.0;
  for (const Request& r : trace) total_bytes += static_cast<double>(r.size);
  s.total_bytes_requested_tb = total_bytes / kTB;

  double unique_bytes = 0.0;
  double max_size = 0.0;
  std::uint64_t one_hit = 0;
  for (const auto& [key, pc] : per) {
    unique_bytes += static_cast<double>(pc.size);
    max_size = std::max(max_size, static_cast<double>(pc.size));
    if (pc.count == 1) ++one_hit;
  }
  s.unique_bytes_gb = unique_bytes / kGB;
  s.mean_content_size_mb =
      unique_bytes / static_cast<double>(per.size()) / kMB;
  s.max_content_size_mb = max_size / kMB;
  s.one_hit_wonder_fraction =
      static_cast<double>(one_hit) / static_cast<double>(per.size());

  // Peak active bytes: sweep +size at a content's first request and -size
  // just after its last request (footnote 2 of the paper).
  std::vector<std::pair<Time, double>> events;
  events.reserve(per.size() * 2);
  for (const auto& [key, pc] : per) {
    events.emplace_back(pc.first, static_cast<double>(pc.size));
    events.emplace_back(pc.last, -static_cast<double>(pc.size));
  }
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;  // additions before removals at equal time
  });
  double active = 0.0, peak = 0.0;
  for (const auto& [t, delta] : events) {
    active += delta;
    peak = std::max(peak, active);
  }
  s.peak_active_bytes_gb = peak / kGB;
  return s;
}

std::vector<std::uint64_t> popularity_counts(const TraceSource& trace) {
  std::unordered_map<Key, std::uint64_t> counts;
  counts.reserve(trace.size() / 2 + 1);
  for (const Request& r : trace) ++counts[r.key];
  std::vector<std::uint64_t> result;
  result.reserve(counts.size());
  for (const auto& [key, c] : counts) result.push_back(c);
  std::sort(result.begin(), result.end(), std::greater<>());
  return result;
}

double fit_zipf_alpha(const std::vector<std::uint64_t>& counts, std::size_t max_rank) {
  if (counts.size() < 2) return 0.0;
  const std::size_t n =
      (max_rank == 0) ? counts.size() : std::min(max_rank, counts.size());
  std::vector<double> log_rank, log_count;
  log_rank.reserve(n);
  log_count.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[i] == 0) break;
    log_rank.push_back(std::log(static_cast<double>(i + 1)));
    log_count.push_back(std::log(static_cast<double>(counts[i])));
  }
  const auto fit = util::fit_linear(log_rank, log_count);
  return -fit.slope;  // log p_i = log A - alpha log i
}

std::vector<double> inter_request_times(const TraceSource& trace) {
  std::unordered_map<Key, Time> last_seen;
  last_seen.reserve(trace.size() / 2 + 1);
  std::vector<double> irts;
  irts.reserve(trace.size());
  for (const Request& r : trace) {
    auto [it, inserted] = last_seen.try_emplace(r.key, r.time);
    if (!inserted) {
      irts.push_back(r.time - it->second);
      it->second = r.time;
    }
  }
  return irts;
}

std::vector<double> empirical_cdf(std::vector<double> samples,
                                  const std::vector<double>& points) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> cdf;
  cdf.reserve(points.size());
  for (const double p : points) {
    const auto it = std::upper_bound(samples.begin(), samples.end(), p);
    cdf.push_back(samples.empty()
                      ? 0.0
                      : static_cast<double>(it - samples.begin()) /
                            static_cast<double>(samples.size()));
  }
  return cdf;
}

}  // namespace lhr::trace
