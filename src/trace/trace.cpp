#include "trace/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string_view>

namespace lhr::trace {

Time Trace::duration() const noexcept {
  if (requests_.size() < 2) return 0.0;
  return requests_.back().time - requests_.front().time;
}

bool Trace::is_time_ordered() const noexcept {
  return std::is_sorted(requests_.begin(), requests_.end(),
                        [](const Request& a, const Request& b) { return a.time < b.time; });
}

void Trace::sort_by_time() {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) { return a.time < b.time; });
}

// Splits `line` on whitespace and parses exactly three fields.
// Returns false for blank/comment lines (including whitespace-only lines
// and a trailing line with no newline); throws for malformed ones —
// including lines with trailing junk after the three fields, non-finite
// times ("inf"/"nan" parse as valid doubles but poison every duration and
// freshness computation downstream) and signed or non-numeric sizes.
bool parse_trace_line(std::string_view line, std::size_t line_no, Request& out) {
  // Trim leading whitespace.
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return false;
  line.remove_prefix(first);
  if (line.front() == '#') return false;

  const auto take_field = [&](std::string_view& rest) -> std::string_view {
    const auto end = rest.find_first_of(" \t\r");
    std::string_view field = rest.substr(0, end);
    rest.remove_prefix(end == std::string_view::npos ? rest.size() : end);
    const auto next = rest.find_first_not_of(" \t\r");
    rest.remove_prefix(next == std::string_view::npos ? rest.size() : next);
    return field;
  };

  std::string_view rest = line;
  const std::string_view f_time = take_field(rest);
  const std::string_view f_key = take_field(rest);
  const std::string_view f_size = take_field(rest);
  if (f_time.empty() || f_key.empty() || f_size.empty() || !rest.empty()) {
    throw std::runtime_error("trace line " + std::to_string(line_no) +
                             ": expected exactly 'time key size'");
  }

  const auto parse_error = [line_no](std::string_view what) {
    throw std::runtime_error("trace line " + std::to_string(line_no) + ": bad " +
                             std::string(what));
  };

  double t = 0.0;
  if (auto [p, ec] = std::from_chars(f_time.data(), f_time.data() + f_time.size(), t);
      ec != std::errc{} || p != f_time.data() + f_time.size()) {
    parse_error("time");
  }
  if (!std::isfinite(t)) parse_error("time (must be finite)");
  std::uint64_t key = 0;
  if (auto [p, ec] = std::from_chars(f_key.data(), f_key.data() + f_key.size(), key);
      ec != std::errc{} || p != f_key.data() + f_key.size()) {
    parse_error("key");
  }
  // from_chars on an unsigned type already rejects a leading '-', so a
  // negative size surfaces here rather than wrapping to a huge value.
  std::uint64_t size = 0;
  if (auto [p, ec] = std::from_chars(f_size.data(), f_size.data() + f_size.size(), size);
      ec != std::errc{} || p != f_size.data() + f_size.size()) {
    parse_error("size");
  }
  if (size == 0) parse_error("size (must be > 0)");
  out = Request{t, key, size};
  return true;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);

  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  Request r;
  try {
    while (std::getline(in, line)) {
      ++line_no;
      if (parse_trace_line(line, line_no, r)) trace.push_back(r);
    }
  } catch (const std::runtime_error& e) {
    // parse_trace_line reports the line; add which file it came from.
    throw std::runtime_error(path + ": " + e.what());
  }
  // getline stops on EOF *or* on a stream error; returning the prefix of a
  // half-read file would silently change every downstream result, so fail.
  if (in.bad()) {
    throw std::runtime_error(path + ": I/O error after line " +
                             std::to_string(line_no) +
                             " (refusing to return a partially read trace)");
  }
  return trace;
}

Trace materialize(const TraceSource& source) {
  Trace out;
  out.reserve(source.size());
  auto cur = source.cursor();
  while (true) {
    const auto chunk = cur->next_chunk(kDefaultChunkRequests);
    if (chunk.empty()) break;
    for (const Request& r : chunk) out.push_back(r);
  }
  return out;
}

std::span<const Request> contiguous_or_materialize(const TraceSource& source,
                                                   Trace& storage) {
  if (const auto span = source.contiguous()) return *span;
  storage = materialize(source);
  return storage.requests();
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
  for (const Request& r : trace) {
    out << r.time << ' ' << r.key << ' ' << r.size << '\n';
  }
  if (!out) throw std::runtime_error("failed writing trace file: " + path);
}

}  // namespace lhr::trace
