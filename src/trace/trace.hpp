// Trace container and plain-text I/O.
//
// On-disk format is webcachesim-compatible: one request per line,
// whitespace-separated "timestamp key size". This lets users replay public
// traces (e.g. the Wikipedia CDN trace) through the simulator unchanged.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/request.hpp"
#include "trace/trace_source.hpp"

namespace lhr::trace {

/// An in-memory request trace, ordered by time — the contiguous
/// TraceSource implementation.
class Trace : public TraceSource {
 public:
  Trace() = default;
  explicit Trace(std::vector<Request> requests) : requests_(std::move(requests)) {}

  void push_back(const Request& r) { requests_.push_back(r); }
  void reserve(std::size_t n) { requests_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept override { return requests_.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests_.empty(); }
  [[nodiscard]] const Request& operator[](std::size_t i) const noexcept { return requests_[i]; }

  [[nodiscard]] std::span<const Request> requests() const noexcept { return requests_; }
  // Fast vector iterators (hiding the chunked TraceSource ones, which remain
  // available through a TraceSource&).
  [[nodiscard]] auto begin() const noexcept { return requests_.begin(); }
  [[nodiscard]] auto end() const noexcept { return requests_.end(); }

  /// Duration between first and last request (0 for traces of < 2 requests).
  [[nodiscard]] Time duration() const noexcept override;

  [[nodiscard]] std::optional<std::span<const Request>> contiguous() const override {
    return std::span<const Request>(requests_);
  }

  /// True iff request times are non-decreasing.
  [[nodiscard]] bool is_time_ordered() const noexcept;

  /// Stable-sorts requests by time (repairing an out-of-order trace file).
  void sort_by_time();

 protected:
  [[nodiscard]] std::unique_ptr<TraceCursor> make_cursor(
      std::size_t begin, std::size_t end) const override {
    return std::make_unique<SpanCursor>(requests_, begin, end);
  }

 private:
  std::vector<Request> requests_;
};

/// Copies every record of `source` into an in-memory Trace (O(n) memory —
/// the explicit escape hatch for consumers that genuinely need it).
[[nodiscard]] Trace materialize(const TraceSource& source);

/// A contiguous view of `source`: zero-copy when the source exposes one
/// (Trace, MappedTrace), otherwise materialized into `storage`, which must
/// outlive the returned span.
[[nodiscard]] std::span<const Request> contiguous_or_materialize(
    const TraceSource& source, Trace& storage);

/// Parses one "time key size" text-trace line into `out`. Returns false for
/// blank/comment lines; throws std::runtime_error (with the line number) on
/// malformed input. Exposed so tools can stream-convert text traces without
/// materializing them.
bool parse_trace_line(std::string_view line, std::size_t line_no, Request& out);

/// Reads a whitespace-separated "time key size" trace file.
/// Lines starting with '#' and blank lines are skipped.
/// Throws std::runtime_error — naming the file and failing line — on
/// unopenable files, malformed lines, or a read error partway through (a
/// partially read trace is never returned silently).
[[nodiscard]] Trace read_trace_file(const std::string& path);

/// Writes the trace in the same format. Throws std::runtime_error on failure.
void write_trace_file(const Trace& trace, const std::string& path);

}  // namespace lhr::trace
