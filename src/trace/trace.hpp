// Trace container and plain-text I/O.
//
// On-disk format is webcachesim-compatible: one request per line,
// whitespace-separated "timestamp key size". This lets users replay public
// traces (e.g. the Wikipedia CDN trace) through the simulator unchanged.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "trace/request.hpp"

namespace lhr::trace {

/// An in-memory request trace, ordered by time.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Request> requests) : requests_(std::move(requests)) {}

  void push_back(const Request& r) { requests_.push_back(r); }
  void reserve(std::size_t n) { requests_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests_.empty(); }
  [[nodiscard]] const Request& operator[](std::size_t i) const noexcept { return requests_[i]; }

  [[nodiscard]] std::span<const Request> requests() const noexcept { return requests_; }
  [[nodiscard]] auto begin() const noexcept { return requests_.begin(); }
  [[nodiscard]] auto end() const noexcept { return requests_.end(); }

  /// Duration between first and last request (0 for traces of < 2 requests).
  [[nodiscard]] Time duration() const noexcept;

  /// True iff request times are non-decreasing.
  [[nodiscard]] bool is_time_ordered() const noexcept;

  /// Stable-sorts requests by time (repairing an out-of-order trace file).
  void sort_by_time();

 private:
  std::vector<Request> requests_;
};

/// Reads a whitespace-separated "time key size" trace file.
/// Lines starting with '#' and blank lines are skipped.
/// Throws std::runtime_error on unopenable files or malformed lines.
[[nodiscard]] Trace read_trace_file(const std::string& path);

/// Writes the trace in the same format. Throws std::runtime_error on failure.
void write_trace_file(const Trace& trace, const std::string& path);

}  // namespace lhr::trace
