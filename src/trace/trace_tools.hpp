// Trace manipulation utilities: slicing, sampling, merging — the everyday
// operations for preparing workloads (e.g. taking a spatial sample of a
// production trace, as trace publishers commonly do).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace lhr::trace {

/// First `n` requests (the whole trace if shorter).
[[nodiscard]] Trace head(const Trace& trace, std::size_t n);

/// Requests in the time interval [t_begin, t_end).
[[nodiscard]] Trace time_slice(const Trace& trace, Time t_begin, Time t_end);

/// Spatial sampling: keeps every request whose *key* falls in the sampled
/// 1-in-`rate` subset (all requests of a kept content are retained, so
/// per-content statistics like IRTs survive — unlike request sampling).
[[nodiscard]] Trace sample_keys(const Trace& trace, std::uint64_t rate,
                                std::uint64_t seed = 0);

/// Merges traces by timestamp (stable for ties). Key spaces are remapped
/// with per-trace tags so contents from different traces never collide.
[[nodiscard]] Trace merge(const std::vector<Trace>& traces);

/// Rescales request timestamps so the trace spans `new_duration` seconds.
[[nodiscard]] Trace rescale_time(const Trace& trace, Time new_duration);

}  // namespace lhr::trace
