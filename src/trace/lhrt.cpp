#include "trace/lhrt.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <type_traits>

namespace lhr::trace {

// The format stores raw little-endian Request records; a big-endian build
// would need a byte-swapping read path that nothing here targets.
static_assert(std::endian::native == std::endian::little,
              ".lhrt I/O requires a little-endian target");
static_assert(std::is_trivially_copyable_v<Request>);
static_assert(alignof(Request) <= 8, "records are 8-byte aligned after the header");

namespace {

struct LhrtHeader {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  std::uint64_t seed = 0;
  std::int32_t trace_class = kLhrtClassUnknown;
  std::uint32_t reserved0 = 0;
  std::uint8_t reserved[32] = {};
};
static_assert(sizeof(LhrtHeader) == kLhrtHeaderBytes);
static_assert(std::is_trivially_copyable_v<LhrtHeader>);

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error(path + ": " + what);
}

/// Cursor over a large mapping that releases the pages it has consumed.
/// POSIX_MADV_SEQUENTIAL alone only tunes readahead — consumed pages stay
/// resident until global memory pressure evicts them, so a huge replay's
/// RSS would grow to the file size. Trimming a lagging page-aligned prefix
/// with MADV_DONTNEED (clean file-backed pages: dropped, re-faulted from
/// the page cache/disk if touched again) keeps resident trace memory at
/// O(chunk + lag) however long the trace is. The lag keeps pages other
/// concurrent cursors (replay workers drift slightly) are likely still
/// reading; a drifted worker just re-faults, which is correct, only slower.
class TrimmingMappedCursor final : public TraceCursor {
 public:
  TrimmingMappedCursor(std::span<const Request> all, std::size_t begin,
                       std::size_t end, char* map_base, std::size_t map_bytes)
      : inner_(all, begin, end), map_base_(map_base), map_bytes_(map_bytes),
        trimmed_(0) {}

  [[nodiscard]] std::size_t position() const noexcept override {
    return inner_.position();
  }

  [[nodiscard]] std::span<const Request> next_chunk(std::size_t max_requests) override {
    const auto chunk = inner_.next_chunk(max_requests);
    maybe_trim();
    return chunk;
  }

 private:
  static constexpr std::size_t kTrimLagBytes = 32u << 20;   // keep this much behind
  static constexpr std::size_t kTrimStepBytes = 16u << 20;  // trim in these steps

  void maybe_trim() {
    const std::size_t consumed_bytes =
        kLhrtHeaderBytes + inner_.position() * sizeof(Request);
    if (consumed_bytes < kTrimLagBytes) return;
    const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t target = (consumed_bytes - kTrimLagBytes) / page * page;
    if (target < trimmed_ + kTrimStepBytes || target > map_bytes_) return;
    (void)::madvise(map_base_ + trimmed_, target - trimmed_, MADV_DONTNEED);
    trimmed_ = target;
  }

  SpanCursor inner_;
  char* map_base_;
  std::size_t map_bytes_;
  std::size_t trimmed_;
};

}  // namespace

// --------------------------------------------------------------- LhrtWriter

LhrtWriter::LhrtWriter(const std::string& path, std::uint64_t seed,
                       std::int32_t trace_class)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc), seed_(seed),
      trace_class_(trace_class) {
  if (!out_) fail(path_, "cannot open .lhrt file for writing");
  // Placeholder header: zero magic marks the file invalid until finish().
  const LhrtHeader placeholder{};
  out_.write(reinterpret_cast<const char*>(&placeholder), sizeof(placeholder));
  if (!out_) fail(path_, "failed writing .lhrt header");
}

LhrtWriter::~LhrtWriter() = default;

void LhrtWriter::append(std::span<const Request> records) {
  if (records.empty()) return;
  out_.write(reinterpret_cast<const char*>(records.data()),
             static_cast<std::streamsize>(records.size() * sizeof(Request)));
  if (!out_) fail(path_, "failed writing .lhrt records");
  count_ += records.size();
}

void LhrtWriter::finish() {
  if (finished_) return;
  LhrtHeader header;
  header.magic = kLhrtMagic;
  header.version = kLhrtVersion;
  header.count = count_;
  header.seed = seed_;
  header.trace_class = trace_class_;
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out_.flush();
  if (!out_) fail(path_, "failed finalizing .lhrt header");
  out_.close();
  if (out_.fail()) fail(path_, "failed closing .lhrt file");
  finished_ = true;
}

void write_lhrt_file(const TraceSource& source, const std::string& path,
                     std::uint64_t seed, std::int32_t trace_class) {
  LhrtWriter writer(path, seed, trace_class);
  auto cur = source.cursor();
  while (true) {
    const auto chunk = cur->next_chunk(kDefaultChunkRequests);
    if (chunk.empty()) break;
    writer.append(chunk);
  }
  writer.finish();
}

// -------------------------------------------------------------- MappedTrace

MappedTrace::MappedTrace(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path_, std::string("cannot open .lhrt file: ") + std::strerror(errno));

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail(path_, std::string("cannot stat .lhrt file: ") + std::strerror(err));
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kLhrtHeaderBytes) {
    ::close(fd);
    fail(path_, "truncated .lhrt file: " + std::to_string(file_bytes) +
                    " bytes is smaller than the " +
                    std::to_string(kLhrtHeaderBytes) + "-byte header");
  }

  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    fail(path_, std::string("mmap failed: ") + std::strerror(errno));
  }
  map_ = map;
  map_bytes_ = file_bytes;

  LhrtHeader header;
  std::memcpy(&header, map_, sizeof(header));
  if (header.magic != kLhrtMagic) {
    char got[16];
    std::snprintf(got, sizeof(got), "0x%08x", header.magic);
    const std::string why = "bad magic " + std::string(got) +
                            " (not an .lhrt trace, or an unfinished write)";
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    fail(path_, why);
  }
  if (header.version != kLhrtVersion) {
    const std::string why = "unsupported .lhrt version " +
                            std::to_string(header.version) + " (expected " +
                            std::to_string(kLhrtVersion) + ")";
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    fail(path_, why);
  }
  const std::uint64_t expected =
      kLhrtHeaderBytes + header.count * static_cast<std::uint64_t>(kLhrtRecordBytes);
  if (file_bytes != expected) {
    const std::string why = "corrupt .lhrt file: header promises " +
                            std::to_string(header.count) + " records (" +
                            std::to_string(expected) + " bytes) but the file is " +
                            std::to_string(file_bytes) + " bytes";
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    fail(path_, why);
  }

  // Replays walk the records front to back: let the kernel read ahead
  // aggressively and drop cold pages behind the cursor.
  (void)::posix_madvise(map_, map_bytes_, POSIX_MADV_SEQUENTIAL);

  count_ = header.count;
  seed_ = header.seed;
  trace_class_ = header.trace_class;
  // Request is an implicit-lifetime type; reading it straight out of the
  // mapping is the whole point of the fixed-width format.
  records_ = reinterpret_cast<const Request*>(static_cast<const char*>(map_) +
                                              kLhrtHeaderBytes);
}

MappedTrace::~MappedTrace() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

std::unique_ptr<TraceCursor> MappedTrace::make_cursor(std::size_t begin,
                                                      std::size_t end) const {
  // Mappings comfortably smaller than RAM don't need page trimming (and
  // tests re-walk them, so keeping pages hot is a win).
  constexpr std::size_t kTrimThresholdBytes = 64u << 20;
  if (map_bytes_ >= kTrimThresholdBytes) {
    return std::make_unique<TrimmingMappedCursor>(requests(), begin, end,
                                                  static_cast<char*>(map_),
                                                  map_bytes_);
  }
  return std::make_unique<SpanCursor>(requests(), begin, end);
}

}  // namespace lhr::trace
