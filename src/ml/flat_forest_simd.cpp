// AVX2 kernel for FlatForest::score_block — the only translation unit in
// the repository compiled with -mavx2 (see src/ml/CMakeLists.txt), so the
// vector code is fenced off from the baseline-ISA binary and only ever
// executed behind the runtime cpuid check in simd_dispatch.cpp.
//
// The kernel is the scalar level-synchronous block walk with the row loop
// turned into lanes: a 16-row block is two 8-lane index vectors stepped in
// lockstep down every tree. The node data comes from packed_ (16-byte
// records: feature|miss, threshold, left, right) through 64-bit gathers:
//
//   nod   = gather64(packed,     2*idx)   feature|miss + threshold, 1 load/lane
//   kid   = gather64(packed + 8, 2*idx)   left + right children,    1 load/lane
//   v     = gatherps(block, lane*n_features + feat)
//   left  = blendv(v <= thr [LE_OQ],  !(v > thr) [NGT_UQ],  miss sign)
//   idx   = blendv(right, left, left?)
//
// Two properties make this faster than gathering the SoA arrays directly.
// First, x86 gathers decompose into one load uop per *element*, so packing
// two fields per 64-bit element halves the loads a level step issues (24
// per 16 rows vs the scalar walk's 40). Second, both children are fetched
// *before* the compare resolves — the child choice becomes a register
// blend, so the level-to-level dependency is gather(nod) -> gather(v) ->
// cmp -> blend instead of a third dependent gather.
//
// _CMP_LE_OQ is false for NaN (missing-right routes NaN right) and
// _CMP_NGT_UQ is true for NaN (missing-left routes NaN left) — exactly the
// scalar `missing_left ? !(v > thr) : (v <= thr)`, so the walk lands on the
// same leaves. Leaf values are gathered once per tree and accumulated into
// per-lane double accumulators (cvtps_pd is exact, adds are per-lane IEEE
// doubles in tree order), which makes the result bit-identical to the
// scalar path and to Gbdt::predict — asserted by flat_forest_test's SIMD
// sweep and bench_micro's "SIMD/scalar equivalence" line.
//
// Tail rows (n_rows % 16) always take the scalar path: correctness does not
// depend on block shape, and masked-gather tails would cost more than the
// <16 rows they cover.
#include "ml/flat_forest.hpp"

#include <cstring>

#if defined(LHR_FOREST_AVX2)
#include <immintrin.h>
#endif

namespace lhr::ml {

#if defined(LHR_FOREST_AVX2)

void FlatForest::score_span_avx2(const float* rows, std::size_t n_rows,
                                 double* out) const {
  static_assert(kBlockRows == 16, "kernel steps two 8-lane groups per block");
  const auto* packed = reinterpret_cast<const long long*>(packed_.data());
  const std::int32_t* packed32 = packed_.data();
  const float* value = value_.data();
  const std::size_t n_trees = roots_.size();

  const __m256i nf = _mm256_set1_epi32(static_cast<int>(n_features_));
  const __m256i feat_mask = _mm256_set1_epi32(0x7fffffff);
  // Deinterleave pattern: qword-pair gathers come back as
  // [a0,b0,a1,b1 | a2,b2,a3,b3]; vpermd with this pattern yields
  // [a0..a3 | b0..b3], so one cross-lane permute splits the two fields.
  const __m256i evens = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  const __m256i lanes_lo = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i lanes_hi = _mm256_setr_epi32(8, 9, 10, 11, 12, 13, 14, 15);
  const __m256i row_off_lo = _mm256_mullo_epi32(lanes_lo, nf);
  const __m256i row_off_hi = _mm256_mullo_epi32(lanes_hi, nf);

  std::size_t begin = 0;
  for (; begin + kBlockRows <= n_rows; begin += kBlockRows) {
    const float* block = rows + begin * n_features_;

    // One level step for an 8-lane index group: returns the child indices.
    const auto step = [&](__m256i idx, __m256i row_off) {
      // Record r spans qwords 2r (feature|miss, threshold) and 2r+1
      // (left, right). Both gathers depend only on idx, so they issue
      // together; the children arrive before the compare needs them.
      const __m256i qidx = _mm256_slli_epi32(idx, 1);
      const __m128i q_lo = _mm256_castsi256_si128(qidx);
      const __m128i q_hi = _mm256_extracti128_si256(qidx, 1);
      const __m256i nod_lo = _mm256_i32gather_epi64(packed, q_lo, 8);
      const __m256i nod_hi = _mm256_i32gather_epi64(packed, q_hi, 8);
      const __m256i kid_lo = _mm256_i32gather_epi64(packed + 1, q_lo, 8);
      const __m256i kid_hi = _mm256_i32gather_epi64(packed + 1, q_hi, 8);

      const __m256i nod_a = _mm256_permutevar8x32_epi32(nod_lo, evens);
      const __m256i nod_b = _mm256_permutevar8x32_epi32(nod_hi, evens);
      const __m256i fm = _mm256_permute2x128_si256(nod_a, nod_b, 0x20);
      const __m256 thr =
          _mm256_castsi256_ps(_mm256_permute2x128_si256(nod_a, nod_b, 0x31));
      const __m256i kid_a = _mm256_permutevar8x32_epi32(kid_lo, evens);
      const __m256i kid_b = _mm256_permutevar8x32_epi32(kid_hi, evens);
      const __m256i left = _mm256_permute2x128_si256(kid_a, kid_b, 0x20);
      const __m256i right = _mm256_permute2x128_si256(kid_a, kid_b, 0x31);

      const __m256i feat = _mm256_and_si256(fm, feat_mask);
      const __m256 v =
          _mm256_i32gather_ps(block, _mm256_add_epi32(row_off, feat), 4);
      const __m256 ngt = _mm256_cmp_ps(v, thr, _CMP_NGT_UQ);  // !(v > t), NaN left
      const __m256 le = _mm256_cmp_ps(v, thr, _CMP_LE_OQ);    // v <= t, NaN right
      // fm's sign bit IS the missing-left mask; blendv reads only signs.
      const __m256 go_left = _mm256_blendv_ps(le, ngt, _mm256_castsi256_ps(fm));
      return _mm256_castps_si256(_mm256_blendv_ps(
          _mm256_castsi256_ps(right), _mm256_castsi256_ps(left), go_left));
    };

    // The step out of the root: every lane sits on the same node, so the
    // record comes from two scalar loads broadcast into registers — no
    // gathers, and the level-0 v gather can issue almost immediately.
    const auto root_step = [&](std::int32_t root, __m256i row_off) {
      const std::int32_t fm_s = packed32[4 * root];
      float thr_s;
      std::memcpy(&thr_s, &packed32[4 * root + 1], sizeof(float));
      const __m256 thr = _mm256_set1_ps(thr_s);
      const __m256i left = _mm256_set1_epi32(packed32[4 * root + 2]);
      const __m256i right = _mm256_set1_epi32(packed32[4 * root + 3]);
      const __m256i feat = _mm256_and_si256(_mm256_set1_epi32(fm_s), feat_mask);
      const __m256 v =
          _mm256_i32gather_ps(block, _mm256_add_epi32(row_off, feat), 4);
      const __m256 ngt = _mm256_cmp_ps(v, thr, _CMP_NGT_UQ);
      const __m256 le = _mm256_cmp_ps(v, thr, _CMP_LE_OQ);
      const __m256 go_left =
          _mm256_blendv_ps(le, ngt, _mm256_castsi256_ps(_mm256_set1_epi32(fm_s)));
      return _mm256_castps_si256(_mm256_blendv_ps(
          _mm256_castsi256_ps(right), _mm256_castsi256_ps(left), go_left));
    };

    // Walk state for one tree across both lane groups. Starts at the level
    // below the root (root_step) and finishes with the leaf-value gather.
    struct TreeWalk {
      __m256i lo, hi;
      std::int32_t d = 0;
    };
    const auto start = [&](std::size_t t) {
      TreeWalk w;
      w.d = depth_[t];
      if (w.d > 0) {
        w.lo = root_step(roots_[t], row_off_lo);
        w.hi = root_step(roots_[t], row_off_hi);
        --w.d;
      } else {
        w.lo = w.hi = _mm256_set1_epi32(roots_[t]);
      }
      return w;
    };
    const auto advance = [&](TreeWalk& w) {
      if (w.d > 0) {
        w.lo = step(w.lo, row_off_lo);
        w.hi = step(w.hi, row_off_hi);
        --w.d;
      }
    };

    __m256d acc0 = _mm256_set1_pd(base_score_);
    __m256d acc1 = acc0, acc2 = acc0, acc3 = acc0;
    const auto accumulate = [&](const TreeWalk& w) {
      const __m256 leaf_lo = _mm256_i32gather_ps(value, w.lo, 4);
      const __m256 leaf_hi = _mm256_i32gather_ps(value, w.hi, 4);
      acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(leaf_lo)));
      acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(leaf_lo, 1)));
      acc2 = _mm256_add_pd(acc2, _mm256_cvtps_pd(_mm256_castps256_ps128(leaf_hi)));
      acc3 = _mm256_add_pd(acc3, _mm256_cvtps_pd(_mm256_extractf128_ps(leaf_hi, 1)));
    };

    // Trees are walked four at a time: one tree's level step is a serial
    // chain of dependent gathers long enough to fill the out-of-order
    // window, so back-to-back trees would barely overlap. Interleaving
    // four independent walks keeps eight 8-lane chains in flight — about
    // as many advances as the reorder buffer can hold at once; the walk
    // state beyond what fits in ymm registers spills to L1, which is noise
    // next to the gather latency being hidden. Accumulation still happens
    // strictly in tree order (t, t+1, t+2, t+3), preserving bit-identity.
    constexpr std::size_t kInterleave = 4;
    std::size_t t = 0;
    for (; t + kInterleave <= n_trees; t += kInterleave) {
      TreeWalk w[kInterleave] = {start(t), start(t + 1), start(t + 2),
                                 start(t + 3)};
      while (w[0].d > 0 || w[1].d > 0 || w[2].d > 0 || w[3].d > 0) {
        advance(w[0]);
        advance(w[1]);
        advance(w[2]);
        advance(w[3]);
      }
      accumulate(w[0]);
      accumulate(w[1]);
      accumulate(w[2]);
      accumulate(w[3]);
    }
    if (t < n_trees) {
      TreeWalk w[kInterleave];
      const std::size_t rest = n_trees - t;
      for (std::size_t k = 0; k < rest; ++k) w[k] = start(t + k);
      bool live = true;
      while (live) {
        live = false;
        for (std::size_t k = 0; k < rest; ++k) {
          live = live || w[k].d > 0;
          advance(w[k]);
        }
      }
      for (std::size_t k = 0; k < rest; ++k) accumulate(w[k]);
    }
    _mm256_storeu_pd(out + begin, acc0);
    _mm256_storeu_pd(out + begin + 4, acc1);
    _mm256_storeu_pd(out + begin + 8, acc2);
    _mm256_storeu_pd(out + begin + 12, acc3);
  }
  if (begin < n_rows) {
    score_span_scalar(rows + begin * n_features_, n_rows - begin, out + begin);
  }
}

#else  // !LHR_FOREST_AVX2

// Non-x86 / no -mavx2 builds: keep the symbol so dispatch links; it can
// only be reached if force_level(kAvx2) is called, and then degrades to the
// reference loop (active_level() itself never selects kAvx2 here).
void FlatForest::score_span_avx2(const float* rows, std::size_t n_rows,
                                 double* out) const {
  score_span_scalar(rows, n_rows, out);
}

#endif

}  // namespace lhr::ml
