// Gradient-boosted regression trees, from scratch.
//
// LHR's admission agent is "an XGBM based model" trained with squared loss
// against HRO's decisions (paper §5.2.4). This is a self-contained
// reimplementation of the parts of XGBoost that role needs: histogram-based
// greedy splits, second-order leaf values with L2 regularization, shrinkage,
// optional row subsampling, and missing-value default directions (IRT_k is
// missing until a content has been seen k+1 times).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace lhr::util {
class ThreadPool;
}

namespace lhr::ml {

/// Training objective. The paper settled on squared error ("it achieves the
/// best performance ... compared to other loss functions that we explored",
/// §5.2.4); logistic loss is provided to reproduce that comparison
/// (bench_ext_loss_ablation).
enum class GbdtLoss : std::uint8_t { kSquared, kLogistic };

struct GbdtConfig {
  GbdtLoss loss = GbdtLoss::kSquared;
  std::size_t num_trees = 30;
  std::size_t max_depth = 6;
  double learning_rate = 0.15;
  double min_child_weight = 8.0;  ///< minimum hessian (≈ samples) per leaf
  double reg_lambda = 1.0;        ///< L2 penalty on leaf values
  double subsample = 1.0;         ///< row subsampling per tree
  std::size_t max_bins = 64;      ///< histogram bins per feature
  std::uint64_t seed = 13;
  /// Worker parallelism for fit(): 1 = sequential on the calling thread;
  /// N > 1 uses N workers (the caller plus N-1 pool threads). The fitted
  /// model is bit-identical for every value — see gbdt.cpp's determinism
  /// notes — so this is purely a wall-clock knob.
  std::size_t n_threads = 1;
};

/// Row-major dense training matrix; NaN encodes a missing value.
struct Dataset {
  std::vector<float> values;  ///< n_rows * n_features
  std::size_t n_features = 0;

  [[nodiscard]] std::size_t n_rows() const {
    return n_features ? values.size() / n_features : 0;
  }
  [[nodiscard]] std::span<const float> row(std::size_t i) const {
    return {values.data() + i * n_features, n_features};
  }
};

class Gbdt {
 public:
  /// Fits squared-error boosting of `config.num_trees` trees.
  /// Throws std::invalid_argument on shape mismatches or empty data.
  ///
  /// Parallelism: with `config.n_threads > 1` the heavy loops (pre-binning,
  /// gradient refresh, histogram accumulation, prediction update) run on
  /// `pool` plus the calling thread. When `pool` is null and n_threads > 1 a
  /// transient pool of n_threads-1 workers is created for the call. The
  /// result is bit-identical for any thread count and any pool size: all
  /// floating-point reductions are chunked on boundaries that depend only on
  /// the data and reduced in fixed index order.
  void fit(const Dataset& data, std::span<const float> targets, const GbdtConfig& config,
           util::ThreadPool* pool = nullptr);

  /// Predicts one row (NaN = missing). Returns the raw model output
  /// (regression value for squared loss, log-odds for logistic); LHR clamps
  /// it to [0,1] as an admission probability.
  [[nodiscard]] double predict(std::span<const float> features) const;

  /// Prediction mapped to [0,1]: identity-clamped for squared loss, sigmoid
  /// for logistic loss.
  [[nodiscard]] double predict_probability(std::span<const float> features) const;

  /// Batch prediction: raw model output for every row of `data`, written to
  /// `out` (out.size() must equal data.n_rows()). Hoists the per-call
  /// argument checks out of the row loop; bench_micro's GbdtPredictMany /
  /// gbdt_predict suite compares it against row-by-row predict().
  void predict_many(const Dataset& data, std::span<double> out) const;
  [[nodiscard]] std::vector<double> predict_many(const Dataset& data) const;

  /// Parallel batch prediction for the offline label/eval paths: rows are
  /// chunked on fixed boundaries and scored on `pool` plus the calling
  /// thread (n_threads = 0 uses everything the pool offers; a null pool
  /// with n_threads > 1 spins up a transient pool). Rows are independent,
  /// so the output is bit-identical to the serial overload for any thread
  /// count.
  void predict_many(const Dataset& data, std::span<double> out,
                    util::ThreadPool* pool, std::size_t n_threads = 0) const;

  /// Total split gain attributed to each feature, normalized to sum to 1
  /// (empty before training). The standard "gain" importance measure.
  [[nodiscard]] std::vector<double> feature_importance() const;

  /// Text serialization of the fitted model (portable across processes).
  void save(std::ostream& out) const;
  /// Replaces this model with the stream's contents.
  /// Throws std::runtime_error on malformed input.
  void load(std::istream& in);
  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }
  [[nodiscard]] GbdtLoss loss() const noexcept { return loss_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  /// FlatForest (ml/flat_forest.hpp) compiles trees_ into its SoA inference
  /// layout; it is the only external reader of the tree internals.
  friend class FlatForest;
  struct Node {
    // Leaf iff feature < 0.
    std::int32_t feature = -1;
    float threshold = 0.0f;   ///< go left iff value <= threshold
    bool missing_left = true; ///< direction for NaN
    std::int32_t left = -1;
    std::int32_t right = -1;
    float value = 0.0f;       ///< leaf output (already shrunk)
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  [[nodiscard]] double predict_tree(const Tree& tree, std::span<const float> x) const;

  std::vector<Tree> trees_;
  std::vector<double> importance_gain_;
  GbdtLoss loss_ = GbdtLoss::kSquared;
  double base_score_ = 0.0;
  std::size_t n_features_ = 0;
};

}  // namespace lhr::ml
