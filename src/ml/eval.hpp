// Classifier evaluation metrics.
//
// §7.5 attributes the remaining LHR↔HRO gap to "errors in our model"; these
// metrics make that quantitative: the LHR admission model is scored against
// HRO's labels on held-out requests (bench_ext_model_quality).
#pragma once

#include <cstddef>
#include <span>

#include "ml/gbdt.hpp"

namespace lhr::ml {

struct BinaryMetrics {
  double accuracy = 0.0;   ///< at the 0.5 threshold
  double precision = 0.0;  ///< of predicted positives
  double recall = 0.0;     ///< of actual positives
  double auc = 0.0;        ///< ROC area (0.5 = chance)
  double brier = 0.0;      ///< mean squared probability error
  std::size_t n = 0;
  std::size_t positives = 0;
};

/// Scores probability predictions in [0,1] against {0,1} labels.
/// AUC is computed exactly via the rank statistic (ties get half credit).
/// Sizes must match; empty input returns a zero struct.
[[nodiscard]] BinaryMetrics evaluate_binary(std::span<const float> predictions,
                                            std::span<const float> labels);

/// Offline model evaluation: scores every row of `data` with `model`
/// (through the parallel Gbdt::predict_many — `n_threads` workers on `pool`
/// plus the caller; results are bit-identical for any thread count), maps
/// the raw outputs to probabilities per the model's loss, and returns
/// evaluate_binary against `labels`. The batch analogue of LhrCache's
/// online model_quality() ring.
[[nodiscard]] BinaryMetrics evaluate_model(const Gbdt& model, const Dataset& data,
                                           std::span<const float> labels,
                                           std::size_t n_threads = 1,
                                           util::ThreadPool* pool = nullptr);

}  // namespace lhr::ml
