#include "ml/async_trainer.hpp"

#include <chrono>
#include <utility>

#include "util/thread_pool.hpp"

namespace lhr::ml {

AsyncTrainer::AsyncTrainer(std::size_t fit_threads) {
  if (fit_threads > 1) {
    fit_pool_ = std::make_unique<util::ThreadPool>(fit_threads - 1);
  }
  worker_ = std::thread([this] { trainer_loop(); });
}

AsyncTrainer::~AsyncTrainer() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;  // a pending-but-unstarted batch is discarded
  }
  work_cv_.notify_all();
  worker_.join();  // an in-flight fit runs to completion first
}

bool AsyncTrainer::submit(Dataset&& x, std::vector<float>&& y,
                          const GbdtConfig& config) {
  if (busy_.load(std::memory_order_acquire)) return false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (has_work_ || stopping_) return false;
    pending_bytes_.store(x.values.size() * sizeof(float) + y.size() * sizeof(float),
                         std::memory_order_relaxed);
    pending_ = Pending{std::move(x), std::move(y), config};
    has_work_ = true;
    busy_.store(true, std::memory_order_release);
  }
  work_cv_.notify_one();
  return true;
}

std::shared_ptr<const CompiledModel> AsyncTrainer::collect() {
  if (!ready_.load(std::memory_order_acquire)) return nullptr;
  const std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<const CompiledModel> out = std::move(result_);
  result_.reset();
  ready_.store(false, std::memory_order_release);
  busy_.store(false, std::memory_order_release);
  pending_bytes_.store(0, std::memory_order_relaxed);
  return out;
}

void AsyncTrainer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] {
    return !busy_.load(std::memory_order_acquire) ||
           ready_.load(std::memory_order_acquire);
  });
}

std::size_t AsyncTrainer::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::size_t AsyncTrainer::failed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

double AsyncTrainer::background_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return background_seconds_;
}

double AsyncTrainer::last_train_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_train_seconds_;
}

AsyncTrainer::Stats AsyncTrainer::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return Stats{completed_, failed_, background_seconds_, last_train_seconds_};
}

void AsyncTrainer::trainer_loop() {
  for (;;) {
    Pending job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || has_work_; });
      if (stopping_) return;
      job = std::move(pending_);
      has_work_ = false;
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<CompiledModel> model;
    bool ok = true;
    try {
      Gbdt gbdt;
      gbdt.fit(job.x, job.y, job.config, fit_pool_.get());
      // Compile the FlatForest here, on the trainer thread, so the caller's
      // collect()/swap never pays for it on the request path.
      model = std::make_shared<CompiledModel>(std::move(gbdt));
    } catch (...) {
      ok = false;  // bad batch: drop it, keep serving the old model
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      background_seconds_ += seconds;
      last_train_seconds_ = seconds;
      if (ok) {
        ++completed_;
        pending_bytes_.store(model->gbdt.memory_bytes(), std::memory_order_relaxed);
        result_ = std::move(model);
        ready_.store(true, std::memory_order_release);
      } else {
        ++failed_;
        pending_bytes_.store(0, std::memory_order_relaxed);
        busy_.store(false, std::memory_order_release);
      }
    }
    done_cv_.notify_all();
  }
}

}  // namespace lhr::ml
