// Compiled GBDT inference: the request-path representation of a trained
// ml::Gbdt.
//
// Gbdt::predict walks one tree at a time through pointer-addressed Node
// structs (24 bytes each, AoS), so every level of every tree is a dependent
// cache miss into a different vector — and every level ends in a
// data-dependent branch ("which child? is it a leaf?") the predictor gets
// wrong about half the time. A FlatForest re-packs the whole forest once,
// after training, into structure-of-arrays buffers with *no* leaf test in
// the walk at all:
//
//     feature_[i]       int32   split feature of node i (leaf: 0)
//     threshold_[i]     float   split threshold          (leaf: +inf)
//     missing_left_[i]  int32   NaN default direction    (leaf: -1)
//                               stored as an all-ones/all-zeros lane mask
//                               (-1 = missing goes left) so the AVX2 kernel
//                               can gather it and feed blendv directly
//     child_[2i], [2i+1] int32  left/right child         (leaf: i, i)
//     value_[i]         float   leaf output              (internal: 0)
//     roots_[t], depth_[t]      per-tree root node and max leaf depth
//
// Leaves are absorbing pseudo-nodes: threshold +inf with missing-left set
// means every value (NaN included) "goes left", and the left child is the
// leaf itself, so once a walk reaches its leaf it stays there for free.
// Each tree's walk therefore runs a *fixed* depth_[t] iterations — one
// indexed child load per level, direction folded into the index
// (child_[2*node + !go_left]) — with zero unpredictable branches. Nodes of
// each tree are contiguous, so the working set per tree is a handful of
// cache lines instead of a node heap. This is the blocked, branch-free
// layout XGBoost uses for its own inference path.
//
// Equivalence guarantee: score_row / score_block return bit-identical
// doubles to Gbdt::predict for every input, including NaN features. Same
// thresholds, same NaN default directions (missing-left nodes test
// !(v > t), which routes NaN left without a separate isnan branch;
// missing-right nodes test v <= t, which routes NaN right), same float
// leaf values accumulated in the same double order (base_score first, then
// trees in training order). flat_forest_test asserts exact equality across
// random forests; bench_micro prints the max |Δscore| line CI greps.
//
// score_block additionally dispatches at runtime (simd_dispatch.hpp) to an
// AVX2 kernel that steps 8 lanes of the level walk at once — 64-bit
// gathers over packed_ 16-byte node records (one load uop fetches two
// fields), a compare-mask level step, two 8-lane groups per 16-row block,
// and four tree walks interleaved to keep the gather chains overlapping.
// The kernel mirrors the scalar semantics operation for operation
// (_CMP_LE_OQ for missing-right, _CMP_NGT_UQ for missing-left, per-row
// double accumulation in tree order), so its doubles are bit-identical to
// the scalar loop and to Gbdt::predict; LHR_SIMD=0|1|auto overrides the
// cpuid decision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ml/gbdt.hpp"

namespace lhr::ml {

class FlatForest {
 public:
  /// An empty forest scores nothing; trained() is false.
  FlatForest() = default;

  /// Compiles `model`'s trees. An untrained model yields an empty forest.
  explicit FlatForest(const Gbdt& model);

  [[nodiscard]] bool trained() const noexcept { return !roots_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept { return roots_.size(); }
  [[nodiscard]] std::size_t n_features() const noexcept { return n_features_; }

  /// Raw model output for one row (bit-identical to Gbdt::predict).
  /// Precondition: x.size() == n_features(); unchecked on this hot path.
  [[nodiscard]] double score_row(std::span<const float> x) const;

  /// score_row mapped to [0,1] exactly like Gbdt::predict_probability
  /// (identity-clamp for squared loss, sigmoid for logistic).
  [[nodiscard]] double probability(std::span<const float> x) const;

  /// Scores `n_rows` row-major rows (n_features() floats each), writing one
  /// raw score per row. Processes rows in blocks of kBlockRows with the
  /// tree loop outside the row loop, so each tree's arrays are touched once
  /// per block while the block's independent walks overlap in the memory
  /// pipeline. Results are bit-identical to score_row on each row.
  /// Throws std::invalid_argument on shape mismatches.
  void score_block(std::span<const float> rows, std::size_t n_rows,
                   std::span<double> out) const;

  /// Convenience overload over a Dataset.
  void score_block(const Dataset& data, std::span<double> out) const;

  /// Rows kept in flight per tree by score_block.
  static constexpr std::size_t kBlockRows = 16;

  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// SoA bytes one row's walk touches (per level: feature + threshold +
  /// missing mask + one child pair entry; per tree: one leaf value) — the
  /// bytes/row column bench_micro tracks alongside ns/row.
  [[nodiscard]] std::size_t walk_bytes_per_row() const noexcept;

 private:
  void score_span(const float* rows, std::size_t n_rows, double* out) const;
  /// Portable reference implementation (always compiled; bit-identical).
  void score_span_scalar(const float* rows, std::size_t n_rows, double* out) const;
  /// AVX2 implementation, defined in flat_forest_simd.cpp (falls back to
  /// score_span_scalar when the kernel is compiled out). Only called when
  /// simd::active_level() == kAvx2.
  void score_span_avx2(const float* rows, std::size_t n_rows, double* out) const;

  std::vector<std::int32_t> feature_;
  std::vector<float> threshold_;
  std::vector<std::int32_t> missing_left_;  ///< lane mask: -1 missing-left, 0 missing-right
  std::vector<std::int32_t> child_;  ///< 2 per node: [2i] left, [2i+1] right
  std::vector<float> value_;         ///< leaf output; 0 for internal nodes
  /// AVX2 node records, 4 int32 per node (16 bytes, one cache line holds 4):
  ///   [4i]   feature | (missing_left ? sign bit : 0)
  ///   [4i+1] threshold bits
  ///   [4i+2] left child      [4i+3] right child
  /// A 64-bit gather fetches feature+threshold (or both children) in ONE
  /// load uop where the SoA arrays need two — gathers decompose into
  /// per-element loads on x86, so halving gathered elements halves the
  /// level step's load budget. Redundant with the SoA arrays by
  /// construction; the scalar reference path never reads it.
  std::vector<std::int32_t> packed_;
  std::vector<std::int32_t> roots_;  ///< per tree: root node index
  std::vector<std::int32_t> depth_;  ///< per tree: deepest leaf level (0 = root is leaf)
  double base_score_ = 0.0;
  GbdtLoss loss_ = GbdtLoss::kSquared;
  std::size_t n_features_ = 0;
};

/// A trained model bundled with its compiled inference representation.
/// This is what flows through model swaps: the background trainer builds
/// the FlatForest *before* the shared_ptr swap, so compilation cost never
/// lands on the request path, and save/load keep using the Gbdt half.
struct CompiledModel {
  Gbdt gbdt;
  FlatForest forest;

  explicit CompiledModel(Gbdt model) : gbdt(std::move(model)), forest(gbdt) {}
};

}  // namespace lhr::ml
