#include "ml/zipf_detector.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/least_squares.hpp"

namespace lhr::ml {

ZipfDetector::ZipfDetector(const ZipfDetectorConfig& config) : config_(config) {}

void ZipfDetector::record(trace::Key key) { ++counts_[key]; }

ZipfDetector::WindowResult ZipfDetector::close_window() {
  WindowResult result;
  result.previous_alpha = prev_alpha_;
  result.unique_contents = counts_.size();

  std::vector<std::uint32_t> freq;
  freq.reserve(counts_.size());
  for (const auto& [key, c] : counts_) freq.push_back(c);
  std::sort(freq.begin(), freq.end(), std::greater<>());

  const std::size_t n = (config_.max_fit_rank == 0)
                            ? freq.size()
                            : std::min(config_.max_fit_rank, freq.size());
  std::vector<double> log_rank, log_count;
  log_rank.reserve(n);
  log_count.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    log_rank.push_back(std::log(static_cast<double>(i + 1)));
    log_count.push_back(std::log(static_cast<double>(freq[i])));
  }
  const auto fit = util::fit_linear(log_rank, log_count);
  result.alpha = -fit.slope;

  result.change_detected =
      (windows_ == 0) || std::abs(result.alpha - prev_alpha_) >= config_.epsilon;

  prev_alpha_ = result.alpha;
  ++windows_;
  counts_.clear();
  return result;
}

std::size_t ZipfDetector::memory_bytes() const noexcept {
  return counts_.size() *
         (sizeof(trace::Key) + sizeof(std::uint32_t) + 2 * sizeof(void*));
}

}  // namespace lhr::ml
