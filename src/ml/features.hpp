// Content feature extraction (paper §5.2.1).
//
// Time-varying features: IRT_1 .. IRT_K, the times between the content's
// most recent consecutive requests (K = 20 by default; Figure 6 sweeps
// 10/20/30). Static features: content size plus derived quantities.
// Features that do not exist yet (IRT_k before the (k+1)-th request) are
// encoded as NaN, which the GBDT routes through its learned default
// direction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "trace/request.hpp"
#include "util/flat_hash_map.hpp"

namespace lhr::ml {

struct FeatureConfig {
  std::size_t num_irts = 20;
  bool include_static = true;  ///< size, log-size, request count, age
};

/// Number of static features appended after the IRTs.
inline constexpr std::size_t kStaticFeatureCount = 4;

class FeatureExtractor {
 public:
  explicit FeatureExtractor(const FeatureConfig& config = {});

  /// Feature vector length.
  [[nodiscard]] std::size_t dim() const noexcept;

  /// Writes the features of `r.key` *as of time r.time, before recording
  /// this request* into `out` (length dim()). IRT_1 uses the gap between
  /// r.time and the last recorded request.
  void extract(const trace::Request& r, std::span<float> out) const;

  /// Records the request into the per-content history.
  void record(const trace::Request& r);

  /// Hints that `key`'s history entry will be extracted soon. The sampled-
  /// eviction gathers call this one candidate ahead, so each candidate's
  /// history line is in flight while the previous one's features are built.
  void prefetch(trace::Key key) const noexcept { history_.prefetch(key); }

  /// Drops contents whose last recorded request is older than `horizon`
  /// (bounds the history memory; LHR calls this at window boundaries).
  void prune_older_than(trace::Time horizon);

  [[nodiscard]] std::size_t tracked_contents() const noexcept { return history_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  struct History {
    std::vector<float> irts;   // ring buffer of the last num_irts IRTs
    std::size_t ring_pos = 0;  // next write slot
    std::size_t count = 0;     // total recorded requests
    trace::Time first_time = 0.0;
    trace::Time last_time = 0.0;
    std::uint64_t size = 0;
  };

  FeatureConfig config_;
  util::FlatHashMap<trace::Key, History> history_;
};

}  // namespace lhr::ml
