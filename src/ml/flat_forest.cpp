#include "ml/flat_forest.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "ml/simd_dispatch.hpp"

namespace lhr::ml {

FlatForest::FlatForest(const Gbdt& model)
    : base_score_(model.base_score_),
      loss_(model.loss_),
      n_features_(model.n_features_) {
  std::size_t n_nodes = 0;
  for (const Gbdt::Tree& tree : model.trees_) n_nodes += tree.nodes.size();
  feature_.reserve(n_nodes);
  threshold_.reserve(n_nodes);
  missing_left_.reserve(n_nodes);
  child_.reserve(n_nodes * 2);
  value_.reserve(n_nodes);
  roots_.reserve(model.trees_.size());
  depth_.reserve(model.trees_.size());

  constexpr float kInf = std::numeric_limits<float>::infinity();

  // Renumber each tree's nodes in their stored order, keeping every tree's
  // nodes contiguous so a traversal's working set stays local. Leaves become
  // absorbing pseudo-nodes: threshold +inf with missing-left set routes
  // every value (NaN included) to the left child, which is the leaf itself,
  // so walks past a shallow leaf spin in place instead of branching out.
  // Deepest leaf level of a tree (0 when the root is already a leaf) —
  // the fixed trip count of the branch-free walk.
  std::vector<std::pair<std::int32_t, std::int32_t>> stack;
  const auto tree_depth = [&stack](const Gbdt::Tree& tree) {
    if (tree.nodes.empty()) return std::int32_t{0};
    std::int32_t deepest = 0;
    stack.assign(1, {0, 0});
    while (!stack.empty()) {
      const auto [node, depth] = stack.back();
      stack.pop_back();
      const Gbdt::Node& nd = tree.nodes[static_cast<std::size_t>(node)];
      if (nd.feature < 0) {
        deepest = std::max(deepest, depth);
      } else {
        stack.emplace_back(nd.left, depth + 1);
        stack.emplace_back(nd.right, depth + 1);
      }
    }
    return deepest;
  };

  std::vector<std::int32_t> remap;  // original node index -> flat node index
  for (const Gbdt::Tree& tree : model.trees_) {
    const std::int32_t base = static_cast<std::int32_t>(feature_.size());
    remap.assign(tree.nodes.size(), 0);
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
      remap[i] = base + static_cast<std::int32_t>(i);
    }
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
      const Gbdt::Node& node = tree.nodes[i];
      const std::int32_t self = remap[i];
      if (node.feature >= 0) {
        feature_.push_back(node.feature);
        threshold_.push_back(node.threshold);
        missing_left_.push_back(node.missing_left ? -1 : 0);
        child_.push_back(remap[static_cast<std::size_t>(node.left)]);
        child_.push_back(remap[static_cast<std::size_t>(node.right)]);
        value_.push_back(0.0f);
      } else {
        feature_.push_back(0);
        threshold_.push_back(kInf);
        missing_left_.push_back(-1);
        child_.push_back(self);
        child_.push_back(self);
        value_.push_back(node.value);
      }
    }
    if (tree.nodes.empty()) {
      // A fitted tree always has at least one node; keep the defensive
      // branch as a zero-valued absorbing leaf so roots_ stays aligned.
      feature_.push_back(0);
      threshold_.push_back(kInf);
      missing_left_.push_back(-1);
      child_.push_back(base);
      child_.push_back(base);
      value_.push_back(0.0f);
    }
    roots_.push_back(base);
    depth_.push_back(tree_depth(tree));
  }

  // SIMD node records mirror the SoA arrays field for field (same feature
  // ids, same threshold bits, same children), so the two representations
  // cannot disagree. missing_left_ is a -1/0 mask: AND with the sign bit
  // folds it into the feature word, where blendv reads it back for free.
  packed_.resize(feature_.size() * 4);
  for (std::size_t i = 0; i < feature_.size(); ++i) {
    packed_[4 * i] =
        feature_[i] | (missing_left_[i] & std::numeric_limits<std::int32_t>::min());
    std::memcpy(&packed_[4 * i + 1], &threshold_[i], sizeof(float));
    packed_[4 * i + 2] = child_[2 * i];
    packed_[4 * i + 3] = child_[2 * i + 1];
  }
}

double FlatForest::score_row(std::span<const float> x) const {
  const float* xs = x.data();
  const std::int32_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const std::int32_t* missing_left = missing_left_.data();
  const std::int32_t* child = child_.data();
  double score = base_score_;
  const std::size_t n_trees = roots_.size();
  for (std::size_t t = 0; t < n_trees; ++t) {
    std::size_t idx = static_cast<std::size_t>(roots_[t]);
    // Fixed-trip walk: absorbing leaves make every path exactly depth_[t]
    // steps long, so there is no data-dependent loop exit to mispredict.
    for (std::int32_t d = depth_[t]; d > 0; --d) {
      const float v = xs[static_cast<std::size_t>(feature[idx])];
      const float thr = threshold[idx];
      // Missing-left nodes test !(v > t): NaN fails the >, so it goes
      // left. Missing-right nodes test v <= t: NaN fails that too, so it
      // goes right. For non-NaN values both forms agree with v <= t, which
      // makes the traversal isnan-free yet bit-identical to Gbdt::predict.
      const bool go_left =
          missing_left[idx] ? !(v > thr) : (v <= thr);
      // Direction folds into the load index — no branch, no cmov on a
      // pointer, just child_[2*idx] or child_[2*idx + 1].
      idx = static_cast<std::size_t>(
          child[2 * idx + static_cast<std::size_t>(!go_left)]);
    }
    score += value_[idx];
  }
  return score;
}

double FlatForest::probability(std::span<const float> x) const {
  const double raw = score_row(x);
  if (loss_ == GbdtLoss::kLogistic) return 1.0 / (1.0 + std::exp(-raw));
  return std::clamp(raw, 0.0, 1.0);
}

void FlatForest::score_span(const float* rows, std::size_t n_rows,
                            double* out) const {
  // Pure dispatch: both implementations produce bit-identical doubles, so
  // this is a performance decision resolved once per process (or pinned by
  // simd::force_level in tests and benches).
  if (simd::active_level() == simd::Level::kAvx2) {
    score_span_avx2(rows, n_rows, out);
  } else {
    score_span_scalar(rows, n_rows, out);
  }
}

void FlatForest::score_span_scalar(const float* rows, std::size_t n_rows,
                                   double* out) const {
  const std::int32_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const std::int32_t* missing_left = missing_left_.data();
  const std::int32_t* child = child_.data();
  const float* value = value_.data();
  const std::size_t n_trees = roots_.size();
  for (std::size_t begin = 0; begin < n_rows; begin += kBlockRows) {
    const std::size_t block = std::min(kBlockRows, n_rows - begin);
    double acc[kBlockRows];
    const float* x[kBlockRows];
    std::size_t idx[kBlockRows];
    for (std::size_t r = 0; r < block; ++r) {
      acc[r] = base_score_;
      x[r] = rows + (begin + r) * n_features_;
    }
    // Tree-outer, level-inner: per tree, all rows of the block step down
    // one level per pass. A single walk is a chain of dependent loads
    // (node -> feature -> child), so walking rows one at a time serializes
    // on load latency; stepping kBlockRows independent, branch-free walks
    // in lockstep keeps that many chains in flight in the memory pipeline,
    // while the tree's arrays stay cache-hot across the whole block.
    for (std::size_t t = 0; t < n_trees; ++t) {
      const auto root = static_cast<std::size_t>(roots_[t]);
      for (std::size_t r = 0; r < block; ++r) idx[r] = root;
      for (std::int32_t d = depth_[t]; d > 0; --d) {
        for (std::size_t r = 0; r < block; ++r) {
          const std::size_t node = idx[r];
          const float v = x[r][static_cast<std::size_t>(feature[node])];
          const float thr = threshold[node];
          const bool go_left =
              missing_left[node] ? !(v > thr) : (v <= thr);
          idx[r] = static_cast<std::size_t>(
              child[2 * node + static_cast<std::size_t>(!go_left)]);
        }
      }
      // Per-row accumulation order is unchanged (base_score_, then trees in
      // training order), preserving bit-identity with score_row.
      for (std::size_t r = 0; r < block; ++r) acc[r] += value[idx[r]];
    }
    for (std::size_t r = 0; r < block; ++r) out[begin + r] = acc[r];
  }
}

void FlatForest::score_block(std::span<const float> rows, std::size_t n_rows,
                             std::span<double> out) const {
  if (rows.size() != n_rows * n_features_) {
    throw std::invalid_argument("FlatForest::score_block: row-buffer size mismatch");
  }
  if (out.size() != n_rows) {
    throw std::invalid_argument("FlatForest::score_block: output size mismatch");
  }
  score_span(rows.data(), n_rows, out.data());
}

void FlatForest::score_block(const Dataset& data, std::span<double> out) const {
  if (data.n_features != n_features_) {
    throw std::invalid_argument("FlatForest::score_block: feature dimension mismatch");
  }
  score_block(data.values, data.n_rows(), out);
}

std::size_t FlatForest::memory_bytes() const noexcept {
  return feature_.size() * (sizeof(std::int32_t) + sizeof(float) +
                            sizeof(std::int32_t) + sizeof(float)) +
         child_.size() * sizeof(std::int32_t) +
         packed_.size() * sizeof(std::int32_t) +
         roots_.size() * sizeof(std::int32_t) * 2;
}

std::size_t FlatForest::walk_bytes_per_row() const noexcept {
  // Per level visited: feature (4) + threshold (4) + missing mask (4) + one
  // child entry (4); per tree: the leaf value (4). Rows walk every tree to
  // its full depth (absorbing leaves), so the sum is exact, not a bound.
  std::size_t bytes = 0;
  for (const std::int32_t d : depth_) {
    bytes += static_cast<std::size_t>(d) * 16 + 4;
  }
  return bytes;
}

}  // namespace lhr::ml
