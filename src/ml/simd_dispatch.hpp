// Runtime SIMD dispatch for the compiled inference engine.
//
// FlatForest keeps two implementations of the level-synchronous block walk:
// the portable scalar loop (the bit-identical reference, always compiled)
// and an AVX2 kernel compiled into its own translation unit with -mavx2 so
// the rest of the binary stays baseline-ISA clean. Which one runs is decided
// once per process:
//
//   1. compile-time: was flat_forest_simd.cpp built with AVX2 support at
//      all? (x86-64 + a compiler that accepts -mavx2; LHR_FOREST_AVX2)
//   2. runtime: does this CPU report AVX2? (__builtin_cpu_supports)
//   3. operator override: LHR_SIMD=0 forces the scalar path, LHR_SIMD=1
//      insists on AVX2 (falls back to scalar with a one-time stderr notice
//      when the host cannot run it — the CI "skip with notice" leg),
//      LHR_SIMD=auto / unset picks AVX2 whenever 1+2 hold.
//
// The two paths produce bit-identical doubles (asserted by
// flat_forest_test's SIMD sweep and bench_micro's "SIMD/scalar equivalence"
// line that CI greps), so dispatch is a pure performance decision.
#pragma once

#include <optional>

namespace lhr::ml::simd {

enum class Level {
  kScalar,  ///< portable reference loop
  kAvx2,    ///< 8-wide gather/compare-mask level step
};

/// True when the AVX2 kernel was compiled into this binary.
[[nodiscard]] bool avx2_compiled() noexcept;

/// True when the running CPU reports AVX2 (false on non-x86 builds).
[[nodiscard]] bool avx2_runtime() noexcept;

/// The level score_block dispatches to: the LHR_SIMD override if any
/// (resolved once, cached), else AVX2 when compiled in and supported.
[[nodiscard]] Level active_level() noexcept;

/// Human-readable name ("scalar" / "avx2") for bench output.
[[nodiscard]] const char* level_name(Level level) noexcept;

/// Test/bench hook: pins active_level() to `level` (nullopt restores the
/// environment-driven decision). Not thread-safe against concurrent
/// score_block callers — benches and tests force it only from one thread
/// before spawning work. Forcing kAvx2 on a host without AVX2 support is
/// ignored (scalar keeps running) so equivalence sweeps degrade safely.
void force_level(std::optional<Level> level) noexcept;

/// RAII form of force_level for test/bench scopes.
class ScopedForceLevel {
 public:
  explicit ScopedForceLevel(Level level) noexcept { force_level(level); }
  ~ScopedForceLevel() { force_level(std::nullopt); }
  ScopedForceLevel(const ScopedForceLevel&) = delete;
  ScopedForceLevel& operator=(const ScopedForceLevel&) = delete;
};

}  // namespace lhr::ml::simd
