// The detection mechanism (paper §5.2.2, Appendix A.2).
//
// Request popularity within a sliding window is modeled as Zipf:
// p_i = A / i^α. The detector estimates α per window with O(N) least
// squares on log(count) vs log(rank), and signals "retrain" when
// |α_k − α_{k−1}| ≥ ε. The paper reports 97-99% detection accuracy with
// ε = 0.002 on synthetic α-switching workloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "trace/request.hpp"

namespace lhr::ml {

struct ZipfDetectorConfig {
  double epsilon = 0.002;       ///< retrain iff |Δα| ≥ ε
  std::size_t max_fit_rank = 0; ///< 0 = fit all ranks; else truncate the tail
};

class ZipfDetector {
 public:
  explicit ZipfDetector(const ZipfDetectorConfig& config = {});

  /// Records one request of the current window.
  void record(trace::Key key);

  struct WindowResult {
    double alpha = 0.0;        ///< α estimate for the closed window
    double previous_alpha = 0.0;
    bool change_detected = false;  ///< |Δα| ≥ ε (always true for window 0)
    std::size_t unique_contents = 0;
  };

  /// Closes the current window: fits α, compares against the previous
  /// window, clears per-window counts.
  WindowResult close_window();

  [[nodiscard]] std::size_t windows_closed() const noexcept { return windows_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  ZipfDetectorConfig config_;
  std::unordered_map<trace::Key, std::uint32_t> counts_;
  double prev_alpha_ = 0.0;
  std::size_t windows_ = 0;
};

}  // namespace lhr::ml
