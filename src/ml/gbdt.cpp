#include "ml/gbdt.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lhr::ml {

namespace {

constexpr std::uint8_t kMissingBin = 255;

// Rows per work chunk for the parallel loops. Chunk boundaries are a
// function of the row count only — never of the thread count — which is the
// backbone of the determinism guarantee: every floating-point reduction
// computes per-chunk partials on these fixed boundaries and reduces them in
// chunk-index order, so the arithmetic is the same sequence of operations no
// matter how many workers execute the chunks or in what order they finish.
constexpr std::size_t kRowChunk = 4096;

/// Work scheduler for fit(): distributes chunk jobs over an optional
/// ThreadPool with the calling thread participating. With no pool (or one
/// worker) everything runs inline, in chunk order, on the caller.
class Executor {
 public:
  Executor(util::ThreadPool* pool, std::size_t n_threads) {
    if (pool == nullptr && n_threads > 1) {
      owned_ = std::make_unique<util::ThreadPool>(n_threads - 1);
      pool = owned_.get();
    }
    pool_ = pool;
    const std::size_t available = pool_ != nullptr ? pool_->thread_count() + 1 : 1;
    workers_ = n_threads == 0 ? available : std::min(n_threads, available);
    if (workers_ == 0) workers_ = 1;
  }

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Calls fn(c) exactly once for every c in [0, n_chunks). Which worker
  /// runs which chunk is scheduling-dependent; callers must keep their
  /// results independent of that assignment (disjoint writes, or per-chunk
  /// partials reduced in index order afterwards).
  template <typename Fn>
  void for_chunks(std::size_t n_chunks, const Fn& fn) {
    const std::size_t helpers =
        n_chunks > 1 ? std::min(workers_ - 1, n_chunks - 1) : 0;
    if (helpers == 0 || pool_ == nullptr) {
      for (std::size_t c = 0; c < n_chunks; ++c) fn(c);
      return;
    }
    std::atomic<std::size_t> next{0};
    const auto drain = [&] {
      for (std::size_t c;
           (c = next.fetch_add(1, std::memory_order_relaxed)) < n_chunks;) {
        fn(c);
      }
    };
    util::TaskGroup group(pool_);
    for (std::size_t t = 0; t < helpers; ++t) group.run(drain);
    drain();
    group.wait();
  }

  /// Elementwise parallel-for over [0, n) in kRowChunk-sized ranges.
  template <typename Fn>
  void for_ranges(std::size_t n, const Fn& fn) {
    if (n == 0) return;
    for_chunks((n + kRowChunk - 1) / kRowChunk, [&](std::size_t c) {
      const std::size_t begin = c * kRowChunk;
      fn(begin, std::min(begin + kRowChunk, n));
    });
  }

 private:
  std::unique_ptr<util::ThreadPool> owned_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t workers_ = 1;
};

/// Per-feature quantile bin edges. bin(v) = index of first edge >= v;
/// "value <= edges[b]" is the split predicate for bin b.
///
/// Datasets above kEdgeSample rows are subsampled per feature. The sampled
/// row indices are deduped before use: with-replacement draws repeat rows
/// (~37% of draws are duplicates when n is just above the sample size),
/// which silently shrank the effective sample and biased the quantiles on
/// mid-sized datasets. All rng draws happen on the calling thread so the
/// stream — and therefore the edges — depend only on the config seed.
std::vector<std::vector<float>> compute_bin_edges(const Dataset& data,
                                                  std::size_t max_bins,
                                                  util::Xoshiro256& rng,
                                                  Executor& exec) {
  const std::size_t n = data.n_rows();
  std::vector<std::vector<float>> edges(data.n_features);
  constexpr std::size_t kEdgeSample = 65'536;

  std::vector<std::vector<std::uint32_t>> sampled;
  if (n > kEdgeSample) {
    sampled.resize(data.n_features);
    for (auto& idx : sampled) {
      idx.reserve(kEdgeSample);
      for (std::size_t s = 0; s < kEdgeSample; ++s) {
        idx.push_back(static_cast<std::uint32_t>(rng.next_below(n)));
      }
      std::sort(idx.begin(), idx.end());
      idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    }
  }

  // Each task touches only edges[f] / sampled[f]: no shared writes.
  exec.for_chunks(data.n_features, [&](std::size_t f) {
    std::vector<float> sample;
    if (n <= kEdgeSample) {
      sample.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const float v = data.values[i * data.n_features + f];
        if (!std::isnan(v)) sample.push_back(v);
      }
    } else {
      sample.reserve(sampled[f].size());
      for (const std::uint32_t i : sampled[f]) {
        const float v = data.values[static_cast<std::size_t>(i) * data.n_features + f];
        if (!std::isnan(v)) sample.push_back(v);
      }
    }
    if (sample.empty()) return;
    std::sort(sample.begin(), sample.end());
    sample.erase(std::unique(sample.begin(), sample.end()), sample.end());

    const std::size_t n_edges = std::min(max_bins - 1, sample.size());
    auto& e = edges[f];
    e.reserve(n_edges);
    for (std::size_t k = 1; k <= n_edges; ++k) {
      const std::size_t idx =
          std::min(sample.size() - 1, k * sample.size() / (n_edges + 1));
      if (e.empty() || sample[idx] > e.back()) e.push_back(sample[idx]);
    }
    if (e.empty()) e.push_back(sample.back());
  });
  return edges;
}

std::uint8_t bin_of(float v, const std::vector<float>& edges) {
  if (std::isnan(v)) return kMissingBin;
  const auto it = std::lower_bound(edges.begin(), edges.end(), v);
  return static_cast<std::uint8_t>(it - edges.begin());  // may equal edges.size()
}

struct BinStats {
  double g = 0.0;
  double h = 0.0;
};

struct SplitCandidate {
  double gain = 0.0;
  std::int32_t feature = -1;
  std::uint8_t bin = 0;
  bool missing_left = true;
  // Child totals of the winning split (histogram sums, missing side
  // included). They seed the children's Work items, so no per-child row
  // re-summation is needed.
  double g_left = 0.0, h_left = 0.0;
  double g_right = 0.0, h_right = 0.0;
};

double leaf_objective(double g, double h, double lambda) {
  return (g * g) / (h + lambda);
}

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

void accumulate_rows(const std::uint32_t* rows, std::size_t count, const double* grad,
                     const double* hess, const std::uint8_t* bins,
                     std::size_t n_features, std::size_t hist_width, BinStats* out) {
  for (std::size_t p = 0; p < count; ++p) {
    const std::uint32_t i = rows[p];
    const double g = grad[i];
    const double h = hess[i];
    const std::uint8_t* row_bins = bins + static_cast<std::size_t>(i) * n_features;
    for (std::size_t f = 0; f < n_features; ++f) {
      const std::uint8_t b = row_bins[f];
      BinStats& s = out[f * hist_width + (b == kMissingBin ? hist_width - 1 : b)];
      s.g += g;
      s.h += h;
    }
  }
}

/// Fills `out` with the histogram of rows[0, count): fixed-boundary chunk
/// partials accumulated in parallel, then reduced in chunk order (see the
/// kRowChunk comment for why this is thread-count-invariant). Single-chunk
/// nodes skip the partial buffers entirely.
void build_histogram(const std::uint32_t* rows, std::size_t count, const double* grad,
                     const double* hess, const std::uint8_t* bins,
                     std::size_t n_features, std::size_t hist_width,
                     std::vector<BinStats>& out, Executor& exec,
                     std::vector<std::vector<BinStats>>& scratch) {
  std::fill(out.begin(), out.end(), BinStats{});
  const std::size_t n_chunks = (count + kRowChunk - 1) / kRowChunk;
  if (n_chunks <= 1) {
    accumulate_rows(rows, count, grad, hess, bins, n_features, hist_width, out.data());
    return;
  }
  if (scratch.size() < n_chunks) scratch.resize(n_chunks);
  const std::size_t width = out.size();
  exec.for_chunks(n_chunks, [&](std::size_t c) {
    auto& part = scratch[c];
    part.assign(width, BinStats{});
    const std::size_t begin = c * kRowChunk;
    accumulate_rows(rows + begin, std::min(kRowChunk, count - begin), grad, hess,
                    bins, n_features, hist_width, part.data());
  });
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const auto& part = scratch[c];
    for (std::size_t s = 0; s < width; ++s) {
      out[s].g += part[s].g;
      out[s].h += part[s].h;
    }
  }
}

/// Fixed-width histogram buffers with a free list; at most O(tree depth)
/// buffers are live at once (one per pending sibling pair).
class HistArena {
 public:
  explicit HistArena(std::size_t width) : width_(width) {}

  std::int32_t alloc() {
    if (!free_.empty()) {
      const std::int32_t id = free_.back();
      free_.pop_back();
      return id;
    }
    buffers_.emplace_back(width_);
    return static_cast<std::int32_t>(buffers_.size() - 1);
  }
  void release(std::int32_t id) {
    if (id >= 0) free_.push_back(id);
  }
  std::vector<BinStats>& at(std::int32_t id) {
    return buffers_[static_cast<std::size_t>(id)];
  }

 private:
  std::size_t width_;
  std::vector<std::vector<BinStats>> buffers_;
  std::vector<std::int32_t> free_;
};

}  // namespace

void Gbdt::fit(const Dataset& data, std::span<const float> targets,
               const GbdtConfig& config, util::ThreadPool* pool) {
  const std::size_t n = data.n_rows();
  if (n == 0 || data.n_features == 0) {
    throw std::invalid_argument("Gbdt::fit: empty dataset");
  }
  if (targets.size() != n) {
    throw std::invalid_argument("Gbdt::fit: target size mismatch");
  }
  if (config.max_bins < 2 || config.max_bins > 250) {
    throw std::invalid_argument("Gbdt::fit: max_bins must be in [2, 250]");
  }

  trees_.clear();
  n_features_ = data.n_features;
  loss_ = config.loss;
  importance_gain_.assign(n_features_, 0.0);
  util::Xoshiro256 rng(config.seed);
  Executor exec(pool, config.n_threads);

  double mean = 0.0;
  for (const float t : targets) mean += t;
  mean /= static_cast<double>(n);
  if (loss_ == GbdtLoss::kLogistic) {
    const double clamped = std::clamp(mean, 1e-6, 1.0 - 1e-6);
    base_score_ = std::log(clamped / (1.0 - clamped));  // log-odds prior
  } else {
    base_score_ = mean;
  }

  const auto edges = compute_bin_edges(data, config.max_bins, rng, exec);

  // Pre-bin the whole matrix once (elementwise: disjoint writes per chunk).
  std::vector<std::uint8_t> bins(n * n_features_);
  exec.for_ranges(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t f = 0; f < n_features_; ++f) {
        bins[i * n_features_ + f] = bin_of(data.values[i * n_features_ + f], edges[f]);
      }
    }
  });

  std::vector<double> pred(n, base_score_);
  std::vector<double> grad(n);
  std::vector<double> hess(n, 1.0);
  std::vector<std::uint32_t> rows;
  rows.reserve(n);

  // Histogram slots: max_bins+1 per feature (last slot = missing).
  const std::size_t hist_width = config.max_bins + 1;
  HistArena arena(n_features_ * hist_width);
  std::vector<std::vector<BinStats>> scratch;

  for (std::size_t t = 0; t < config.num_trees; ++t) {
    // Squared loss: g = pred - y, h = 1. Logistic: g = sigma(pred) - y,
    // h = sigma(pred)(1 - sigma(pred)). Elementwise: deterministic under
    // any chunk-to-worker assignment.
    if (loss_ == GbdtLoss::kLogistic) {
      exec.for_ranges(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const double p = sigmoid(pred[i]);
          grad[i] = p - targets[i];
          hess[i] = std::max(p * (1.0 - p), 1e-9);
        }
      });
    } else {
      exec.for_ranges(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) grad[i] = pred[i] - targets[i];
      });
    }

    rows.clear();
    if (config.subsample >= 1.0) {
      for (std::uint32_t i = 0; i < n; ++i) rows.push_back(i);
    } else {
      // rng-driven: stays on the calling thread to keep the stream fixed.
      for (std::uint32_t i = 0; i < n; ++i) {
        if (rng.next_double() < config.subsample) rows.push_back(i);
      }
      if (rows.empty()) rows.push_back(static_cast<std::uint32_t>(rng.next_below(n)));
    }

    // Root totals: a single in-order pass on the calling thread (O(n), cheap
    // relative to histogram work, and trivially thread-count-invariant).
    double root_g = 0.0;
    double root_h = 0.0;
    for (const std::uint32_t i : rows) {
      root_g += grad[i];
      root_h += hess[i];
    }

    Tree tree;
    // Iterative node construction over (node index, row range, depth) using
    // an explicit stack; rows are partitioned in place within `rows`. Each
    // Work item carries its g/h totals (seeded from the parent's winning
    // split) and, when already derived, its histogram arena buffer.
    struct Work {
      std::int32_t node;
      std::size_t begin;
      std::size_t end;
      std::size_t depth;
      double g_total;
      double h_total;
      std::int32_t hist = -1;
    };
    std::vector<Work> stack;
    tree.nodes.emplace_back();
    stack.push_back({0, 0, rows.size(), 0, root_g, root_h, -1});

    while (!stack.empty()) {
      const Work w = stack.back();
      stack.pop_back();
      const double g_total = w.g_total;
      const double h_total = w.h_total;

      std::int32_t hist_id = w.hist;  // this node's arena buffer, if any
      const auto make_leaf = [&] {
        tree.nodes[w.node].feature = -1;
        tree.nodes[w.node].value = static_cast<float>(
            -g_total / (h_total + config.reg_lambda) * config.learning_rate);
        arena.release(hist_id);
      };

      if (w.depth >= config.max_depth ||
          h_total < 2.0 * config.min_child_weight) {
        make_leaf();
        continue;
      }

      // This node's histogram: either inherited from the parent's split
      // (subtraction trick) or accumulated from its rows here.
      if (hist_id < 0) {
        hist_id = arena.alloc();
        build_histogram(rows.data() + w.begin, w.end - w.begin, grad.data(),
                        hess.data(), bins.data(), n_features_, hist_width,
                        arena.at(hist_id), exec, scratch);
      }
      std::vector<BinStats>& hist = arena.at(hist_id);

      const double parent_obj = leaf_objective(g_total, h_total, config.reg_lambda);
      SplitCandidate best;
      for (std::size_t f = 0; f < n_features_; ++f) {
        if (edges[f].empty()) continue;
        const BinStats miss = hist[f * hist_width + hist_width - 1];
        double gl = 0.0, hl = 0.0;
        // Split after bin b: left = bins [0..b], right = rest.
        const std::size_t usable_bins = edges[f].size();  // bins 0..usable-1 have edges
        for (std::size_t b = 0; b < usable_bins; ++b) {
          const BinStats& s = hist[f * hist_width + b];
          gl += s.g;
          hl += s.h;
          const double gr = g_total - miss.g - gl;
          const double hr = h_total - miss.h - hl;
          // Try missing-left and missing-right.
          for (const bool miss_left : {true, false}) {
            const double gL = gl + (miss_left ? miss.g : 0.0);
            const double hL = hl + (miss_left ? miss.h : 0.0);
            const double gR = gr + (miss_left ? 0.0 : miss.g);
            const double hR = hr + (miss_left ? 0.0 : miss.h);
            if (hL < config.min_child_weight || hR < config.min_child_weight) continue;
            const double gain = leaf_objective(gL, hL, config.reg_lambda) +
                                leaf_objective(gR, hR, config.reg_lambda) - parent_obj;
            if (gain > best.gain) {
              best = SplitCandidate{gain,      static_cast<std::int32_t>(f),
                                    static_cast<std::uint8_t>(b),
                                    miss_left, gL, hL, gR, hR};
            }
          }
        }
      }

      if (best.feature < 0 || best.gain <= 1e-10) {
        make_leaf();
        continue;
      }

      // Partition rows: left = bin <= best.bin (missing per direction).
      const auto goes_left = [&](std::uint32_t i) {
        const std::uint8_t b =
            bins[static_cast<std::size_t>(i) * n_features_ +
                 static_cast<std::size_t>(best.feature)];
        if (b == kMissingBin) return best.missing_left;
        return b <= best.bin;
      };
      auto mid_it = std::partition(rows.begin() + static_cast<std::ptrdiff_t>(w.begin),
                                   rows.begin() + static_cast<std::ptrdiff_t>(w.end),
                                   goes_left);
      const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
      if (mid == w.begin || mid == w.end) {
        make_leaf();  // degenerate partition (shouldn't happen, but be safe)
        continue;
      }
      importance_gain_[static_cast<std::size_t>(best.feature)] += best.gain;

      const auto left = static_cast<std::int32_t>(tree.nodes.size());
      const auto right = left + 1;
      tree.nodes.emplace_back();
      tree.nodes.emplace_back();  // may reallocate: write via index afterwards
      Node& node = tree.nodes[static_cast<std::size_t>(w.node)];
      node.feature = best.feature;
      node.threshold = edges[static_cast<std::size_t>(best.feature)][best.bin];
      node.missing_left = best.missing_left;
      node.left = left;
      node.right = right;

      // Subtraction trick: a child that will itself be split needs a
      // histogram; accumulate the smaller child's and derive the other as
      // parent - smaller (O(bins) instead of O(rows)), reusing the parent's
      // buffer in place. All choices below depend only on the data, so they
      // are identical for every thread count.
      const std::size_t left_len = mid - w.begin;
      const std::size_t right_len = w.end - mid;
      const std::size_t child_depth = w.depth + 1;
      const auto will_split = [&](double h_child) {
        return child_depth < config.max_depth &&
               h_child >= 2.0 * config.min_child_weight;
      };
      const bool left_needs = will_split(best.h_left);
      const bool right_needs = will_split(best.h_right);

      std::int32_t left_hist = -1;
      std::int32_t right_hist = -1;
      const bool left_smaller = left_len <= right_len;
      const auto accumulate_child = [&](std::size_t begin, std::size_t len) {
        const std::int32_t id = arena.alloc();
        build_histogram(rows.data() + begin, len, grad.data(), hess.data(),
                        bins.data(), n_features_, hist_width, arena.at(id), exec,
                        scratch);
        return id;
      };
      const auto subtract_into_parent = [&](std::int32_t small_id) {
        // Fetched fresh: accumulate_child's alloc may have grown the arena,
        // invalidating any previously held buffer reference.
        std::vector<BinStats>& parent = arena.at(hist_id);
        const std::vector<BinStats>& small = arena.at(small_id);
        for (std::size_t s = 0; s < parent.size(); ++s) {
          parent[s].g -= small[s].g;
          parent[s].h -= small[s].h;
        }
      };

      if (left_needs || right_needs) {
        const std::size_t small_begin = left_smaller ? w.begin : mid;
        const std::size_t small_len = left_smaller ? left_len : right_len;
        const bool small_needs = left_smaller ? left_needs : right_needs;
        const bool large_needs = left_smaller ? right_needs : left_needs;
        if (large_needs) {
          const std::int32_t small_id = accumulate_child(small_begin, small_len);
          subtract_into_parent(small_id);
          (left_smaller ? right_hist : left_hist) = hist_id;  // parent buffer reused
          if (small_needs) {
            (left_smaller ? left_hist : right_hist) = small_id;
          } else {
            arena.release(small_id);
          }
        } else {
          // Only the smaller child splits: accumulate it directly.
          (left_smaller ? left_hist : right_hist) =
              accumulate_child(small_begin, small_len);
          arena.release(hist_id);
        }
      } else {
        arena.release(hist_id);
      }

      stack.push_back({left, w.begin, mid, child_depth, best.g_left, best.h_left,
                       left_hist});
      stack.push_back({right, mid, w.end, child_depth, best.g_right, best.h_right,
                       right_hist});
    }

    // Update predictions for all rows (not just the subsample); elementwise.
    exec.for_ranges(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        pred[i] += predict_tree(tree, data.row(i));
      }
    });
    trees_.push_back(std::move(tree));
  }
}

double Gbdt::predict_tree(const Tree& tree, std::span<const float> x) const {
  std::int32_t node = 0;
  while (tree.nodes[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = tree.nodes[static_cast<std::size_t>(node)];
    const float v = x[static_cast<std::size_t>(nd.feature)];
    const bool left = std::isnan(v) ? nd.missing_left : (v <= nd.threshold);
    node = left ? nd.left : nd.right;
  }
  return tree.nodes[static_cast<std::size_t>(node)].value;
}

double Gbdt::predict(std::span<const float> features) const {
  if (features.size() != n_features_) {
    throw std::invalid_argument("Gbdt::predict: feature dimension mismatch");
  }
  double score = base_score_;
  for (const Tree& tree : trees_) score += predict_tree(tree, features);
  return score;
}

double Gbdt::predict_probability(std::span<const float> features) const {
  const double raw = predict(features);
  return loss_ == GbdtLoss::kLogistic ? sigmoid(raw) : std::clamp(raw, 0.0, 1.0);
}

void Gbdt::predict_many(const Dataset& data, std::span<double> out) const {
  if (data.n_features != n_features_) {
    throw std::invalid_argument("Gbdt::predict_many: feature dimension mismatch");
  }
  if (out.size() != data.n_rows()) {
    throw std::invalid_argument("Gbdt::predict_many: output size mismatch");
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    double score = base_score_;
    const std::span<const float> x = data.row(i);
    for (const Tree& tree : trees_) score += predict_tree(tree, x);
    out[i] = score;
  }
}

std::vector<double> Gbdt::predict_many(const Dataset& data) const {
  std::vector<double> out(data.n_rows());
  predict_many(data, out);
  return out;
}

void Gbdt::predict_many(const Dataset& data, std::span<double> out,
                        util::ThreadPool* pool, std::size_t n_threads) const {
  if (data.n_features != n_features_) {
    throw std::invalid_argument("Gbdt::predict_many: feature dimension mismatch");
  }
  if (out.size() != data.n_rows()) {
    throw std::invalid_argument("Gbdt::predict_many: output size mismatch");
  }
  // Rows are scored independently into disjoint out slots, so any chunk
  // assignment yields the same bits as the serial overload.
  Executor exec(pool, n_threads);
  exec.for_ranges(out.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      double score = base_score_;
      const std::span<const float> x = data.row(i);
      for (const Tree& tree : trees_) score += predict_tree(tree, x);
      out[i] = score;
    }
  });
}

std::vector<double> Gbdt::feature_importance() const {
  std::vector<double> normalized = importance_gain_;
  double total = 0.0;
  for (const double g : normalized) total += g;
  if (total > 0.0) {
    for (double& g : normalized) g /= total;
  }
  return normalized;
}

void Gbdt::save(std::ostream& out) const {
  out << std::setprecision(17);
  out << "gbdt-v1 " << n_features_ << ' ' << static_cast<int>(loss_) << ' '
      << base_score_ << ' ' << trees_.size() << '\n';
  for (const Tree& tree : trees_) {
    out << tree.nodes.size() << '\n';
    for (const Node& node : tree.nodes) {
      out << node.feature << ' ' << node.threshold << ' '
          << static_cast<int>(node.missing_left) << ' ' << node.left << ' '
          << node.right << ' ' << node.value << '\n';
    }
  }
  out << importance_gain_.size();
  for (const double g : importance_gain_) out << ' ' << g;
  out << '\n';
}

void Gbdt::load(std::istream& in) {
  std::string magic;
  int loss_int = 0;
  std::size_t n_trees = 0;
  if (!(in >> magic >> n_features_ >> loss_int >> base_score_ >> n_trees) ||
      magic != "gbdt-v1") {
    throw std::runtime_error("Gbdt::load: bad header");
  }
  loss_ = static_cast<GbdtLoss>(loss_int);
  trees_.assign(n_trees, Tree{});
  for (Tree& tree : trees_) {
    std::size_t n_nodes = 0;
    if (!(in >> n_nodes)) throw std::runtime_error("Gbdt::load: bad tree header");
    tree.nodes.resize(n_nodes);
    for (Node& node : tree.nodes) {
      int missing_left = 0;
      if (!(in >> node.feature >> node.threshold >> missing_left >> node.left >>
            node.right >> node.value)) {
        throw std::runtime_error("Gbdt::load: bad node");
      }
      node.missing_left = missing_left != 0;
      const auto max_node = static_cast<std::int32_t>(n_nodes);
      if (node.feature >= static_cast<std::int32_t>(n_features_) ||
          node.left >= max_node || node.right >= max_node) {
        throw std::runtime_error("Gbdt::load: node out of range");
      }
    }
  }
  std::size_t n_importance = 0;
  if (!(in >> n_importance)) throw std::runtime_error("Gbdt::load: bad importance");
  importance_gain_.assign(n_importance, 0.0);
  for (double& g : importance_gain_) {
    if (!(in >> g)) throw std::runtime_error("Gbdt::load: bad importance value");
  }
}

void Gbdt::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Gbdt::save_file: cannot open " + path);
  save(out);
  if (!out) throw std::runtime_error("Gbdt::save_file: write failed");
}

void Gbdt::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Gbdt::load_file: cannot open " + path);
  load(in);
}

std::size_t Gbdt::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(Gbdt);
  for (const Tree& tree : trees_) bytes += tree.nodes.size() * sizeof(Node);
  return bytes;
}

}  // namespace lhr::ml
