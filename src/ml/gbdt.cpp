#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/rng.hpp"

namespace lhr::ml {

namespace {

constexpr std::uint8_t kMissingBin = 255;

/// Per-feature quantile bin edges. bin(v) = index of first edge >= v;
/// "value <= edges[b]" is the split predicate for bin b.
std::vector<std::vector<float>> compute_bin_edges(const Dataset& data,
                                                  std::size_t max_bins,
                                                  util::Xoshiro256& rng) {
  const std::size_t n = data.n_rows();
  std::vector<std::vector<float>> edges(data.n_features);
  constexpr std::size_t kEdgeSample = 65'536;

  std::vector<float> sample;
  for (std::size_t f = 0; f < data.n_features; ++f) {
    sample.clear();
    if (n <= kEdgeSample) {
      for (std::size_t i = 0; i < n; ++i) {
        const float v = data.values[i * data.n_features + f];
        if (!std::isnan(v)) sample.push_back(v);
      }
    } else {
      for (std::size_t s = 0; s < kEdgeSample; ++s) {
        const std::size_t i = rng.next_below(n);
        const float v = data.values[i * data.n_features + f];
        if (!std::isnan(v)) sample.push_back(v);
      }
    }
    if (sample.empty()) continue;
    std::sort(sample.begin(), sample.end());
    sample.erase(std::unique(sample.begin(), sample.end()), sample.end());

    const std::size_t n_edges = std::min(max_bins - 1, sample.size());
    auto& e = edges[f];
    e.reserve(n_edges);
    for (std::size_t k = 1; k <= n_edges; ++k) {
      const std::size_t idx =
          std::min(sample.size() - 1, k * sample.size() / (n_edges + 1));
      if (e.empty() || sample[idx] > e.back()) e.push_back(sample[idx]);
    }
    if (e.empty()) e.push_back(sample.back());
  }
  return edges;
}

std::uint8_t bin_of(float v, const std::vector<float>& edges) {
  if (std::isnan(v)) return kMissingBin;
  const auto it = std::lower_bound(edges.begin(), edges.end(), v);
  return static_cast<std::uint8_t>(it - edges.begin());  // may equal edges.size()
}

struct SplitCandidate {
  double gain = 0.0;
  std::int32_t feature = -1;
  std::uint8_t bin = 0;
  bool missing_left = true;
};

double leaf_objective(double g, double h, double lambda) {
  return (g * g) / (h + lambda);
}

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

void Gbdt::fit(const Dataset& data, std::span<const float> targets,
               const GbdtConfig& config) {
  const std::size_t n = data.n_rows();
  if (n == 0 || data.n_features == 0) {
    throw std::invalid_argument("Gbdt::fit: empty dataset");
  }
  if (targets.size() != n) {
    throw std::invalid_argument("Gbdt::fit: target size mismatch");
  }
  if (config.max_bins < 2 || config.max_bins > 250) {
    throw std::invalid_argument("Gbdt::fit: max_bins must be in [2, 250]");
  }

  trees_.clear();
  n_features_ = data.n_features;
  loss_ = config.loss;
  importance_gain_.assign(n_features_, 0.0);
  util::Xoshiro256 rng(config.seed);

  double mean = 0.0;
  for (const float t : targets) mean += t;
  mean /= static_cast<double>(n);
  if (loss_ == GbdtLoss::kLogistic) {
    const double clamped = std::clamp(mean, 1e-6, 1.0 - 1e-6);
    base_score_ = std::log(clamped / (1.0 - clamped));  // log-odds prior
  } else {
    base_score_ = mean;
  }

  const auto edges = compute_bin_edges(data, config.max_bins, rng);

  // Pre-bin the whole matrix once.
  std::vector<std::uint8_t> bins(n * n_features_);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < n_features_; ++f) {
      bins[i * n_features_ + f] = bin_of(data.values[i * n_features_ + f], edges[f]);
    }
  }

  std::vector<double> pred(n, base_score_);
  std::vector<double> grad(n);
  std::vector<double> hess(n, 1.0);
  std::vector<std::uint32_t> rows;
  rows.reserve(n);

  struct BinStats {
    double g = 0.0;
    double h = 0.0;
  };
  // One histogram buffer reused across nodes: max_bins+1 slots per feature
  // (last slot = missing).
  const std::size_t hist_width = config.max_bins + 1;
  std::vector<BinStats> hist(n_features_ * hist_width);

  for (std::size_t t = 0; t < config.num_trees; ++t) {
    // Squared loss: g = pred - y, h = 1. Logistic: g = sigma(pred) - y,
    // h = sigma(pred)(1 - sigma(pred)).
    if (loss_ == GbdtLoss::kLogistic) {
      for (std::size_t i = 0; i < n; ++i) {
        const double p = sigmoid(pred[i]);
        grad[i] = p - targets[i];
        hess[i] = std::max(p * (1.0 - p), 1e-9);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) grad[i] = pred[i] - targets[i];
    }

    rows.clear();
    if (config.subsample >= 1.0) {
      for (std::uint32_t i = 0; i < n; ++i) rows.push_back(i);
    } else {
      for (std::uint32_t i = 0; i < n; ++i) {
        if (rng.next_double() < config.subsample) rows.push_back(i);
      }
      if (rows.empty()) rows.push_back(static_cast<std::uint32_t>(rng.next_below(n)));
    }

    Tree tree;
    // Iterative node construction over (node index, row range, depth) using
    // an explicit stack; rows are partitioned in place within `rows`.
    struct Work {
      std::int32_t node;
      std::size_t begin;
      std::size_t end;
      std::size_t depth;
    };
    std::vector<Work> stack;
    tree.nodes.emplace_back();
    stack.push_back({0, 0, rows.size(), 0});

    while (!stack.empty()) {
      const Work w = stack.back();
      stack.pop_back();

      double g_total = 0.0;
      double h_total = 0.0;
      for (std::size_t p = w.begin; p < w.end; ++p) {
        g_total += grad[rows[p]];
        h_total += hess[rows[p]];
      }

      const auto make_leaf = [&] {
        tree.nodes[w.node].feature = -1;
        tree.nodes[w.node].value = static_cast<float>(
            -g_total / (h_total + config.reg_lambda) * config.learning_rate);
      };

      if (w.depth >= config.max_depth ||
          h_total < 2.0 * config.min_child_weight) {
        make_leaf();
        continue;
      }

      // Build histograms for this node.
      std::fill(hist.begin(), hist.end(), BinStats{});
      for (std::size_t p = w.begin; p < w.end; ++p) {
        const std::uint32_t i = rows[p];
        const double g = grad[i];
        const double h = hess[i];
        const std::uint8_t* row_bins = &bins[static_cast<std::size_t>(i) * n_features_];
        for (std::size_t f = 0; f < n_features_; ++f) {
          const std::uint8_t b = row_bins[f];
          const std::size_t slot =
              f * hist_width + (b == kMissingBin ? hist_width - 1 : b);
          hist[slot].g += g;
          hist[slot].h += h;
        }
      }

      const double parent_obj = leaf_objective(g_total, h_total, config.reg_lambda);
      SplitCandidate best;
      for (std::size_t f = 0; f < n_features_; ++f) {
        if (edges[f].empty()) continue;
        const BinStats miss = hist[f * hist_width + hist_width - 1];
        double gl = 0.0, hl = 0.0;
        // Split after bin b: left = bins [0..b], right = rest.
        const std::size_t usable_bins = edges[f].size();  // bins 0..usable-1 have edges
        for (std::size_t b = 0; b < usable_bins; ++b) {
          const BinStats& s = hist[f * hist_width + b];
          gl += s.g;
          hl += s.h;
          const double gr = g_total - miss.g - gl;
          const double hr = h_total - miss.h - hl;
          // Try missing-left and missing-right.
          for (const bool miss_left : {true, false}) {
            const double gL = gl + (miss_left ? miss.g : 0.0);
            const double hL = hl + (miss_left ? miss.h : 0.0);
            const double gR = gr + (miss_left ? 0.0 : miss.g);
            const double hR = hr + (miss_left ? 0.0 : miss.h);
            if (hL < config.min_child_weight || hR < config.min_child_weight) continue;
            const double gain = leaf_objective(gL, hL, config.reg_lambda) +
                                leaf_objective(gR, hR, config.reg_lambda) - parent_obj;
            if (gain > best.gain) {
              best = SplitCandidate{gain, static_cast<std::int32_t>(f),
                                    static_cast<std::uint8_t>(b), miss_left};
            }
          }
        }
      }

      if (best.feature < 0 || best.gain <= 1e-10) {
        make_leaf();
        continue;
      }
      importance_gain_[static_cast<std::size_t>(best.feature)] += best.gain;

      // Partition rows: left = bin <= best.bin (missing per direction).
      const auto goes_left = [&](std::uint32_t i) {
        const std::uint8_t b =
            bins[static_cast<std::size_t>(i) * n_features_ +
                 static_cast<std::size_t>(best.feature)];
        if (b == kMissingBin) return best.missing_left;
        return b <= best.bin;
      };
      auto mid_it = std::partition(rows.begin() + static_cast<std::ptrdiff_t>(w.begin),
                                   rows.begin() + static_cast<std::ptrdiff_t>(w.end),
                                   goes_left);
      const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
      if (mid == w.begin || mid == w.end) {
        make_leaf();  // degenerate partition (shouldn't happen, but be safe)
        continue;
      }

      const auto left = static_cast<std::int32_t>(tree.nodes.size());
      const auto right = left + 1;
      tree.nodes.emplace_back();
      tree.nodes.emplace_back();  // may reallocate: write via index afterwards
      Node& node = tree.nodes[static_cast<std::size_t>(w.node)];
      node.feature = best.feature;
      node.threshold = edges[static_cast<std::size_t>(best.feature)][best.bin];
      node.missing_left = best.missing_left;
      node.left = left;
      node.right = right;
      stack.push_back({left, w.begin, mid, w.depth + 1});
      stack.push_back({right, mid, w.end, w.depth + 1});
    }

    // Update predictions for all rows (not just the subsample).
    for (std::size_t i = 0; i < n; ++i) {
      pred[i] += predict_tree(tree, data.row(i));
    }
    trees_.push_back(std::move(tree));
  }
}

double Gbdt::predict_tree(const Tree& tree, std::span<const float> x) const {
  std::int32_t node = 0;
  while (tree.nodes[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = tree.nodes[static_cast<std::size_t>(node)];
    const float v = x[static_cast<std::size_t>(nd.feature)];
    const bool left = std::isnan(v) ? nd.missing_left : (v <= nd.threshold);
    node = left ? nd.left : nd.right;
  }
  return tree.nodes[static_cast<std::size_t>(node)].value;
}

double Gbdt::predict(std::span<const float> features) const {
  if (features.size() != n_features_) {
    throw std::invalid_argument("Gbdt::predict: feature dimension mismatch");
  }
  double score = base_score_;
  for (const Tree& tree : trees_) score += predict_tree(tree, features);
  return score;
}

double Gbdt::predict_probability(std::span<const float> features) const {
  const double raw = predict(features);
  return loss_ == GbdtLoss::kLogistic ? sigmoid(raw) : std::clamp(raw, 0.0, 1.0);
}

std::vector<double> Gbdt::feature_importance() const {
  std::vector<double> normalized = importance_gain_;
  double total = 0.0;
  for (const double g : normalized) total += g;
  if (total > 0.0) {
    for (double& g : normalized) g /= total;
  }
  return normalized;
}

void Gbdt::save(std::ostream& out) const {
  out << std::setprecision(17);
  out << "gbdt-v1 " << n_features_ << ' ' << static_cast<int>(loss_) << ' '
      << base_score_ << ' ' << trees_.size() << '\n';
  for (const Tree& tree : trees_) {
    out << tree.nodes.size() << '\n';
    for (const Node& node : tree.nodes) {
      out << node.feature << ' ' << node.threshold << ' '
          << static_cast<int>(node.missing_left) << ' ' << node.left << ' '
          << node.right << ' ' << node.value << '\n';
    }
  }
  out << importance_gain_.size();
  for (const double g : importance_gain_) out << ' ' << g;
  out << '\n';
}

void Gbdt::load(std::istream& in) {
  std::string magic;
  int loss_int = 0;
  std::size_t n_trees = 0;
  if (!(in >> magic >> n_features_ >> loss_int >> base_score_ >> n_trees) ||
      magic != "gbdt-v1") {
    throw std::runtime_error("Gbdt::load: bad header");
  }
  loss_ = static_cast<GbdtLoss>(loss_int);
  trees_.assign(n_trees, Tree{});
  for (Tree& tree : trees_) {
    std::size_t n_nodes = 0;
    if (!(in >> n_nodes)) throw std::runtime_error("Gbdt::load: bad tree header");
    tree.nodes.resize(n_nodes);
    for (Node& node : tree.nodes) {
      int missing_left = 0;
      if (!(in >> node.feature >> node.threshold >> missing_left >> node.left >>
            node.right >> node.value)) {
        throw std::runtime_error("Gbdt::load: bad node");
      }
      node.missing_left = missing_left != 0;
      const auto max_node = static_cast<std::int32_t>(n_nodes);
      if (node.feature >= static_cast<std::int32_t>(n_features_) ||
          node.left >= max_node || node.right >= max_node) {
        throw std::runtime_error("Gbdt::load: node out of range");
      }
    }
  }
  std::size_t n_importance = 0;
  if (!(in >> n_importance)) throw std::runtime_error("Gbdt::load: bad importance");
  importance_gain_.assign(n_importance, 0.0);
  for (double& g : importance_gain_) {
    if (!(in >> g)) throw std::runtime_error("Gbdt::load: bad importance value");
  }
}

void Gbdt::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Gbdt::save_file: cannot open " + path);
  save(out);
  if (!out) throw std::runtime_error("Gbdt::save_file: write failed");
}

void Gbdt::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Gbdt::load_file: cannot open " + path);
  load(in);
}

std::size_t Gbdt::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(Gbdt);
  for (const Tree& tree : trees_) bytes += tree.nodes.size() * sizeof(Node);
  return bytes;
}

}  // namespace lhr::ml
