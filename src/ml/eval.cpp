#include "ml/eval.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace lhr::ml {

BinaryMetrics evaluate_binary(std::span<const float> predictions,
                              std::span<const float> labels) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("evaluate_binary: size mismatch");
  }
  BinaryMetrics m;
  m.n = predictions.size();
  if (m.n == 0) return m;

  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  double brier = 0.0;
  for (std::size_t i = 0; i < m.n; ++i) {
    const bool truth = labels[i] >= 0.5f;
    const bool predicted = predictions[i] >= 0.5f;
    m.positives += truth;
    if (truth && predicted) ++tp;
    if (!truth && predicted) ++fp;
    if (!truth && !predicted) ++tn;
    if (truth && !predicted) ++fn;
    const double e = static_cast<double>(predictions[i]) - (truth ? 1.0 : 0.0);
    brier += e * e;
  }
  m.accuracy = static_cast<double>(tp + tn) / static_cast<double>(m.n);
  m.precision = (tp + fp) ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  m.recall = (tp + fn) ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  m.brier = brier / static_cast<double>(m.n);

  // Exact AUC via the Mann-Whitney rank statistic.
  const std::size_t n_pos = m.positives;
  const std::size_t n_neg = m.n - n_pos;
  if (n_pos == 0 || n_neg == 0) {
    m.auc = 0.5;  // undefined: report chance
    return m;
  }
  std::vector<std::size_t> order(m.n);
  for (std::size_t i = 0; i < m.n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return predictions[a] < predictions[b];
  });
  // Average ranks over tied prediction groups.
  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < m.n) {
    std::size_t j = i;
    while (j + 1 < m.n && predictions[order[j + 1]] == predictions[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]] >= 0.5f) rank_sum_pos += avg_rank;
    }
    i = j + 1;
  }
  m.auc = (rank_sum_pos - static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0) /
          (static_cast<double>(n_pos) * static_cast<double>(n_neg));
  return m;
}

BinaryMetrics evaluate_model(const Gbdt& model, const Dataset& data,
                             std::span<const float> labels, std::size_t n_threads,
                             util::ThreadPool* pool) {
  if (labels.size() != data.n_rows()) {
    throw std::invalid_argument("evaluate_model: size mismatch");
  }
  std::vector<double> raw(data.n_rows());
  model.predict_many(data, raw, pool, n_threads);
  std::vector<float> predictions(raw.size());
  const bool logistic = model.loss() == GbdtLoss::kLogistic;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const double p =
        logistic ? 1.0 / (1.0 + std::exp(-raw[i])) : std::clamp(raw[i], 0.0, 1.0);
    predictions[i] = static_cast<float>(p);
  }
  return evaluate_binary(predictions, labels);
}

}  // namespace lhr::ml
