#include "ml/eval.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ml/flat_forest.hpp"
#include "util/thread_pool.hpp"

namespace lhr::ml {

BinaryMetrics evaluate_binary(std::span<const float> predictions,
                              std::span<const float> labels) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("evaluate_binary: size mismatch");
  }
  BinaryMetrics m;
  m.n = predictions.size();
  if (m.n == 0) return m;

  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  double brier = 0.0;
  for (std::size_t i = 0; i < m.n; ++i) {
    const bool truth = labels[i] >= 0.5f;
    const bool predicted = predictions[i] >= 0.5f;
    m.positives += truth;
    if (truth && predicted) ++tp;
    if (!truth && predicted) ++fp;
    if (!truth && !predicted) ++tn;
    if (truth && !predicted) ++fn;
    const double e = static_cast<double>(predictions[i]) - (truth ? 1.0 : 0.0);
    brier += e * e;
  }
  m.accuracy = static_cast<double>(tp + tn) / static_cast<double>(m.n);
  m.precision = (tp + fp) ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  m.recall = (tp + fn) ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  m.brier = brier / static_cast<double>(m.n);

  // Exact AUC via the Mann-Whitney rank statistic.
  const std::size_t n_pos = m.positives;
  const std::size_t n_neg = m.n - n_pos;
  if (n_pos == 0 || n_neg == 0) {
    m.auc = 0.5;  // undefined: report chance
    return m;
  }
  std::vector<std::size_t> order(m.n);
  for (std::size_t i = 0; i < m.n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return predictions[a] < predictions[b];
  });
  // Average ranks over tied prediction groups.
  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < m.n) {
    std::size_t j = i;
    while (j + 1 < m.n && predictions[order[j + 1]] == predictions[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]] >= 0.5f) rank_sum_pos += avg_rank;
    }
    i = j + 1;
  }
  m.auc = (rank_sum_pos - static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0) /
          (static_cast<double>(n_pos) * static_cast<double>(n_neg));
  return m;
}

BinaryMetrics evaluate_model(const Gbdt& model, const Dataset& data,
                             std::span<const float> labels, std::size_t n_threads,
                             util::ThreadPool* pool) {
  if (labels.size() != data.n_rows()) {
    throw std::invalid_argument("evaluate_model: size mismatch");
  }
  // Batch scoring runs through the compiled FlatForest — the same
  // SIMD-dispatched score_block the request path uses — so offline model
  // quality is measured on the deployed inference kernel. Gbdt::predict_many
  // stays available as the interpretable oracle; FlatForest guarantees
  // bit-identical doubles, and ml_test asserts the two paths agree here.
  std::vector<double> raw(data.n_rows());
  const FlatForest forest(model);
  if (!forest.trained()) {
    model.predict_many(data, raw, pool, n_threads);
  } else if (pool == nullptr || n_threads <= 1) {
    forest.score_block(data, raw);
  } else {
    // Rows are independent and each scores bit-identically, so any chunking
    // reproduces the serial output exactly. Fixed chunk boundaries keep the
    // split deterministic; the caller participates as the last worker.
    const std::size_t workers = n_threads;
    const std::size_t rows = data.n_rows();
    const std::size_t chunk = (rows + workers - 1) / workers;
    util::TaskGroup group(pool);
    for (std::size_t w = 0; w + 1 < workers; ++w) {
      const std::size_t begin = std::min(rows, w * chunk);
      const std::size_t end = std::min(rows, begin + chunk);
      if (begin == end) continue;
      group.run([&, begin, end] {
        forest.score_block(
            {data.values.data() + begin * data.n_features,
             (end - begin) * data.n_features},
            end - begin, std::span<double>(raw).subspan(begin, end - begin));
      });
    }
    const std::size_t begin = std::min(rows, (workers - 1) * chunk);
    if (begin < rows) {
      forest.score_block(
          {data.values.data() + begin * data.n_features,
           (rows - begin) * data.n_features},
          rows - begin, std::span<double>(raw).subspan(begin));
    }
    group.wait();
  }
  std::vector<float> predictions(raw.size());
  const bool logistic = model.loss() == GbdtLoss::kLogistic;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const double p =
        logistic ? 1.0 / (1.0 + std::exp(-raw[i])) : std::clamp(raw[i], 0.0, 1.0);
    predictions[i] = static_cast<float>(p);
  }
  return evaluate_binary(predictions, labels);
}

}  // namespace lhr::ml
