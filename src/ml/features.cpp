#include "ml/features.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace lhr::ml {

namespace {
constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

float log1p_seconds(double seconds) {
  return static_cast<float>(std::log1p(std::max(seconds, 0.0)));
}
}  // namespace

FeatureExtractor::FeatureExtractor(const FeatureConfig& config) : config_(config) {
  if (config_.num_irts == 0) {
    throw std::invalid_argument("FeatureExtractor: num_irts must be positive");
  }
}

std::size_t FeatureExtractor::dim() const noexcept {
  return config_.num_irts + (config_.include_static ? kStaticFeatureCount : 0);
}

void FeatureExtractor::extract(const trace::Request& r, std::span<float> out) const {
  if (out.size() != dim()) {
    throw std::invalid_argument("FeatureExtractor::extract: wrong output size");
  }

  const auto it = history_.find(r.key);
  const History* h = it == history_.end() ? nullptr : &it->second;

  // IRT_1 = time since the last request; IRT_2.. from the ring buffer
  // (most recent first). log1p-compressed: IRTs span 9 orders of magnitude.
  std::size_t f = 0;
  if (h != nullptr && h->count > 0) {
    out[f++] = log1p_seconds(r.time - h->last_time);
    const std::size_t available = std::min(h->count > 0 ? h->count - 1 : 0,
                                           std::min(h->irts.size(), config_.num_irts - 1));
    for (std::size_t k = 0; k < config_.num_irts - 1; ++k) {
      if (k < available) {
        // irts ring: ring_pos-1 is the newest stored IRT.
        const std::size_t idx =
            (h->ring_pos + h->irts.size() - 1 - k) % h->irts.size();
        out[f++] = h->irts[idx];
      } else {
        out[f++] = kNaN;
      }
    }
  } else {
    for (std::size_t k = 0; k < config_.num_irts; ++k) out[f++] = kNaN;
  }

  if (config_.include_static) {
    out[f++] = static_cast<float>(std::log(static_cast<double>(std::max<std::uint64_t>(r.size, 1))));
    out[f++] = static_cast<float>(static_cast<double>(r.size) / (1024.0 * 1024.0));
    out[f++] = h ? static_cast<float>(std::log1p(static_cast<double>(h->count))) : 0.0f;
    out[f++] = h ? log1p_seconds(r.time - h->first_time) : 0.0f;
  }
}

void FeatureExtractor::record(const trace::Request& r) {
  auto [it, inserted] = history_.try_emplace(r.key, History{});
  History& h = it->second;
  if (inserted) {
    h.irts.assign(config_.num_irts > 1 ? config_.num_irts - 1 : 1, kNaN);
    h.first_time = r.time;
  } else {
    h.irts[h.ring_pos] = log1p_seconds(r.time - h.last_time);
    h.ring_pos = (h.ring_pos + 1) % h.irts.size();
  }
  h.last_time = r.time;
  h.size = r.size;
  ++h.count;
}

void FeatureExtractor::prune_older_than(trace::Time horizon) {
  for (auto it = history_.begin(); it != history_.end();) {
    if (it->second.last_time < horizon) {
      it = history_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t FeatureExtractor::memory_bytes() const noexcept {
  const std::size_t per_entry = sizeof(trace::Key) + sizeof(History) +
                                (config_.num_irts - 1) * sizeof(float) +
                                2 * sizeof(void*);
  return history_.size() * per_entry;
}

}  // namespace lhr::ml
