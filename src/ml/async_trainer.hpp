// Background GBDT training for LHR's asynchronous retraining path (the
// paper's prototype trains "in a separate thread", §6; Table 3's latency
// numbers depend on the request path never blocking on a full fit).
//
// One dedicated trainer thread accepts at most one batch at a time. The
// caller keeps serving predictions from its current model while the trainer
// fits a fresh one; when the fit finishes, `result_ready()` flips (a
// lock-free flag, safe to poll per request) and the caller swaps the new
// model in with `collect()` — an O(shared_ptr) operation, so the only
// foreground cost of retraining is the batch snapshot and the pointer swap.
//
// The result is a CompiledModel: the trainer builds the FlatForest
// inference representation on its own thread, after the fit and before the
// result is published, so forest compilation never stalls the request path
// either — the caller always swaps in a ready-to-score object.
//
// Thread-safety: submit/collect/result_ready/busy may be called from one
// caller thread concurrently with the trainer thread. The trainer only ever
// touches the in-flight batch and the model under construction, never the
// caller's live model, so concurrent predict() on the old model is race-free
// by construction (async_train_test runs this under TSan).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ml/flat_forest.hpp"
#include "ml/gbdt.hpp"

namespace lhr::util {
class ThreadPool;
}

namespace lhr::ml {

class AsyncTrainer {
 public:
  /// `fit_threads` is the intra-fit parallelism: the trainer thread plus a
  /// persistent inner pool of fit_threads-1 workers (see Gbdt::fit).
  explicit AsyncTrainer(std::size_t fit_threads = 1);
  ~AsyncTrainer();

  AsyncTrainer(const AsyncTrainer&) = delete;
  AsyncTrainer& operator=(const AsyncTrainer&) = delete;

  /// Hands a training batch to the background thread. Returns false — and
  /// leaves the arguments untouched — when a previous training is still in
  /// flight or its result has not been collected yet.
  bool submit(Dataset&& x, std::vector<float>&& y, const GbdtConfig& config);

  /// Lock-free: a finished model is waiting to be collected.
  [[nodiscard]] bool result_ready() const noexcept {
    return ready_.load(std::memory_order_acquire);
  }

  /// True from a successful submit() until collect() takes the result (or
  /// the fit failed). While busy, requests are being served by a stale model.
  [[nodiscard]] bool busy() const noexcept {
    return busy_.load(std::memory_order_acquire);
  }

  /// Takes the finished model (with its FlatForest already compiled); null
  /// when none is ready.
  [[nodiscard]] std::shared_ptr<const CompiledModel> collect();

  /// Blocks until the in-flight training (if any) has finished; the result,
  /// if successful, is then available via collect().
  void wait();

  /// Completed background fits.
  [[nodiscard]] std::size_t completed() const;
  /// Fits that threw (bad batch); the model is left unchanged.
  [[nodiscard]] std::size_t failed() const;
  /// Total background fit wall-clock, and the most recent fit's.
  [[nodiscard]] double background_seconds() const;
  [[nodiscard]] double last_train_seconds() const;

  /// All trainer statistics taken under one lock acquisition. Report
  /// emission must use this instead of the individual accessors above:
  /// calling them one by one lets the trainer thread finish a fit between
  /// reads, yielding e.g. completed = 3 paired with the wall-clock of 4
  /// fits — an inconsistent line in the output (async_train_test covers
  /// this under TSan).
  struct Stats {
    std::size_t completed = 0;
    std::size_t failed = 0;
    double background_seconds = 0.0;
    double last_train_seconds = 0.0;
  };
  [[nodiscard]] Stats stats() const;
  /// Approximate heap held by the in-flight batch / uncollected model, for
  /// metadata accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return pending_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void trainer_loop();

  struct Pending {
    Dataset x;
    std::vector<float> y;
    GbdtConfig config;
  };

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< trainer waits for a batch
  std::condition_variable done_cv_;  ///< wait() waits for fit completion
  bool has_work_ = false;
  bool stopping_ = false;
  Pending pending_;
  std::shared_ptr<const CompiledModel> result_;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  double background_seconds_ = 0.0;
  double last_train_seconds_ = 0.0;

  std::atomic<bool> ready_{false};
  std::atomic<bool> busy_{false};
  std::atomic<std::size_t> pending_bytes_{0};

  std::unique_ptr<util::ThreadPool> fit_pool_;
  std::thread worker_;  ///< last member: starts after everything above exists
};

}  // namespace lhr::ml
