#include "ml/simd_dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lhr::ml::simd {

bool avx2_compiled() noexcept {
#if defined(LHR_FOREST_AVX2)
  return true;
#else
  return false;
#endif
}

bool avx2_runtime() noexcept {
#if defined(LHR_FOREST_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace {

/// Encodes "no override" as -1, else the forced Level. Relaxed atomics: the
/// hook is documented single-threaded-only; the atomic just keeps TSan quiet
/// when forests are scored on worker threads after the force.
std::atomic<int> g_forced{-1};

Level env_level() noexcept {
  const bool hw = avx2_runtime();
  const char* env = std::getenv("LHR_SIMD");
  if (env != nullptr && std::strcmp(env, "0") == 0) return Level::kScalar;
  if (env != nullptr && std::strcmp(env, "1") == 0) {
    if (hw) return Level::kAvx2;
    // The CI matrix runs the whole suite with LHR_SIMD=1; on a host without
    // AVX2 that leg degrades to scalar, loudly, instead of dying.
    std::fprintf(stderr,
                 "lhr: LHR_SIMD=1 requested but AVX2 is unavailable "
                 "(compiled_in=%d, cpu=%d); falling back to scalar scoring\n",
                 avx2_compiled() ? 1 : 0, 0);
    return Level::kScalar;
  }
  return hw ? Level::kAvx2 : Level::kScalar;
}

}  // namespace

Level active_level() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const auto level = static_cast<Level>(forced);
    if (level == Level::kAvx2 && !avx2_runtime()) return Level::kScalar;
    return level;
  }
  static const Level resolved = env_level();  // env + cpuid read once
  return resolved;
}

const char* level_name(Level level) noexcept {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

void force_level(std::optional<Level> level) noexcept {
  g_forced.store(level ? static_cast<int>(*level) : -1,
                 std::memory_order_relaxed);
}

}  // namespace lhr::ml::simd
