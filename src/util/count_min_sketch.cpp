#include "util/count_min_sketch.hpp"

#include <algorithm>
#include <bit>

#include "util/hash.hpp"

namespace lhr::util {

namespace {
constexpr std::uint64_t kNibbleMask = 0xfULL;
}  // namespace

CountMinSketch::CountMinSketch(std::size_t counters, std::uint64_t sample_size)
    : sample_size_(std::max<std::uint64_t>(sample_size, 16)) {
  counters = std::max<std::size_t>(counters, 16);
  const std::size_t per_row = std::bit_ceil(counters);
  mask_ = per_row - 1;
  // 16 nibbles per 64-bit word.
  table_.assign(kRows * (per_row + 15) / 16, 0);
}

std::size_t CountMinSketch::slot(std::uint64_t key, int row) const noexcept {
  const std::uint64_t h = mix64(key ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(row) + 1)));
  const std::size_t col = static_cast<std::size_t>(h) & mask_;
  return static_cast<std::size_t>(row) * (mask_ + 1) + col;
}

std::uint32_t CountMinSketch::read_counter(std::size_t slot_index) const noexcept {
  const std::uint64_t word = table_[slot_index >> 4];
  const int shift = static_cast<int>((slot_index & 15) * 4);
  return static_cast<std::uint32_t>((word >> shift) & kNibbleMask);
}

void CountMinSketch::increment(std::uint64_t key) {
  // Conservative update: only bump counters equal to the current minimum,
  // which tightens the overestimate.
  std::uint32_t min_val = 15;
  std::size_t slots[kRows];
  for (int r = 0; r < kRows; ++r) {
    slots[r] = slot(key, r);
    min_val = std::min(min_val, read_counter(slots[r]));
  }
  if (min_val < 15) {
    for (int r = 0; r < kRows; ++r) {
      const std::size_t s = slots[r];
      if (read_counter(s) == min_val) {
        std::uint64_t& word = table_[s >> 4];
        const int shift = static_cast<int>((s & 15) * 4);
        word += 1ULL << shift;
      }
    }
  }
  if (++events_ >= sample_size_) age();
}

std::uint32_t CountMinSketch::estimate(std::uint64_t key) const {
  std::uint32_t min_val = 15;
  for (int r = 0; r < kRows; ++r) {
    min_val = std::min(min_val, read_counter(slot(key, r)));
  }
  return min_val;
}

void CountMinSketch::age() {
  // Halve each 4-bit counter in parallel within every word:
  // (word >> 1) keeps the high bit of the neighbour out via the 0x7 mask.
  for (std::uint64_t& word : table_) {
    word = (word >> 1) & 0x7777777777777777ULL;
  }
  events_ = 0;
}

}  // namespace lhr::util
