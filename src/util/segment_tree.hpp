// Segment tree with range-add / range-max over a fixed-size array.
//
// Substrate for the PFOO-U style achievable offline schedule (opt/pfoo_u):
// admitting a reuse interval [i, j) adds `size` bytes to every time slot in
// the interval, and feasibility is "range max + size <= capacity".
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lhr::util {

/// Lazy-propagation segment tree: range add, range max, O(log n) each.
template <typename T>
class SegmentTree {
 public:
  explicit SegmentTree(std::size_t size)
      : size_(std::max<std::size_t>(size, 1)),
        max_(4 * size_, T{}),
        lazy_(4 * size_, T{}) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Adds `delta` to every element in [lo, hi] (inclusive, 0-based).
  void range_add(std::size_t lo, std::size_t hi, T delta) {
    assert(lo <= hi && hi < size_);
    add(1, 0, size_ - 1, lo, hi, delta);
  }

  /// Maximum over [lo, hi] (inclusive).
  [[nodiscard]] T range_max(std::size_t lo, std::size_t hi) const {
    assert(lo <= hi && hi < size_);
    return query(1, 0, size_ - 1, lo, hi);
  }

  [[nodiscard]] T global_max() const { return max_[1] + lazy_[1]; }

 private:
  void add(std::size_t node, std::size_t node_lo, std::size_t node_hi, std::size_t lo,
           std::size_t hi, T delta) {
    if (hi < node_lo || node_hi < lo) return;
    if (lo <= node_lo && node_hi <= hi) {
      lazy_[node] += delta;
      return;
    }
    const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
    add(2 * node, node_lo, mid, lo, hi, delta);
    add(2 * node + 1, mid + 1, node_hi, lo, hi, delta);
    max_[node] = std::max(max_[2 * node] + lazy_[2 * node],
                          max_[2 * node + 1] + lazy_[2 * node + 1]);
  }

  [[nodiscard]] T query(std::size_t node, std::size_t node_lo, std::size_t node_hi,
                        std::size_t lo, std::size_t hi) const {
    if (lo <= node_lo && node_hi <= hi) return max_[node] + lazy_[node];
    const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
    T result{};
    bool any = false;
    if (lo <= mid) {
      result = query(2 * node, node_lo, mid, lo, hi);
      any = true;
    }
    if (hi > mid) {
      const T right = query(2 * node + 1, mid + 1, node_hi, lo, hi);
      result = any ? std::max(result, right) : right;
    }
    return result + lazy_[node];
  }

  std::size_t size_;
  std::vector<T> max_;          // max of subtree, *excluding* own pending lazy
  std::vector<T> lazy_;         // pending add for entire subtree
};

}  // namespace lhr::util
