// Deterministic, fast pseudo-random number generation for simulations.
//
// All stochastic components in this repository (workload generators, sampled
// eviction, subsampled training) draw from SplitMix64/Xoshiro256** so that
// every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace lhr::util {

/// SplitMix64: used to seed Xoshiro and as a standalone mixer.
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256**: general-purpose 64-bit generator with 2^256-1 period.
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// used with <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method,
  /// simplified: acceptable bias < 2^-64 for simulation purposes).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const auto x = (*this)();
    const auto hi =
        static_cast<std::uint64_t>((static_cast<unsigned __int128>(x) * bound) >> 64);
    return hi;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace lhr::util
