#include "util/perf_counters.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace lhr::util {

#if defined(__linux__)

namespace {

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // user-space hot path only; also lowers the
  attr.exclude_hv = 1;      // perf_event_paranoid bar inside containers
  attr.inherit = 1;         // replay worker threads count too
  // TOTAL_TIME_ENABLED/RUNNING let us scale the count when the kernel
  // multiplexes the PMU across more events than it has slots.
  attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(::syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                    /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL));
}

std::uint64_t read_scaled(int fd, bool* ok) {
  std::uint64_t buf[3] = {0, 0, 0};  // value, time_enabled, time_running
  if (fd < 0 || ::read(fd, buf, sizeof(buf)) != static_cast<ssize_t>(sizeof(buf))) {
    if (ok != nullptr) *ok = false;
    return 0;
  }
  if (buf[2] == 0) return 0;  // never scheduled onto the PMU
  if (buf[1] == buf[2]) return buf[0];
  const long double scale =
      static_cast<long double>(buf[1]) / static_cast<long double>(buf[2]);
  return static_cast<std::uint64_t>(static_cast<long double>(buf[0]) * scale);
}

}  // namespace

PerfCounters::PerfCounters() {
  cycles_fd_ = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  llc_fd_ = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  available_ = cycles_fd_ >= 0 && llc_fd_ >= 0;
  if (!available_) {
    // All or nothing: a cycles column without the misses column (or vice
    // versa) invites apples-to-oranges comparisons across hosts.
    if (cycles_fd_ >= 0) ::close(cycles_fd_);
    if (llc_fd_ >= 0) ::close(llc_fd_);
    cycles_fd_ = llc_fd_ = -1;
  }
}

PerfCounters::~PerfCounters() {
  if (cycles_fd_ >= 0) ::close(cycles_fd_);
  if (llc_fd_ >= 0) ::close(llc_fd_);
}

void PerfCounters::start() noexcept {
  if (!available_) return;
  ::ioctl(cycles_fd_, PERF_EVENT_IOC_RESET, 0);
  ::ioctl(llc_fd_, PERF_EVENT_IOC_RESET, 0);
  ::ioctl(cycles_fd_, PERF_EVENT_IOC_ENABLE, 0);
  ::ioctl(llc_fd_, PERF_EVENT_IOC_ENABLE, 0);
}

void PerfCounters::stop() noexcept {
  if (!available_) return;
  ::ioctl(cycles_fd_, PERF_EVENT_IOC_DISABLE, 0);
  ::ioctl(llc_fd_, PERF_EVENT_IOC_DISABLE, 0);
}

PerfReading PerfCounters::read() const noexcept {
  PerfReading r;
  if (!available_) return r;
  bool ok = true;
  r.cycles = read_scaled(cycles_fd_, &ok);
  r.llc_misses = read_scaled(llc_fd_, &ok);
  r.valid = ok;
  return r;
}

#else  // !__linux__

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() noexcept {}
void PerfCounters::stop() noexcept {}
PerfReading PerfCounters::read() const noexcept { return {}; }

#endif

}  // namespace lhr::util
