#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lhr::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

QuantileHistogram::QuantileHistogram(double min_value, double max_value,
                                     std::size_t buckets_per_decade) {
  min_value = std::max(min_value, 1e-30);
  max_value = std::max(max_value, min_value * 10.0);
  log_min_ = std::log10(min_value);
  log_step_ = 1.0 / static_cast<double>(buckets_per_decade);
  inv_log_step_ = static_cast<double>(buckets_per_decade);
  const double decades = std::log10(max_value) - log_min_;
  counts_.assign(static_cast<std::size_t>(std::ceil(decades * inv_log_step_)) + 2, 0);
}

std::size_t QuantileHistogram::bucket_of(double value) const noexcept {
  if (!(value > 0.0)) return 0;
  const double pos = (std::log10(value) - log_min_) * inv_log_step_;
  if (pos <= 0.0) return 0;
  const auto b = static_cast<std::size_t>(pos) + 1;
  return std::min(b, counts_.size() - 1);
}

double QuantileHistogram::bucket_upper_edge(std::size_t b) const noexcept {
  return std::pow(10.0, log_min_ + static_cast<double>(b) * log_step_);
}

void QuantileHistogram::add(double value) noexcept {
  ++counts_[bucket_of(value)];
  ++total_;
  sum_ += value;
}

bool QuantileHistogram::same_layout(const QuantileHistogram& other) const noexcept {
  return log_min_ == other.log_min_ && log_step_ == other.log_step_ &&
         counts_.size() == other.counts_.size();
}

void QuantileHistogram::merge(const QuantileHistogram& other) {
  if (!same_layout(other)) {
    throw std::invalid_argument("QuantileHistogram::merge: bucket layouts differ");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_ += other.sum_;
}

void QuantileHistogram::add_bucket_counts(std::span<const std::uint64_t> counts,
                                          double sum) {
  if (counts.size() != counts_.size()) {
    throw std::invalid_argument(
        "QuantileHistogram::add_bucket_counts: bucket count mismatch");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += counts[b];
    total_ += counts[b];
  }
  sum_ += sum;
}

double QuantileHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  // NaN compares false against everything, so order the clamp to pin it to
  // 0 (minimum estimate) instead of letting it fall through std::clamp
  // (whose behaviour with a NaN value is unspecified).
  q = q > 0.0 ? std::min(q, 1.0) : 0.0;
  const auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
  std::uint64_t acc = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    acc += counts_[b];
    if (acc >= target && counts_[b] > 0) return bucket_upper_edge(b);
  }
  return bucket_upper_edge(counts_.size() - 1);
}

void QuantileHistogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
}

double exact_percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    throw std::invalid_argument("exact_percentile: empty sample");
  }
  if (std::isnan(q)) {
    throw std::invalid_argument("exact_percentile: q is NaN");
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double raw = std::ceil(q * static_cast<double>(values.size())) - 1.0;
  const double clamped = std::clamp(raw, 0.0, static_cast<double>(values.size() - 1));
  return values[static_cast<std::size_t>(clamped)];
}

}  // namespace lhr::util
