#include "util/subprocess.hpp"

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

extern char** environ;

namespace lhr::util {

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    throw std::runtime_error(
        std::string("self_exe_path: readlink(/proc/self/exe) failed: ") +
        std::strerror(errno));
  }
  return {buf, static_cast<std::size_t>(n)};
}

ChildProcess spawn_with_pipe(const std::string& exe,
                             const std::vector<std::string>& args,
                             int child_write_fd) {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw std::runtime_error(std::string("spawn_with_pipe: pipe failed: ") +
                             std::strerror(errno));
  }

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  // Child-side descriptor plumbing: the write end lands at `child_write_fd`
  // and both original pipe descriptors disappear, so EOF on the parent's
  // read end fires exactly when the child's last write handle is gone.
  // Collision guard: pipe() hands out the lowest free descriptors, which in
  // a freshly-exec'd parent are exactly 3 and 4 — i.e. fds[0] is often
  // child_write_fd itself. The dup2 already clobbers (and thus closes) that
  // slot in the child, so closing it again would destroy the write end.
  posix_spawn_file_actions_adddup2(&actions, fds[1], child_write_fd);
  if (fds[0] != child_write_fd) {
    posix_spawn_file_actions_addclose(&actions, fds[0]);
  }
  if (fds[1] != child_write_fd) {
    posix_spawn_file_actions_addclose(&actions, fds[1]);
  }

  // posix_spawn's argv is char* const[]; it never writes through the
  // pointers, so the const_casts are safe.
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, exe.c_str(), &actions, nullptr, argv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  if (rc != 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error("spawn_with_pipe: posix_spawn(" + exe +
                             ") failed: " + std::strerror(rc));
  }
  ::close(fds[1]);
  return ChildProcess{pid, fds[0]};
}

std::string read_fd_to_eof(int fd) {
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("read_fd_to_eof: read failed: ") +
                             std::strerror(errno));
  }
  return out;
}

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n > 0) {
      p += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

ExitStatus wait_child(pid_t pid) {
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r == pid) break;
    if (r < 0 && errno == EINTR) continue;
    throw std::runtime_error("wait_child: waitpid(" + std::to_string(pid) +
                             ") failed: " + std::strerror(errno));
  }
  ExitStatus es;
  if (WIFEXITED(status)) {
    es.exited = true;
    es.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    es.signal = WTERMSIG(status);
  }
  return es;
}

std::string ExitStatus::describe() const {
  if (exited) {
    return code == 0 ? std::string("exit 0")
                     : "exit code " + std::to_string(code);
  }
  if (signal != 0) {
    const char* name = ::strsignal(signal);
    std::string out = "killed by signal " + std::to_string(signal);
    if (name != nullptr) out += std::string(" (") + name + ")";
    return out;
  }
  return "unknown wait status";
}

}  // namespace lhr::util
