#include "util/density_index.hpp"

#include <algorithm>
#include <cmath>

namespace lhr::util {

DensityIndex::DensityIndex(double min_density, double max_density,
                           std::size_t buckets_per_decade)
    : log_min_(std::log10(std::max(min_density, 1e-300))),
      per_decade_(static_cast<double>(buckets_per_decade)) {
  const double decades = std::log10(std::max(max_density, min_density * 10.0)) - log_min_;
  bucket_count_ = static_cast<std::size_t>(std::ceil(decades * per_decade_)) + 2;
  bytes_by_bucket_.resize_cleared(bucket_count_);
}

std::size_t DensityIndex::bucket_of(double density) const noexcept {
  if (!(density > 0.0)) return 0;
  const double pos = (std::log10(density) - log_min_) * per_decade_;
  if (pos <= 0.0) return 0;
  return std::min(static_cast<std::size_t>(pos) + 1, bucket_count_ - 1);
}

void DensityIndex::upsert(std::uint64_t id, double density, std::uint64_t bytes) {
  const std::size_t bucket = bucket_of(density);
  auto [it, inserted] = items_.try_emplace(id, Item{bucket, bytes});
  if (!inserted) {
    bytes_by_bucket_.add(it->second.bucket, ~it->second.bytes + 1);  // subtract (mod 2^64)
    total_bytes_ -= it->second.bytes;
    it->second = Item{bucket, bytes};
  }
  bytes_by_bucket_.add(bucket, bytes);
  total_bytes_ += bytes;
}

void DensityIndex::erase(std::uint64_t id) {
  const auto it = items_.find(id);
  if (it == items_.end()) return;
  bytes_by_bucket_.add(it->second.bucket, ~it->second.bytes + 1);
  total_bytes_ -= it->second.bytes;
  items_.erase(it);
}

std::uint64_t DensityIndex::bytes_above(double density) const {
  const std::size_t bucket = bucket_of(density);
  if (bucket >= bucket_count_ - 1) return 0;
  // Buckets are ascending in density; strictly-above = (bucket, last].
  return bytes_by_bucket_.range_sum(bucket + 1, bucket_count_ - 1);
}

bool DensityIndex::in_prefix(std::uint64_t id, std::uint64_t capacity_bytes) const {
  const auto it = items_.find(id);
  if (it == items_.end()) return false;
  const std::size_t bucket = it->second.bucket;
  std::uint64_t above = 0;
  if (bucket + 1 <= bucket_count_ - 1) {
    above = bytes_by_bucket_.range_sum(bucket + 1, bucket_count_ - 1);
  }
  return above < capacity_bytes;
}

std::size_t DensityIndex::memory_bytes() const noexcept {
  // Fenwick array + hash-map nodes (approximate node footprint).
  return bucket_count_ * sizeof(std::uint64_t) +
         items_.size() * (sizeof(std::uint64_t) + sizeof(Item) + 2 * sizeof(void*));
}

}  // namespace lhr::util
