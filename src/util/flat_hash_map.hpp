// Open-addressing hash map for the per-request hot paths.
//
// std::unordered_map pays one heap allocation plus two pointer
// indirections per lookup (bucket array -> node -> next) and scatters nodes
// across the heap, so every find on the request path is a couple of
// dependent cache misses. This map stores entries inline in one flat,
// power-of-two-sized array probed linearly, which turns the common lookup
// into a single indexed load plus a short sequential scan — the layout
// Table 3's per-request latency budget wants.
//
// Design points:
//   * Linear probing over a power-of-two capacity (mask, no modulo). The
//     default hasher finishes keys with util::mix64, because std::hash on
//     libstdc++ is the identity for integers and CDN content ids are not
//     uniformly distributed.
//   * Tombstone-free backward-shift deletion: erase() re-packs the probe
//     cluster after the hole instead of leaving DELETED markers, so probe
//     sequences never grow with churn and load stays exactly size/capacity.
//   * Max load factor 3/4, growth by doubling; entries live in
//     std::vector storage (Key and Value must be default-constructible and
//     move-assignable — true for every per-request map in this repo).
//
// Iteration visits entries in slot order, which is hash-dependent — exactly
// as unspecified as unordered_map's order. Callers that iterate (window
// pruning, density refreshes) must already be order-independent, and are.
//
// Erase-during-iteration: `it = map.erase(it)` works like unordered_map for
// predicate sweeps, with one documented wrinkle inherited from backward
// shifting: an entry whose cluster wraps the end of the table can be
// visited twice (never skipped). Predicate sweeps are therefore required to
// be idempotent — erase entries the predicate rejects, leave the rest —
// which all in-repo sweeps are. util_test fuzzes this against
// std::unordered_map.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/hash.hpp"
#include "util/prefetch.hpp"

namespace lhr::util {

/// Default hasher: the mix64 finalizer (invertible, full-avalanche).
struct MixHash {
  [[nodiscard]] std::size_t operator()(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(mix64(key));
  }
};

template <typename Key, typename Value, typename Hash = MixHash>
class FlatHashMap {
 public:
  /// Entry layout mirrors std::pair so call sites keep `it->first` /
  /// `it->second` and structured bindings. `first` stays non-const so the
  /// map can move entries during rehash and backward-shift deletion; do not
  /// mutate it through an iterator.
  struct Entry {
    Key first{};
    Value second{};
  };
  using value_type = Entry;

  template <bool Const>
  class Iter {
    using MapPtr = std::conditional_t<Const, const FlatHashMap*, FlatHashMap*>;
    using Ref = std::conditional_t<Const, const Entry&, Entry&>;
    using Ptr = std::conditional_t<Const, const Entry*, Entry*>;

   public:
    Iter() = default;
    [[nodiscard]] Ref operator*() const { return map_->slots_[index_]; }
    [[nodiscard]] Ptr operator->() const { return &map_->slots_[index_]; }
    Iter& operator++() {
      ++index_;
      skip_empty();
      return *this;
    }
    friend bool operator==(const Iter&, const Iter&) = default;

    // iterator -> const_iterator conversion.
    operator Iter<true>() const
      requires(!Const)
    {
      return Iter<true>(map_, index_);
    }

   private:
    friend class FlatHashMap;
    Iter(MapPtr map, std::size_t index) : map_(map), index_(index) {}
    void skip_empty() {
      while (index_ < map_->used_.size() && !map_->used_[index_]) ++index_;
    }

    MapPtr map_ = nullptr;
    std::size_t index_ = 0;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatHashMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  [[nodiscard]] iterator begin() {
    iterator it(this, 0);
    it.skip_empty();
    return it;
  }
  [[nodiscard]] iterator end() { return iterator(this, slots_.size()); }
  [[nodiscard]] const_iterator begin() const {
    const_iterator it(this, 0);
    it.skip_empty();
    return it;
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, slots_.size());
  }

  [[nodiscard]] iterator find(const Key& key) {
    const std::size_t i = find_index(key);
    return i == kNotFound ? end() : iterator(this, i);
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const std::size_t i = find_index(key);
    return i == kNotFound ? end() : const_iterator(this, i);
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find_index(key) != kNotFound;
  }

  /// Prefetches `key`'s home slot (both the occupancy byte and the entry
  /// line). Call it one step ahead of find()/operator[] — e.g. while
  /// processing eviction candidate s, prefetch candidate s+1 — so the probe
  /// that follows starts from a warm line. Purely a hint: probe order and
  /// results are untouched.
  void prefetch(const Key& key) const noexcept {
    if (slots_.empty()) return;
    const std::size_t i = home_of(key);
    prefetch_read(&used_[i]);
    prefetch_read(&slots_[i]);
  }

  [[nodiscard]] Value& at(const Key& key) {
    const std::size_t i = find_index(key);
    if (i == kNotFound) throw std::out_of_range("FlatHashMap::at: missing key");
    return slots_[i].second;
  }
  [[nodiscard]] const Value& at(const Key& key) const {
    const std::size_t i = find_index(key);
    if (i == kNotFound) throw std::out_of_range("FlatHashMap::at: missing key");
    return slots_[i].second;
  }

  /// Inserts Value(args...) under `key` unless present (unordered_map
  /// semantics: value-initialized with no args, untouched when found).
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    grow_if_needed();
    std::size_t i = home_of(key);
    // Occupancy bytes and entries live on different cache lines: start the
    // entry-line fill while the used_ byte is checked (see find_index).
    prefetch_read(&slots_[i]);
    while (used_[i]) {
      if (slots_[i].first == key) return {iterator(this, i), false};
      i = (i + 1) & mask_;
    }
    slots_[i].first = key;
    slots_[i].second = Value(std::forward<Args>(args)...);
    used_[i] = 1;
    ++size_;
    return {iterator(this, i), true};
  }

  Value& operator[](const Key& key) { return try_emplace(key).first->second; }

  std::pair<iterator, bool> insert_or_assign(const Key& key, Value value) {
    auto [it, inserted] = try_emplace(key);
    it->second = std::move(value);
    return {it, inserted};
  }

  /// Backward-shift deletion: re-packs the probe cluster after the hole so
  /// no tombstone is left behind. Returns an iterator positioned at the
  /// erased slot (it may now hold an entry shifted back from later in the
  /// cluster), advanced to the next occupied slot when the hole stayed
  /// empty — the `it = map.erase(it)` sweep pattern.
  iterator erase(const_iterator pos) {
    std::size_t hole = pos.index_;
    std::size_t i = hole;
    for (;;) {
      i = (i + 1) & mask_;
      if (!used_[i]) break;
      // The entry at i can fill the hole iff the hole lies on its probe
      // path, i.e. its home bucket is cyclically at or before the hole.
      const std::size_t home = home_of(slots_[i].first);
      if (((i - home) & mask_) >= ((i - hole) & mask_)) {
        slots_[hole] = std::move(slots_[i]);
        hole = i;
      }
    }
    slots_[hole] = Entry{};  // release resources held by the vacated slot
    used_[hole] = 0;
    --size_;
    iterator next(this, pos.index_);
    next.skip_empty();
    return next;
  }

  std::size_t erase(const Key& key) {
    const std::size_t i = find_index(key);
    if (i == kNotFound) return 0;
    erase(const_iterator(this, i));
    return 1;
  }

  void clear() {
    slots_.clear();
    used_.clear();
    mask_ = 0;
    size_ = 0;
  }

  /// Pre-sizes the table for `n` entries without exceeding the load cap.
  void reserve(std::size_t n) {
    std::size_t cap = slots_.empty() ? kMinCapacity : slots_.size();
    while (n * 4 > cap * 3) cap *= 2;
    if (cap > slots_.size()) rehash_to(cap);
  }

  /// Actual heap footprint of the flat table (entries stored inline).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots_.size() * (sizeof(Entry) + sizeof(std::uint8_t));
  }

 private:
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;  // power of two

  [[nodiscard]] std::size_t home_of(const Key& key) const {
    return Hash{}(key) & mask_;
  }

  [[nodiscard]] std::size_t find_index(const Key& key) const {
    if (slots_.empty()) return kNotFound;
    std::size_t i = home_of(key);
    // The probe reads used_[i] (dense byte array) and then slots_[i].first
    // (a separate, much sparser array — almost always a different line).
    // Prefetching the entry line up front overlaps the two misses instead
    // of serializing them; linear probing means subsequent slots are
    // covered by the same line or the hardware stride prefetcher.
    prefetch_read(&slots_[i]);
    while (used_[i]) {
      if (slots_[i].first == key) return i;
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash_to(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash_to(slots_.size() * 2);
    }
  }

  void rehash_to(std::size_t new_capacity) {
    std::vector<Entry> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(new_capacity, Entry{});
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (std::size_t s = 0; s < old_slots.size(); ++s) {
      if (!old_used[s]) continue;
      std::size_t i = home_of(old_slots[s].first);
      while (used_[i]) i = (i + 1) & mask_;  // keys unique: no equality checks
      slots_[i] = std::move(old_slots[s]);
      used_[i] = 1;
    }
  }

  std::vector<Entry> slots_;
  std::vector<std::uint8_t> used_;  ///< separate byte array: probe scans stay dense
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lhr::util
