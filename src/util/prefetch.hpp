// Portable software-prefetch shim.
//
// The request-path data structures (FlatHashMap probes, the sampled-
// eviction candidate gathers) know their next dependent load one step
// before they need it; issuing a prefetch there overlaps the cache miss
// with the work in between instead of stalling on it. __builtin_prefetch
// compiles to prefetcht0 on x86 / prfm on arm and to nothing at all on
// compilers without the builtin, so callers never need an #ifdef.
#pragma once

namespace lhr::util {

/// Hints that `p` will be read soon (high temporal locality). A hint only:
/// never faults, never changes observable behaviour — util_test pins the
/// probe-sequence semantics of the prefetching FlatHashMap paths.
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace lhr::util
