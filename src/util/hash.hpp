// Non-cryptographic hashing used by the sketch/filter substrates.
#pragma once

#include <cstdint>
#include <string_view>

namespace lhr::util {

/// 64-bit FNV-1a over arbitrary bytes. Stable across platforms.
constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Strong 64-bit integer mixer (final stage of MurmurHash3 / SplitMix).
/// Used to derive independent hash functions h_i(x) = mix(x ^ seed_i).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Two independent hashes for double hashing: h_i = h1 + i * h2.
struct HashPair {
  std::uint64_t h1;
  std::uint64_t h2;
};

constexpr HashPair hash_pair(std::uint64_t key) noexcept {
  const std::uint64_t a = mix64(key ^ 0x9e3779b97f4a7c15ULL);
  const std::uint64_t b = mix64(key + 0x6a09e667f3bcc909ULL) | 1ULL;  // odd => coprime stride
  return {a, b};
}

}  // namespace lhr::util
