// Count-Min sketch with conservative update and periodic aging:
// the frequency substrate behind TinyLFU / W-TinyLFU (Caffeine's baseline,
// paper Appendix A.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lhr::util {

/// 4-bit-counter Count-Min sketch in the style of TinyLFU.
///
/// `increment` saturates at 15; when the total number of increments reaches
/// `sample_size`, every counter is halved ("reset" aging), which keeps the
/// sketch an estimate of *recent* frequency.
class CountMinSketch {
 public:
  /// `counters` is rounded up to a power of two; typical sizing is the number
  /// of cache entries × a small factor. `sample_size` controls the aging
  /// period (TinyLFU uses 10× the cache's entry count).
  CountMinSketch(std::size_t counters, std::uint64_t sample_size);

  void increment(std::uint64_t key);

  /// Estimated frequency in [0, 15] (min over rows).
  [[nodiscard]] std::uint32_t estimate(std::uint64_t key) const;

  /// Halve every counter; called automatically by increment() at the sample
  /// boundary but exposed for tests.
  void age();

  [[nodiscard]] std::uint64_t increments_since_age() const noexcept { return events_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return table_.size() * sizeof(std::uint64_t);
  }

 private:
  static constexpr int kRows = 4;

  [[nodiscard]] std::size_t slot(std::uint64_t key, int row) const noexcept;
  [[nodiscard]] std::uint32_t read_counter(std::size_t slot_index) const noexcept;

  std::size_t mask_;                 // counters per row - 1 (power of two)
  std::uint64_t sample_size_;
  std::uint64_t events_ = 0;
  std::vector<std::uint64_t> table_;  // kRows rows of 4-bit counters packed 16/word
};

}  // namespace lhr::util
