// Checked numeric parsing for CLI flags and environment knobs.
//
// Bare std::stod/std::atoll scattered across front ends either throw
// uncaught std::invalid_argument/std::out_of_range (stod) or silently
// return 0 on garbage (atoll) — both turn a typo'd flag into a crash or a
// wrong experiment. Every CLI/env numeric parse in the repository goes
// through these helpers instead: the whole token must parse (no trailing
// junk), doubles must be finite, and the throwing variants name the flag
// or variable plus the offending token so the error is actionable.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace lhr::util {

/// Parses the entire token as a finite double. std::nullopt on empty
/// input, trailing junk, overflow, or a non-finite value ("inf"/"nan").
[[nodiscard]] inline std::optional<double> parse_double(std::string_view text) {
  double value = 0.0;
  const char* end = text.data() + text.size();
  const auto [p, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || p != end || !std::isfinite(value)) return std::nullopt;
  return value;
}

/// Parses the entire token as an unsigned 64-bit integer. std::nullopt on
/// empty input, a sign, trailing junk, or overflow.
[[nodiscard]] inline std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [p, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || p != end) return std::nullopt;
  return value;
}

/// `parse_double` that throws std::invalid_argument naming the flag (or
/// env var) and the offending token.
[[nodiscard]] inline double require_double(std::string_view what, std::string_view text) {
  if (const auto value = parse_double(text)) return *value;
  throw std::invalid_argument(std::string(what) + ": invalid number '" +
                              std::string(text) + "'");
}

/// `parse_u64` that throws std::invalid_argument naming the flag (or env
/// var) and the offending token.
[[nodiscard]] inline std::uint64_t require_u64(std::string_view what,
                                               std::string_view text) {
  if (const auto value = parse_u64(text)) return *value;
  throw std::invalid_argument(std::string(what) + ": invalid unsigned integer '" +
                              std::string(text) + "'");
}

}  // namespace lhr::util
