// Minimal child-process plumbing for the process-parallel replay engine:
// posix_spawn a copy of the current binary with a pipe installed at a fixed
// descriptor, drain the pipe, and reap the child with a decodable status.
//
// Deliberately not a general subprocess library — no shell, no stdin/stdout
// capture, no signals sent. The worker protocol only needs "spawn with argv,
// read one stream to EOF, wait".
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace lhr::util {

/// Absolute path of the running executable (readlink of /proc/self/exe).
/// This is what the replay engine re-execs to get worker processes with the
/// exact same code, build flags, and sanitizer runtime as the parent.
/// Throws std::runtime_error if the link cannot be read.
[[nodiscard]] std::string self_exe_path();

/// Handle to a spawned child: its pid and the read end of its pipe. The
/// caller owns both — read `read_fd` to EOF, close it, then wait_child(pid).
struct ChildProcess {
  pid_t pid = -1;
  int read_fd = -1;
};

/// Spawns `exe` with argv {exe, args...} via posix_spawn. A fresh pipe's
/// write end is installed at descriptor `child_write_fd` in the child (the
/// original pipe fds are closed there), and the parent keeps only the read
/// end. The environment is inherited, so ASAN_OPTIONS/TSAN_OPTIONS and the
/// LHR_* knobs flow through to workers. Throws std::runtime_error on
/// pipe/spawn failure.
[[nodiscard]] ChildProcess spawn_with_pipe(const std::string& exe,
                                           const std::vector<std::string>& args,
                                           int child_write_fd);

/// Reads `fd` until EOF (EINTR-safe) and returns everything read. Does not
/// close the descriptor. A child that dies mid-write closes its end of the
/// pipe when the kernel tears the process down, so this never hangs on a
/// crashed worker — it just returns the truncated stream.
[[nodiscard]] std::string read_fd_to_eof(int fd);

/// Writes all of `data` to `fd` (EINTR-safe). Returns false on any other
/// write error (e.g. the parent closed the read end).
bool write_all(int fd, const void* data, std::size_t size);

/// Decoded waitpid status.
struct ExitStatus {
  bool exited = false;  ///< true when the child exited (vs. was signaled)
  int code = 0;         ///< exit code, valid when `exited`
  int signal = 0;       ///< terminating signal, valid when !`exited`

  [[nodiscard]] bool ok() const noexcept { return exited && code == 0; }
  /// Human-readable status for diagnostics: "exit 0", "exit code 2",
  /// "killed by signal 9 (Killed)".
  [[nodiscard]] std::string describe() const;
};

/// Blocking, EINTR-safe waitpid on one specific pid. Reaping by explicit pid
/// (rather than a SIGCHLD handler or wait(-1)) keeps the engine safe to use
/// from processes that host other children — gtest, google-benchmark, or a
/// future daemon mode. Throws std::runtime_error if waitpid fails outright.
[[nodiscard]] ExitStatus wait_child(pid_t pid);

}  // namespace lhr::util
