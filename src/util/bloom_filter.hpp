// Bloom filter: the admission substrate for B-LRU (paper §6.2, footnote 6)
// and the TinyLFU "doorkeeper".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lhr::util {

/// Classic Bloom filter over 64-bit keys with double hashing.
///
/// B-LRU uses it to suppress one-hit wonders: a content is only admitted on
/// its second occurrence within the filter's epoch. Periodic `clear()` bounds
/// staleness.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_items` at `false_positive_rate`.
  BloomFilter(std::size_t expected_items, double false_positive_rate);

  /// Inserts a key. Returns true if the key was (probably) already present,
  /// which is exactly the "seen before?" test admission filters need.
  bool insert(std::uint64_t key);

  /// Membership test without mutation.
  [[nodiscard]] bool contains(std::uint64_t key) const;

  /// Resets the filter to empty (starts a new epoch).
  void clear();

  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }
  [[nodiscard]] std::size_t hash_count() const noexcept { return hash_count_; }
  [[nodiscard]] std::size_t inserted() const noexcept { return inserted_; }

  /// Memory footprint in bytes (for the fairness accounting of §7.1).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return bits_.size() * sizeof(std::uint64_t);
  }

 private:
  [[nodiscard]] std::size_t bit_index(std::uint64_t key, std::size_t i) const noexcept;

  std::size_t bit_count_;
  std::size_t hash_count_;
  std::size_t inserted_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace lhr::util
