// Fenwick (binary indexed) tree over an arithmetic type.
//
// Substrate for HRO's density index: prefix sums of bytes per density bucket,
// plus a logarithmic "descend" search for the bucket where a running total
// crosses a target (the fractional-knapsack boundary).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace lhr::util {

template <typename T>
class FenwickTree {
 public:
  explicit FenwickTree(std::size_t size = 0) : tree_(size + 1, T{}) {}

  [[nodiscard]] std::size_t size() const noexcept { return tree_.size() - 1; }

  void resize_cleared(std::size_t size) { tree_.assign(size + 1, T{}); }

  /// Adds `delta` at 0-based index `i`.
  void add(std::size_t i, T delta) {
    assert(i < size());
    for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sum of elements [0, i] (0-based, inclusive).
  [[nodiscard]] T prefix_sum(std::size_t i) const {
    assert(i < size());
    T sum{};
    for (std::size_t j = i + 1; j > 0; j -= j & (~j + 1)) sum += tree_[j];
    return sum;
  }

  /// Sum of all elements.
  [[nodiscard]] T total() const {
    return size() == 0 ? T{} : prefix_sum(size() - 1);
  }

  /// Sum of elements [lo, hi] inclusive.
  [[nodiscard]] T range_sum(std::size_t lo, std::size_t hi) const {
    assert(lo <= hi && hi < size());
    const T upper = prefix_sum(hi);
    return lo == 0 ? upper : upper - prefix_sum(lo - 1);
  }

  /// Smallest 0-based index `i` such that prefix_sum(i) >= target, or size()
  /// if the total is below target. Requires all elements non-negative.
  [[nodiscard]] std::size_t lower_bound(T target) const {
    if (target <= T{}) return 0;
    std::size_t pos = 0;
    std::size_t step = 1;
    while (step * 2 <= size()) step *= 2;
    T acc{};
    for (; step > 0; step /= 2) {
      const std::size_t next = pos + step;
      if (next < tree_.size() && acc + tree_[next] < target) {
        pos = next;
        acc += tree_[next];
      }
    }
    return pos;  // 0-based index where the crossing happens
  }

 private:
  std::vector<T> tree_;
};

}  // namespace lhr::util
