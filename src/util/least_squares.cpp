#include "util/least_squares.hpp"

#include <algorithm>
#include <cmath>

namespace lhr::util {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;

  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.n = n;
  fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace lhr::util
