#include "util/bloom_filter.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash.hpp"

namespace lhr::util {

BloomFilter::BloomFilter(std::size_t expected_items, double false_positive_rate) {
  expected_items = std::max<std::size_t>(expected_items, 1);
  false_positive_rate = std::clamp(false_positive_rate, 1e-9, 0.5);
  const double ln2 = std::log(2.0);
  const double bits_per_item = -std::log(false_positive_rate) / (ln2 * ln2);
  bit_count_ = std::max<std::size_t>(
      64, static_cast<std::size_t>(std::ceil(bits_per_item * static_cast<double>(expected_items))));
  hash_count_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(bits_per_item * ln2)));
  bits_.assign((bit_count_ + 63) / 64, 0);
}

std::size_t BloomFilter::bit_index(std::uint64_t key, std::size_t i) const noexcept {
  const auto [h1, h2] = hash_pair(key);
  return static_cast<std::size_t>((h1 + i * h2) % bit_count_);
}

bool BloomFilter::insert(std::uint64_t key) {
  bool all_set = true;
  for (std::size_t i = 0; i < hash_count_; ++i) {
    const std::size_t bit = bit_index(key, i);
    std::uint64_t& word = bits_[bit >> 6];
    const std::uint64_t mask = 1ULL << (bit & 63);
    if ((word & mask) == 0) {
      all_set = false;
      word |= mask;
    }
  }
  if (!all_set) ++inserted_;
  return all_set;
}

bool BloomFilter::contains(std::uint64_t key) const {
  for (std::size_t i = 0; i < hash_count_; ++i) {
    const std::size_t bit = bit_index(key, i);
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  inserted_ = 0;
}

}  // namespace lhr::util
