// A fixed-size thread pool (no work stealing, no task priorities).
//
// The experiment runner (src/runner) schedules independent simulation jobs
// onto this pool; each job writes into its own pre-allocated result slot, so
// the pool needs nothing fancier than submit + wait_idle. Tasks may be
// submitted from any thread, including from inside a running task.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lhr::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
      ++unfinished_;
    }
    task_ready_.notify_one();
  }

  /// Blocks until every submitted task has finished. The pool stays usable;
  /// further submit/wait_idle rounds are allowed.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return unfinished_ == 0; });
  }

  /// Reasonable default parallelism for this machine.
  [[nodiscard]] static std::size_t hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (--unfinished_ == 0) idle_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t unfinished_ = 0;  ///< queued + currently running tasks
  bool stopping_ = false;
};

/// A waitable subset of tasks on a shared ThreadPool.
///
/// ThreadPool::wait_idle blocks until *every* queued task finishes, which is
/// wrong when independent clients (e.g. a background trainer and the bench
/// runner) share one pool. A TaskGroup counts only its own tasks, so each
/// client can wait for just the work it submitted. With a null pool the
/// group degrades to running tasks inline on the calling thread, which lets
/// parallel code keep a single code path for the sequential case.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Not copyable/movable: tasks capture `this`.
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() { wait(); }

  /// Runs `task` on the pool (or inline when the group has no pool).
  /// Tasks must not throw.
  void run(std::function<void()> task) {
    if (pool_ == nullptr) {
      task();
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++pending_;
    }
    pool_->submit([this, task = std::move(task)] {
      task();
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) done_.notify_all();
      }
    });
  }

  /// Blocks until every task run() through this group has finished.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
};

}  // namespace lhr::util
