// Hardware performance counters via perf_event_open (Linux only).
//
// The saturation bench wants to say not just "the knee is at 480k req/s"
// but *why*: cycles per request and LLC misses per request tell apart a
// compute-bound hot path from a memory-bound one (the whole point of the
// SIMD + prefetch work is moving the second toward the first). This wraps
// the raw syscall the way vigarov's pebs harness does — one fd per counter,
// read before/after the measured region, scaled by time_enabled /
// time_running when the kernel multiplexed the PMU.
//
// Graceful fallback everywhere: perf_event_open is often unavailable
// (non-Linux, containers, perf_event_paranoid >= 2, missing PMU). Then
// available() is false, readings return zeros, and callers print "-"
// columns instead of dying. Nothing in the request path depends on this.
#pragma once

#include <cstdint>

namespace lhr::util {

/// One measured region's counter deltas (zeros when unavailable).
struct PerfReading {
  std::uint64_t cycles = 0;      ///< PERF_COUNT_HW_CPU_CYCLES, scaled
  std::uint64_t llc_misses = 0;  ///< PERF_COUNT_HW_CACHE_MISSES, scaled
  bool valid = false;
};

/// Scoped counter pair: construct, start(), run the region, stop(), read().
/// Counters follow this thread (and its children started after start()
/// inherit them via PERF_FLAG inherit), so wrap the replay call itself.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when both counters opened; false → start/stop/read are no-ops.
  [[nodiscard]] bool available() const noexcept { return available_; }

  void start() noexcept;  ///< resets and enables the counters
  void stop() noexcept;   ///< disables them

  /// Deltas of the last start()/stop() window, multiplex-scaled.
  [[nodiscard]] PerfReading read() const noexcept;

 private:
  int cycles_fd_ = -1;
  int llc_fd_ = -1;
  bool available_ = false;
};

}  // namespace lhr::util
