// Log-bucketed density index: the data structure behind HRO (paper §3.2,
// Appendix A.1).
//
// HRO classifies a request for content i as a hit iff i lies inside the
// fractional-knapsack prefix when all contents are sorted by hazard density
// ζ̃_i = λ_i / s_i in decreasing order and the prefix is filled up to the
// cache capacity M. Maintaining an exactly sorted structure costs O(log n)
// with large constants; instead we quantize densities into log-spaced
// buckets and keep a Fenwick tree of byte totals per bucket. The query
// "how many bytes have density strictly above d?" is then one prefix sum.
//
// Quantization error is bounded by one bucket width (default 1/64 decade,
// i.e. ~3.7% in density), far below the noise of the Poisson rate estimate
// itself. Ties within a bucket are resolved in the item's favour, preserving
// the upper-bound direction of the HRO classification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "util/fenwick_tree.hpp"

namespace lhr::util {

class DensityIndex {
 public:
  /// Densities are clamped to [min_density, max_density] before bucketing.
  explicit DensityIndex(double min_density = 1e-24, double max_density = 1e12,
                        std::size_t buckets_per_decade = 64);

  /// Inserts or updates an item. `bytes` must be positive.
  void upsert(std::uint64_t id, double density, std::uint64_t bytes);

  /// Removes an item if present.
  void erase(std::uint64_t id);

  /// Total bytes of items whose density bucket is strictly above the bucket
  /// of `density`, excluding item `exclude_id` if it lies there.
  [[nodiscard]] std::uint64_t bytes_above(double density) const;

  /// True iff the item currently stored with `id` intersects the capacity-M
  /// knapsack prefix: bytes strictly denser than it (excluding itself) < M.
  [[nodiscard]] bool in_prefix(std::uint64_t id, std::uint64_t capacity_bytes) const;

  [[nodiscard]] std::size_t item_count() const noexcept { return items_.size(); }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  [[nodiscard]] std::size_t bucket_of(double density) const noexcept;

  struct Item {
    std::size_t bucket;
    std::uint64_t bytes;
  };

  double log_min_;
  double per_decade_;
  std::size_t bucket_count_;
  FenwickTree<std::uint64_t> bytes_by_bucket_;
  std::unordered_map<std::uint64_t, Item> items_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace lhr::util
