// Streaming statistics substrates: running moments and a log-bucketed
// percentile histogram (used for the latency P90/P99 rows of Tables 2-4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lhr::util {

/// Welford running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-bucketed histogram over positive values; approximate quantiles with
/// bounded relative error (~2% with the default 128 buckets/decade).
///
/// Chosen over an exact sorted-sample approach because the server emulator
/// records one latency sample per request (millions), and over P² because we
/// need several quantiles from one pass.
class QuantileHistogram {
 public:
  /// Values below `min_value` are clamped into the first bucket.
  explicit QuantileHistogram(double min_value = 1e-9, double max_value = 1e9,
                             std::size_t buckets_per_decade = 128);

  void add(double value) noexcept;

  /// Adds every sample recorded by `other` into this histogram. Both must
  /// have been constructed with the same bucket layout (min/max/buckets);
  /// throws std::invalid_argument otherwise. Counts merge exactly, so
  /// quantiles of a merged histogram equal quantiles of one histogram fed
  /// all samples — the reduction step of the concurrent server replay.
  void merge(const QuantileHistogram& other);

  /// True when `other` shares this histogram's bucket layout (mergeable).
  [[nodiscard]] bool same_layout(const QuantileHistogram& other) const noexcept;

  /// Upper-edge estimate of the q-quantile. Boundary contract (asserted by
  /// util_test): an empty histogram returns 0.0 for every q; q <= 0 (and
  /// NaN) returns the first non-empty bucket's upper edge (a minimum
  /// estimate); q >= 1 returns the last non-empty bucket's upper edge (a
  /// maximum estimate); q outside [0,1] is clamped.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  [[nodiscard]] double mean() const noexcept { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Raw per-bucket counts — with sum(), the complete mergeable state of the
  /// histogram. This is what the process-parallel replay serializes over its
  /// worker pipes; counts are integers, so shipping them and re-adding via
  /// add_bucket_counts is exactly equivalent to merge().
  [[nodiscard]] std::span<const std::uint64_t> bucket_counts() const noexcept {
    return counts_;
  }

  /// Adds previously exported state (bucket_counts() + sum()) into this
  /// histogram — merge() for state that crossed a process boundary. `counts`
  /// must have exactly this histogram's bucket count; throws
  /// std::invalid_argument otherwise (the layout-mismatch guard merge() has).
  void add_bucket_counts(std::span<const std::uint64_t> counts, double sum);

  void reset() noexcept;

 private:
  [[nodiscard]] std::size_t bucket_of(double value) const noexcept;
  [[nodiscard]] double bucket_upper_edge(std::size_t b) const noexcept;

  double log_min_;
  double inv_log_step_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
};

/// Exact percentile of a sample (copies & sorts; for tests and small
/// vectors). Uses the same nearest-rank convention as
/// QuantileHistogram::quantile (ceil(q*n)-th order statistic), so the two
/// agree within the histogram's bucket resolution. Boundary contract:
/// q <= 0 returns the minimum, q >= 1 the maximum (q is clamped into
/// [0,1]); an empty sample or NaN q throws std::invalid_argument — there is
/// no value to report, and silently returning 0 poisons downstream math.
[[nodiscard]] double exact_percentile(std::vector<double> values, double q);

}  // namespace lhr::util
