// RAII advisory file lock over flock(2), used to serialize cross-process
// critical sections — notably runner::TraceCache spill-file generation, where
// several replay processes may race to materialize the same keyed .lhrt.
//
// The lock file itself is a zero-byte sibling of the resource it guards
// (created on demand, never deleted): deleting it would reopen the race it
// exists to close, because a late-arriving process could lock a fresh inode
// while an earlier holder still owns the old one.
#pragma once

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace lhr::util {

/// Blocking exclusive flock on `path` for the lifetime of the object.
/// flock locks are per open-file-description, so two FileLocks on the same
/// path exclude each other across threads of one process as well as across
/// processes, and the kernel drops the lock automatically if the holder
/// dies — a crashed trace-spill never wedges later runs.
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      throw std::runtime_error("FileLock: open(" + path +
                               ") failed: " + std::strerror(errno));
    }
    int rc;
    do {
      rc = ::flock(fd_, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("FileLock: flock(" + path +
                               ") failed: " + std::strerror(err));
    }
  }

  ~FileLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  FileLock(FileLock&&) = delete;
  FileLock& operator=(FileLock&&) = delete;

 private:
  int fd_ = -1;
};

}  // namespace lhr::util
