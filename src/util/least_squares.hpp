// Ordinary least squares for a simple linear model y = a + b x.
//
// This is the O(N) "LSM" of paper §5.2.2: fitting log(count) = log A - α log(rank)
// to estimate the Zipf exponent α per sliding window.
#pragma once

#include <cstddef>
#include <span>

namespace lhr::util {

struct LinearFit {
  double intercept = 0.0;  ///< a
  double slope = 0.0;      ///< b
  double r2 = 0.0;         ///< coefficient of determination
  std::size_t n = 0;
};

/// Fits y = a + b x by ordinary least squares. Returns a zero fit when
/// fewer than two points or when x is degenerate (zero variance).
[[nodiscard]] LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

}  // namespace lhr::util
