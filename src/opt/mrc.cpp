#include "opt/mrc.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/fenwick_tree.hpp"

namespace lhr::opt {

std::vector<double> lru_stack_distances(std::span<const trace::Request> requests) {
  // Fenwick tree over request positions: slot p holds the size of the
  // content whose *most recent* access was at p. The unique-byte distance
  // for a request at i with previous access at p is then the sum over
  // (p, i) — each distinct content counted once, at its latest position.
  std::vector<double> distances(requests.size(), kInfiniteDistance);
  if (requests.empty()) return distances;

  util::FenwickTree<double> bytes_at(requests.size());
  std::unordered_map<trace::Key, std::size_t> last_pos;
  last_pos.reserve(requests.size() / 2 + 1);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const trace::Request& r = requests[i];
    const auto it = last_pos.find(r.key);
    if (it != last_pos.end()) {
      const std::size_t p = it->second;
      // Sum of sizes of contents last accessed in (p, i).
      const double upto_i = i > 0 ? bytes_at.prefix_sum(i - 1) : 0.0;
      const double upto_p = bytes_at.prefix_sum(p);
      distances[i] = upto_i - upto_p;
      bytes_at.add(p, -static_cast<double>(requests[p].size));
      it->second = i;
    } else {
      last_pos.emplace(r.key, i);
    }
    bytes_at.add(i, static_cast<double>(r.size));
  }
  return distances;
}

std::vector<double> lru_miss_ratio_curve(
    std::span<const trace::Request> requests,
    std::span<const std::uint64_t> capacities_bytes) {
  const auto distances = lru_stack_distances(requests);
  std::vector<double> hit_ratio(capacities_bytes.size(), 0.0);
  if (requests.empty()) return hit_ratio;

  for (std::size_t c = 0; c < capacities_bytes.size(); ++c) {
    const double capacity = static_cast<double>(capacities_bytes[c]);
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (distances[i] >= 0.0 &&
          distances[i] + static_cast<double>(requests[i].size) <= capacity) {
        ++hits;
      }
    }
    hit_ratio[c] = static_cast<double>(hits) / static_cast<double>(requests.size());
  }
  return hit_ratio;
}

double che_lru_hit_ratio(std::span<const trace::Request> requests,
                         std::uint64_t capacity_bytes) {
  if (requests.empty()) return 0.0;
  struct PerContent {
    std::uint64_t count = 0;
    std::uint64_t size = 0;
  };
  std::unordered_map<trace::Key, PerContent> per;
  per.reserve(requests.size() / 2 + 1);
  for (const trace::Request& r : requests) {
    auto& pc = per[r.key];
    ++pc.count;
    pc.size = r.size;
  }
  const double duration =
      std::max(requests.back().time - requests.front().time, 1e-9);

  // Characteristic time: sum_i s_i (1 - e^{-lambda_i T}) = C, solved by
  // bisection (the left side is increasing in T).
  const auto resident_bytes = [&](double T) {
    double bytes = 0.0;
    for (const auto& [key, pc] : per) {
      const double lambda = static_cast<double>(pc.count) / duration;
      bytes += static_cast<double>(pc.size) * (1.0 - std::exp(-lambda * T));
    }
    return bytes;
  };

  const double capacity = static_cast<double>(capacity_bytes);
  double lo = 0.0, hi = duration * 1024.0;
  if (resident_bytes(hi) <= capacity) {
    // Everything fits: every re-request hits.
    double weighted = 0.0, total = 0.0;
    for (const auto& [key, pc] : per) {
      weighted += static_cast<double>(pc.count - 1);
      total += static_cast<double>(pc.count);
    }
    return total > 0.0 ? weighted / total : 0.0;
  }
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (resident_bytes(mid) > capacity ? hi : lo) = mid;
  }
  const double T = 0.5 * (lo + hi);

  // Hit probability of content i per request: 1 - e^{-lambda_i T}; weight by
  // its share of requests.
  double weighted = 0.0, total = 0.0;
  for (const auto& [key, pc] : per) {
    const double lambda = static_cast<double>(pc.count) / duration;
    weighted += static_cast<double>(pc.count) * (1.0 - std::exp(-lambda * T));
    total += static_cast<double>(pc.count);
  }
  return total > 0.0 ? weighted / total : 0.0;
}

}  // namespace lhr::opt
