#include "opt/exact_opt.hpp"

#include <cstddef>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace lhr::opt {

namespace {

struct Instance {
  std::vector<std::uint32_t> request_content;  // request -> dense content id
  std::vector<std::uint64_t> content_size;
  std::uint64_t capacity;
};

class Solver {
 public:
  explicit Solver(Instance instance) : inst_(std::move(instance)) {}

  std::uint64_t solve() { return best(0, 0); }

 private:
  // Memo key: request index and cached-content bitmask.
  std::uint64_t best(std::size_t i, std::uint32_t cached) {
    if (i == inst_.request_content.size()) return 0;
    const std::uint64_t memo_key =
        (static_cast<std::uint64_t>(i) << 32) | cached;
    if (const auto it = memo_.find(memo_key); it != memo_.end()) return it->second;

    const std::uint32_t content = inst_.request_content[i];
    const std::uint32_t bit = 1u << content;
    std::uint64_t result;
    if (cached & bit) {
      result = 1 + best(i + 1, cached);
    } else {
      // Option 1: bypass (do not admit).
      result = best(i + 1, cached);
      // Option 2: admit, evicting any subset of currently cached contents
      // so that everything fits. Enumerate subsets of `cached` to retain.
      if (inst_.content_size[content] <= inst_.capacity) {
        for (std::uint32_t keep = cached;; keep = (keep - 1) & cached) {
          if (fits(keep | bit)) {
            result = std::max(result, best(i + 1, keep | bit));
          }
          if (keep == 0) break;
        }
      }
    }
    memo_.emplace(memo_key, result);
    return result;
  }

  [[nodiscard]] bool fits(std::uint32_t mask) const {
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < inst_.content_size.size(); ++c) {
      if (mask & (1u << c)) total += inst_.content_size[c];
    }
    return total <= inst_.capacity;
  }

  Instance inst_;
  std::unordered_map<std::uint64_t, std::uint64_t> memo_;
};

}  // namespace

std::uint64_t exact_opt_hits(std::span<const trace::Request> requests,
                             std::uint64_t capacity_bytes) {
  Instance inst;
  inst.capacity = capacity_bytes;
  std::unordered_map<trace::Key, std::uint32_t> dense;
  for (const trace::Request& r : requests) {
    auto [it, inserted] =
        dense.try_emplace(r.key, static_cast<std::uint32_t>(dense.size()));
    if (inserted) {
      inst.content_size.push_back(r.size);
      if (dense.size() > 16) {
        throw std::invalid_argument("exact_opt_hits: more than 16 distinct keys");
      }
    }
    inst.request_content.push_back(it->second);
  }
  return Solver(std::move(inst)).solve();
}

}  // namespace lhr::opt
