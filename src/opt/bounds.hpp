// Offline bounds on OPT (paper §2, §8 "Optimal caching and upper bound on
// hit probability").
//
//  - Belady: evict the content whose next request is furthest in the future.
//    Exactly optimal for equal sizes; a heuristic (not a bound!) for variable
//    sizes, which is the paper's point about "false complacency".
//  - Belady-Size: the community's variable-size variant — prefer evicting
//    contents with large (size × next-use distance), i.e. the least valuable
//    bytes. Widely used as an upper bound [34,44,55].
//  - InfiniteCap: every re-request hits (only compulsory misses). The loosest
//    upper bound on any caching policy.
//  - PFOO-L: the practical flow-based relaxation of Berger et al. [11]:
//    caching reuse intervals consumes (size × interval length) units of the
//    cache's space-time resource, OPT has at most (capacity × trace length)
//    of it, so greedily packing the cheapest intervals upper-bounds OPT's
//    hits.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "trace/request.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace lhr::opt {

/// Result of evaluating a bound/offline policy over a trace.
struct BoundResult {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  double bytes_requested = 0.0;
  double bytes_hit = 0.0;

  [[nodiscard]] double hit_ratio() const {
    return requests ? static_cast<double>(hits) / static_cast<double>(requests) : 0.0;
  }
  [[nodiscard]] double byte_hit_ratio() const {
    return bytes_requested > 0.0 ? bytes_hit / bytes_requested : 0.0;
  }
};

/// Belady's MIN, generalized to byte capacities by evicting the furthest
/// next use until the new content fits. Exact for equal sizes.
[[nodiscard]] BoundResult belady(std::span<const trace::Request> requests,
                                 std::uint64_t capacity_bytes);

/// Belady-Size: victim = argmax over sampled candidates of
/// size × (next-use index − now). `sample_size` = 0 means exact (scan all).
[[nodiscard]] BoundResult belady_size(std::span<const trace::Request> requests,
                                      std::uint64_t capacity_bytes,
                                      std::size_t sample_size = 64,
                                      std::uint64_t seed = 42);

/// Infinite capacity: hits = all non-first requests. Genuinely streaming:
/// state is O(unique keys) regardless of the source.
[[nodiscard]] BoundResult infinite_cap(const trace::TraceSource& source);

[[nodiscard]] inline BoundResult infinite_cap(std::span<const trace::Request> requests) {
  return infinite_cap(trace::TraceView(requests));
}

/// PFOO-L resource relaxation (upper bound on OPT's hit ratio).
[[nodiscard]] BoundResult pfoo_l(std::span<const trace::Request> requests,
                                 std::uint64_t capacity_bytes);

/// PFOO-U style *achievable* offline schedule (lower bound on OPT's hit
/// ratio): greedily admit reuse intervals in footprint order whenever the
/// cache occupancy stays within capacity over the whole interval (checked
/// with a range-add/range-max segment tree). Together with pfoo_l this
/// brackets OPT: pfoo_u.hits <= OPT <= pfoo_l.hits.
[[nodiscard]] BoundResult pfoo_u(std::span<const trace::Request> requests,
                                 std::uint64_t capacity_bytes);

// ---- TraceSource adapters -------------------------------------------------
// Belady and the PFOO bounds need random access to future requests, so a
// non-contiguous source (a streaming generator) is materialized once; a
// Trace or MappedTrace passes through zero-copy.

[[nodiscard]] inline BoundResult belady(const trace::TraceSource& source,
                                        std::uint64_t capacity_bytes) {
  trace::Trace storage;
  return belady(trace::contiguous_or_materialize(source, storage), capacity_bytes);
}

[[nodiscard]] inline BoundResult belady_size(const trace::TraceSource& source,
                                             std::uint64_t capacity_bytes,
                                             std::size_t sample_size = 64,
                                             std::uint64_t seed = 42) {
  trace::Trace storage;
  return belady_size(trace::contiguous_or_materialize(source, storage),
                     capacity_bytes, sample_size, seed);
}

[[nodiscard]] inline BoundResult pfoo_l(const trace::TraceSource& source,
                                        std::uint64_t capacity_bytes) {
  trace::Trace storage;
  return pfoo_l(trace::contiguous_or_materialize(source, storage), capacity_bytes);
}

[[nodiscard]] inline BoundResult pfoo_u(const trace::TraceSource& source,
                                        std::uint64_t capacity_bytes) {
  trace::Trace storage;
  return pfoo_u(trace::contiguous_or_materialize(source, storage), capacity_bytes);
}

}  // namespace lhr::opt
