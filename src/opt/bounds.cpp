#include "opt/bounds.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "opt/next_use.hpp"
#include "util/rng.hpp"
#include "util/segment_tree.hpp"

namespace lhr::opt {

namespace {

void count_request(BoundResult& result, const trace::Request& r, bool hit) {
  ++result.requests;
  result.bytes_requested += static_cast<double>(r.size);
  if (hit) {
    ++result.hits;
    result.bytes_hit += static_cast<double>(r.size);
  }
}

}  // namespace

BoundResult belady(std::span<const trace::Request> requests, std::uint64_t capacity_bytes) {
  BoundResult result{.name = "Belady"};
  const auto next = next_use_indices(requests);

  // Max-heap of (next use position, key) with lazy invalidation: an entry is
  // stale when the cached key's current next-use differs.
  using HeapEntry = std::pair<std::size_t, trace::Key>;
  std::priority_queue<HeapEntry> heap;
  std::unordered_map<trace::Key, std::size_t> cached_next;  // key -> next-use pos
  std::unordered_map<trace::Key, std::uint64_t> cached_size;
  std::uint64_t used = 0;

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const trace::Request& r = requests[i];
    const auto it = cached_next.find(r.key);
    const bool hit = it != cached_next.end();
    count_request(result, r, hit);

    const std::size_t next_pos = next[i] == kNoNextUse ? kNoNextUse : next[i];
    if (hit) {
      it->second = next_pos;
      heap.emplace(next_pos, r.key);
      continue;
    }
    if (r.size > capacity_bytes) continue;           // can never fit
    if (next_pos == kNoNextUse) continue;            // OPT never caches dead contents

    // Evict furthest next use until the new content fits — but if the
    // incoming content itself has the furthest next use, bypassing it is
    // strictly better than evicting a sooner-needed resident (this is what
    // makes the policy exactly optimal for equal sizes even though
    // admission is optional).
    bool bypass = false;
    while (used + r.size > capacity_bytes && !heap.empty()) {
      const auto [pos, key] = heap.top();
      const auto cit = cached_next.find(key);
      if (cit == cached_next.end() || cit->second != pos) {
        heap.pop();  // stale
        continue;
      }
      if (pos < next_pos) {
        bypass = true;  // every resident is needed sooner than the newcomer
        break;
      }
      heap.pop();
      used -= cached_size[key];
      cached_size.erase(key);
      cached_next.erase(cit);
    }
    if (bypass || used + r.size > capacity_bytes) continue;  // bypass/drained
    cached_next[r.key] = next_pos;
    cached_size[r.key] = r.size;
    used += r.size;
    heap.emplace(next_pos, r.key);
  }
  return result;
}

BoundResult belady_size(std::span<const trace::Request> requests,
                        std::uint64_t capacity_bytes, std::size_t sample_size,
                        std::uint64_t seed) {
  BoundResult result{.name = "Belady-Size"};
  const auto next = next_use_indices(requests);
  util::Xoshiro256 rng(seed);

  struct Entry {
    std::uint64_t size;
    std::size_t next_pos;
  };
  std::unordered_map<trace::Key, Entry> cache;
  std::vector<trace::Key> keys;  // dense key list for O(1) sampling
  std::unordered_map<trace::Key, std::size_t> key_slot;
  std::uint64_t used = 0;

  const auto erase_key = [&](trace::Key key) {
    const auto it = cache.find(key);
    used -= it->second.size;
    cache.erase(it);
    const std::size_t slot = key_slot[key];
    key_slot.erase(key);
    if (slot != keys.size() - 1) {
      keys[slot] = keys.back();
      key_slot[keys[slot]] = slot;
    }
    keys.pop_back();
  };

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const trace::Request& r = requests[i];
    const auto it = cache.find(r.key);
    const bool hit = it != cache.end();
    count_request(result, r, hit);

    if (hit) {
      if (next[i] == kNoNextUse) {
        erase_key(r.key);  // dead content: free the bytes immediately
      } else {
        it->second.next_pos = next[i];
      }
      continue;
    }
    if (r.size > capacity_bytes || next[i] == kNoNextUse) continue;

    // Incoming content competes in the same size × distance ranking: if it
    // scores worst, bypass it instead of evicting more useful residents.
    const double incoming_score =
        static_cast<double>(r.size) * static_cast<double>(next[i] - i);
    bool bypass = false;
    while (used + r.size > capacity_bytes && !keys.empty()) {
      // Victim: max size × next-use distance among a sample (exact when
      // sample_size == 0 or exceeds the cache population).
      const std::size_t n_candidates =
          (sample_size == 0) ? keys.size() : std::min(sample_size, keys.size());
      trace::Key victim = keys[0];
      double worst = -1.0;
      for (std::size_t s = 0; s < n_candidates; ++s) {
        const trace::Key candidate =
            (sample_size == 0 || sample_size >= keys.size())
                ? keys[s]
                : keys[rng.next_below(keys.size())];
        const Entry& e = cache[candidate];
        const double distance = static_cast<double>(e.next_pos - i);
        const double score = static_cast<double>(e.size) * distance;
        if (score > worst) {
          worst = score;
          victim = candidate;
        }
      }
      if (worst < incoming_score) {
        bypass = true;
        break;
      }
      erase_key(victim);
    }
    if (bypass || used + r.size > capacity_bytes) continue;
    cache[r.key] = Entry{r.size, next[i]};
    key_slot[r.key] = keys.size();
    keys.push_back(r.key);
    used += r.size;
  }
  return result;
}

BoundResult infinite_cap(const trace::TraceSource& source) {
  BoundResult result{.name = "InfiniteCap"};
  std::unordered_map<trace::Key, bool> seen;
  seen.reserve(source.size() / 2 + 1);
  for (const trace::Request& r : source) {
    const bool hit = !seen.try_emplace(r.key, true).second;
    count_request(result, r, hit);
  }
  return result;
}

BoundResult pfoo_l(std::span<const trace::Request> requests, std::uint64_t capacity_bytes) {
  BoundResult result{.name = "PFOO-L"};
  const auto next = next_use_indices(requests);

  // A reuse interval [i, next[i]) kept in cache yields one hit and consumes
  // size × (next[i] - i) units of the space-time resource. OPT has at most
  // capacity × |trace| of that resource.
  struct Interval {
    double footprint;
    std::size_t request_pos;  // the position of the *hit* (next[i])
  };
  std::vector<Interval> intervals;
  intervals.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (next[i] == kNoNextUse) continue;
    const double length = static_cast<double>(next[i] - i);
    intervals.push_back(
        Interval{static_cast<double>(requests[i].size) * length, next[i]});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.footprint < b.footprint; });

  const double budget =
      static_cast<double>(capacity_bytes) * static_cast<double>(requests.size());
  double spent = 0.0;
  std::vector<bool> is_hit(requests.size(), false);
  for (const Interval& iv : intervals) {
    if (spent + iv.footprint > budget) break;
    spent += iv.footprint;
    is_hit[iv.request_pos] = true;
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    count_request(result, requests[i], is_hit[i]);
  }
  return result;
}

BoundResult pfoo_u(std::span<const trace::Request> requests,
                   std::uint64_t capacity_bytes) {
  BoundResult result{.name = "PFOO-U"};
  if (requests.empty()) return result;
  const auto next = next_use_indices(requests);

  struct Interval {
    double footprint;
    std::size_t begin;  // request creating the interval
    std::size_t end;    // the hit if admitted
    std::uint64_t size;
  };
  std::vector<Interval> intervals;
  intervals.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (next[i] == kNoNextUse || requests[i].size > capacity_bytes) continue;
    const double length = static_cast<double>(next[i] - i);
    intervals.push_back(Interval{static_cast<double>(requests[i].size) * length, i,
                                 next[i], requests[i].size});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.footprint < b.footprint; });

  // Occupancy over request slots: admitting [begin, end) holds `size` bytes
  // through slots begin..end-1. Greedy smallest-footprint-first is feasible
  // by construction, hence a valid offline schedule and a lower bound on OPT.
  util::SegmentTree<std::int64_t> occupancy(requests.size());
  std::vector<bool> is_hit(requests.size(), false);
  for (const Interval& iv : intervals) {
    const auto occupied = occupancy.range_max(iv.begin, iv.end - 1);
    if (occupied + static_cast<std::int64_t>(iv.size) <=
        static_cast<std::int64_t>(capacity_bytes)) {
      occupancy.range_add(iv.begin, iv.end - 1, static_cast<std::int64_t>(iv.size));
      is_hit[iv.end] = true;
    }
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    count_request(result, requests[i], is_hit[i]);
  }
  return result;
}

}  // namespace lhr::opt
