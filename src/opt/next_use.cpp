#include "opt/next_use.hpp"

#include <unordered_map>

namespace lhr::opt {

std::vector<std::size_t> next_use_indices(std::span<const trace::Request> requests) {
  std::vector<std::size_t> next(requests.size(), kNoNextUse);
  std::unordered_map<trace::Key, std::size_t> last_pos;
  last_pos.reserve(requests.size() / 2 + 1);
  for (std::size_t i = requests.size(); i-- > 0;) {
    auto [it, inserted] = last_pos.try_emplace(requests[i].key, i);
    if (!inserted) {
      next[i] = it->second;
      it->second = i;
    }
  }
  return next;
}

std::vector<std::size_t> prev_use_indices(std::span<const trace::Request> requests) {
  std::vector<std::size_t> prev(requests.size(), kNoNextUse);
  std::unordered_map<trace::Key, std::size_t> last_pos;
  last_pos.reserve(requests.size() / 2 + 1);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto [it, inserted] = last_pos.try_emplace(requests[i].key, i);
    if (!inserted) {
      prev[i] = it->second;
      it->second = i;
    }
  }
  return prev;
}

}  // namespace lhr::opt
