// Next-use computation: the shared substrate of every offline bound and of
// the Belady-imitating learners (Hawkeye's OPTgen, LRB's labels).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "trace/request.hpp"

namespace lhr::opt {

/// Sentinel meaning "never requested again".
inline constexpr std::size_t kNoNextUse = static_cast<std::size_t>(-1);

/// For each request position i, the position of the next request for the
/// same key (kNoNextUse if none). Single backwards pass, O(n).
[[nodiscard]] std::vector<std::size_t> next_use_indices(
    std::span<const trace::Request> requests);

/// For each request position i, the position of the *previous* request for
/// the same key (kNoNextUse if it is the first).
[[nodiscard]] std::vector<std::size_t> prev_use_indices(
    std::span<const trace::Request> requests);

}  // namespace lhr::opt
