// Miss-ratio curves and analytic LRU models.
//
// Two classic tools the caching literature (and AdaptSize's tuning model)
// builds on:
//
//  * Mattson stack analysis, byte-weighted: one pass computes, for every
//    request, the LRU stack distance in unique bytes (the total size of
//    distinct contents touched since this content's previous request).
//    The distribution of those distances *is* LRU's hit ratio at every
//    cache size simultaneously — an entire Figure-8-style sweep in O(n log n).
//
//  * The Che / characteristic-time approximation: for IRM(-ish) traffic,
//    LRU behaves like a TTL cache with a single characteristic time T
//    solving Σ_i s_i (1 - e^{-λ_i T}) = C; the hit ratio follows in closed
//    form. Used by AdaptSize (§2 of that paper) and validated here against
//    simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/request.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace lhr::opt {

/// Byte-weighted LRU stack distances for each request; kInfiniteDistance for
/// first-ever requests. distance = unique bytes of *other* contents accessed
/// since this key's previous request (its own size excluded).
inline constexpr double kInfiniteDistance = -1.0;
[[nodiscard]] std::vector<double> lru_stack_distances(
    std::span<const trace::Request> requests);

/// LRU's exact hit ratio at each capacity of `capacities_bytes` derived from
/// the stack distances: a request hits iff distance + size <= capacity.
[[nodiscard]] std::vector<double> lru_miss_ratio_curve(
    std::span<const trace::Request> requests,
    std::span<const std::uint64_t> capacities_bytes);

/// Che approximation: analytic LRU hit ratio under IRM with per-content
/// Poisson rates estimated from the trace. Returns the object hit ratio.
[[nodiscard]] double che_lru_hit_ratio(std::span<const trace::Request> requests,
                                       std::uint64_t capacity_bytes);

// ---- TraceSource adapters -------------------------------------------------
// The Mattson pass emits an O(n) distance vector anyway, so a streaming
// source is materialized once; contiguous sources pass through zero-copy.

[[nodiscard]] inline std::vector<double> lru_stack_distances(
    const trace::TraceSource& source) {
  trace::Trace storage;
  return lru_stack_distances(trace::contiguous_or_materialize(source, storage));
}

[[nodiscard]] inline std::vector<double> lru_miss_ratio_curve(
    const trace::TraceSource& source, std::span<const std::uint64_t> capacities_bytes) {
  trace::Trace storage;
  return lru_miss_ratio_curve(trace::contiguous_or_materialize(source, storage),
                              capacities_bytes);
}

[[nodiscard]] inline double che_lru_hit_ratio(const trace::TraceSource& source,
                                              std::uint64_t capacity_bytes) {
  trace::Trace storage;
  return che_lru_hit_ratio(trace::contiguous_or_materialize(source, storage),
                           capacity_bytes);
}

}  // namespace lhr::opt
