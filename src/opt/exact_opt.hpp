// Exact offline optimum by exhaustive search — a *test oracle* only.
//
// Computing OPT for variable sizes is NP-hard (Chrobak et al., cited as [19]
// in the paper), so this oracle is restricted to tiny instances (≤ ~16
// distinct contents, ≤ a few dozen requests). Tests use it to verify that
//  (a) Belady equals OPT for equal sizes,
//  (b) every bound in opt/bounds.hpp is ≥ OPT for variable sizes, and
//  (c) every online policy is ≤ OPT.
#pragma once

#include <cstdint>
#include <span>

#include "trace/request.hpp"

namespace lhr::opt {

/// Maximum number of hits achievable by any (offline, non-prefetching)
/// caching schedule. Throws std::invalid_argument when the instance has more
/// than 16 distinct keys.
[[nodiscard]] std::uint64_t exact_opt_hits(std::span<const trace::Request> requests,
                                           std::uint64_t capacity_bytes);

}  // namespace lhr::opt
