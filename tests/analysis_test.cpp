// Tests for the analytic substrates: trace tools, Mattson byte-weighted
// stack distances / miss-ratio curves, and the Che approximation — plus the
// LHR model-persistence and byte-hit extensions.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/lhr_cache.hpp"
#include "gen/cdn_model.hpp"
#include "gen/zipf.hpp"
#include "opt/mrc.hpp"
#include "policies/lru.hpp"
#include "sim/engine.hpp"
#include "trace/trace_tools.hpp"
#include "util/rng.hpp"

namespace lhr {
namespace {

// ------------------------------------------------------------ trace tools

trace::Trace tiny() {
  return trace::Trace{{{0.0, 1, 10}, {1.0, 2, 20}, {2.0, 3, 30}, {3.0, 1, 10},
                       {4.0, 2, 20}}};
}

TEST(TraceTools, Head) {
  const auto h = trace::head(tiny(), 3);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[2].key, 3u);
  EXPECT_EQ(trace::head(tiny(), 99).size(), 5u);
}

TEST(TraceTools, TimeSlice) {
  const auto s = trace::time_slice(tiny(), 1.0, 3.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].key, 2u);
  EXPECT_EQ(s[1].key, 3u);
}

TEST(TraceTools, SampleKeysKeepsAllRequestsOfKeptContents) {
  const auto t = gen::make_trace(gen::TraceClass::kCdnA, 20'000, 1);
  const auto sampled = trace::sample_keys(t, 4, 7);
  EXPECT_LT(sampled.size(), t.size());
  EXPECT_GT(sampled.size(), t.size() / 16);  // roughly 1/4 of keys
  // Per-content request counts must be preserved for sampled keys.
  std::unordered_map<trace::Key, int> full_counts, sampled_counts;
  for (const auto& r : t) ++full_counts[r.key];
  for (const auto& r : sampled) ++sampled_counts[r.key];
  for (const auto& [key, count] : sampled_counts) {
    ASSERT_EQ(count, full_counts.at(key));
  }
}

TEST(TraceTools, SampleRateOneIsIdentity) {
  const auto t = tiny();
  EXPECT_EQ(trace::sample_keys(t, 1).size(), t.size());
}

TEST(TraceTools, MergeInterleavesByTimeAndSeparatesKeySpaces) {
  trace::Trace a{{{0.0, 5, 10}, {2.0, 5, 10}}};
  trace::Trace b{{{1.0, 5, 20}, {3.0, 5, 20}}};
  const auto merged = trace::merge({a, b});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_TRUE(merged.is_time_ordered());
  // Key 5 from trace a and key 5 from trace b must not collide.
  EXPECT_NE(merged[0].key, merged[1].key);
  EXPECT_EQ(merged[0].key, merged[2].key);
}

TEST(TraceTools, RescaleTime) {
  const auto r = trace::rescale_time(tiny(), 8.0);
  EXPECT_NEAR(r.duration(), 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(r[0].time, 0.0);
}

// ------------------------------------------------- stack distances / MRC

TEST(StackDistances, HandComputed) {
  // 1(10) 2(20) 3(30) 1(10) 2(20):
  //   request 3 (key 1): touched 2,3 since -> 50
  //   request 4 (key 2): touched 3,1 since -> 40
  const auto d = opt::lru_stack_distances(tiny().requests());
  EXPECT_EQ(d[0], opt::kInfiniteDistance);
  EXPECT_EQ(d[1], opt::kInfiniteDistance);
  EXPECT_EQ(d[2], opt::kInfiniteDistance);
  EXPECT_DOUBLE_EQ(d[3], 50.0);
  EXPECT_DOUBLE_EQ(d[4], 40.0);
}

TEST(StackDistances, RepeatedKeyHasZeroDistance) {
  trace::Trace t{{{0.0, 1, 10}, {1.0, 1, 10}, {2.0, 1, 10}}};
  const auto d = opt::lru_stack_distances(t.requests());
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(Mrc, MatchesSimulatedLru) {
  // The headline property: the Mattson curve equals byte-LRU simulation.
  const auto t = gen::make_trace(gen::TraceClass::kCdnC, 30'000, 5);
  std::vector<std::uint64_t> capacities = {8ULL << 30, 32ULL << 30, 128ULL << 30};
  const auto curve = opt::lru_miss_ratio_curve(t.requests(), capacities);
  for (std::size_t c = 0; c < capacities.size(); ++c) {
    policy::Lru lru(capacities[c]);
    const double simulated = sim::simulate(lru, t).object_hit_ratio();
    EXPECT_NEAR(curve[c], simulated, 0.02) << "capacity index " << c;
  }
}

TEST(Mrc, MonotoneInCapacity) {
  const auto t = gen::make_trace(gen::TraceClass::kCdnA, 20'000, 6);
  std::vector<std::uint64_t> capacities;
  for (int i = 0; i < 8; ++i) capacities.push_back(1ULL << (28 + i));
  const auto curve = opt::lru_miss_ratio_curve(t.requests(), capacities);
  for (std::size_t c = 1; c < curve.size(); ++c) EXPECT_GE(curve[c], curve[c - 1]);
}

TEST(Che, ApproximatesLruOnIrmTraffic) {
  // On stationary Zipf/Poisson traffic the characteristic-time formula must
  // land within a few points of simulation (its classic accuracy regime).
  gen::ZipfSampler zipf(2'000, 0.8);
  util::Xoshiro256 rng(8);
  trace::Trace t;
  double time = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    time += -std::log(std::max(rng.next_double(), 1e-12));
    t.push_back({time, zipf.sample(rng), 1'000});
  }
  const std::uint64_t capacity = 300'000;  // 300 of 2000 objects
  const double analytic = opt::che_lru_hit_ratio(t.requests(), capacity);
  policy::Lru lru(capacity);
  const double simulated = sim::simulate(lru, t).object_hit_ratio();
  EXPECT_NEAR(analytic, simulated, 0.04);
}

TEST(Che, HugeCacheHitsEveryReRequest) {
  trace::Trace t{{{0.0, 1, 10}, {1.0, 1, 10}, {2.0, 2, 10}, {3.0, 2, 10}}};
  EXPECT_NEAR(opt::che_lru_hit_ratio(t.requests(), 1ULL << 40), 0.5, 1e-9);
}

// ------------------------------------------------- LHR persistence & bytes

core::LhrConfig small_lhr_config() {
  core::LhrConfig cfg;
  cfg.gbdt.num_trees = 8;
  cfg.min_train_samples = 64;
  return cfg;
}

trace::Trace zipf_trace(std::size_t n, std::uint64_t seed) {
  gen::ZipfSampler zipf(2'000, 0.9);
  util::Xoshiro256 rng(seed);
  trace::Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({i * 0.1, zipf.sample(rng), 1'000});
  }
  return t;
}

TEST(LhrPersistence, WarmStartSkipsBootstrap) {
  const auto t = zipf_trace(40'000, 9);
  core::LhrCache first(50'000, small_lhr_config());
  (void)sim::simulate(first, t);
  ASSERT_TRUE(first.model_trained());

  std::stringstream buffer;
  first.save_model(buffer);

  core::LhrCache second(50'000, small_lhr_config());
  EXPECT_FALSE(second.model_trained());
  second.load_model(buffer);
  EXPECT_TRUE(second.model_trained());
  EXPECT_NEAR(second.threshold(), first.threshold(), 1e-12);

  // The warm-started cache still works end to end.
  const auto metrics = sim::simulate(second, t);
  EXPECT_GT(metrics.object_hit_ratio(), 0.0);
}

TEST(LhrPersistence, SaveUntrainedThrows) {
  core::LhrCache cache(50'000, small_lhr_config());
  std::stringstream buffer;
  EXPECT_THROW(cache.save_model(buffer), std::runtime_error);
}

TEST(LhrPersistence, LoadGarbageThrows) {
  core::LhrCache cache(50'000, small_lhr_config());
  std::stringstream bad("bogus");
  EXPECT_THROW(cache.load_model(bad), std::runtime_error);
}

TEST(LhrByteHit, ByteWeightedVariantRuns) {
  core::LhrConfig cfg = small_lhr_config();
  cfg.optimize_byte_hit = true;
  core::LhrCache cache(50'000, cfg);
  const auto t = gen::make_trace(gen::TraceClass::kCdnA, 15'000, 10);
  const auto metrics = sim::simulate(cache, t);
  EXPECT_GT(metrics.requests, 0u);
  EXPECT_GE(cache.threshold(), 0.0);
  EXPECT_LE(cache.threshold(), 1.0);
}

}  // namespace
}  // namespace lhr
