#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "gen/cdn_model.hpp"
#include "gen/drift.hpp"
#include "gen/markov_modulated.hpp"
#include "gen/size_model.hpp"
#include "gen/zipf.hpp"
#include "trace/trace_stats.hpp"
#include "util/rng.hpp"

namespace lhr::gen {
namespace {

// ----------------------------------------------------------------- Zipf

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf(100, 0.9);
  double total = 0.0;
  for (std::size_t i = 0; i < 100; ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfMonotonicallyDecreasing) {
  ZipfSampler zipf(50, 1.1);
  for (std::size_t i = 1; i < 50; ++i) EXPECT_LE(zipf.pmf(i), zipf.pmf(i - 1));
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(zipf.pmf(i), 0.1, 1e-9);
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  ZipfSampler zipf(20, 0.8);
  util::Xoshiro256 rng(42);
  std::vector<int> counts(20, 0);
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kN, zipf.pmf(i), 0.005) << "rank " << i;
  }
}

TEST(ZipfSampler, RejectsEmptyPopulation) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

// ------------------------------------------------------------ SizeModel

TEST(SizeModel, SamplesWithinRange) {
  SizeModel model({SizeComponent{1.0, 1 << 20, 1.5}}, 1024, 1 << 24);
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto s = model.sample(rng);
    EXPECT_GE(s, 1024u);
    EXPECT_LE(s, static_cast<std::uint64_t>(1 << 24));
  }
}

TEST(SizeModel, ConstantModel) {
  const auto model = SizeModel::constant(4096);
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.sample(rng), 4096u);
}

TEST(SizeModel, MedianApproximatelyCorrect) {
  SizeModel model({SizeComponent{1.0, 1'000'000, 1.0}}, 1, 1ULL << 40);
  util::Xoshiro256 rng(19);
  std::vector<double> samples;
  for (int i = 0; i < 50'000; ++i) samples.push_back(static_cast<double>(model.sample(rng)));
  std::nth_element(samples.begin(), samples.begin() + 25'000, samples.end());
  EXPECT_NEAR(samples[25'000] / 1'000'000.0, 1.0, 0.05);
}

TEST(SizeModel, RejectsInvalidConfig) {
  EXPECT_THROW(SizeModel({}, 1, 100), std::invalid_argument);
  EXPECT_THROW(SizeModel({SizeComponent{1.0, 100, 1.0}}, 0, 100), std::invalid_argument);
  EXPECT_THROW(SizeModel({SizeComponent{1.0, 100, 1.0}}, 200, 100), std::invalid_argument);
  EXPECT_THROW(SizeModel({SizeComponent{-1.0, 100, 1.0}}, 1, 100), std::invalid_argument);
}

// ------------------------------------------------------------ CDN model

TEST(CdnModel, GeneratesRequestedCount) {
  const auto t = make_trace(TraceClass::kCdnA, 20'000, 1);
  EXPECT_EQ(t.size(), 20'000u);
  EXPECT_TRUE(t.is_time_ordered());
}

TEST(CdnModel, ReproducibleWithSameSeed) {
  const auto a = make_trace(TraceClass::kWiki, 5'000, 3);
  const auto b = make_trace(TraceClass::kWiki, 5'000, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(CdnModel, DifferentSeedsDiffer) {
  const auto a = make_trace(TraceClass::kWiki, 5'000, 3);
  const auto b = make_trace(TraceClass::kWiki, 5'000, 4);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += (a[i].key == b[i].key);
  EXPECT_LT(same, 2'000);
}

TEST(CdnModel, SizesAreStablePerKey) {
  const auto t = make_trace(TraceClass::kCdnB, 30'000, 5);
  std::unordered_map<trace::Key, std::uint64_t> size_of;
  for (const auto& r : t) {
    auto [it, inserted] = size_of.try_emplace(r.key, r.size);
    ASSERT_EQ(it->second, r.size) << "key " << r.key << " changed size";
  }
}

TEST(CdnModel, CdnCHasNearConstantSizes) {
  const auto t = make_trace(TraceClass::kCdnC, 20'000, 7);
  const auto s = trace::summarize(t);
  // Table 1: CDN-C mean 100 MB, max 101 MB.
  EXPECT_NEAR(s.mean_content_size_mb, 100.0, 2.0);
  EXPECT_LE(s.max_content_size_mb, 101.5);
}

TEST(CdnModel, CdnCIsOneHitWonderHeavy) {
  const auto c = trace::summarize(make_trace(TraceClass::kCdnC, 50'000, 2));
  const auto b = trace::summarize(make_trace(TraceClass::kCdnB, 50'000, 2));
  EXPECT_GT(c.one_hit_wonder_fraction, 0.5);   // "most contents requested once"
  EXPECT_LT(b.one_hit_wonder_fraction, c.one_hit_wonder_fraction);
}

TEST(CdnModel, DurationRoughlyMatchesConfig) {
  const auto cfg = make_config(TraceClass::kCdnA, 50'000, 9);
  const auto t = generate_cdn_trace(cfg);
  EXPECT_NEAR(t.duration(), cfg.duration_seconds, cfg.duration_seconds * 0.25);
}

TEST(CdnModel, PopularityIsZipfLike) {
  const auto t = make_trace(TraceClass::kCdnA, 100'000, 11);
  const auto counts = trace::popularity_counts(t);
  const double alpha = trace::fit_zipf_alpha(counts, 2000);
  EXPECT_GT(alpha, 0.4);
  EXPECT_LT(alpha, 1.6);
}

TEST(CdnModel, ChurnIntroducesNewKeys) {
  auto cfg = make_config(TraceClass::kCdnB, 40'000, 13);
  // Keys above the core range appear due to churn + one-hit wonders.
  const auto t = generate_cdn_trace(cfg);
  std::unordered_set<trace::Key> beyond_core;
  for (const auto& r : t) {
    if (r.key >= cfg.core_contents + cfg.num_requests) beyond_core.insert(r.key);
  }
  EXPECT_GT(beyond_core.size(), 0u);
}

TEST(CdnModel, InvalidConfigThrows) {
  CdnTraceConfig cfg;
  cfg.num_requests = 0;
  EXPECT_THROW(generate_cdn_trace(cfg), std::invalid_argument);
  cfg = CdnTraceConfig{};
  cfg.alpha_schedule.clear();
  EXPECT_THROW(generate_cdn_trace(cfg), std::invalid_argument);
}

TEST(CdnModel, PaperCacheSizes) {
  for (const auto c : {TraceClass::kCdnA, TraceClass::kCdnB, TraceClass::kCdnC,
                       TraceClass::kWiki}) {
    const auto sizes = paper_cache_sizes(c);
    ASSERT_EQ(sizes.size(), 4u);
    for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
    EXPECT_GT(headline_cache_size(c), 0u);
    // Scale parameter shrinks sizes proportionally.
    EXPECT_EQ(headline_cache_size(c, 0.5), headline_cache_size(c) / 2);
  }
}

TEST(CdnModel, ToStringNames) {
  EXPECT_EQ(to_string(TraceClass::kCdnA), "CDN-A");
  EXPECT_EQ(to_string(TraceClass::kWiki), "Wiki");
}

// ------------------------------------------------------ MarkovModulated

TEST(SynOne, StateFlipReversesPopularity) {
  MarkovModulatedConfig cfg;
  cfg.num_requests = 100'000;
  cfg.num_contents = 100;
  cfg.requests_per_state = 50'000;
  cfg.alpha = 1.0;
  const auto t = generate_syn_one(cfg);
  ASSERT_EQ(t.size(), 100'000u);

  // Popularity of content 0 in the first half (state 0) should be much
  // higher than in the second half (state 1, reversed ranking).
  std::size_t first_half = 0, second_half = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].key == 0) (i < 50'000 ? first_half : second_half)++;
  }
  EXPECT_GT(first_half, second_half * 5);

  // And content N-1 mirrors it.
  std::size_t last_first = 0, last_second = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].key == 99) (i < 50'000 ? last_first : last_second)++;
  }
  EXPECT_GT(last_second, last_first * 5);
}

TEST(SynTwo, AlphaRisesAcrossStates) {
  MarkovModulatedConfig cfg;
  cfg.num_requests = 300'000;
  cfg.num_contents = 1'000;
  cfg.requests_per_state = 100'000;
  const auto t = generate_syn_two(cfg);

  const auto alpha_of_segment = [&](std::size_t begin, std::size_t end) {
    trace::Trace seg;
    for (std::size_t i = begin; i < end; ++i) seg.push_back(t[i]);
    return trace::fit_zipf_alpha(trace::popularity_counts(seg), 300);
  };
  const double a0 = alpha_of_segment(0, 100'000);        // state 0: α = 0.7
  const double a1 = alpha_of_segment(100'000, 200'000);  // state 1: α = 0.9
  const double a2 = alpha_of_segment(200'000, 300'000);  // state 2: α = 1.1
  EXPECT_LT(a0, a1);
  EXPECT_LT(a1, a2);
}

TEST(SynTwo, StatePathBounces) {
  // 5 states' worth of requests: states visited are 0,1,2,1,0.
  MarkovModulatedConfig cfg;
  cfg.num_requests = 50'000;
  cfg.num_contents = 500;
  cfg.requests_per_state = 10'000;
  const auto t = generate_syn_two(cfg);

  const auto alpha_of_segment = [&](std::size_t begin, std::size_t end) {
    trace::Trace seg;
    for (std::size_t i = begin; i < end; ++i) seg.push_back(t[i]);
    return trace::fit_zipf_alpha(trace::popularity_counts(seg), 200);
  };
  const double s0 = alpha_of_segment(0, 10'000);
  const double s2 = alpha_of_segment(20'000, 30'000);
  const double s4 = alpha_of_segment(40'000, 50'000);
  EXPECT_LT(s0, s2);             // 0.7 < 1.1
  EXPECT_NEAR(s4, s0, 0.15);     // back at state 0
}

TEST(MarkovModulated, TimeOrderedAndReproducible) {
  MarkovModulatedConfig cfg;
  cfg.num_requests = 10'000;
  const auto a = generate_syn_one(cfg);
  const auto b = generate_syn_one(cfg);
  EXPECT_TRUE(a.is_time_ordered());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

// ---------------------------------------------------------------- drift

TEST(DriftSchedule, ParsesClausesAndDefaults) {
  const auto s = DriftSchedule::parse("remap:0.4-0.7@0.9;onehit:0.8-0.9@0.5");
  ASSERT_EQ(s.episodes().size(), 2u);
  EXPECT_EQ(s.episodes()[0].kind, DriftEpisode::Kind::kRemap);
  EXPECT_DOUBLE_EQ(s.episodes()[0].start_fraction, 0.4);
  EXPECT_DOUBLE_EQ(s.episodes()[0].end_fraction, 0.7);
  EXPECT_DOUBLE_EQ(s.episodes()[0].fraction, 0.9);
  EXPECT_EQ(s.episodes()[1].kind, DriftEpisode::Kind::kOneHit);
  EXPECT_DOUBLE_EQ(s.episodes()[1].fraction, 0.5);

  // The @fraction defaults to 1 (the whole episode drifts).
  const auto full = DriftSchedule::parse("remap:0.1-0.2");
  ASSERT_EQ(full.episodes().size(), 1u);
  EXPECT_DOUBLE_EQ(full.episodes()[0].fraction, 1.0);
}

TEST(DriftSchedule, MalformedSpecsThrow) {
  const auto parse = [](const char* spec) { (void)DriftSchedule::parse(spec); };
  EXPECT_THROW(parse("bogus:0.1-0.2"), std::invalid_argument);
  EXPECT_THROW(parse("remap:0.7-0.4"), std::invalid_argument);    // start > end
  EXPECT_THROW(parse("remap:0.1-1.5"), std::invalid_argument);    // out of [0,1]
  EXPECT_THROW(parse("remap:0.1-0.2@1.5"), std::invalid_argument);
  EXPECT_THROW(parse("remap"), std::invalid_argument);
}

TEST(ApplyDrift, DeterministicAndShapePreserving) {
  const auto base = make_trace(TraceClass::kCdnA, 20'000, 11);
  const auto schedule = DriftSchedule::parse("remap:0.3-0.6@0.8;onehit:0.7-0.8@0.5");
  const auto a = apply_drift(base, schedule, 11);
  const auto b = apply_drift(base, schedule, 11);
  ASSERT_EQ(a.size(), base.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]);  // byte-identical across applications
    // Only keys drift; times and sizes survive untouched.
    EXPECT_EQ(a[i].time, base[i].time);
    EXPECT_EQ(a[i].size, base[i].size);
  }
  // Identity outside every episode.
  for (std::size_t i = 0; i < a.size() * 3 / 10; ++i) EXPECT_EQ(a[i].key, base[i].key);
  for (std::size_t i = a.size() * 8 / 10; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, base[i].key);
  }
}

TEST(ApplyDrift, FullRemapIsABijectionOverTheEpisode) {
  const auto base = make_trace(TraceClass::kCdnA, 20'000, 11);
  const auto drifted =
      apply_drift(base, DriftSchedule::parse("remap:0.0-1.0@1.0"), 11);

  // Popularity structure is preserved under new names: per-key request
  // counts form the same multiset, every key is renamed.
  const auto counts_of = [](const trace::Trace& t) {
    std::unordered_map<trace::Key, std::size_t> counts;
    for (const auto& r : t) ++counts[r.key];
    std::vector<std::size_t> sorted;
    sorted.reserve(counts.size());
    for (const auto& [k, c] : counts) sorted.push_back(c);
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  };
  EXPECT_EQ(counts_of(base), counts_of(drifted));
  for (std::size_t i = 0; i < base.size(); ++i) EXPECT_NE(drifted[i].key, base[i].key);
}

TEST(ApplyDrift, OneHitFloodNeverReusesKeys) {
  const auto base = make_trace(TraceClass::kCdnA, 10'000, 11);
  const auto drifted =
      apply_drift(base, DriftSchedule::parse("onehit:0.0-1.0@1.0"), 11);
  std::unordered_set<trace::Key> seen;
  for (const auto& r : drifted) EXPECT_TRUE(seen.insert(r.key).second);
}

TEST(ApplyDrift, SeedSelectsADifferentDrift) {
  const auto base = make_trace(TraceClass::kCdnA, 10'000, 11);
  const auto schedule = DriftSchedule::parse("remap:0.0-1.0@1.0");
  const auto a = apply_drift(base, schedule, 1);
  const auto b = apply_drift(base, schedule, 2);
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size() && !any_differ; ++i) {
    any_differ = a[i].key != b[i].key;
  }
  EXPECT_TRUE(any_differ);
}

}  // namespace
}  // namespace lhr::gen
